//! Integration coverage for [`Api::connect_custom`]: a third transport
//! registered beside TCP and QUIC must carry an end-to-end visit through
//! the full delivery machinery — handshake dispatch (`on_connected` /
//! `on_accept`), data both ways, per-pipe routing, fault schedules on
//! provisioned legs, and a clean conservation audit at the end. The
//! custom transport under test is the real [`Multiplex`], registered
//! exactly as the multipath bench registers it.

use netsim::{FlowId, Nanos, PipeProfile};
use stack::mux::{Multiplex, MuxConfig, SplitterSpec};
use stack::net::{Api, App, Network};
use stack::{HostConfig, PathConfig};

/// A request/response visit: the client opens a custom transport, sends
/// a fixed request, and the server answers with a larger response the
/// moment the request has fully arrived.
struct VisitClient {
    request: u64,
    flow: Option<FlowId>,
    connected: bool,
    received: u64,
}

impl App for VisitClient {
    fn on_start(&mut self, api: &mut Api) {
        let cfg = MuxConfig {
            n_pipes: 2,
            splitter: SplitterSpec::RoundRobin,
            ..MuxConfig::default()
        };
        let flow = api.connect_custom(move |f| Box::new(Multiplex::client(f, cfg, 0xC0)));
        self.flow = Some(flow);
        api.send(flow, 0); // flush the transport's hello
    }
    fn on_connected(&mut self, api: &mut Api, flow: FlowId) {
        self.connected = true;
        api.send(flow, self.request);
    }
    fn on_data(&mut self, _api: &mut Api, _flow: FlowId, bytes: u64) {
        self.received += bytes;
    }
}

struct VisitServer {
    request: u64,
    response: u64,
    accepted: bool,
    received: u64,
    answered: bool,
}

impl App for VisitServer {
    fn on_accept(&mut self, _api: &mut Api, _flow: FlowId) {
        self.accepted = true;
    }
    fn on_data(&mut self, api: &mut Api, flow: FlowId, bytes: u64) {
        self.received += bytes;
        if !self.answered && self.received >= self.request {
            self.answered = true;
            api.send(flow, self.response);
        }
    }
}

const REQUEST: u64 = 2_000;
const RESPONSE: u64 = 150_000;

/// Build a two-pipe multipath network around the visit apps; the caller
/// decides the fault scenario on the first leg.
fn visit_network(fault: Option<&str>, seed: u64) -> Network {
    let client = VisitClient {
        request: REQUEST,
        flow: None,
        connected: false,
        received: 0,
    };
    let server = VisitServer {
        request: REQUEST,
        response: RESPONSE,
        accepted: false,
        received: 0,
        answered: false,
    };
    let host = HostConfig::default();
    let mut net = Network::new(
        host.clone(),
        host,
        PathConfig::internet(50, 20),
        Box::new(client),
        Box::new(server),
        seed,
    );
    net.set_custom_acceptor(|f| Box::new(Multiplex::server(f, MuxConfig::default(), 0xD0)));
    let mut profiles = PipeProfile::fan(2, 50_000_000, Nanos::from_millis(10), Nanos::ZERO);
    if let Some(scenario) = fault {
        profiles[0].fault_scenario = Some(scenario.to_string());
    }
    net.provision_pipes(&profiles, seed, Nanos::from_millis(20_000));
    net.set_audit(true);
    net
}

#[test]
fn custom_transport_carries_a_visit_end_to_end() {
    let mut net = visit_network(None, 0xBEEF);
    net.run_until(Nanos::from_millis(20_000));

    // Both directions completed through the custom transport.
    let report = net.audit_report();
    assert!(report.clean(), "audit violations: {:?}", report.violations);
    assert!(report.checks > 0);

    // The handshake dispatched to both sides and the payloads arrived.
    let stats = net.flow_stats(0, FlowId(1)).expect("client flow exists");
    assert!(stats.bytes_delivered >= RESPONSE, "client got the response");
    let srv = net.flow_stats(1, FlowId(1)).expect("server flow exists");
    assert!(srv.bytes_delivered >= REQUEST, "server got the request");

    // Multipath delivery really split the flow: every provisioned pipe
    // carried packets, and both host captures observed traffic.
    assert_eq!(net.pipe_count(), 2);
    for i in 0..2 {
        let cap = net.pipe_capture(i).expect("pipe capture");
        assert!(!cap.is_empty(), "pipe {i} saw no packets");
        let ledger = net.pipe_ledger(i).expect("pipe ledger");
        assert!(ledger.delivered > 0, "pipe {i} delivered nothing");
    }
    assert!(!net.client_capture.is_empty());
    assert!(!net.server_capture.is_empty());
}

#[test]
fn custom_transport_survives_fault_schedule_on_a_leg() {
    let mut net = visit_network(Some("outage-storm"), 0xFACE);
    net.run_until(Nanos::from_millis(20_000));

    let report = net.audit_report();
    assert!(report.clean(), "audit violations: {:?}", report.violations);

    // The storm drops packets on leg 0, but liveness failover routes
    // around it: the visit still completes end to end.
    let stats = net.flow_stats(0, FlowId(1)).expect("client flow");
    assert!(
        stats.bytes_delivered >= RESPONSE,
        "visit incomplete under faults: {} of {RESPONSE} bytes",
        stats.bytes_delivered
    );
    let dropped: u64 = (0..2)
        .map(|i| net.pipe_ledger(i).expect("ledger").dropped)
        .sum();
    assert!(dropped > 0, "the fault schedule never dropped a packet");
}

#[test]
fn custom_transport_visit_is_deterministic() {
    // Faulted runs under a *probabilistic* scenario: ge-burst loss is
    // drawn from the fault schedule's RNG, so the same seed must
    // reproduce the wire trace exactly and a different seed must
    // perturb it. (Flap-based scenarios are fixed horizon fractions
    // and deliberately seed-insensitive.)
    let run = |seed: u64| -> (u64, Vec<(Nanos, u32)>) {
        let mut net = visit_network(Some("ge-burst"), seed);
        net.run_until(Nanos::from_millis(20_000));
        let stats = net.flow_stats(0, FlowId(1)).expect("flow");
        let cap = net
            .client_capture
            .records
            .iter()
            .map(|r| (r.ts, r.wire_len))
            .collect();
        (stats.bytes_delivered, cap)
    };
    let a = run(0x5EED);
    let b = run(0x5EED);
    assert_eq!(a, b, "same seed, same wire trace");
    let c = run(0x5EED + 1);
    assert_ne!(a.1, c.1, "different seed perturbs the wire trace");
}
