//! Property tests for the machine-spec JSON codec (mirroring
//! `policy_roundtrip.rs`): every representable [`MachineSpec`] must
//! survive `from_json(to_json(s)) == s` through the *textual* wire form
//! operators actually ship, and malformed or hostile specs must be
//! rejected at the control plane — degrading to pass-through with the
//! registry's `degraded` counter bumped, never panicking.

use defenses::front::FrontConfig;
use defenses::machines::{
    constant_machine, front_machine, scrambler_machine, ConstantConfig, ScramblerConfig,
};
use netsim::json::Json;
use netsim::{Direction, Histogram, Nanos, SimRng};
use stob::defense::{emulate_flow, DefenseCtx, FlowPkt, Placement};
use stob::machine::{
    Action, DistSpec, Machine, MachineDefense, MachineEvent, MachineSpec, State, Target, Transition,
};
use stob::registry::{PolicyKey, PolicyRegistry};
use stob::sockopt::publish_machine_json;

fn rand_histogram(rng: &mut SimRng) -> Histogram {
    let lo = rng.range_u64(0, 100) as f64;
    let hi = lo + rng.range_u64(1, 2000) as f64;
    let mut h = Histogram::new(lo, hi, rng.range_usize(1, 8));
    for _ in 0..rng.range_usize(1, 40) {
        h.push(rng.range_f64(lo, hi));
    }
    h
}

/// A random *valid* distribution. Integer-valued parameters where exact
/// f64 round-tripping matters is not a concern — the codec prints
/// shortest-round-trip floats — but keep values finite and in-range.
fn rand_dist(rng: &mut SimRng) -> DistSpec {
    match rng.range_usize(0, 7) {
        0 => DistSpec::Fixed {
            v: rng.range_f64(0.0, 2.0),
        },
        1 => {
            let lo = rng.range_f64(0.0, 1.0);
            DistSpec::Uniform {
                lo,
                hi: lo + rng.range_f64(0.0, 3.0),
            }
        }
        2 => DistSpec::Normal {
            mean: rng.range_f64(0.0, 1.0),
            std: rng.range_f64(0.0, 0.5),
        },
        3 => DistSpec::LogNormal {
            mu: rng.range_f64(-9.0, 0.0),
            sigma: rng.range_f64(0.0, 2.0),
        },
        4 => DistSpec::Pareto {
            scale: rng.range_f64(0.001, 1.0),
            shape: rng.range_f64(0.5, 4.0),
        },
        5 => DistSpec::Geometric {
            p: rng.range_f64(0.01, 1.0),
        },
        6 => {
            let w_min = rng.range_f64(0.0, 2.0);
            DistSpec::Rayleigh {
                w_min,
                w_max: w_min + rng.range_f64(0.0, 5.0),
            }
        }
        _ => DistSpec::FromHistogram(rand_histogram(rng)),
    }
}

fn rand_action(rng: &mut SimRng) -> Action {
    match rng.range_usize(0, 3) {
        0 => Action::Nop,
        1 => Action::Pad {
            dir: if rng.chance(0.5) {
                Direction::Out
            } else {
                Direction::In
            },
            size: rand_dist(rng),
            timing: rand_dist(rng),
            absolute: rng.chance(0.3),
        },
        2 => Action::Timer {
            timing: rand_dist(rng),
        },
        _ => Action::Block {
            timing: rand_dist(rng),
            duration: rand_dist(rng),
        },
    }
}

/// A random transition row over `n_states` whose probability mass sums
/// to at most 1 (split across up to 3 targets).
fn rand_transition(on: MachineEvent, n_states: usize, rng: &mut SimRng) -> Transition {
    let n_targets = rng.range_usize(1, 3);
    let mut remaining = 1.0;
    let to = (0..n_targets)
        .map(|_| {
            let p = rng.range_f64(0.0, remaining);
            remaining -= p;
            let t = if rng.chance(0.2) {
                Target::End
            } else {
                Target::State(rng.range_usize(0, n_states - 1) as u32)
            };
            (t, p)
        })
        .collect();
    Transition { on, to }
}

fn rand_machine(rng: &mut SimRng) -> Machine {
    let n_states = rng.range_usize(1, 5);
    let states = (0..n_states)
        .map(|_| {
            // At most one row per event: pick a random subset of events.
            let chosen: Vec<MachineEvent> = MachineEvent::ALL
                .into_iter()
                .filter(|_| rng.chance(0.4))
                .collect();
            let transitions = chosen
                .into_iter()
                .map(|ev| rand_transition(ev, n_states, rng))
                .collect();
            State {
                action: rand_action(rng),
                limit: if rng.chance(0.6) {
                    Some(rand_dist(rng))
                } else {
                    None
                },
                transitions,
            }
        })
        .collect();
    Machine { states }
}

/// A random spec that passes [`MachineSpec::validate`] by construction.
fn rand_spec(i: usize, rng: &mut SimRng) -> MachineSpec {
    MachineSpec {
        name: format!("machine-{i}"),
        machines: (0..rng.range_usize(1, 3))
            .map(|_| rand_machine(rng))
            .collect(),
        policy: if rng.chance(0.3) {
            Some(stob::policy::ObfuscationPolicy::split_and_delay("inner"))
        } else {
            None
        },
        max_padding_pkts: rng.range_u64(0, 500),
        max_blocking: Nanos(rng.range_u64(0, 1_000_000_000)),
    }
}

#[test]
fn random_specs_round_trip_exactly() {
    let mut rng = SimRng::new(0x3A5E_5EED);
    for i in 0..200 {
        let s = rand_spec(i, &mut rng);
        assert!(s.validate().is_ok(), "generator must emit valid specs: {i}");
        let text = s.to_json().to_string_compact();
        let back = MachineSpec::from_json(&Json::parse(&text).expect("parse"))
            .unwrap_or_else(|e| panic!("spec {i} failed to deserialize: {e:?}\n{text}"));
        assert_eq!(back, s, "round-trip drifted for spec {i}:\n{text}");
    }
}

#[test]
fn generator_specs_round_trip_exactly() {
    for s in [
        front_machine(&FrontConfig::default()),
        constant_machine(&ConstantConfig::default()),
        scrambler_machine(&ScramblerConfig::default()),
    ] {
        let text = s.to_json().to_string_pretty();
        let back = MachineSpec::from_json(&Json::parse(&text).expect("parse")).expect("decode");
        assert_eq!(back, s);
    }
}

#[test]
fn unknown_variant_tags_are_rejected() {
    let base = front_machine(&FrontConfig::default()).to_json();
    let text = base.to_string_compact();
    for (needle, replacement) in [
        ("\"Rayleigh\"", "\"Weibull\""),
        ("\"Uniform\"", "\"Zipf\""),
        ("\"Pad\"", "\"Inject\""),
        ("\"PaddingSent\"", "\"PaddingQueued\""),
        ("\"State\"", "\"Goto\""),
        ("\"End\"", "\"Halt\""),
    ] {
        let hostile = text.replacen(needle, replacement, 1);
        assert_ne!(hostile, text, "replacement {needle} must apply");
        let v = Json::parse(&hostile).expect("still syntactically valid");
        assert!(
            MachineSpec::from_json(&v).is_err(),
            "unknown tag {replacement} must be rejected"
        );
    }
}

#[test]
fn missing_fields_and_truncation_are_rejected() {
    let good = constant_machine(&ConstantConfig::default()).to_json();
    let Json::Obj(entries) = good.clone() else {
        panic!("spec must encode as an object")
    };
    for field in ["name", "machines", "max_padding_pkts", "max_blocking_ns"] {
        let pruned = Json::Obj(
            entries
                .iter()
                .filter(|(k, _)| k != field)
                .cloned()
                .collect(),
        );
        assert!(
            MachineSpec::from_json(&pruned).is_err(),
            "missing `{field}` must be rejected"
        );
    }
    let text = good.to_string_compact();
    for cut in [1, text.len() / 2, text.len() - 1] {
        assert!(
            Json::parse(&text[..cut]).is_err(),
            "truncation at {cut} must not parse"
        );
    }
}

/// Shape-valid but semantically hostile specs decode fine, fail
/// `validate()`, and are refused by every control-plane entry point with
/// the degradation counter bumped — while a defense constructed from one
/// anyway silently degrades each flow to pass-through.
#[test]
fn hostile_specs_degrade_never_panic() {
    let mut hostile = front_machine(&FrontConfig::default());
    hostile.machines[0].states[0].transitions[0].to = vec![(Target::State(99), 1.0)];
    assert!(hostile.validate().is_err());
    let text = hostile.to_json().to_string_compact();
    let decoded =
        MachineSpec::from_json(&Json::parse(&text).expect("parse")).expect("shape-valid decodes");
    assert_eq!(decoded, hostile);

    let reg = PolicyRegistry::new();
    let d0 = reg.degraded_count();

    // bind_machine refuses and counts.
    assert!(reg
        .bind_machine(PolicyKey::Default, hostile.clone(), Placement::App)
        .is_err());
    assert_eq!(reg.degraded_count(), d0 + 1);
    assert!(reg.resolve_defense(1, 1).is_none(), "nothing was bound");

    // publish_machine_json refuses decoded-but-invalid...
    assert!(publish_machine_json(&reg, PolicyKey::Default, &text, Placement::App).is_err());
    assert_eq!(reg.degraded_count(), d0 + 2);
    // ...unparseable...
    assert!(publish_machine_json(&reg, PolicyKey::Default, "{not json", Placement::App).is_err());
    assert_eq!(reg.degraded_count(), d0 + 3);
    // ...and undecodable input.
    assert!(publish_machine_json(&reg, PolicyKey::Default, "{\"a\":1}", Placement::App).is_err());
    assert_eq!(reg.degraded_count(), d0 + 4);

    // A MachineDefense built around the hostile spec anyway (bypassing
    // the control plane) degrades every flow to pass-through.
    let d = MachineDefense::new(hostile);
    assert!(!d.is_valid());
    let flow = [
        FlowPkt {
            ts: Nanos::ZERO,
            dir: Direction::Out,
            size: 400,
        },
        FlowPkt {
            ts: Nanos::from_millis(1),
            dir: Direction::In,
            size: 1200,
        },
    ];
    let before = reg.degraded_count();
    let out = emulate_flow(&d, &flow, &DefenseCtx::default(), &mut SimRng::new(1));
    assert_eq!(out.pkts, flow);
    assert_eq!(out.dummy_pkts, 0);
    // The degradation is counted globally (telemetry), not on `reg`'s
    // private counter; just confirm nothing panicked and reg is stable.
    assert_eq!(reg.degraded_count(), before);
}

/// A spec that is shape- and semantics-valid but adversarially cyclic —
/// a zero-sampled limit whose `LimitReached` row re-enters its own state
/// — must be accepted by the control plane and then *terminate* when a
/// flow runs it (action budget -> hard cap), not overflow the stack.
#[test]
fn hostile_zero_limit_cycle_from_json_terminates() {
    let text = r#"{
      "name": "zero-limit-cycle",
      "machines": [ { "states": [
        { "action": "Nop",
          "limit": { "Fixed": { "v": 0 } },
          "transitions": [ { "on": "LimitReached",
                             "to": [[ {"State": 0}, 1.0 ]] } ] }
      ] } ],
      "max_padding_pkts": 8,
      "max_blocking_ns": 0
    }"#;
    let reg = PolicyRegistry::new();
    publish_machine_json(&reg, PolicyKey::Default, text, Placement::App)
        .expect("spec is valid at the control plane");
    let binding = reg.resolve_defense(1, 1).expect("machine resolves");
    let flow = [
        FlowPkt {
            ts: Nanos::ZERO,
            dir: Direction::Out,
            size: 400,
        },
        FlowPkt {
            ts: Nanos::from_millis(1),
            dir: Direction::In,
            size: 1200,
        },
    ];
    let out = emulate_flow(
        binding.defense.as_ref(),
        &flow,
        &DefenseCtx::default(),
        &mut SimRng::new(1),
    );
    assert_eq!(out.pkts, flow, "hostile machine must degrade to no-op");
    assert_eq!(out.dummy_pkts, 0);
}

/// Fuzz the decoder with structural mutations of valid documents: every
/// outcome must be a clean `Err` or an equal decode — never a panic.
#[test]
fn mutated_documents_never_panic_the_decoder() {
    let mut rng = SimRng::new(0xFEED);
    let texts: Vec<String> = (0..20)
        .map(|i| rand_spec(i, &mut rng).to_json().to_string_compact())
        .collect();
    for (i, text) in texts.iter().enumerate() {
        for j in 0..50usize {
            let mut bytes = text.clone().into_bytes();
            let pos = rng.range_usize(0, bytes.len() - 1);
            let mutation = rng.range_usize(0, 2);
            match mutation {
                0 => bytes[pos] = b"0{}[],:\"xE-"[rng.range_usize(0, 10)],
                1 => {
                    bytes.remove(pos);
                }
                _ => bytes.insert(pos, b"9[{,"[rng.range_usize(0, 3)]),
            }
            let Ok(s) = String::from_utf8(bytes) else {
                continue;
            };
            if let Ok(v) = Json::parse(&s) {
                // Decode may succeed or fail; validate may reject; a
                // defense over whatever decodes must still build.
                if let Ok(spec) = MachineSpec::from_json(&v) {
                    let _ = spec.validate();
                    let _ = MachineDefense::new(spec);
                }
            }
            let _ = (i, j);
        }
    }
}
