//! Randomized invariants spanning crates: the §3 countermeasures, trace
//! algebra and the sanitizer, checked over seeded random traces. The
//! sweep replaces the earlier proptest suite with a deterministic
//! `SimRng` generator so the workspace carries no external test deps;
//! every case is reproducible from the loop index.

use defenses::emulate::{delay, split, EmulateConfig};
use netsim::{Direction, Nanos, SimRng};
use traces::{Trace, TracePacket};

const CASES: u64 = 300;

/// A random well-formed trace, analogous to the old proptest strategy:
/// 1-120 packets, raw timestamps below 5 s, sizes in [66, 3000).
fn arb_trace(rng: &mut SimRng) -> Trace {
    let n = rng.range_usize(1, 120);
    let mut packets: Vec<TracePacket> = (0..n)
        .map(|_| {
            TracePacket::new(
                Nanos(rng.next_below(5_000_000_000)),
                if rng.chance(0.5) {
                    Direction::Out
                } else {
                    Direction::In
                },
                rng.range_u64(66, 2999) as u32,
            )
        })
        .collect();
    packets.sort_by_key(|p| p.ts);
    let mut t = Trace::new(0, 0, packets);
    t.normalize();
    t
}

/// Splitting conserves total bytes, never produces packets above the
/// threshold in the affected direction, and keeps time order.
#[test]
fn split_conserves_bytes_and_bounds_sizes() {
    for case in 0..CASES {
        let mut rng = SimRng::new(0x1A).fork(case + 1);
        let trace = arb_trace(&mut rng);
        let cfg = EmulateConfig::default();
        let s = split(&trace, &cfg);
        let orig: u64 = trace.packets.iter().map(|p| p.size as u64).sum();
        let new: u64 = s.packets.iter().map(|p| p.size as u64).sum();
        assert_eq!(orig, new, "case {case}");
        assert!(s.is_well_formed(), "case {case}");
        // The paper's rule halves once (not recursively): every incoming
        // packet in the output is either an untouched small packet or
        // half of an oversize one.
        let max_in_half = trace
            .packets
            .iter()
            .filter(|p| p.dir == Direction::In)
            .map(|p| p.size / 2 + p.size % 2)
            .max()
            .unwrap_or(0);
        let bound = cfg.split_threshold.max(max_in_half);
        assert!(
            s.packets
                .iter()
                .filter(|p| p.dir == Direction::In)
                .all(|p| p.size <= bound),
            "case {case}"
        );
        // And for MTU-sized inputs (the real case), halves are bounded
        // by the threshold itself.
        if trace
            .packets
            .iter()
            .all(|q| q.size <= 2 * cfg.split_threshold)
        {
            assert!(
                s.packets
                    .iter()
                    .filter(|p| p.dir == Direction::In)
                    .all(|p| p.size <= cfg.split_threshold),
                "case {case}"
            );
        }
        // Outgoing packets are untouched.
        let out_sizes = |t: &Trace| -> Vec<u32> {
            t.packets
                .iter()
                .filter(|p| p.dir == Direction::Out)
                .map(|p| p.size)
                .collect()
        };
        assert_eq!(out_sizes(&trace), out_sizes(&s), "case {case}");
    }
}

/// Delaying preserves count, sizes and directions, keeps timestamps
/// ordered, and only moves packets later (relative to the rebased
/// origin).
#[test]
fn delay_preserves_everything_but_time() {
    for case in 0..CASES {
        let mut rng = SimRng::new(0x2B).fork(case + 1);
        let trace = arb_trace(&mut rng);
        let cfg = EmulateConfig::default();
        let mut delay_rng = rng.fork(0xD);
        let d = delay(&trace, &cfg, &mut delay_rng);
        assert_eq!(d.len(), trace.len(), "case {case}");
        assert!(d.is_well_formed(), "case {case}");
        for (a, b) in trace.packets.iter().zip(&d.packets) {
            assert_eq!(a.size, b.size, "case {case}");
            assert_eq!(a.dir, b.dir, "case {case}");
            assert!(b.ts >= a.ts, "case {case}: packet moved earlier");
        }
        // Total stretch is bounded by the configured band.
        let max_growth = trace.duration().mul_f64(cfg.delay_hi);
        assert!(
            d.duration() <= trace.duration() + max_growth + Nanos(2),
            "case {case}"
        );
    }
}

/// Truncation then featurization is always safe, and truncation is
/// idempotent.
#[test]
fn truncation_is_idempotent_and_monotone() {
    for case in 0..CASES {
        let mut rng = SimRng::new(0x3C).fork(case + 1);
        let trace = arb_trace(&mut rng);
        let n = rng.next_below(60) as usize;
        let t1 = trace.truncated(n);
        let t2 = t1.truncated(n);
        assert_eq!(t1, t2, "case {case}");
        if n > 0 {
            assert!(t1.len() <= n, "case {case}");
        } else {
            assert_eq!(t1.len(), trace.len(), "case {case}");
        }
        let f = wf::features::extract_features(&t1, &wf::features::FeatureConfig::paper());
        assert_eq!(f.len(), wf::features::N_FEATURES, "case {case}");
        assert!(f.iter().all(|x| x.is_finite()), "case {case}");
    }
}

/// Feature extraction is invariant under size changes in paper mode.
#[test]
fn paper_features_ignore_sizes() {
    for case in 0..CASES {
        let mut rng = SimRng::new(0x4D).fork(case + 1);
        let trace = arb_trace(&mut rng);
        let bump = rng.range_u64(1, 499) as u32;
        let cfg = wf::features::FeatureConfig::paper();
        let f1 = wf::features::extract_features(&trace, &cfg);
        let mut bigger = trace.clone();
        for p in &mut bigger.packets {
            p.size = p.size.saturating_add(bump);
        }
        let f2 = wf::features::extract_features(&bigger, &cfg);
        assert_eq!(f1, f2, "case {case}");
    }
}

/// The sanitizer never *increases* the trace count and keeps only
/// well-formed members of the input.
#[test]
fn sanitizer_output_is_a_subset() {
    for case in 0..CASES {
        let mut rng = SimRng::new(0x5E).fork(case + 1);
        let n_traces = rng.range_usize(5, 24);
        let traces: Vec<Trace> = (0..n_traces)
            .map(|v| {
                let n = rng.range_usize(30, 199);
                let pkts = (0..n)
                    .map(|i| TracePacket::new(Nanos(i as u64 * 1000), Direction::In, 1514))
                    .collect();
                Trace::new(0, v, pkts)
            })
            .collect();
        let complete = vec![true; traces.len()];
        let (kept, rep) = traces::sanitize::sanitize_site(traces.clone(), &complete);
        assert!(kept.len() <= traces.len(), "case {case}");
        assert_eq!(
            rep.kept + rep.dropped_errors + rep.dropped_outliers,
            rep.input,
            "case {case}"
        );
        for k in &kept {
            assert!(traces.iter().any(|t| t == k), "case {case}");
        }
    }
}

#[test]
fn split_then_delay_commutes_with_byte_conservation() {
    // Not strictly commutative in timestamps, but byte totals and packet
    // counts agree regardless of order.
    let rng = SimRng::new(1);
    let site = &traces::sites::paper_sites()[1];
    let t = traces::statgen::generate(site, 1, 0, 2);
    let cfg = EmulateConfig::default();
    let a = delay(&split(&t, &cfg), &cfg, &mut rng.fork(1));
    let b = split(&delay(&t, &cfg, &mut rng.fork(2)), &cfg);
    let bytes = |x: &Trace| x.packets.iter().map(|p| p.size as u64).sum::<u64>();
    assert_eq!(bytes(&a), bytes(&b));
    assert_eq!(a.len(), b.len());
}
