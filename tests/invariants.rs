//! Property-based invariants spanning crates: the §3 countermeasures,
//! trace algebra and the sanitizer, checked over randomized traces.

use defenses::emulate::{delay, split, EmulateConfig};
use netsim::{Direction, Nanos, SimRng};
use proptest::prelude::*;
use traces::{Trace, TracePacket};

/// Strategy: an arbitrary well-formed trace.
fn arb_trace() -> impl Strategy<Value = Trace> {
    proptest::collection::vec(
        (
            0u64..5_000_000_000,            // raw timestamp
            prop::bool::ANY,                // direction
            66u32..3000,                    // wire size
        ),
        1..120,
    )
    .prop_map(|pkts| {
        let mut packets: Vec<TracePacket> = pkts
            .into_iter()
            .map(|(ts, out, size)| {
                TracePacket::new(
                    Nanos(ts),
                    if out { Direction::Out } else { Direction::In },
                    size,
                )
            })
            .collect();
        packets.sort_by_key(|p| p.ts);
        let mut t = Trace::new(0, 0, packets);
        t.normalize();
        t
    })
}

proptest! {
    /// Splitting conserves total bytes, never produces packets above the
    /// threshold in the affected direction, and keeps time order.
    #[test]
    fn split_conserves_bytes_and_bounds_sizes(trace in arb_trace()) {
        let cfg = EmulateConfig::default();
        let s = split(&trace, &cfg);
        let orig: u64 = trace.packets.iter().map(|p| p.size as u64).sum();
        let new: u64 = s.packets.iter().map(|p| p.size as u64).sum();
        prop_assert_eq!(orig, new);
        prop_assert!(s.is_well_formed());
        // The paper's rule halves once (not recursively): every incoming
        // packet in the output is either an untouched small packet or
        // half of an oversize one.
        let max_in_half = trace
            .packets
            .iter()
            .filter(|p| p.dir == Direction::In)
            .map(|p| p.size / 2 + p.size % 2)
            .max()
            .unwrap_or(0);
        let bound = cfg.split_threshold.max(max_in_half);
        prop_assert!(s
            .packets
            .iter()
            .filter(|p| p.dir == Direction::In)
            .all(|p| p.size <= bound));
        // And for MTU-sized inputs (the real case), halves are bounded
        // by the threshold itself.
        prop_assert!(s
            .packets
            .iter()
            .filter(|p| p.dir == Direction::In
                && trace.packets.iter().all(|q| q.size <= 2 * cfg.split_threshold))
            .all(|p| p.size <= cfg.split_threshold));
        // Outgoing packets are untouched.
        let orig_out: Vec<u32> = trace
            .packets
            .iter()
            .filter(|p| p.dir == Direction::Out)
            .map(|p| p.size)
            .collect();
        let new_out: Vec<u32> = s
            .packets
            .iter()
            .filter(|p| p.dir == Direction::Out)
            .map(|p| p.size)
            .collect();
        prop_assert_eq!(orig_out, new_out);
    }

    /// Delaying preserves count, sizes and directions, keeps timestamps
    /// ordered, and only moves packets later (relative to the rebased
    /// origin).
    #[test]
    fn delay_preserves_everything_but_time(trace in arb_trace(), seed in 0u64..1000) {
        let cfg = EmulateConfig::default();
        let mut rng = SimRng::new(seed);
        let d = delay(&trace, &cfg, &mut rng);
        prop_assert_eq!(d.len(), trace.len());
        prop_assert!(d.is_well_formed());
        for (a, b) in trace.packets.iter().zip(&d.packets) {
            prop_assert_eq!(a.size, b.size);
            prop_assert_eq!(a.dir, b.dir);
            prop_assert!(b.ts >= a.ts, "packet moved earlier");
        }
        // Total stretch is bounded by the configured band.
        let max_growth = trace.duration().mul_f64(cfg.delay_hi);
        prop_assert!(d.duration() <= trace.duration() + max_growth + Nanos(2));
    }

    /// Truncation then featurization is always safe, and truncation is
    /// idempotent.
    #[test]
    fn truncation_is_idempotent_and_monotone(trace in arb_trace(), n in 0usize..60) {
        let t1 = trace.truncated(n);
        let t2 = t1.truncated(n);
        prop_assert_eq!(&t1, &t2);
        if n > 0 {
            prop_assert!(t1.len() <= n);
        } else {
            prop_assert_eq!(t1.len(), trace.len());
        }
        let f = wf::features::extract_features(&t1, &wf::features::FeatureConfig::paper());
        prop_assert_eq!(f.len(), wf::features::N_FEATURES);
        prop_assert!(f.iter().all(|x| x.is_finite()));
    }

    /// Feature extraction is invariant under size changes in paper mode.
    #[test]
    fn paper_features_ignore_sizes(trace in arb_trace(), bump in 1u32..500) {
        let cfg = wf::features::FeatureConfig::paper();
        let f1 = wf::features::extract_features(&trace, &cfg);
        let mut bigger = trace.clone();
        for p in &mut bigger.packets {
            p.size = p.size.saturating_add(bump);
        }
        let f2 = wf::features::extract_features(&bigger, &cfg);
        prop_assert_eq!(f1, f2);
    }

    /// The sanitizer never *increases* the trace count and keeps only
    /// well-formed members of the input.
    #[test]
    fn sanitizer_output_is_a_subset(
        sizes in proptest::collection::vec(30usize..200, 5..25)
    ) {
        let traces: Vec<Trace> = sizes
            .iter()
            .enumerate()
            .map(|(v, &n)| {
                let pkts = (0..n)
                    .map(|i| TracePacket::new(Nanos(i as u64 * 1000), Direction::In, 1514))
                    .collect();
                Trace::new(0, v, pkts)
            })
            .collect();
        let complete = vec![true; traces.len()];
        let (kept, rep) = traces::sanitize::sanitize_site(traces.clone(), &complete);
        prop_assert!(kept.len() <= traces.len());
        prop_assert_eq!(
            rep.kept + rep.dropped_errors + rep.dropped_outliers,
            rep.input
        );
        for k in &kept {
            prop_assert!(traces.iter().any(|t| t == k));
        }
    }
}

#[test]
fn split_then_delay_commutes_with_byte_conservation() {
    // Not strictly commutative in timestamps, but byte totals and packet
    // counts agree regardless of order.
    let mut rng = SimRng::new(1);
    let site = &traces::sites::paper_sites()[1];
    let t = traces::statgen::generate(site, 1, 0, 2);
    let cfg = EmulateConfig::default();
    let a = delay(&split(&t, &cfg), &cfg, &mut rng.fork(1));
    let b = split(&delay(&t, &cfg, &mut rng.fork(2)), &cfg);
    let bytes = |x: &Trace| x.packets.iter().map(|p| p.size as u64).sum::<u64>();
    assert_eq!(bytes(&a), bytes(&b));
    assert_eq!(a.len(), b.len());
}
