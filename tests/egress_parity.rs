//! TCP↔QUIC shaping parity: both transports run the same
//! `stack::egress::EgressPipeline`, so the same policy under the same
//! load must produce the same shaping-decision trace — identical
//! `reason` sequences and identical resegment/resize counts. Only the
//! `layer`/`event` labels may differ ("tcp"/"tso-pkts" vs
//! "quic"/"gso-pkts").

use netsim::telemetry::Tracer;
use netsim::{FlowId, Nanos};
use stack::egress::{EgressLabels, EgressPipeline};
use stack::shaper::{ShapeCtx, Shaper};
use stack::{Api, App, Cpu, CpuModel, HostConfig, Network, PathConfig, StackConfig, SERVER};

const SHAPER_REASONS: [&str; 3] = ["shaper-resegment", "shaper-resize", "shaper-delay"];

/// Shrink every full-size packet by 300 IP bytes; pass partial packets
/// through. Gating on `ctx.mss` keeps the post-shrink payload identical
/// across transports (the IP overhead difference cancels out).
struct ShrinkFull;
impl Shaper for ShrinkFull {
    fn packet_ip_size(&mut self, c: &ShapeCtx, _i: u32, p: u32) -> u32 {
        if p >= c.mss {
            p - 300
        } else {
            p
        }
    }
}

fn shaper_reasons(tracer: &Tracer, layer: &str) -> Vec<&'static str> {
    tracer
        .take()
        .into_events()
        .into_iter()
        .filter(|e| e.layer == layer && SHAPER_REASONS.contains(&e.reason))
        .map(|e| e.reason)
        .collect()
}

fn count(reasons: &[&str], which: &str) -> usize {
    reasons.iter().filter(|r| **r == which).count()
}

/// Drive the same byte load with the same policy through real TCP and
/// real QUIC connections and compare the wire-shaping traces.
#[test]
fn tcp_and_quic_emit_identical_shaper_traces_end_to_end() {
    // 4 post-shrink packets of 1050 B payload each. TCP mtu 1402 gives
    // mss 1350 = QUIC's default max_datagram, so both transports chunk
    // the stream identically.
    let total: u64 = 4 * 1050;

    struct Sender {
        quic: bool,
        total: u64,
    }
    impl App for Sender {
        fn on_start(&mut self, api: &mut Api) {
            if self.quic {
                api.connect_quic(StackConfig::default(), Some(Box::new(ShrinkFull)));
            } else {
                let cfg = StackConfig {
                    mtu_ip: 1402,
                    ..StackConfig::default()
                };
                api.connect_with(cfg, Some(Box::new(ShrinkFull)));
            }
        }
        fn on_connected(&mut self, api: &mut Api, flow: FlowId) {
            api.send(flow, self.total);
        }
    }

    let run = |quic: bool| -> Vec<&'static str> {
        let h = HostConfig {
            cpu: CpuModel::infinitely_fast(),
            ..HostConfig::default()
        };
        let mut net = Network::new(
            h.clone(),
            h,
            PathConfig::internet(100, 20),
            Box::new(Sender { quic, total }),
            Box::new(stack::apps::Sink::default()),
            77,
        );
        let tracer = Tracer::new(100_000);
        net.set_tracer(tracer.clone());
        net.run_until(Nanos::from_secs(10));
        assert_eq!(
            net.flow_stats(SERVER, FlowId(1)).unwrap().bytes_delivered,
            total,
            "transfer incomplete (quic={quic})"
        );
        shaper_reasons(&tracer, if quic { "quic" } else { "tcp" })
    };

    let tcp = run(false);
    let quic = run(true);

    // Three full packets shrink, the fourth (already sub-mss) passes.
    assert_eq!(tcp, vec!["shaper-resize"; 3], "unexpected TCP trace");
    assert_eq!(tcp, quic, "TCP and QUIC shaping traces diverge");
    assert_eq!(
        count(&tcp, "shaper-resize"),
        count(&quic, "shaper-resize"),
        "resize counts diverge"
    );
    assert_eq!(
        count(&tcp, "shaper-resegment"),
        count(&quic, "shaper-resegment"),
        "resegment counts diverge"
    );
}

/// Exercise all three hooks (resegment, resize, delay) against the bare
/// pipelines with identical inputs: the full reason sequence must match
/// element for element; only the labels differ.
#[test]
fn pipelines_with_identical_inputs_match_across_all_hooks() {
    struct Policy;
    impl Shaper for Policy {
        fn tso_segment_pkts(&mut self, _c: &ShapeCtx, p: u32) -> u32 {
            p.min(2)
        }
        fn packet_ip_size(&mut self, _c: &ShapeCtx, _i: u32, p: u32) -> u32 {
            p.saturating_sub(100)
        }
        fn extra_delay(&mut self, _c: &ShapeCtx) -> Nanos {
            Nanos::from_micros(250)
        }
    }

    let drive = |labels: EgressLabels| -> (Vec<&'static str>, Vec<&'static str>) {
        let mut pipe = EgressPipeline::new(labels);
        pipe.set_shaper(Box::new(Policy));
        let tracer = Tracer::new(1024);
        pipe.set_tracer(tracer.clone());
        let mut cpu = Cpu::new(CpuModel::infinitely_fast());
        let mut now = Nanos::ZERO;
        for round in 0..3u64 {
            let ctx = ShapeCtx {
                flow: FlowId(7),
                now,
                cwnd: 64 * 1300,
                pacing_rate_bps: Some(1_000_000_000),
                in_slow_start: false,
                bytes_sent: round * 2600,
                pkts_sent: round * 2,
                segs_sent: round,
                mtu_ip: 1360,
                mss: 1300,
            };
            let n = pipe.segment_pkts(&ctx, 16);
            assert_eq!(n, 2);
            let mut wire = 0u64;
            for i in 0..n {
                let ip = pipe.packet_ip_size(&ctx, i, 1360, 588, 1360);
                assert_eq!(ip, 1260);
                wire += u64::from(ip) + 14;
            }
            let paced = pipe.pace_segment(&ctx, now, &mut cpu, 2600, n, wire, true);
            assert!(paced.shaped);
            now = paced.eligible;
        }
        let evs: Vec<_> = tracer.take().into_events();
        let reasons = evs.iter().map(|e| e.reason).collect();
        let events = evs.iter().map(|e| e.event).collect();
        (reasons, events)
    };

    let (tcp_reasons, tcp_events) = drive(EgressLabels::TCP);
    let (quic_reasons, quic_events) = drive(EgressLabels::QUIC);

    assert_eq!(tcp_reasons, quic_reasons, "reason sequences diverge");
    let per_round = [
        "shaper-resegment",
        "shaper-resize",
        "shaper-resize",
        "shaper-delay",
    ];
    assert_eq!(tcp_reasons, per_round.repeat(3), "unexpected stage order");
    assert_eq!(count(&tcp_reasons, "shaper-resegment"), 3);
    assert_eq!(count(&tcp_reasons, "shaper-resize"), 6);
    // Only the per-transport resegment labels differ.
    for (i, (t, q)) in tcp_events.iter().zip(quic_events.iter()).enumerate() {
        if tcp_reasons[i] == "shaper-resegment" {
            assert_eq!((*t, *q), ("tso-pkts", "gso-pkts"));
        } else {
            assert_eq!(t, q, "event label diverges at {i}");
        }
    }
}
