//! End-to-end checks for the defenses-as-data runtime: seeded random
//! machine sweeps through both placement backends (never breaching the
//! §4.2 clamp, never panicking), placement invariance for padding-only
//! specs, the sockopt hot-swap path, and an operator-pushed JSON machine
//! running through `stob::fleet` bit-identically at 1 vs 4 threads with
//! the fleet auditor clean.

use defenses::front::FrontConfig;
use defenses::machines::{
    constant_machine, front_machine, scrambler_machine, ConstantConfig, ScramblerConfig,
};
use netsim::json::Json;
use netsim::{par, Direction, Nanos, SimRng};
use stob::defense::{emulate_flow, enforce_flow, DefenseCtx, FlowPkt, Placement, StackParams};
use stob::machine::{
    Action, DistSpec, Machine, MachineDefense, MachineEvent, MachineSpec, State, Target, Transition,
};
use stob::registry::{PolicyKey, PolicyRegistry};
use stob::sockopt::publish_machine_json;
use stob::{run_fleet, FleetConfig, FleetReport};

const SWEEP_CASES: u64 = 120;

fn arb_flow(rng: &mut SimRng) -> Vec<FlowPkt> {
    let n = rng.range_usize(1, 60);
    let mut pkts: Vec<FlowPkt> = (0..n)
        .map(|_| FlowPkt {
            ts: Nanos(rng.next_below(2_000_000_000)),
            dir: if rng.chance(0.5) {
                Direction::Out
            } else {
                Direction::In
            },
            size: rng.range_u64(66, 1514) as u32,
        })
        .collect();
    pkts.sort_by_key(|p| (p.ts, p.size));
    let t0 = pkts[0].ts;
    for p in &mut pkts {
        p.ts -= t0;
    }
    pkts
}

/// A random bounded distribution whose draws stay small (timings under
/// ~1 s) so sweeps terminate quickly.
fn arb_dist(rng: &mut SimRng) -> DistSpec {
    match rng.range_usize(0, 6) {
        0 => DistSpec::Fixed {
            v: rng.range_f64(0.0, 0.05),
        },
        1 => {
            let lo = rng.range_f64(0.0, 0.02);
            DistSpec::Uniform {
                lo,
                hi: lo + rng.range_f64(0.0, 0.05),
            }
        }
        2 => DistSpec::Normal {
            mean: rng.range_f64(0.0, 0.02),
            std: rng.range_f64(0.0, 0.01),
        },
        3 => DistSpec::LogNormal {
            mu: rng.range_f64(-9.0, -3.0),
            sigma: rng.range_f64(0.0, 1.0),
        },
        4 => DistSpec::Pareto {
            scale: rng.range_f64(0.0001, 0.01),
            shape: rng.range_f64(1.0, 4.0),
        },
        5 => DistSpec::Geometric {
            p: rng.range_f64(0.05, 1.0),
        },
        _ => {
            let w_min = rng.range_f64(0.0, 0.5);
            DistSpec::Rayleigh {
                w_min,
                w_max: w_min + rng.range_f64(0.0, 1.0),
            }
        }
    }
}

/// A random valid padding-only machine spec with every state's action
/// limited, so schedules are bounded by construction *and* by the
/// global caps.
fn arb_spec(i: u64, rng: &mut SimRng) -> MachineSpec {
    let n_machines = rng.range_usize(1, 3);
    let machines = (0..n_machines)
        .map(|_| {
            let n_states = rng.range_usize(1, 4);
            let states = (0..n_states)
                .map(|_| {
                    let action = match rng.range_usize(0, 3) {
                        0 => Action::Nop,
                        1 => Action::Pad {
                            dir: if rng.chance(0.5) {
                                Direction::Out
                            } else {
                                Direction::In
                            },
                            size: arb_dist(rng),
                            timing: arb_dist(rng),
                            absolute: rng.chance(0.3),
                        },
                        2 => Action::Timer {
                            timing: arb_dist(rng),
                        },
                        _ => Action::Block {
                            timing: arb_dist(rng),
                            duration: arb_dist(rng),
                        },
                    };
                    let chosen: Vec<MachineEvent> = MachineEvent::ALL
                        .into_iter()
                        .filter(|_| rng.chance(0.5))
                        .collect();
                    let transitions = chosen
                        .into_iter()
                        .map(|ev| {
                            let t = if rng.chance(0.25) {
                                Target::End
                            } else {
                                Target::State(rng.range_usize(0, n_states - 1) as u32)
                            };
                            Transition {
                                on: ev,
                                to: vec![(t, rng.range_f64(0.0, 1.0))],
                            }
                        })
                        .collect();
                    State {
                        action,
                        limit: Some(DistSpec::Uniform {
                            lo: 0.0,
                            hi: rng.range_u64(1, 20) as f64,
                        }),
                        transitions,
                    }
                })
                .collect();
            Machine { states }
        })
        .collect();
    let mut spec =
        MachineSpec::padding_only(&format!("sweep-{i}"), machines, rng.range_u64(0, 300));
    spec.max_blocking = Nanos(rng.range_u64(0, 200_000_000));
    spec
}

/// Satellite: N random bounded specs enforced through the egress
/// pipeline. Padding-only machines have no authority over real packets,
/// so §4.2 holds structurally: every real packet survives unmoved and
/// unshrunk, output stays time-sorted, dummy accounting is exact, and
/// the global padding cap is respected. Nothing panics.
#[test]
fn seeded_sweep_of_random_machines_is_safe_under_enforcement() {
    for case in 0..SWEEP_CASES {
        let mut rng = SimRng::new(0x5AFE).fork(case + 1);
        let spec = arb_spec(case, &mut rng);
        spec.validate()
            .unwrap_or_else(|e| panic!("case {case}: generator emitted invalid spec: {e}"));
        let cap = spec.max_padding_pkts as usize;
        let d = MachineDefense::new(spec);
        let input = arb_flow(&mut rng);
        let out = enforce_flow(
            &d,
            &input,
            &DefenseCtx::default(),
            &mut rng,
            &StackParams::with_seed(0x5AFE ^ case),
        );
        assert_eq!(
            out.pkts.len(),
            input.len() + out.dummy_pkts,
            "case {case}: padding-only machines must not add or drop real packets"
        );
        assert!(out.dummy_pkts <= cap, "case {case}: global cap breached");
        // §4.2: real packets are untouched — removing the machine's
        // dummies from the output recovers the input multiset exactly.
        let mut remaining = input.clone();
        let mut dummies = 0usize;
        for p in &out.pkts {
            if let Some(ix) = remaining.iter().position(|q| q == p) {
                remaining.swap_remove(ix);
            } else {
                dummies += 1;
            }
        }
        assert!(
            remaining.is_empty(),
            "case {case}: a real packet was moved, resized, or dropped"
        );
        assert_eq!(dummies, out.dummy_pkts, "case {case}: dummy accounting");
        assert!(
            out.pkts.windows(2).all(|w| w[0].ts <= w[1].ts),
            "case {case}: output not time-sorted"
        );
    }
}

/// Padding-only machine specs are placement-invariant: the identical
/// schedule at the app layer and lowered under the stack clamp.
#[test]
fn random_machines_are_placement_invariant() {
    for case in 0..SWEEP_CASES {
        let mut rng = SimRng::new(0x9A17).fork(case + 1);
        let spec = arb_spec(case, &mut rng);
        let d = MachineDefense::new(spec);
        let input = arb_flow(&mut rng);
        let mut r1 = SimRng::new(case ^ 7);
        let mut r2 = SimRng::new(case ^ 7);
        let app = emulate_flow(&d, &input, &DefenseCtx::default(), &mut r1);
        let stk = enforce_flow(
            &d,
            &input,
            &DefenseCtx::default(),
            &mut r2,
            &StackParams::with_seed(case),
        );
        assert_eq!(app.pkts, stk.pkts, "case {case}");
        assert_eq!(app.dummy_pkts, stk.dummy_pkts, "case {case}");
    }
}

/// The acceptance-criteria path end to end: a machine shipped as JSON
/// text through the sockopt control plane, resolved from the registry,
/// run through both backends — then hot-swapped at runtime without
/// rebinding consumers.
#[test]
fn json_machine_loads_via_sockopt_runs_both_backends_and_hot_swaps() {
    let reg = PolicyRegistry::new();
    let text = front_machine(&FrontConfig {
        n_client: 10,
        n_server: 20,
        ..FrontConfig::default()
    })
    .to_json()
    .to_string_pretty();
    let name = publish_machine_json(&reg, PolicyKey::Destination(7), &text, Placement::App)
        .expect("valid");
    assert_eq!(name, "mFRONT");

    let binding = reg.resolve_defense(3, 7).expect("machine resolves");
    assert_eq!(binding.defense.name(), "mFRONT");
    assert_eq!(binding.placement, Placement::App);
    let input = arb_flow(&mut SimRng::new(42));
    let mut r1 = SimRng::new(5);
    let mut r2 = SimRng::new(5);
    let app = emulate_flow(
        binding.defense.as_ref(),
        &input,
        &DefenseCtx::default(),
        &mut r1,
    );
    let stk = enforce_flow(
        binding.defense.as_ref(),
        &input,
        &DefenseCtx::default(),
        &mut r2,
        &StackParams::with_seed(5),
    );
    assert!(app.dummy_pkts > 0);
    assert_eq!(app.pkts, stk.pkts, "padding-only: both backends agree");

    // Hot swap: republishing under the same key replaces the machine
    // for every subsequent resolution — no rebuild, no rebind.
    let v0 = reg.version();
    let text2 = constant_machine(&ConstantConfig::default())
        .to_json()
        .to_string_compact();
    publish_machine_json(&reg, PolicyKey::Destination(7), &text2, Placement::Stack)
        .expect("valid swap");
    assert!(reg.version() > v0);
    let swapped = reg.resolve_defense(3, 7).expect("still bound");
    assert_eq!(swapped.defense.name(), "mConstant");
    assert_eq!(swapped.placement, Placement::Stack);
}

fn fleet_cfg() -> FleetConfig {
    FleetConfig {
        seed: 0xF1EE7,
        flows: 600,
        shards: 16,
        sites: 8,
        pkts_per_flow: (5, 12),
        gap_ns: (10_000, 200_000),
        window: Nanos::from_millis(1),
    }
}

fn fleet_checks(r: &FleetReport) -> (u64, u64, u64, u64, u64) {
    (
        r.flows,
        r.egress_pkts,
        r.egress_bytes,
        r.dummy_pkts,
        r.checksum,
    )
}

/// Satellite + acceptance: an operator-pushed JSON machine resolves in
/// `stob::fleet`, pads, passes the fleet auditor, and the deterministic
/// checks are bit-identical at 1 vs 4 threads.
#[test]
fn fleet_runs_an_operator_pushed_machine_deterministically() {
    let reg = PolicyRegistry::new();
    let text = scrambler_machine(&ScramblerConfig {
        max_padding_pkts: 50,
        ..ScramblerConfig::default()
    })
    .to_json()
    .to_string_pretty();
    publish_machine_json(&reg, PolicyKey::Default, &text, Placement::Stack).expect("valid");
    // And a second machine scoped to one destination, exercising
    // precedence under fleet resolution.
    let front = front_machine(&FrontConfig {
        n_client: 3,
        n_server: 6,
        w_min: 0.2,
        w_max: 0.8,
        dummy_size: 1514,
    });
    reg.bind_machine(PolicyKey::Destination(2), front, Placement::Stack)
        .expect("valid");

    let cfg = fleet_cfg();
    par::set_threads(1);
    let reference = run_fleet(&cfg, &reg);
    assert!(reference.clean(), "{:?}", reference.audit.violations);
    assert_eq!(reference.flows, cfg.flows);
    assert!(
        reference.dummy_pkts > 0,
        "machines must inject padding at fleet scale"
    );
    par::set_threads(4);
    let r4 = run_fleet(&cfg, &reg);
    assert_eq!(fleet_checks(&r4), fleet_checks(&reference), "threads=4");
    par::set_threads(0);
}

/// Random machines swept through the fleet engine: auditor always clean
/// (machine padding cannot violate §4.2 — only real pieces are audited,
/// and machines never touch them).
#[test]
fn random_machines_keep_the_fleet_auditor_clean() {
    for case in 0..8u64 {
        let mut rng = SimRng::new(0xF1E7).fork(case + 1);
        let spec = arb_spec(case, &mut rng);
        let reg = PolicyRegistry::new();
        reg.bind_machine(PolicyKey::Default, spec, Placement::Stack)
            .expect("valid");
        let cfg = FleetConfig {
            flows: 200,
            ..fleet_cfg()
        };
        let r = run_fleet(&cfg, &reg);
        assert!(r.clean(), "case {case}: {:?}", r.audit.violations);
        assert_eq!(r.flows, cfg.flows, "case {case}");
    }
}

/// The machine wire form itself is deterministic: generate → serialize →
/// decode → re-serialize is a fixed point (what the golden-refresh
/// pipeline relies on).
#[test]
fn wire_form_is_a_fixed_point() {
    for spec in [
        front_machine(&FrontConfig::default()),
        constant_machine(&ConstantConfig::default()),
        scrambler_machine(&ScramblerConfig::default()),
    ] {
        let t1 = spec.to_json().to_string_compact();
        let back = MachineSpec::from_json(&Json::parse(&t1).expect("parse")).expect("decode");
        let t2 = back.to_json().to_string_compact();
        assert_eq!(t1, t2);
    }
}
