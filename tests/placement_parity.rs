//! The tentpole invariant of the placement-agnostic defense layer: one
//! defense spec, two backends, the same on-wire schedule.
//!
//! The §3 countermeasures are run over real statistically-generated
//! traces, once through app-layer emulation (`emulate_trace`, the
//! paper's methodology) and once lowered into the in-stack shaper and
//! replayed through the egress pipeline (`enforce_trace`). Sizes and
//! directions must agree exactly; timestamps must agree to pacing
//! granularity — the stack recovers each packet's nominal gap from a
//! pacing *rate* (an integer, bits/sec), so a sub-nanosecond-per-packet
//! rounding error accumulates into at most ~1e-4 of the elapsed time.

use defenses::emulate::{CounterMeasure, EmulateConfig, Section3Defense};
use defenses::overhead::Defended;
use defenses::{emulate_trace, enforce_trace};
use netsim::{Nanos, SimRng};
use stob::defense::{DefenseCtx, StackParams};
use traces::sites::paper_sites;
use traces::statgen::generate;
use traces::Trace;

/// Timing agreement bound: absolute floor of 1 µs, relative bound of
/// 1e-4 of the timestamp itself (rate-quantization drift is
/// proportional to elapsed time).
fn within_tolerance(a: Nanos, b: Nanos) -> bool {
    let dev = a.max(b) - a.min(b);
    let bound = Nanos(1_000).max(Nanos((a.max(b).0 as f64 * 1e-4) as u64));
    dev <= bound
}

fn corpus() -> Vec<Trace> {
    paper_sites()
        .iter()
        .enumerate()
        .flat_map(|(label, site)| (0..2).map(move |visit| generate(site, label, visit, 0xC0FFEE)))
        .collect()
}

fn run_both(cm: CounterMeasure, first_n: usize, t: &Trace, seed: u64) -> (Defended, Defended) {
    let em = EmulateConfig {
        first_n,
        ..EmulateConfig::default()
    };
    let d = Section3Defense::new(cm, em);
    let ctx = DefenseCtx::default();
    // Aligned randomness: the app backend draws from the caller's rng,
    // the stack backend from the shaper built with (seed, flow_salt=0) —
    // the same stream, so the sampled delay fractions are identical and
    // only rate quantization separates the schedules.
    let app = emulate_trace(&d, t, &ctx, &mut SimRng::new(seed));
    let stk = enforce_trace(
        &d,
        t,
        &ctx,
        &mut SimRng::new(seed),
        &StackParams::with_seed(seed),
    );
    (app, stk)
}

fn assert_parity(cm: CounterMeasure, first_n: usize) {
    for (ti, t) in corpus().iter().enumerate() {
        let seed = 0xAB5EED ^ (ti as u64 + 1);
        let (app, stk) = run_both(cm, first_n, t, seed);
        assert_eq!(
            app.trace.len(),
            stk.trace.len(),
            "{cm:?} first_n={first_n} trace {ti}: packet count diverged"
        );
        for (pi, (a, b)) in app.trace.packets.iter().zip(&stk.trace.packets).enumerate() {
            assert_eq!(
                (a.size, a.dir),
                (b.size, b.dir),
                "{cm:?} first_n={first_n} trace {ti} pkt {pi}: size/dir diverged"
            );
            assert!(
                within_tolerance(a.ts, b.ts),
                "{cm:?} first_n={first_n} trace {ti} pkt {pi}: \
                 app ts {} vs stack ts {} outside pacing tolerance",
                a.ts,
                b.ts
            );
        }
    }
}

#[test]
fn split_matches_across_placements_whole_flow() {
    assert_parity(CounterMeasure::Split, 0);
}

#[test]
fn split_matches_across_placements_first_30() {
    assert_parity(CounterMeasure::Split, 30);
}

#[test]
fn delayed_matches_across_placements_whole_flow() {
    assert_parity(CounterMeasure::Delayed, 0);
}

#[test]
fn delayed_matches_across_placements_first_30() {
    assert_parity(CounterMeasure::Delayed, 30);
}

#[test]
fn combined_matches_across_placements_whole_flow() {
    assert_parity(CounterMeasure::Combined, 0);
}

#[test]
fn combined_matches_across_placements_first_30() {
    assert_parity(CounterMeasure::Combined, 30);
}

#[test]
fn split_only_is_bit_exact_across_placements() {
    // Without a delay spec the replay path never paces, so the two
    // backends must agree exactly, not just within tolerance.
    for (ti, t) in corpus().iter().enumerate() {
        let (app, stk) = run_both(CounterMeasure::Split, 0, t, 7 + ti as u64);
        assert_eq!(
            app.trace, stk.trace,
            "split-only schedules must be identical (trace {ti})"
        );
    }
}

#[test]
fn original_is_bit_exact_across_placements() {
    for (ti, t) in corpus().iter().enumerate() {
        let (app, stk) = run_both(CounterMeasure::Original, 0, t, 99);
        assert_eq!(app.trace, stk.trace, "passthrough diverged (trace {ti})");
        assert_eq!(app.trace, *t, "passthrough must not alter the trace");
    }
}
