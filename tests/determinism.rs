//! The parallel driver's regression test: results must be bit-identical
//! at any thread count. `netsim::par`'s contract is that worker count
//! changes only *where* a work item runs, never *what* it computes —
//! every item derives its randomness by forking the root rng on its
//! stable index. This test sweeps thread counts over the three wired
//! hot paths (forest training, defense emulation, figure-3 fan-out) and
//! compares against the single-threaded result.
//!
//! Everything runs inside ONE test function: `par::set_threads` is a
//! process-wide override, so concurrent test functions would race on it.

use defenses::emulate::{apply_all, CounterMeasure, EmulateConfig};
use netsim::{par, Nanos, SimRng};
use stob::policy::DelaySpec;
use stob::{run_fleet, FleetConfig, FleetReport, ObfuscationPolicy, PolicyKey, PolicyRegistry};
use traces::sites::paper_sites;
use traces::statgen::generate_corpus;
use wf::features::{extract_all, FeatureConfig};
use wf::forest::{Forest, ForestConfig};

/// Fleet workload for the sweep: small enough to run at every thread
/// count, defended (delay jitter) so the egress pipeline is live.
fn fleet_cfg() -> FleetConfig {
    FleetConfig {
        seed: 0xF2EE7,
        flows: 2_000,
        shards: 16,
        sites: 16,
        pkts_per_flow: (6, 12),
        gap_ns: (10_000, 150_000),
        window: Nanos::from_millis(1),
    }
}

fn fleet_registry() -> PolicyRegistry {
    let reg = PolicyRegistry::new();
    let mut p = ObfuscationPolicy::passthrough("determinism-fleet");
    p.delay = DelaySpec::UniformFraction {
        lo_frac: 0.05,
        hi_frac: 0.20,
    };
    reg.publish(PolicyKey::Default, p);
    reg
}

/// Every deterministic field of a fleet report (thread-count sweep
/// compares all of them; the shard sweep below drops the two that
/// legitimately depend on shard layout).
#[allow(clippy::type_complexity)]
fn fleet_snapshot(r: &FleetReport) -> (u64, u64, u64, u64, u64, u64, u64, u64, u64, u64, u64) {
    (
        r.flows,
        r.egress_pkts,
        r.egress_bytes,
        r.dummy_pkts,
        r.dummy_bytes,
        r.peak_resident,
        r.sim_end.as_nanos(),
        r.checksum,
        r.events,
        r.arena_high_water,
        r.audit.checks,
    )
}

#[test]
fn thread_count_never_changes_results() {
    let sites: Vec<_> = paper_sites().into_iter().take(4).collect();
    let corpus = generate_corpus(&sites, 8, 7);
    let x = extract_all(&corpus, &FeatureConfig::paper());
    let y: Vec<usize> = corpus.iter().map(|t| t.label).collect();
    let fcfg = ForestConfig {
        n_trees: 24,
        ..ForestConfig::default()
    };
    let em = EmulateConfig::default();
    let root = SimRng::new(0xDE7);

    // Reference: everything single-threaded. Telemetry metrics are part
    // of the contract too: counters/gauges/histograms aggregate
    // sim-domain integers order-independently, so the rendered snapshot
    // must be byte-identical at every thread count. The registry is
    // built once, before the reference reset, so its publish counter
    // stays out of every compared snapshot.
    let fleet_reg = fleet_registry();
    par::set_threads(1);
    netsim::telemetry::reset();
    let forest_1 = Forest::fit(&x, &y, 4, &fcfg, &mut SimRng::new(11));
    let preds_1 = forest_1.predict_batch(&x);
    let leaves_1: Vec<Vec<u32>> = x.iter().map(|s| forest_1.leaf_vector(s)).collect();
    let defended_1 = apply_all(CounterMeasure::Combined, &corpus, &em, &root);
    let fig3_1 = stob_bench::run_figure3(&[0, 20, 40], Nanos::from_millis(2), 1);
    let (_, events_1) = stob_bench::run_figure3_traced(&[0, 20], Nanos::from_millis(2), 1, 4096);
    let fleet_1 = run_fleet(&fleet_cfg(), &fleet_reg);
    assert!(fleet_1.clean(), "{:?}", fleet_1.audit.violations);
    let metrics_1 = netsim::telemetry::metrics_json().to_string_pretty();

    for threads in [2usize, 4, 8] {
        par::set_threads(threads);
        netsim::telemetry::reset();
        let forest_n = Forest::fit(&x, &y, 4, &fcfg, &mut SimRng::new(11));
        let preds_n = forest_n.predict_batch(&x);
        assert_eq!(preds_1, preds_n, "forest predictions at {threads} threads");
        for (i, s) in x.iter().enumerate() {
            assert_eq!(
                leaves_1[i],
                forest_n.leaf_vector(s),
                "leaf vector {i} at {threads} threads"
            );
        }
        let defended_n = apply_all(CounterMeasure::Combined, &corpus, &em, &root);
        assert_eq!(
            defended_1.len(),
            defended_n.len(),
            "corpus size at {threads} threads"
        );
        for (a, b) in defended_1.iter().zip(&defended_n) {
            assert_eq!(a.trace, b.trace, "emulated trace at {threads} threads");
        }
        let fig3_n = stob_bench::run_figure3(&[0, 20, 40], Nanos::from_millis(2), 1);
        for (a, b) in fig3_1.iter().zip(&fig3_n) {
            assert_eq!(a.alpha, b.alpha);
            assert_eq!(
                a.goodput_gbps.to_bits(),
                b.goodput_gbps.to_bits(),
                "figure3 goodput at {threads} threads"
            );
        }
        let (_, events_n) =
            stob_bench::run_figure3_traced(&[0, 20], Nanos::from_millis(2), 1, 4096);
        assert_eq!(events_1, events_n, "flow-trace events at {threads} threads");
        let fleet_n = run_fleet(&fleet_cfg(), &fleet_reg);
        assert_eq!(
            fleet_snapshot(&fleet_1),
            fleet_snapshot(&fleet_n),
            "fleet report at {threads} threads"
        );
        let metrics_n = netsim::telemetry::metrics_json().to_string_pretty();
        assert_eq!(
            metrics_1, metrics_n,
            "metrics snapshot at {threads} threads"
        );
    }

    // Shard count is a perf-only knob: everything but the per-shard
    // arena high-water (and the shard-local wheel/pool telemetry, not
    // compared here) must match the 16-shard reference exactly.
    par::set_threads(1);
    for shards in [1u64, 5, 64, 2_000] {
        let cfg = FleetConfig {
            shards,
            ..fleet_cfg()
        };
        let r = run_fleet(&cfg, &fleet_reg);
        let (a, b) = (fleet_snapshot(&fleet_1), fleet_snapshot(&r));
        assert_eq!(
            (a.0, a.1, a.2, a.3, a.4, a.5, a.6, a.7, a.8, a.10),
            (b.0, b.1, b.2, b.3, b.4, b.5, b.6, b.7, b.8, b.10),
            "fleet report at {shards} shards"
        );
    }
    par::set_threads(0); // restore automatic resolution for other tests
    netsim::telemetry::reset(); // leave a clean slate for other binaries
}

/// The packet-pool safety contract at the integration level: recycling
/// a pooled buffer or arena slot must never let a stale handle observe
/// (alias) a later allocation's contents.
#[test]
fn pool_recycling_never_aliases_live_packets() {
    use netsim::{Arena, VecPool};

    // Arena: take a slot, keep the dead handle, reallocate into the
    // same physical slot — the dead handle must see nothing.
    let mut arena: Arena<(u64, u32)> = Arena::new();
    let a = arena.alloc((7, 700));
    let b = arena.alloc((8, 800));
    let dead = a;
    assert_eq!(arena.take(a), Some((7, 700)));
    let c = arena.alloc((9, 900)); // LIFO free list: reuses a's slot
    assert_eq!(c.index(), dead.index(), "slot was recycled");
    assert_ne!(c.generation(), dead.generation(), "generation advanced");
    assert_eq!(arena.get(dead), None, "stale handle must not alias");
    assert_eq!(arena.take(dead), None, "stale take must not steal");
    assert_eq!(arena.get(c), Some(&(9, 900)), "live value intact");
    assert_eq!(arena.get(b), Some(&(8, 800)));

    // VecPool: a recycled buffer keeps its capacity but never its
    // contents, so a reused payload cannot leak into the next flow.
    let mut pool: VecPool<u64> = VecPool::new();
    let mut buf = pool.take();
    buf.extend([1, 2, 3, 4]);
    let cap = buf.capacity();
    pool.put(buf);
    let reused = pool.take();
    assert!(reused.is_empty(), "recycled buffer must come back empty");
    assert!(reused.capacity() >= cap, "capacity is what gets recycled");
}
