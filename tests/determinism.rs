//! The parallel driver's regression test: results must be bit-identical
//! at any thread count. `netsim::par`'s contract is that worker count
//! changes only *where* a work item runs, never *what* it computes —
//! every item derives its randomness by forking the root rng on its
//! stable index. This test sweeps thread counts over the three wired
//! hot paths (forest training, defense emulation, figure-3 fan-out) and
//! compares against the single-threaded result.
//!
//! Everything runs inside ONE test function: `par::set_threads` is a
//! process-wide override, so concurrent test functions would race on it.

use defenses::emulate::{apply_all, CounterMeasure, EmulateConfig};
use netsim::{par, Nanos, SimRng};
use traces::sites::paper_sites;
use traces::statgen::generate_corpus;
use wf::features::{extract_all, FeatureConfig};
use wf::forest::{Forest, ForestConfig};

#[test]
fn thread_count_never_changes_results() {
    let sites: Vec<_> = paper_sites().into_iter().take(4).collect();
    let corpus = generate_corpus(&sites, 8, 7);
    let x = extract_all(&corpus, &FeatureConfig::paper());
    let y: Vec<usize> = corpus.iter().map(|t| t.label).collect();
    let fcfg = ForestConfig {
        n_trees: 24,
        ..ForestConfig::default()
    };
    let em = EmulateConfig::default();
    let root = SimRng::new(0xDE7);

    // Reference: everything single-threaded. Telemetry metrics are part
    // of the contract too: counters/gauges/histograms aggregate
    // sim-domain integers order-independently, so the rendered snapshot
    // must be byte-identical at every thread count.
    par::set_threads(1);
    netsim::telemetry::reset();
    let forest_1 = Forest::fit(&x, &y, 4, &fcfg, &mut SimRng::new(11));
    let preds_1 = forest_1.predict_batch(&x);
    let leaves_1: Vec<Vec<u32>> = x.iter().map(|s| forest_1.leaf_vector(s)).collect();
    let defended_1 = apply_all(CounterMeasure::Combined, &corpus, &em, &root);
    let fig3_1 = stob_bench::run_figure3(&[0, 20, 40], Nanos::from_millis(2), 1);
    let (_, events_1) = stob_bench::run_figure3_traced(&[0, 20], Nanos::from_millis(2), 1, 4096);
    let metrics_1 = netsim::telemetry::metrics_json().to_string_pretty();

    for threads in [2usize, 4, 8] {
        par::set_threads(threads);
        netsim::telemetry::reset();
        let forest_n = Forest::fit(&x, &y, 4, &fcfg, &mut SimRng::new(11));
        let preds_n = forest_n.predict_batch(&x);
        assert_eq!(preds_1, preds_n, "forest predictions at {threads} threads");
        for (i, s) in x.iter().enumerate() {
            assert_eq!(
                leaves_1[i],
                forest_n.leaf_vector(s),
                "leaf vector {i} at {threads} threads"
            );
        }
        let defended_n = apply_all(CounterMeasure::Combined, &corpus, &em, &root);
        assert_eq!(
            defended_1.len(),
            defended_n.len(),
            "corpus size at {threads} threads"
        );
        for (a, b) in defended_1.iter().zip(&defended_n) {
            assert_eq!(a.trace, b.trace, "emulated trace at {threads} threads");
        }
        let fig3_n = stob_bench::run_figure3(&[0, 20, 40], Nanos::from_millis(2), 1);
        for (a, b) in fig3_1.iter().zip(&fig3_n) {
            assert_eq!(a.alpha, b.alpha);
            assert_eq!(
                a.goodput_gbps.to_bits(),
                b.goodput_gbps.to_bits(),
                "figure3 goodput at {threads} threads"
            );
        }
        let (_, events_n) =
            stob_bench::run_figure3_traced(&[0, 20], Nanos::from_millis(2), 1, 4096);
        assert_eq!(events_1, events_n, "flow-trace events at {threads} threads");
        let metrics_n = netsim::telemetry::metrics_json().to_string_pretty();
        assert_eq!(
            metrics_1, metrics_n,
            "metrics snapshot at {threads} threads"
        );
    }
    par::set_threads(0); // restore automatic resolution for other tests
    netsim::telemetry::reset(); // leave a clean slate for other binaries
}
