//! Property tests for the policy JSON codec: every representable
//! [`ObfuscationPolicy`] must survive `from_json(to_json(p)) == p`
//! through the *textual* form (the registry's export format), and
//! malformed inputs must fail loudly instead of decaying into a
//! different policy.

use netsim::json::Json;
use netsim::{Histogram, Nanos, SimRng};
use stob::policy::{DelaySpec, ObfuscationPolicy, SizeSpec, TsoSpec};

fn rand_histogram(rng: &mut SimRng) -> Histogram {
    // Integer bounds: bin edges then hold exact f64 values, so the
    // round-trip equality below tests the codec, not float printing.
    let lo = rng.range_u64(0, 100) as f64;
    let hi = lo + rng.range_u64(1, 2000) as f64;
    let mut h = Histogram::new(lo, hi, rng.range_usize(1, 8));
    for _ in 0..rng.range_usize(1, 40) {
        h.push(rng.range_f64(lo, hi));
    }
    h
}

fn rand_size(rng: &mut SimRng) -> SizeSpec {
    match rng.range_usize(0, 4) {
        0 => SizeSpec::Unchanged,
        1 => SizeSpec::SplitAbove {
            threshold: rng.range_u64(1, 1500) as u32,
        },
        2 => SizeSpec::IncrementalReduce {
            step: rng.range_u64(0, 100) as u32,
            steps: rng.range_u64(1, 20) as u32,
        },
        3 => SizeSpec::FromHistogram(rand_histogram(rng)),
        _ => SizeSpec::Fixed {
            ip_size: rng.range_u64(1, 1500) as u32,
        },
    }
}

fn rand_delay(rng: &mut SimRng) -> DelaySpec {
    match rng.range_usize(0, 3) {
        0 => DelaySpec::Unchanged,
        1 => {
            let lo = rng.range_f64(0.0, 0.5);
            DelaySpec::UniformFraction {
                lo_frac: lo,
                hi_frac: lo + rng.range_f64(0.0, 0.5),
            }
        }
        2 => {
            let lo = rng.range_u64(0, 1_000_000);
            DelaySpec::UniformAbsolute {
                lo: Nanos(lo),
                hi: Nanos(lo + rng.range_u64(0, 1_000_000)),
            }
        }
        _ => DelaySpec::FromHistogramMicros(rand_histogram(rng)),
    }
}

fn rand_tso(rng: &mut SimRng) -> TsoSpec {
    match rng.range_usize(0, 2) {
        0 => TsoSpec::Unchanged,
        1 => TsoSpec::IncrementalReduce {
            step: rng.range_u64(0, 16) as u32,
            steps: rng.range_u64(1, 12) as u32,
        },
        _ => TsoSpec::Cap {
            pkts: rng.range_u64(1, 64) as u32,
        },
    }
}

fn rand_policy(i: usize, rng: &mut SimRng) -> ObfuscationPolicy {
    ObfuscationPolicy {
        name: format!("policy-{i}"),
        size: rand_size(rng),
        delay: rand_delay(rng),
        tso: rand_tso(rng),
        first_n_pkts: rng.range_u64(0, 100),
        respect_slow_start: rng.next_f64() < 0.5,
    }
}

#[test]
fn random_policies_round_trip_exactly() {
    let mut rng = SimRng::new(0x5EED_CAFE);
    for i in 0..200 {
        let p = rand_policy(i, &mut rng);
        let text = p.to_json().to_string_compact();
        let back = ObfuscationPolicy::from_json(&Json::parse(&text).expect("parse"))
            .unwrap_or_else(|e| panic!("policy {i} failed to deserialize: {e:?}\n{text}"));
        assert_eq!(back, p, "round-trip drifted for policy {i}:\n{text}");
    }
}

#[test]
fn stock_policies_round_trip_exactly() {
    for p in [
        ObfuscationPolicy::passthrough("none"),
        ObfuscationPolicy::split_and_delay("s3"),
        ObfuscationPolicy::incremental("fig3", 20),
    ] {
        let text = p.to_json().to_string_pretty();
        let back =
            ObfuscationPolicy::from_json(&Json::parse(&text).expect("parse")).expect("decode");
        assert_eq!(back, p);
    }
}

#[test]
fn unknown_variant_tags_are_rejected() {
    for (field, bad) in [
        ("size", r#"{"Bogus":{"threshold":1}}"#),
        ("delay", r#"{"Exponential":{"mean":0.1}}"#),
        ("tso", r#""Disabled""#),
    ] {
        let mut obj = std::collections::BTreeMap::from([
            ("name", r#""m""#.to_string()),
            ("size", r#""Unchanged""#.to_string()),
            ("delay", r#""Unchanged""#.to_string()),
            ("tso", r#""Unchanged""#.to_string()),
            ("first_n_pkts", "0".to_string()),
            ("respect_slow_start", "false".to_string()),
        ]);
        obj.insert(field, bad.to_string());
        let text = format!(
            "{{{}}}",
            obj.iter()
                .map(|(k, v)| format!("\"{k}\":{v}"))
                .collect::<Vec<_>>()
                .join(",")
        );
        let v = Json::parse(&text).expect("syntactically valid");
        assert!(
            ObfuscationPolicy::from_json(&v).is_err(),
            "unknown {field} variant must be rejected: {text}"
        );
    }
}

#[test]
fn missing_and_mistyped_fields_are_rejected() {
    let good = ObfuscationPolicy::split_and_delay("m").to_json();

    // Drop each required top-level field in turn.
    for field in [
        "name",
        "size",
        "delay",
        "tso",
        "first_n_pkts",
        "respect_slow_start",
    ] {
        let text = good.to_string_compact();
        // Rebuild without the field by decoding and re-encoding through
        // the generic Json value.
        let v = Json::parse(&text).expect("parse");
        let Json::Obj(entries) = v else {
            panic!("policy must encode as an object")
        };
        let pruned = Json::Obj(entries.into_iter().filter(|(k, _)| k != field).collect());
        assert!(
            ObfuscationPolicy::from_json(&pruned).is_err(),
            "missing `{field}` must be rejected"
        );
    }

    // Wrong scalar type.
    let v = Json::parse(
        r#"{"name":"m","size":"Unchanged","delay":"Unchanged","tso":"Unchanged",
            "first_n_pkts":"lots","respect_slow_start":false}"#,
    )
    .expect("parse");
    assert!(ObfuscationPolicy::from_json(&v).is_err());
}

#[test]
fn truncated_json_fails_to_parse() {
    let text = ObfuscationPolicy::split_and_delay("t")
        .to_json()
        .to_string_compact();
    for cut in [1, text.len() / 2, text.len() - 1] {
        assert!(
            Json::parse(&text[..cut]).is_err(),
            "truncation at {cut} must not parse"
        );
    }
}

#[test]
fn forged_histogram_mass_deserializes_but_fails_validation() {
    // The codec is shape-only; semantic checks live in validate(). A
    // histogram whose claimed total disagrees with its bins must be
    // caught before it can drive a sampler.
    let mut h = Histogram::new(0.0, 1500.0, 4);
    h.push(700.0);
    h.total = 9;
    let mut p = ObfuscationPolicy::passthrough("forged");
    p.size = SizeSpec::FromHistogram(h);
    let text = p.to_json().to_string_compact();
    let back = ObfuscationPolicy::from_json(&Json::parse(&text).expect("parse"))
        .expect("shape-valid JSON decodes");
    assert_eq!(back, p);
    assert!(back.validate().is_err(), "forged mass must fail validation");
}
