//! Integration of the Stob framework with the stack: the Figure 3
//! machinery, the §4.2 safety invariant under load, and the §5.1 phase
//! guard, all exercised through the full simulated network.

use netsim::{Direction, FlowId, Nanos, PacketKind};
use stack::apps::{BulkSender, Sink};
use stack::net::{Api, App, Network, SERVER};
use stack::{HostConfig, PathConfig, StackConfig};
use std::sync::Arc;
use stob::guard::CcaPhaseGuard;
use stob::safety::{SafetyAudit, SafetyCap};
use stob::strategies::{IncrementalReduce, SplitThreshold};

struct Shaped {
    inner: BulkSender,
    shaper: Option<Box<dyn stack::Shaper>>,
}

impl Shaped {
    fn new(total: Option<u64>, shaper: Box<dyn stack::Shaper>) -> Self {
        Shaped {
            inner: match total {
                Some(t) => BulkSender::new(t),
                None => BulkSender::endless(),
            },
            shaper: Some(shaper),
        }
    }
}

impl App for Shaped {
    fn on_start(&mut self, api: &mut Api) {
        let s = self.shaper.take();
        api.connect_with(StackConfig::default(), s);
    }
    fn on_connected(&mut self, api: &mut Api, flow: FlowId) {
        self.inner.on_connected(api, flow);
    }
    fn on_sendable(&mut self, api: &mut Api, flow: FlowId) {
        self.inner.on_sendable(api, flow);
    }
}

fn goodput_gbps(net: &mut Network, warmup: Nanos, window: Nanos) -> f64 {
    net.run_until(warmup);
    let base = net
        .flow_stats(SERVER, FlowId(1))
        .map(|s| s.bytes_delivered)
        .unwrap_or(0);
    net.run_until(warmup + window);
    let bytes = net
        .flow_stats(SERVER, FlowId(1))
        .map(|s| s.bytes_delivered)
        .unwrap_or(0)
        - base;
    bytes as f64 * 8.0 / window.as_secs_f64() / 1e9
}

fn lab_net(shaper: Box<dyn stack::Shaper>, seed: u64) -> Network {
    Network::new(
        HostConfig::default(),
        HostConfig::default(),
        PathConfig::lab_100g(),
        Box::new(Shaped::new(None, shaper)),
        Box::new(Sink::default()),
        seed,
    )
}

#[test]
fn figure3_throughput_decreases_with_alpha_and_keeps_the_floor() {
    let mut results = Vec::new();
    for alpha in [0u32, 20, 40] {
        let mut net = lab_net(
            Box::new(SafetyCap::new(IncrementalReduce::with_alpha(alpha))),
            3,
        );
        results.push(goodput_gbps(
            &mut net,
            Nanos::from_millis(30),
            Nanos::from_millis(30),
        ));
    }
    assert!(
        results[0] > results[1] && results[1] > results[2],
        "goodput must decrease with alpha: {results:?}"
    );
    assert!(results[0] > 30.0, "alpha=0 at {} Gb/s", results[0]);
    assert!(
        results[2] > 15.0,
        "alpha=40 collapsed to {} Gb/s (paper floor: 19.7)",
        results[2]
    );
}

#[test]
fn safety_audit_is_clean_for_shipped_strategies() {
    let cap = SafetyCap::new(IncrementalReduce::with_alpha(40));
    let audit: Arc<SafetyAudit> = cap.audit_handle();
    let mut net = lab_net(Box::new(cap), 5);
    net.run_until(Nanos::from_millis(50));
    let decisions = audit.decisions.load(std::sync::atomic::Ordering::Relaxed);
    assert!(decisions > 1000, "shaper barely exercised: {decisions}");
    assert_eq!(
        audit.total_clamped(),
        0,
        "shipped strategies must never trip the safety cap"
    );
}

#[test]
fn shaped_flow_never_violates_cwnd_or_mtu() {
    let mut net = lab_net(
        Box::new(SafetyCap::new(IncrementalReduce::with_alpha(32))),
        7,
    );
    net.run_until(Nanos::from_millis(40));
    // Every data packet on the wire respects the MTU.
    for r in &net.client_capture.records {
        if r.kind == PacketKind::TcpData {
            assert!(r.wire_len <= 1514, "packet {} B over MTU", r.wire_len);
        }
    }
    // The flow made real progress.
    let s = net.flow_stats(SERVER, FlowId(1)).expect("server conn");
    assert!(s.bytes_delivered > 10_000_000);
}

#[test]
fn delay_strategy_stretches_wire_gaps() {
    // Same transfer, with and without a delay policy. Note: delays much
    // smaller than the flow's natural pacing/queueing slack are absorbed
    // without slowing anything (timing manipulation is nearly free,
    // §2.3), so to get a deterministic effect the policy caps segments
    // at one packet and adds 1-3 ms per segment — an explicit rate
    // ceiling of ~1 MB/s.
    let total = 4_000_000;
    let run = |shaper: Option<Box<dyn stack::Shaper>>, seed| -> Nanos {
        let app: Box<dyn App> = match shaper {
            Some(s) => Box::new(Shaped::new(Some(total), s)),
            None => Box::new(BulkSender::new(total)),
        };
        let mut net = Network::new(
            HostConfig::default(),
            HostConfig::default(),
            PathConfig::internet(200, 10),
            app,
            Box::new(Sink::default()),
            seed,
        );
        net.run_to_idle();
        assert_eq!(
            net.flow_stats(SERVER, FlowId(1))
                .expect("conn")
                .bytes_delivered,
            total
        );
        net.client_capture.duration()
    };
    let plain = run(None, 11);
    let policy = stob::policy::ObfuscationPolicy {
        name: "slowride".into(),
        size: stob::policy::SizeSpec::Unchanged,
        delay: stob::policy::DelaySpec::UniformAbsolute {
            lo: Nanos::from_millis(1),
            hi: Nanos::from_millis(3),
        },
        tso: stob::policy::TsoSpec::Cap { pkts: 1 },
        first_n_pkts: 0,
        respect_slow_start: false,
    };
    let reg = stob::registry::PolicyRegistry::new();
    reg.publish(stob::registry::PolicyKey::Default, policy);
    let shaper = stob::sockopt::attach_policy(&reg, 1, 0, 3).expect("policy");
    let delayed = run(Some(Box::new(shaper)), 11);
    assert!(
        delayed > plain * 3,
        "delayed transfer ({delayed}) must be far slower than plain ({plain})"
    );
}

#[test]
fn cca_phase_guard_defers_shaping_past_slow_start() {
    // With the guard, the first packets (slow start) are full-sized;
    // after enough progress the splitter kicks in.
    let guarded = CcaPhaseGuard::new(SplitThreshold::new(1200));
    let mut net = lab_net(Box::new(guarded), 13);
    net.run_until(Nanos::from_millis(60));
    let data: Vec<_> = net
        .client_capture
        .records
        .iter()
        .filter(|r| r.kind == PacketKind::TcpData && r.dir == Direction::Out)
        .collect();
    assert!(data.len() > 100);
    let first_full = data.iter().take(20).filter(|r| r.wire_len > 1400).count();
    assert!(
        first_full >= 15,
        "slow-start packets should be unshapen: {first_full}/20 full-sized"
    );
    // CUBIC exits slow start on queue loss or stays CPU-bound; at least
    // verify the guard passes decisions through once out of slow start,
    // by checking whether *any* later packet got split whenever slow
    // start ended. (If the flow never left slow start, all packets stay
    // full-sized, which the guard also mandates.)
    let split_later = data.iter().skip(20).any(|r| r.wire_len <= 700);
    let all_full = data.iter().all(|r| r.wire_len > 1400);
    assert!(
        split_later || all_full,
        "guard must either split after slow start or keep everything full"
    );
}

#[test]
fn client_side_shaping_applies_to_uploads_only() {
    // The shaper sits on the client connection: uploaded data packets
    // shrink, downloaded ACK stream is untouched (there is no server
    // data in a pure upload).
    let mut net = Network::new(
        HostConfig::default(),
        HostConfig::default(),
        PathConfig::internet(100, 20),
        Box::new(Shaped::new(
            Some(3_000_000),
            Box::new(SafetyCap::new(SplitThreshold::new(1000))),
        )),
        Box::new(Sink::default()),
        17,
    );
    net.run_to_idle();
    let out_data: Vec<_> = net
        .client_capture
        .records
        .iter()
        .filter(|r| r.kind == PacketKind::TcpData && r.dir == Direction::Out)
        .collect();
    assert!(!out_data.is_empty());
    assert!(
        out_data.iter().all(|r| r.wire_len <= 1000 + 66),
        "upload packets must respect the split threshold"
    );
}
