//! The hot-path rewrites' equivalence suite: every speed-motivated
//! rewrite (single-pass feature extraction, SoA trace columns, batched
//! forest prediction) must be **bit-identical** to the code it
//! replaced. The goldens pin end-to-end behavior; these tests pin each
//! rewrite in isolation, on the full nine-site dataset, so a divergence
//! points at the exact layer that drifted.

use stob_bench::collect_dataset;
use traces::sites::paper_sites;
use traces::statgen::generate_corpus;
use traces::{Trace, TraceCols};
use wf::features::{extract_features, FeatureConfig, FeatureExtractor};
use wf::forest::{Forest, ForestConfig};

/// Seed for every workload below. Feature equivalence runs on the §3
/// collection pipeline's real output — sanitized stack traces, not
/// statistical synthetics — so it is proven on exactly the
/// distribution the benchmarks feed the rewritten code.
const EQ_SEED: u64 = 0x0E9;

#[test]
fn single_pass_features_match_reference_on_full_dataset() {
    let traces = collect_dataset(8, EQ_SEED).dataset.traces;
    for cfg in [FeatureConfig::paper(), FeatureConfig::with_sizes()] {
        let mut ex = FeatureExtractor::new(&cfg);
        for (i, t) in traces.iter().enumerate() {
            let reference = extract_features(t, &cfg);
            let fast = ex.extract(t);
            assert_eq!(reference.len(), fast.len());
            for (j, (a, b)) in reference.iter().zip(&fast).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "trace {i} feature {j} diverged (use_sizes={})",
                    cfg.use_sizes
                );
            }
            // Truncated prefixes hit the empty/degenerate stat paths.
            for keep in [0, 1, 2, t.len() / 2] {
                let prefix = Trace::new(t.label, t.visit, t.packets[..keep].to_vec());
                let reference = extract_features(&prefix, &cfg);
                let fast = ex.extract(&prefix);
                let same = reference
                    .iter()
                    .zip(&fast)
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(same, "trace {i} prefix {keep} diverged");
            }
        }
    }
}

#[test]
fn soa_columns_round_trip_traces_losslessly() {
    let traces = collect_dataset(4, EQ_SEED ^ 1).dataset.traces;
    let mut cols = TraceCols::default();
    for t in &traces {
        assert_eq!(TraceCols::from_trace(t).to_trace(), *t);
        // The reusable fill path must behave like a fresh conversion.
        cols.fill_from(t);
        assert_eq!(cols.to_trace(), *t);
        assert_eq!(cols.len(), t.len());
        for (i, p) in t.packets.iter().enumerate() {
            assert_eq!(cols.packet(i), *p);
        }
    }
}

#[test]
fn batched_prediction_matches_scalar_for_every_seed() {
    let corpus = generate_corpus(&paper_sites(), 6, EQ_SEED ^ 2);
    let cfg = FeatureConfig::paper();
    let x = wf::features::extract_all(&corpus, &cfg);
    let y: Vec<usize> = corpus.iter().map(|t| t.label).collect();
    // Every forest seed the committed experiments use: the table2 /
    // defense_matrix harness seeds plus the perf bin's.
    for seed in [7, 0xDEF, 0xBE6C, 0, 1, 2] {
        let fcfg = ForestConfig {
            n_trees: 60,
            ..ForestConfig::default()
        };
        let mut rng = netsim::SimRng::new(seed);
        let forest = Forest::fit(&x, &y, 9, &fcfg, &mut rng);
        let rows: Vec<&[f64]> = x.iter().map(|r| r.as_slice()).collect();
        let batched = forest.predict_rows(&rows);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(
                batched[i],
                forest.predict(row),
                "seed {seed:#x} sample {i} diverged"
            );
        }
    }
}
