//! Multipath matrix determinism: the vantage-point matrix must render
//! byte-identical JSON at any `STOB_THREADS`, across every pipe count,
//! and the pipes=1 app-placement split must be the identity (each leg
//! *and* the merged view equal the undefended baseline trace exactly).
//!
//! Everything runs inside ONE test function: `par::set_threads` is a
//! process-wide override, so concurrent test functions would race on it.

use netsim::{par, SimRng};
use stack::mux::SplitterSpec;
use stob_bench::collect_dataset;
use stob_bench::multipath::{run_multipath, split_dataset, MultipathConfig};

#[test]
fn multipath_matrix_is_thread_count_invariant() {
    // Small but full-shape workload: both splitters, both scenarios,
    // both placements, all three pipe counts — the exact cell grid the
    // golden uses, at sweep-friendly evaluation sizes.
    let cfg = MultipathConfig {
        trees: 6,
        repeats: 2,
        seed: 11,
        pipe_counts: vec![1, 2, 4],
        ..MultipathConfig::default()
    };

    par::set_threads(1);
    let dataset = collect_dataset(3, 11).dataset;
    let json_1 = run_multipath(&dataset, &cfg).to_json().to_string_pretty();

    for threads in [2usize, 4, 8] {
        par::set_threads(threads);
        // Collection itself is part of the contract: the corpus the
        // matrix consumes must not depend on the worker count either.
        let dataset_n = collect_dataset(3, 11).dataset;
        assert_eq!(
            dataset.traces.len(),
            dataset_n.traces.len(),
            "corpus size at {threads} threads"
        );
        for (a, b) in dataset.traces.iter().zip(&dataset_n.traces) {
            assert_eq!(a.packets, b.packets, "collected trace at {threads} threads");
        }
        let json_n = run_multipath(&dataset_n, &cfg).to_json().to_string_pretty();
        assert_eq!(json_1, json_n, "matrix JSON at {threads} threads");
    }

    // pipes=1 is the degenerate split: one leg carries everything, no
    // outage model applies, and both views are byte-for-byte the
    // baseline trace — the tie the golden's +0.000 advantage cells rest
    // on, for every splitting policy.
    par::set_threads(1);
    let root = SimRng::new(0x51);
    for spec in [SplitterSpec::RoundRobin, SplitterSpec::PaddedRandom] {
        let (merged, legs) = split_dataset(&dataset, &spec, 1, "outage-storm", &root);
        assert_eq!(legs.len(), 1, "single pipe, single leg");
        for ((m, l), base) in merged
            .traces
            .iter()
            .zip(&legs[0].traces)
            .zip(&dataset.traces)
        {
            assert_eq!(m.packets, base.packets, "merged view is the baseline");
            assert_eq!(l.packets, base.packets, "lone leg is the baseline");
        }
    }
    par::set_threads(0); // restore automatic resolution for other tests
}
