//! End-to-end integration: the whole §3 pipeline across crates —
//! simulated collection (netsim+stack+traces), sanitization, the k-FP
//! attack (wf), and the countermeasures (defenses) — at a small but real
//! scale.

use defenses::emulate::{apply, CounterMeasure, EmulateConfig};
use netsim::SimRng;
use traces::loader::{collect, LoaderConfig};
use traces::sanitize::sanitize;
use traces::sites::paper_sites;
use traces::Dataset;
use wf::eval::{evaluate, EvalConfig};
use wf::forest::ForestConfig;

fn small_dataset(visits: usize, seed: u64) -> Dataset {
    let sites = paper_sites();
    let outcomes = collect(&sites, visits, seed, &LoaderConfig::default());
    let per_site: Vec<(Vec<traces::Trace>, Vec<bool>)> = outcomes
        .into_iter()
        .map(|os| {
            let complete: Vec<bool> = os.iter().map(|o| o.complete).collect();
            (os.into_iter().map(|o| o.trace).collect(), complete)
        })
        .collect();
    let (clean, _, per_class) = sanitize(per_site);
    assert!(per_class >= visits / 2, "sanitizer dropped too much");
    Dataset::new(clean, sites.iter().map(|s| s.name.to_string()).collect())
}

fn quick_eval() -> EvalConfig {
    EvalConfig {
        forest: ForestConfig {
            n_trees: 40,
            ..ForestConfig::default()
        },
        repeats: 3,
        ..EvalConfig::default()
    }
}

#[test]
fn collection_produces_nine_balanced_classes() {
    let d = small_dataset(6, 11);
    assert_eq!(d.n_classes(), 9);
    let counts = d.per_class_counts();
    assert!(counts.iter().all(|&c| c == counts[0]), "{counts:?}");
    assert!(d.traces.iter().all(|t| t.is_well_formed()));
    assert!(d.traces.iter().all(|t| t.len() >= 20));
}

#[test]
fn attack_is_strong_on_full_traces_and_weaker_early() {
    let d = small_dataset(12, 13);
    let cfg = quick_eval();
    let full = evaluate(&d, &cfg);
    let early = evaluate(&d.truncated(15), &cfg);
    assert!(
        full.mean > 0.75,
        "full-trace accuracy {} too low for a closed world of 9",
        full.mean
    );
    assert!(
        early.mean < full.mean + 1e-9,
        "early accuracy {} should not beat full {}",
        early.mean,
        full.mean
    );
    assert!(early.mean > 2.0 / 9.0, "early accuracy should beat chance");
}

#[test]
fn countermeasures_change_the_attack_surface_without_breaking_it() {
    let d = small_dataset(10, 17);
    let cfg = quick_eval();
    let em = EmulateConfig {
        first_n: 30,
        ..EmulateConfig::default()
    };
    let mut rng = SimRng::new(5);
    let defended = d
        .map_traces(|t| apply(CounterMeasure::Combined, t, &em, &mut rng).trace)
        .truncated(30);
    let plain = evaluate(&d.truncated(30), &cfg);
    let def = evaluate(&defended, &cfg);
    // The paper's conservative countermeasures never collapse the attack
    // (Table 2 stays above 0.79 everywhere) and never add more than
    // modest improvement.
    assert!(
        def.mean > 2.0 / 9.0,
        "defense should not destroy the signal"
    );
    assert!(
        (def.mean - plain.mean).abs() < 0.35,
        "defense moved accuracy implausibly: {} -> {}",
        plain.mean,
        def.mean
    );
}

#[test]
fn defended_collection_through_the_stack_matches_trace_level_split() {
    // Generate one visit with the server-side Stob policy and verify the
    // wire effect matches the trace-level emulation's intent: no large
    // incoming data packets.
    use stob::policy::ObfuscationPolicy;
    let sites = paper_sites();
    let cfg = LoaderConfig {
        server_policy: Some(ObfuscationPolicy::split_and_delay("e2e")),
        ..LoaderConfig::default()
    };
    let out = traces::loader::load_page(&sites[4], 4, 0, 23, &cfg);
    assert!(out.complete);
    let big_incoming = out
        .trace
        .packets
        .iter()
        .filter(|p| p.dir == netsim::Direction::In && p.size > 1200 + 66)
        .count();
    assert_eq!(big_incoming, 0, "in-stack split must bound packet sizes");
}

#[test]
fn quic_corpus_is_fingerprintable_too() {
    // The paper's §2.3 argues QUIC does not escape the problem: the
    // transport still decides the packet sequence, and the wire image
    // remains fingerprintable. Collect a small QUIC corpus through the
    // same pipeline and attack it.
    use traces::loader::TransportKind;
    let sites = paper_sites();
    let cfg = LoaderConfig {
        transport: TransportKind::Quic,
        ..LoaderConfig::default()
    };
    let outcomes = collect(&sites, 8, 37, &cfg);
    let per_site: Vec<(Vec<traces::Trace>, Vec<bool>)> = outcomes
        .into_iter()
        .map(|os| {
            let complete: Vec<bool> = os.iter().map(|o| o.complete).collect();
            (os.into_iter().map(|o| o.trace).collect(), complete)
        })
        .collect();
    let (clean, _, per_class) = sanitize(per_site);
    assert!(per_class >= 4, "QUIC loads must mostly complete");
    let d = Dataset::new(clean, sites.iter().map(|s| s.name.to_string()).collect());
    let r = evaluate(&d, &quick_eval());
    assert!(
        r.mean > 0.6,
        "QUIC traffic should be as fingerprintable as TCP: {}",
        r.mean
    );
}

#[test]
fn whole_pipeline_is_deterministic() {
    let a = small_dataset(4, 29);
    let b = small_dataset(4, 29);
    assert_eq!(a.traces.len(), b.traces.len());
    for (x, y) in a.traces.iter().zip(&b.traces) {
        assert_eq!(x, y);
    }
    let ra = evaluate(&a, &quick_eval());
    let rb = evaluate(&b, &quick_eval());
    assert_eq!(ra.per_repeat, rb.per_repeat);
}
