#!/usr/bin/env bash
# check-bench: hold the committed perf trajectory.
#
#   1. Schema-validate the committed BENCH file (perf --validate):
#      all five metric families present, speedup floors intact.
#   2. Run `perf --quick` at STOB_THREADS=1 and =4 and byte-compare the
#      deterministic `checks` output (work counts + value checksums),
#      so the SoA/batching rewrites cannot silently change results.
#   3. Gate fresh quick numbers against the committed baseline:
#      any headline metric more than TOLERANCE x worse fails
#      (generous bound — CI runners are noisy; exact numbers are
#      refreshed locally per PR, see PERF.md).
#   4. Same three steps for the fleet campaign (`fleet --quick`,
#      BENCH_8.json): the quick run itself exits non-zero on any
#      auditor violation or a peak residency below 100k flows, and its
#      deterministic checks must byte-match at 1 vs 4 threads.
#
# Usage: scripts/check-bench.sh [BENCH_FILE] [TOLERANCE] [FLEET_BENCH_FILE]
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH="${1:-BENCH_6.json}"
TOLERANCE="${2:-2.5}"
FLEET_BENCH="${3:-BENCH_8.json}"
BIN=target/release/perf
FLEET_BIN=target/release/fleet

cargo build --release -q -p stob-bench --bin perf --bin fleet

"$BIN" --validate "$BENCH"
echo "check-bench: $BENCH schema and speedup floors OK"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

STOB_THREADS=1 "$BIN" --quick \
    --out "$tmp/fresh.json" --checks-out "$tmp/checks_t1.json" 2>/dev/null
STOB_THREADS=4 "$BIN" --quick \
    --out "$tmp/fresh_t4.json" --checks-out "$tmp/checks_t4.json" 2>/dev/null
if ! cmp -s "$tmp/checks_t1.json" "$tmp/checks_t4.json"; then
    echo "check-bench: FAIL — perf checks differ between 1 and 4 threads" >&2
    diff "$tmp/checks_t1.json" "$tmp/checks_t4.json" >&2 || true
    exit 1
fi
echo "check-bench: perf checks byte-identical at 1 and 4 threads"

"$BIN" --compare "$BENCH" "$tmp/fresh.json" --tolerance "$TOLERANCE" >/dev/null
echo "check-bench: no metric more than ${TOLERANCE}x worse than $BENCH"

"$FLEET_BIN" --validate "$FLEET_BENCH"
echo "check-bench: $FLEET_BENCH schema, residency floor, zero violations OK"

STOB_THREADS=1 "$FLEET_BIN" --quick \
    --out "$tmp/fleet_fresh.json" --checks-out "$tmp/fleet_checks_t1.json" 2>/dev/null
STOB_THREADS=4 "$FLEET_BIN" --quick \
    --out "$tmp/fleet_fresh_t4.json" --checks-out "$tmp/fleet_checks_t4.json" 2>/dev/null
if ! cmp -s "$tmp/fleet_checks_t1.json" "$tmp/fleet_checks_t4.json"; then
    echo "check-bench: FAIL — fleet checks differ between 1 and 4 threads" >&2
    diff "$tmp/fleet_checks_t1.json" "$tmp/fleet_checks_t4.json" >&2 || true
    exit 1
fi
echo "check-bench: fleet checks byte-identical at 1 and 4 threads"

"$FLEET_BIN" --compare "$FLEET_BENCH" "$tmp/fleet_fresh.json" --tolerance "$TOLERANCE" >/dev/null
echo "check-bench: no fleet rate more than ${TOLERANCE}x worse than $FLEET_BENCH"
