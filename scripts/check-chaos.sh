#!/usr/bin/env bash
# check-chaos: hold the recovery-runtime robustness gate.
#
#   1. Run the chaos soak (`chaos --quick`) at STOB_THREADS=1. The bin
#      itself exits 1 if any audit invariant is violated, any visit
#      panics, the recovery-off blackout baseline stops failing (which
#      would make the gate vacuous), or recovery-on completion drops
#      below the committed floor.
#   2. Re-run at STOB_THREADS=4 and byte-compare the deterministic JSON
#      reports, so the watchdog/backoff/breaker machinery cannot become
#      thread-count-dependent.
#
# Usage: scripts/check-chaos.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=target/release/chaos

cargo build --release -q -p stob-bench --bin chaos

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

STOB_THREADS=1 STOB_JSON_OUT="$tmp/chaos_t1.json" "$BIN" --quick >/dev/null
STOB_THREADS=4 STOB_JSON_OUT="$tmp/chaos_t4.json" "$BIN" --quick >/dev/null
if ! cmp -s "$tmp/chaos_t1.json" "$tmp/chaos_t4.json"; then
    echo "check-chaos: FAIL — chaos reports differ between 1 and 4 threads" >&2
    diff "$tmp/chaos_t1.json" "$tmp/chaos_t4.json" >&2 || true
    exit 1
fi
echo "check-chaos: chaos soak passed, report byte-identical at 1 and 4 threads"
