#!/usr/bin/env bash
# Run the exact checks CI runs (.github/workflows/ci.yml), locally.
# Usage: scripts/ci-local.sh
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo
    echo "==> $*"
    "$@"
}

run cargo build --workspace --release --locked
run cargo test --workspace -q --locked
run env STOB_THREADS=4 cargo test --workspace -q --locked --test determinism

# Fault suite: every fault scenario x defense with the invariant auditor
# on (exit 1 on any violation), then byte-compare the JSON reports from a
# 1-thread and a 4-thread run to prove determinism under faults.
fault_t1="$(mktemp)" fault_t4="$(mktemp)"
trap 'rm -f "$fault_t1" "$fault_t4"' EXIT
run env STOB_THREADS=1 STOB_JSON_OUT="$fault_t1" \
    cargo run --release --locked -p stob-bench --bin fault_matrix
run env STOB_THREADS=4 STOB_JSON_OUT="$fault_t4" \
    cargo run --release --locked -p stob-bench --bin fault_matrix
run cmp "$fault_t1" "$fault_t4"

run scripts/check-golden.sh

# Perf + fleet smoke: committed BENCH schemas + speedup floors,
# deterministic perf and fleet checks at 1 vs 4 threads (the fleet
# quick run fails on any auditor violation or <100k peak residency),
# and the >2.5x regression gates.
run scripts/check-bench.sh

# Chaos soak: recovery runtime must rescue the fault grid (and the
# recovery-off blackout baseline must still fail, or the gate is
# vacuous), with the report byte-identical at 1 vs 4 threads.
run scripts/check-chaos.sh

run cargo fmt --all --check
run cargo clippy --workspace --all-targets --locked -- -D warnings
run env RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --locked

echo
echo "ci-local: all checks passed"
