#!/usr/bin/env bash
# Run the exact checks CI runs (.github/workflows/ci.yml), locally.
# Usage: scripts/ci-local.sh
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo
    echo "==> $*"
    "$@"
}

run cargo build --workspace --release --locked
run cargo test --workspace -q --locked
run env STOB_THREADS=4 cargo test --workspace -q --locked --test determinism
run cargo fmt --all --check
run cargo clippy --workspace --all-targets --locked -- -D warnings

echo
echo "ci-local: all checks passed"
