#!/usr/bin/env bash
# Byte-compare the benchmark experiment outputs against committed goldens.
#
# Guards the refactor invariants: any change to the shared shaping/pacing
# path or the defense layer that alters simulated behavior shows up here
# as a diff, even if every unit test still passes. The goldens were
# produced with the exact invocations below; STOB_JSON_NO_TIMINGS strips
# wall-clock fields so the dumps are deterministic across machines and
# thread counts. defense_matrix is additionally run at two thread counts
# to pin the fan-out determinism contract.
#
# Usage: scripts/check-golden.sh
# To regenerate after an *intentional* behavior change:
#   STOB_THREADS=1 STOB_JSON_NO_TIMINGS=1 STOB_JSON_OUT=tests/golden/table2.json \
#     cargo run --release --locked -p stob-bench --bin table2 -- 12 25 2 7
#   STOB_THREADS=1 STOB_JSON_NO_TIMINGS=1 STOB_JSON_OUT=tests/golden/defense_matrix.json \
#     cargo run --release --locked -p stob-bench --bin defense_matrix -- 6 10 2 7
#   STOB_THREADS=1 STOB_JSON_NO_TIMINGS=1 STOB_JSON_OUT=tests/golden/multipath.json \
#     cargo run --release --locked -p stob-bench --bin multipath -- 12 30 10 11
set -euo pipefail
cd "$(dirname "$0")/.."

out="$(mktemp)"
trap 'rm -f "$out"' EXIT

check() {
    local golden="$1"
    local label="$2"
    if ! cmp "$golden" "$out"; then
        echo "check-golden: $golden diverged from the current build ($label)." >&2
        echo "If the behavior change is intentional, regenerate the golden" >&2
        echo "(see the header of scripts/check-golden.sh)." >&2
        exit 1
    fi
    echo "check-golden: $label output is byte-identical to $golden"
}

STOB_THREADS=1 STOB_JSON_NO_TIMINGS=1 STOB_JSON_OUT="$out" \
    cargo run --release --locked -p stob-bench --bin table2 -- 12 25 2 7
check tests/golden/table2.json "table2 (1 thread)"

STOB_THREADS=1 STOB_JSON_NO_TIMINGS=1 STOB_JSON_OUT="$out" \
    cargo run --release --locked -p stob-bench --bin defense_matrix -- 6 10 2 7
check tests/golden/defense_matrix.json "defense_matrix (1 thread)"

STOB_THREADS=4 STOB_JSON_NO_TIMINGS=1 STOB_JSON_OUT="$out" \
    cargo run --release --locked -p stob-bench --bin defense_matrix -- 6 10 2 7
check tests/golden/defense_matrix.json "defense_matrix (4 threads)"

STOB_THREADS=1 STOB_JSON_NO_TIMINGS=1 STOB_JSON_OUT="$out" \
    cargo run --release --locked -p stob-bench --bin multipath -- 12 30 10 11
check tests/golden/multipath.json "multipath (1 thread)"

STOB_THREADS=4 STOB_JSON_NO_TIMINGS=1 STOB_JSON_OUT="$out" \
    cargo run --release --locked -p stob-bench --bin multipath -- 12 30 10 11
check tests/golden/multipath.json "multipath (4 threads)"
