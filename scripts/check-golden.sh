#!/usr/bin/env bash
# Byte-compare the table2 experiment output against the committed golden.
#
# Guards the egress-pipeline refactor invariant: any change to the shared
# shaping/pacing path that alters simulated behavior shows up here as a
# diff, even if every unit test still passes. The golden was produced
# with the exact invocation below; STOB_JSON_NO_TIMINGS strips wall-clock
# fields so the dump is deterministic across machines and thread counts.
#
# Usage: scripts/check-golden.sh
# To regenerate after an *intentional* behavior change:
#   STOB_THREADS=1 STOB_JSON_NO_TIMINGS=1 STOB_JSON_OUT=tests/golden/table2.json \
#     cargo run --release --locked -p stob-bench --bin table2 -- 12 25 2 7
set -euo pipefail
cd "$(dirname "$0")/.."

golden="tests/golden/table2.json"
out="$(mktemp)"
trap 'rm -f "$out"' EXIT

STOB_THREADS=1 STOB_JSON_NO_TIMINGS=1 STOB_JSON_OUT="$out" \
    cargo run --release --locked -p stob-bench --bin table2 -- 12 25 2 7

if ! cmp "$golden" "$out"; then
    echo "check-golden: $golden diverged from the current build." >&2
    echo "If the behavior change is intentional, regenerate the golden" >&2
    echo "(see the header of scripts/check-golden.sh)." >&2
    exit 1
fi
echo "check-golden: table2 output is byte-identical to $golden"
