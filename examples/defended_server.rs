//! Defended server: the §5.4 deployment story. A web server attaches a
//! Stob policy to every accepted connection; the browser and the
//! eavesdropper are unmodified. Compares the wire view of the same visit
//! with and without the in-stack defense.
//!
//! ```sh
//! cargo run --release --example defended_server
//! ```

use netsim::Direction;
use stob::policy::ObfuscationPolicy;
use traces::loader::{load_page, LoaderConfig};
use traces::sites::paper_sites;

fn describe(tag: &str, t: &traces::Trace) {
    let inc: Vec<u32> = t
        .packets
        .iter()
        .filter(|p| p.dir == Direction::In)
        .map(|p| p.size)
        .collect();
    let n = inc.len();
    let full = inc.iter().filter(|&&s| s > 1200).count();
    let mean = inc.iter().map(|&s| s as f64).sum::<f64>() / n.max(1) as f64;
    println!(
        "  {tag:<12} {:>5} pkts down | mean size {:>6.0} B | >1200 B: {:>4} | \
         duration {:>7.0} ms | {:>7.0} KB",
        n,
        mean,
        full,
        t.duration().as_millis_f64(),
        t.download_bytes() as f64 / 1e3,
    );
}

fn main() {
    let sites = paper_sites();
    let site = &sites[2]; // instagram-like: image-heavy, most to hide
    println!(
        "defended server: one visit to {} with and without a server-side Stob policy\n",
        site.name
    );

    let plain_cfg = LoaderConfig::default();
    let plain = load_page(site, 2, 0, 99, &plain_cfg);
    assert!(plain.complete);

    let defended_cfg = LoaderConfig {
        server_policy: Some(ObfuscationPolicy::split_and_delay("server-side")),
        ..LoaderConfig::default()
    };
    let defended = load_page(site, 2, 0, 99, &defended_cfg);
    assert!(defended.complete);

    println!("eavesdropper's view at the client access link:");
    describe("stock:", &plain.trace);
    describe("defended:", &defended.trace);

    let slow = defended.trace.duration().as_secs_f64() / plain.trace.duration().as_secs_f64();
    println!(
        "\ncost: page load time x{:.2}, zero padding bytes (work-conserving);",
        slow
    );
    println!(
        "server wire bytes {} -> {} (+{:.1}%, split headers only).",
        plain.server_wire_bytes,
        defended.server_wire_bytes,
        (defended.server_wire_bytes as f64 / plain.server_wire_bytes as f64 - 1.0) * 100.0
    );
    println!(
        "\nthe browser was untouched: the server's stack enforced the policy on \
         the final packet sequence (Figure 2's deployment)."
    );
}
