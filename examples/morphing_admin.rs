//! Morphing admin: an operator fits a Stob policy from observed target
//! traffic, publishes it to the shared registry as JSON (the §4.1 policy
//! table), and every new connection picks it up — no application change.
//!
//! ```sh
//! cargo run --release --example morphing_admin
//! ```

use netsim::Direction;
use stob::fit::fit_morphing_policy;
use stob::registry::{PolicyKey, PolicyRegistry};
use traces::loader::{load_page, LoaderConfig};
use traces::sites::paper_sites;

fn main() {
    let sites = paper_sites();

    // Step 1: the operator's target profile — an interactive messaging
    // app whose packets cluster around 700-950 bytes with relaxed
    // timing. (Bulk web downloads all ride at full MTU, so to *look*
    // interactive the victim's packets must shrink toward this band.)
    let mut rng = netsim::SimRng::new(42);
    let sizes: Vec<u32> = (0..400).map(|_| rng.range_u64(700, 950) as u32).collect();
    let gaps: Vec<f64> = (0..400).map(|_| rng.range_f64(200.0, 1_500.0)).collect();
    println!(
        "target profile: interactive app, {} size samples (700-950 B), {} gap samples",
        sizes.len(),
        gaps.len()
    );

    // Step 2: fit the policy and publish it through the registry's JSON
    // interface, as an administrator would.
    let policy = fit_morphing_policy("imitate-interactive", &sizes, &gaps, 24);
    let admin_registry = PolicyRegistry::new();
    admin_registry.publish(PolicyKey::Default, policy);
    let exported = admin_registry.export_json();
    println!(
        "exported policy table: {} bytes of JSON (histograms included)",
        exported.len()
    );

    // Step 3: a different host imports the table and serves a heavy site
    // (youtube-like) under the fitted policy.
    let host_registry = PolicyRegistry::new();
    host_registry
        .import_json(&exported)
        .expect("fresh export is valid");
    let fitted = host_registry
        .resolve(1, 0)
        .expect("default policy resolves");

    let plain = load_page(&sites[8], 8, 0, 9, &LoaderConfig::default());
    let defended = load_page(
        &sites[8],
        8,
        0,
        9,
        &LoaderConfig {
            server_policy: Some((*fitted).clone()),
            ..LoaderConfig::default()
        },
    );

    let stat = |t: &traces::Trace| {
        let inc: Vec<f64> = t
            .packets
            .iter()
            .filter(|p| p.dir == Direction::In && p.size > 100)
            .map(|p| p.size as f64)
            .collect();
        (inc.len(), inc.iter().sum::<f64>() / inc.len().max(1) as f64)
    };
    let (n_p, mean_p) = stat(&plain.trace);
    let (n_d, mean_d) = stat(&defended.trace);
    println!("\nincoming data packets (count, mean wire size):");
    println!("  target profile          :   n/a pkts,    ~840 B");
    println!(
        "  victim plain    ({}): {n_p:>5} pkts, {mean_p:>6.0} B",
        sites[8].name
    );
    println!(
        "  victim morphed  ({}): {n_d:>5} pkts, {mean_d:>6.0} B",
        sites[8].name
    );
    println!(
        "\nthe morphed flow's packet sizes moved toward the target's \
         distribution\n(one-sided: Stob can shrink and delay, never grow or \
         hasten — the §4.2 envelope)."
    );
}
