//! Censor lab: the §3 experiment end to end, at laptop scale.
//!
//! Simulates visits to the nine sites through the full stack, trains the
//! from-scratch k-FP attack, then shows how the kernel-implementable
//! countermeasures change what an early-decision censor sees.
//!
//! ```sh
//! cargo run --release --example censor_lab -- 30   # visits per site
//! ```

use defenses::emulate::{apply, CounterMeasure, EmulateConfig};
use netsim::SimRng;
use stob_bench_shim::*;

/// The example reuses the bench harness through a tiny local shim so it
/// stays runnable as a plain `cargo run --example`.
mod stob_bench_shim {
    pub use wf::eval::{evaluate, EvalConfig};
    pub use wf::forest::ForestConfig;
}

fn main() {
    let visits: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);
    let seed = 0xCE2502;

    println!("censor lab: collecting {visits} visits/site for 9 sites (full-stack sim)...");
    let sites = traces::sites::paper_sites();
    let cfg = traces::loader::LoaderConfig::default();
    let outcomes = traces::loader::collect(&sites, visits, seed, &cfg);
    let per_site: Vec<(Vec<traces::Trace>, Vec<bool>)> = outcomes
        .into_iter()
        .map(|os| {
            let complete: Vec<bool> = os.iter().map(|o| o.complete).collect();
            (os.into_iter().map(|o| o.trace).collect(), complete)
        })
        .collect();
    let (clean, _, per_class) = traces::sanitize::sanitize(per_site);
    println!("sanitized to {per_class} traces/site (IQR on download size)\n");
    let dataset = traces::Dataset::new(clean, sites.iter().map(|s| s.name.to_string()).collect());

    let eval_cfg = EvalConfig {
        forest: ForestConfig {
            n_trees: 60,
            ..ForestConfig::default()
        },
        repeats: 3,
        ..EvalConfig::default()
    };

    println!("what the censor sees (k-FP accuracy, closed world of 9 sites):\n");
    println!("packets seen | undefended | split+delay defended");
    for n in [15usize, 30, 45, 0] {
        let plain = evaluate(&dataset.truncated(n), &eval_cfg);
        let em = EmulateConfig {
            first_n: n,
            ..EmulateConfig::default()
        };
        let mut rng = SimRng::new(seed).fork(n as u64);
        let defended = dataset
            .map_traces(|t| apply(CounterMeasure::Combined, t, &em, &mut rng).trace)
            .truncated(n);
        let def = evaluate(&defended, &eval_cfg);
        let label = if n == 0 {
            "all".to_string()
        } else {
            format!("{n:>3}")
        };
        println!(
            "{label:>12} | {:>10} | {}",
            plain.formatted(),
            def.formatted()
        );
    }
    println!(
        "\nreading: a censor must block *early*; the defense buys its margin in \
         the first tens of packets, which is where §3 aims it."
    );
}
