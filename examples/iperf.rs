//! iperf3-in-the-simulator: the Figure 3 measurement as a single run.
//!
//! Reports single-flow goodput over the 100 Gb/s lab path with the
//! `IncrementalReduce(alpha)` Stob strategy shaping the sender, plus the
//! safety audit proving no decision exceeded what the CCA allowed.
//!
//! ```sh
//! cargo run --release --example iperf -- 20      # alpha = 20
//! cargo run --release --example iperf            # alpha = 0 (stock)
//! ```

use netsim::{FlowId, Nanos};
use stack::apps::{BulkSender, Sink};
use stack::net::{Api, App, Network, CLIENT, SERVER};
use stack::{HostConfig, PathConfig, StackConfig};
use stob::safety::SafetyCap;
use stob::strategies::IncrementalReduce;

struct Iperf {
    inner: BulkSender,
    shaper: Option<Box<dyn stack::Shaper>>,
}

impl App for Iperf {
    fn on_start(&mut self, api: &mut Api) {
        let shaper = self.shaper.take();
        api.connect_with(StackConfig::default(), shaper);
    }
    fn on_connected(&mut self, api: &mut Api, flow: FlowId) {
        self.inner.on_connected(api, flow);
    }
    fn on_sendable(&mut self, api: &mut Api, flow: FlowId) {
        self.inner.on_sendable(api, flow);
    }
}

fn main() {
    let alpha: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);

    let cap = SafetyCap::new(IncrementalReduce::with_alpha(alpha));
    let audit = cap.audit_handle();
    let mut net = Network::new(
        HostConfig::default(),
        HostConfig::default(),
        PathConfig::lab_100g(),
        Box::new(Iperf {
            inner: BulkSender::endless(),
            shaper: Some(Box::new(cap)),
        }),
        Box::new(Sink::default()),
        1,
    );

    println!("iperf (simulated): single CUBIC flow, 100 Gb/s path, alpha = {alpha}");
    println!("interval         transfer        goodput");
    let warmup = Nanos::from_millis(20);
    net.run_until(warmup);
    let mut last_bytes = net
        .flow_stats(SERVER, FlowId(1))
        .map(|s| s.bytes_delivered)
        .unwrap_or(0);
    let step = Nanos::from_millis(20);
    let mut t = warmup;
    let mut total = 0u64;
    for i in 0..10 {
        t += step;
        net.run_until(t);
        let bytes = net
            .flow_stats(SERVER, FlowId(1))
            .map(|s| s.bytes_delivered)
            .unwrap_or(0);
        let delta = bytes - last_bytes;
        total += delta;
        last_bytes = bytes;
        println!(
            "{:>3}-{:<3} ms     {:>8.2} MB     {:>6.2} Gb/s",
            (warmup + step * i).as_millis_f64(),
            (warmup + step * (i + 1)).as_millis_f64(),
            delta as f64 / 1e6,
            delta as f64 * 8.0 / step.as_secs_f64() / 1e9
        );
    }
    println!(
        "\naverage goodput: {:.2} Gb/s",
        total as f64 * 8.0 / (step * 10).as_secs_f64() / 1e9
    );

    let cs = net.flow_stats(CLIENT, FlowId(1)).expect("client conn");
    println!(
        "sender: {} segments, {} packets ({} shaped), {} fast retransmits, {} RTOs",
        cs.segs_sent, cs.pkts_sent, cs.shaped_segs, cs.retransmits, cs.timeouts
    );
    println!(
        "sender CPU utilization: {:.0}%",
        net.cpu(CLIENT).utilization(t) * 100.0
    );
    println!(
        "safety audit: {} decisions checked, {} clamped (must be 0 for a benign policy)",
        audit.decisions.load(std::sync::atomic::Ordering::Relaxed),
        audit.total_clamped()
    );
}
