//! Quickstart: attach a Stob obfuscation policy to a TCP connection and
//! watch the wire packet sequence change — without the application
//! touching a single packet.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use netsim::{Direction, FlowId, Nanos, PacketKind};
use stack::apps::{BulkSender, Sink};
use stack::net::{Api, App, Network};
use stack::{HostConfig, PathConfig, StackConfig};
use stob::policy::ObfuscationPolicy;
use stob::registry::{PolicyKey, PolicyRegistry};
use stob::sockopt::attach_policy;

/// A sender that installs a Stob policy at connect time — the
/// `setsockopt`-style control path of §5.3.
struct ObfuscatedSender {
    inner: BulkSender,
    registry: PolicyRegistry,
}

impl App for ObfuscatedSender {
    fn on_start(&mut self, api: &mut Api) {
        let shaper = attach_policy(&self.registry, 1, 0, 42).expect("policy published below");
        println!("  attached policy: {}", shaper.policy_name);
        api.connect_with(StackConfig::default(), Some(Box::new(shaper)));
    }
    fn on_connected(&mut self, api: &mut Api, flow: FlowId) {
        self.inner.on_connected(api, flow);
    }
    fn on_sendable(&mut self, api: &mut Api, flow: FlowId) {
        self.inner.on_sendable(api, flow);
    }
}

fn run(policy: Option<ObfuscationPolicy>) -> (usize, f64, u32) {
    let registry = PolicyRegistry::new();
    let label = policy.as_ref().map(|p| p.name.clone());
    if let Some(p) = policy {
        registry.publish(PolicyKey::Default, p);
    }
    let app: Box<dyn App> = if label.is_some() {
        Box::new(ObfuscatedSender {
            inner: BulkSender::new(2_000_000),
            registry,
        })
    } else {
        Box::new(BulkSender::new(2_000_000))
    };
    let mut net = Network::new(
        HostConfig::default(),
        HostConfig::default(),
        PathConfig::internet(100, 20),
        app,
        Box::new(Sink::default()),
        7,
    );
    net.run_to_idle();
    let data: Vec<_> = net
        .client_capture
        .records
        .iter()
        .filter(|r| r.kind == PacketKind::TcpData && r.dir == Direction::Out)
        .collect();
    let n = data.len();
    let mean_size = data.iter().map(|r| r.wire_len as f64).sum::<f64>() / n.max(1) as f64;
    let max_size = data.iter().map(|r| r.wire_len).max().unwrap_or(0);
    (n, mean_size, max_size)
}

fn main() {
    println!("stob quickstart: 2 MB upload over a 100 Mb/s, 20 ms-RTT path\n");

    println!("without obfuscation:");
    let (n, mean, max) = run(None);
    println!("  {n} data packets, mean wire size {mean:.0} B, max {max} B\n");

    println!("with the paper's split+delay policy (threshold 1200 B, 10-30% jitter):");
    let (n2, mean2, max2) = run(Some(ObfuscationPolicy::split_and_delay("quickstart")));
    println!("  {n2} data packets, mean wire size {mean2:.0} B, max {max2} B\n");

    println!(
        "the policy {} the packet count (+{:.0}%) and shrank sizes, purely in-stack —",
        if n2 > n { "raised" } else { "did not raise" },
        (n2 as f64 / n as f64 - 1.0) * 100.0
    );
    println!("the application still wrote the same 2 MB with plain send() calls.");
    let _ = Nanos::ZERO;
}
