//! # stob-repro — reproduction of "Rethinking the Role of Network Stacks
//! # for Website Fingerprinting Defenses" (HotNets '25)
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`netsim`] — deterministic discrete-event simulation substrate;
//! * [`stack`] — the host network-stack model of the paper's Figure 1
//!   (sockets, TLS records, TCP + CC, FQ pacing, TSO NIC, QUIC-lite,
//!   CPU cost model);
//! * [`stob`] — the paper's contribution: stack-level traffic
//!   obfuscation (policies, shared registry, shaping strategies, safety
//!   cap, CCA-phase guards, `setsockopt`-style attachment);
//! * [`traces`] — synthetic website workloads loaded through the stack,
//!   sanitization, datasets;
//! * [`wf`] — the k-FP attack from scratch (features, random forest,
//!   leaf-vector k-NN, evaluation harness);
//! * [`defenses`] — the §3 countermeasures and Table 1 baselines.
//!
//! Regenerate the paper's artifacts with
//! `cargo run --release -p stob-bench --bin {table1,table2,figure3}`;
//! see `EXPERIMENTS.md` for paper-vs-measured numbers.

pub use defenses;
pub use netsim;
pub use stack;
pub use stob;
pub use traces;
pub use wf;
