//! # mux — a multipath datagram transport (`Multiplex`) over `Pipe` legs
//!
//! The paper's stack-placement argument assumes a single on-path vantage
//! point sees every packet of a flow. This module breaks that assumption:
//! a [`Multiplex`] transport splits one flow across several unreliable
//! datagram legs ("pipes"), each an independent [`netsim::Link`] with its
//! own rate, delay, loss and independently-seeded fault schedule (see
//! [`netsim::multilink`]). An observer sitting on any single leg sees only
//! a splitter-chosen subset of the packet sequence; the merged view is
//! only available to an observer that taps *every* leg.
//!
//! Design (after sosistab2's obfuscated-multiplex architecture, scaled to
//! this simulator): the `Multiplex` owns
//!
//! * **sequencing/reassembly** — byte-offset sequence numbers, an
//!   out-of-order buffer, cumulative-ack-driven retransmission, so the
//!   application sees a reliable stream over unreliable legs;
//! * **liveness scoring + failover** — per-pipe receipt counts echoed in
//!   [`PacketKind::MuxAck`]; a pipe that stops making progress for
//!   `liveness_timeout` is declared dead, its unacked datagrams are
//!   drained back into the send path over the surviving legs, and the
//!   dead leg is probed with exponential backoff (the recovery runtime's
//!   watchdog/backoff pattern applied to one leg instead of the whole
//!   flow) until an ack revives it;
//! * **optional XOR-parity FEC** — every `fec_group` data datagrams are
//!   covered by one [`PacketKind::MuxParity`] repair datagram; a receiver
//!   holding all-but-one datagram of a group plus the parity recovers the
//!   missing one without waiting for a retransmission;
//! * **deterministic splitting policies** — [`SplitterSpec`]: round-robin,
//!   smooth weighted round-robin, and a padding-aware random splitter
//!   whose RNG is forked from the flow RNG, so thread count and pipe
//!   liveness never perturb other flows' randomness.
//!
//! `Multiplex` implements [`TransportCore`], so it plugs into
//! [`net::Network`](crate::net::Network) via
//! [`Api::connect_custom`](crate::net::Api::connect_custom) as a third
//! transport beside TCP and QUIC, and the shared [`EgressPipeline`] gives
//! every datagram the same shaper hooks (TSO sizing, per-packet sizing,
//! departure delay) the paper's §4.2 names — under the
//! [`EgressLabels::MUX`] instrument family (`stack.mux.*`).

use crate::cpu::Cpu;
use crate::egress::{EgressLabels, EgressPipeline, FlowStats, TransportCore};
use crate::qdisc::SegDesc;
use crate::shaper::{BoxShaper, ShapeCtx};
use crate::tcp::{TcpAction, TimerKind};
use netsim::telemetry::{self, Tracer};
use netsim::{FlowId, Nanos, Packet, PacketKind, SimRng};
use std::collections::BTreeMap;

/// IP-level header bytes we charge per mux datagram: IPv4 (20) + UDP (8)
/// + mux header (26: session id, seq, ack, pipe tag, flags).
pub const MUX_HDR_IP: u32 = 54;
/// Ethernet framing added on the wire.
const ETH: u32 = 14;

/// How a [`Multiplex`] assigns datagrams to pipes. Deterministic: given
/// the same spec, seed and packet sequence, the assignment is identical
/// regardless of thread count.
#[derive(Debug, Clone, PartialEq)]
pub enum SplitterSpec {
    /// Strict rotation over the live pipes.
    RoundRobin,
    /// Smooth weighted round-robin: pipe `i` carries a share of packets
    /// proportional to `weights[i]` (one weight per pipe, all positive).
    Weighted {
        /// Relative share per pipe; `weights.len()` must equal the pipe
        /// count and every entry must be positive.
        weights: Vec<u64>,
    },
    /// Uniformly random pipe per data datagram (RNG forked from the flow
    /// RNG); padding-class datagrams (parity, probes) instead go to the
    /// least-loaded live pipe, evening out per-leg volume so padding
    /// masks rather than mirrors the data split.
    PaddedRandom,
}

impl SplitterSpec {
    /// Short stable name (used in bench matrices and JSON).
    pub fn name(&self) -> &'static str {
        match self {
            SplitterSpec::RoundRobin => "roundrobin",
            SplitterSpec::Weighted { .. } => "weighted",
            SplitterSpec::PaddedRandom => "padded-random",
        }
    }

    /// Check the spec against a concrete pipe count.
    pub fn validate(&self, n_pipes: usize) -> Result<(), String> {
        if let SplitterSpec::Weighted { weights } = self {
            if weights.len() != n_pipes {
                return Err(format!(
                    "weighted splitter has {} weights for {} pipes",
                    weights.len(),
                    n_pipes
                ));
            }
            if weights.contains(&0) {
                return Err("weighted splitter weights must be positive".to_string());
            }
        }
        Ok(())
    }
}

/// Runtime state for one [`SplitterSpec`] over `n` pipes.
#[derive(Debug)]
pub struct Splitter {
    spec: SplitterSpec,
    cursor: usize,
    credits: Vec<i64>,
    sent: Vec<u64>,
    rng: SimRng,
}

impl Splitter {
    /// Build a splitter; `rng` must be forked from the flow RNG so the
    /// random policy stays deterministic per flow.
    pub fn new(spec: SplitterSpec, n_pipes: usize, rng: SimRng) -> Splitter {
        assert!(n_pipes > 0, "need at least one pipe");
        spec.validate(n_pipes).expect("invalid splitter spec");
        Splitter {
            spec,
            cursor: 0,
            credits: vec![0; n_pipes],
            sent: vec![0; n_pipes],
            rng,
        }
    }

    fn weight(&self, i: usize) -> u64 {
        match &self.spec {
            SplitterSpec::Weighted { weights } => weights[i],
            _ => 1,
        }
    }

    /// Pick a pipe for the next datagram. `alive[i]` gates pipe `i`;
    /// if no pipe is alive every pipe is considered (the caller is about
    /// to probe anyway). `padding` marks padding-class datagrams
    /// (parity/probes) for the padding-aware policy.
    pub fn pick(&mut self, alive: &[bool], padding: bool) -> usize {
        let n = self.credits.len();
        debug_assert_eq!(alive.len(), n);
        let any_alive = alive.iter().any(|&a| a);
        let live = |i: usize| !any_alive || alive[i];
        let choice = match &self.spec {
            SplitterSpec::RoundRobin => {
                let mut c = self.cursor;
                for _ in 0..n {
                    if live(c % n) {
                        break;
                    }
                    c += 1;
                }
                self.cursor = (c + 1) % n;
                c % n
            }
            SplitterSpec::Weighted { .. } => {
                // Smooth WRR: grant credits to live pipes, pick the
                // richest (lowest index on ties), charge it the total.
                let mut total = 0i64;
                for i in 0..n {
                    if live(i) {
                        self.credits[i] += self.weight(i) as i64;
                        total += self.weight(i) as i64;
                    }
                }
                let mut best = 0;
                let mut best_c = i64::MIN;
                for i in 0..n {
                    if live(i) && self.credits[i] > best_c {
                        best = i;
                        best_c = self.credits[i];
                    }
                }
                self.credits[best] -= total;
                best
            }
            SplitterSpec::PaddedRandom => {
                let live_idx: Vec<usize> = (0..n).filter(|&i| live(i)).collect();
                if padding {
                    // Least-loaded live pipe (lowest index on ties).
                    *live_idx
                        .iter()
                        .min_by_key(|&&i| (self.sent[i], i))
                        .expect("at least one candidate")
                } else {
                    live_idx[self.rng.next_below(live_idx.len() as u64) as usize]
                }
            }
        };
        self.sent[choice] += 1;
        choice
    }
}

/// One leg a [`Multiplex`] can route datagrams over. The transport only
/// needs a stable index (stamped into [`netsim::PacketMeta::pipe`] so the
/// network driver routes the packet over the matching provisioned link)
/// and a scheduling weight; everything path-like (rate, delay, loss,
/// faults) lives in the driver's provisioned pipe.
pub trait Pipe {
    /// Stable leg index, stamped into `meta.pipe`.
    fn index(&self) -> u8;
    /// Relative scheduling weight for the weighted splitter.
    fn weight(&self) -> u64 {
        1
    }
    /// Tag an outgoing packet as routed over this leg.
    fn stamp(&self, pkt: &mut Packet) {
        pkt.meta.pipe = Some(self.index());
    }
}

/// The standard simulated leg: index + weight.
#[derive(Debug, Clone)]
pub struct SimPipe {
    /// Leg index, matching the driver's provisioned pipe order.
    pub index: u8,
    /// Scheduling weight (1 = equal share).
    pub weight: u64,
}

impl Pipe for SimPipe {
    fn index(&self) -> u8 {
        self.index
    }
    fn weight(&self) -> u64 {
        self.weight
    }
}

/// Tuning knobs for a [`Multiplex`] endpoint. Both ends of a flow must
/// agree on `n_pipes`; the rest is per-endpoint.
#[derive(Debug, Clone)]
pub struct MuxConfig {
    /// Number of legs (1..=16).
    pub n_pipes: usize,
    /// Datagram-to-pipe assignment policy.
    pub splitter: SplitterSpec,
    /// Emit one XOR-parity repair datagram per this many data datagrams
    /// (`None` = FEC off). Must be >= 2 when set.
    pub fec_group: Option<u32>,
    /// Target IP size of a data datagram (clamped to path MTU).
    pub dgram_ip: u32,
    /// Acknowledge after this many received data datagrams.
    pub ack_every: u32,
    /// Max unacknowledged payload bytes in flight.
    pub window: u64,
    /// A pipe with unacked datagrams and no progress for this long is
    /// declared dead and failed over.
    pub liveness_timeout: Nanos,
    /// Probe/retransmit timer tick, and the base of the per-pipe
    /// exponential probe backoff.
    pub probe_base: Nanos,
    /// Cap on the probe backoff interval.
    pub probe_max: Nanos,
}

impl Default for MuxConfig {
    fn default() -> Self {
        MuxConfig {
            n_pipes: 2,
            splitter: SplitterSpec::RoundRobin,
            fec_group: None,
            dgram_ip: 1254, // 1200 payload + MUX_HDR_IP
            ack_every: 8,
            window: 256 * 1024,
            liveness_timeout: Nanos::from_millis(200),
            probe_base: Nanos::from_millis(50),
            probe_max: Nanos::from_millis(1600),
        }
    }
}

/// Per-pipe sender-side liveness state.
#[derive(Debug, Clone)]
struct PipeHealth {
    /// Data datagrams sent over this pipe.
    sent_pkts: u64,
    /// Latest receipt count the peer reported for this pipe.
    acked_pkts: u64,
    /// Last time this pipe made ack progress (or sent its first packet).
    last_progress: Nanos,
    alive: bool,
    /// Probe backoff exponent while dead.
    backoff_exp: u32,
    /// Next allowed probe time while dead.
    next_probe: Nanos,
}

impl PipeHealth {
    fn new() -> PipeHealth {
        PipeHealth {
            sent_pkts: 0,
            acked_pkts: 0,
            last_progress: Nanos::ZERO,
            alive: true,
            backoff_exp: 0,
            next_probe: Nanos::ZERO,
        }
    }
}

/// An unacked data datagram (for failover drain + tail retransmit).
#[derive(Debug, Clone, Copy)]
struct Unacked {
    len: u32,
    pipe: u8,
}

/// Counters for one endpoint, surfaced through [`FlowStats`].
#[derive(Debug, Default, Clone, Copy)]
struct MuxStats {
    pkts_sent: u64,
    acks_sent: u64,
    retransmits: u64,
    failovers: u64,
    bytes_delivered: u64,
}

/// A multipath datagram transport: reliable byte stream over `n_pipes`
/// unreliable legs. See the module docs for the design.
pub struct Multiplex {
    flow: FlowId,
    cfg: MuxConfig,
    is_client: bool,
    connected: bool,
    hello_sent: bool,
    /// Hellos sent so far; retries rotate across pipes so establishment
    /// survives any subset of dead legs.
    hello_attempts: u64,

    // --- sender side ---
    queued: u64,
    snd_nxt: u64,
    unacked: BTreeMap<u64, Unacked>,
    retx: Vec<(u64, u32)>,
    health: Vec<PipeHealth>,
    splitter: Splitter,
    fec_accum: u32,
    fec_start: u64,
    last_cum_progress: Nanos,
    timer_gen: u64,
    timer_armed: bool,
    mtu_ip: u32,

    // --- receiver side ---
    rcv_delivered: u64,
    ooo: BTreeMap<u64, u32>,
    parity_groups: Vec<(u64, u64)>,
    rx_per_pipe: Vec<u64>,
    rx_acked_per_pipe: Vec<u64>,
    rx_since_ack: u32,

    egress: EgressPipeline,
    stats: MuxStats,
    recovered: u64,
}

impl Multiplex {
    /// Client endpoint: sends the session hello on connect.
    pub fn client(flow: FlowId, cfg: MuxConfig, seed: u64) -> Multiplex {
        Multiplex::new(flow, cfg, seed, true)
    }

    /// Server endpoint: echoes the hello (built by the passive-open
    /// acceptor installed with
    /// [`Network::set_custom_acceptor`](crate::net::Network::set_custom_acceptor)).
    pub fn server(flow: FlowId, cfg: MuxConfig, seed: u64) -> Multiplex {
        Multiplex::new(flow, cfg, seed, false)
    }

    fn new(flow: FlowId, cfg: MuxConfig, seed: u64, is_client: bool) -> Multiplex {
        assert!(
            cfg.n_pipes >= 1 && cfg.n_pipes <= 16,
            "n_pipes must be in 1..=16"
        );
        if let Some(k) = cfg.fec_group {
            assert!(k >= 2, "fec_group must be >= 2");
        }
        let splitter = Splitter::new(cfg.splitter.clone(), cfg.n_pipes, SimRng::new(seed));
        Multiplex {
            flow,
            is_client,
            connected: false,
            hello_sent: false,
            hello_attempts: 0,
            queued: 0,
            snd_nxt: 0,
            unacked: BTreeMap::new(),
            retx: Vec::new(),
            health: vec![PipeHealth::new(); cfg.n_pipes],
            splitter,
            fec_accum: 0,
            fec_start: 0,
            last_cum_progress: Nanos::ZERO,
            timer_gen: 0,
            timer_armed: false,
            mtu_ip: 1500,
            rcv_delivered: 0,
            ooo: BTreeMap::new(),
            parity_groups: Vec::new(),
            rx_per_pipe: vec![0; cfg.n_pipes],
            rx_acked_per_pipe: vec![0; cfg.n_pipes],
            rx_since_ack: 0,
            egress: EgressPipeline::new(EgressLabels::MUX),
            stats: MuxStats::default(),
            recovered: 0,
            cfg,
        }
    }

    /// Datagrams recovered by XOR-parity FEC at this endpoint.
    pub fn fec_recovered(&self) -> u64 {
        self.recovered
    }

    /// Pipes currently scored alive at this endpoint.
    pub fn alive_pipes(&self) -> usize {
        self.health.iter().filter(|h| h.alive).count()
    }

    fn dgram_ip(&self) -> u32 {
        self.cfg.dgram_ip.min(self.mtu_ip).max(MUX_HDR_IP + 1)
    }

    fn ctx(&self, now: Nanos) -> ShapeCtx {
        ShapeCtx {
            flow: self.flow,
            now,
            cwnd: u64::MAX,
            pacing_rate_bps: None,
            in_slow_start: false,
            bytes_sent: self.snd_nxt,
            pkts_sent: self.stats.pkts_sent,
            segs_sent: self.stats.pkts_sent,
            mtu_ip: self.dgram_ip(),
            mss: self.dgram_ip() - MUX_HDR_IP,
        }
    }

    fn outstanding_bytes(&self) -> u64 {
        self.unacked.values().map(|u| u64::from(u.len)).sum()
    }

    fn alive_mask(&self) -> Vec<bool> {
        self.health.iter().map(|h| h.alive).collect()
    }

    fn mk_dgram(&self, kind: PacketKind, seq: u64, ack: u64, payload: u32, pipe: usize) -> Packet {
        let mut p = Packet::tcp_data(self.flow, seq, ack, payload);
        p.kind = kind;
        p.wire_len = payload + MUX_HDR_IP + ETH;
        p.meta.pipe = Some(pipe as u8);
        p
    }

    /// Control datagram (hello/probe/ack): fixed header-only size.
    fn mk_ctl(&self, kind: PacketKind, seq: u64, ack: u64, pipe: usize) -> Packet {
        let mut p = self.mk_dgram(kind, seq, ack, 0, pipe);
        p.wire_len = MUX_HDR_IP + ETH;
        p
    }

    fn arm_timer(&mut self, now: Nanos, acts: &mut Vec<TcpAction>) {
        let need = (self.is_client && self.hello_sent && !self.connected)
            || !self.unacked.is_empty()
            || self.health.iter().any(|h| !h.alive);
        if need && !self.timer_armed {
            self.timer_armed = true;
            self.timer_gen += 1;
            acts.push(TcpAction::ArmTimer {
                kind: TimerKind::Probe,
                at: now + self.cfg.probe_base,
                gen: self.timer_gen,
            });
        }
    }

    /// Send one data datagram (fresh or retransmit) through the shared
    /// egress pipeline on a splitter-chosen live pipe.
    fn emit_data(
        &mut self,
        seq: u64,
        len: u32,
        retransmit: bool,
        now: Nanos,
        cpu: &mut Cpu,
        acts: &mut Vec<TcpAction>,
    ) {
        let ctx = self.ctx(now);
        let alive = self.alive_mask();
        let pipe = self.splitter.pick(&alive, false);
        let ip = if retransmit {
            self.stats.retransmits += 1;
            self.egress
                .size_retransmit(&ctx, len + MUX_HDR_IP, MUX_HDR_IP + 1, self.dgram_ip())
        } else {
            len + MUX_HDR_IP
        };
        let len = ip - MUX_HDR_IP;
        let mut p = self.mk_dgram(PacketKind::MuxData, seq, self.rcv_delivered, len, pipe);
        p.meta.retransmit = retransmit;
        let wire = u64::from(p.wire_len);
        let paced = self
            .egress
            .pace_segment(&ctx, now, cpu, u64::from(len), 1, wire, false);
        p.meta.shaped = paced.shaped;
        self.health[pipe].sent_pkts += 1;
        if self.health[pipe].sent_pkts == 1 {
            self.health[pipe].last_progress = now;
        }
        self.stats.pkts_sent += 1;
        self.unacked.insert(
            seq,
            Unacked {
                len,
                pipe: pipe as u8,
            },
        );
        telemetry::counter("stack.mux.tx_pkts").inc();
        acts.push(TcpAction::SendSeg(SegDesc::new(
            self.flow,
            vec![p],
            paced.eligible,
        )));
        // FEC bookkeeping over fresh data only.
        if !retransmit {
            if let Some(k) = self.cfg.fec_group {
                if self.fec_accum == 0 {
                    self.fec_start = seq;
                }
                self.fec_accum += 1;
                if self.fec_accum >= k {
                    self.emit_parity(seq + u64::from(len), now, cpu, acts);
                }
            }
        }
    }

    fn emit_parity(
        &mut self,
        group_end: u64,
        now: Nanos,
        cpu: &mut Cpu,
        acts: &mut Vec<TcpAction>,
    ) {
        let ctx = self.ctx(now);
        let alive = self.alive_mask();
        let pipe = self.splitter.pick(&alive, true);
        // Parity carries group bounds in seq/ack; its wire size matches a
        // data datagram so it doesn't betray itself by length.
        let mut p = self.mk_dgram(PacketKind::MuxParity, self.fec_start, group_end, 0, pipe);
        p.wire_len = self.dgram_ip() + ETH;
        let wire = u64::from(p.wire_len);
        let paced = self.egress.pace_segment(&ctx, now, cpu, 0, 1, wire, false);
        p.meta.shaped = paced.shaped;
        self.stats.pkts_sent += 1;
        telemetry::counter("stack.mux.parity_pkts").inc();
        acts.push(TcpAction::SendSeg(SegDesc::new(
            self.flow,
            vec![p],
            paced.eligible,
        )));
        self.fec_accum = 0;
    }

    /// Advance in-order delivery; returns delivered byte count.
    fn advance_delivery(&mut self) -> u64 {
        let mut total = 0u64;
        while let Some((&seq, &len)) = self.ooo.iter().next() {
            if seq > self.rcv_delivered {
                break;
            }
            self.ooo.remove(&seq);
            let end = seq + u64::from(len);
            if end > self.rcv_delivered {
                total += end - self.rcv_delivered;
                self.rcv_delivered = end;
            }
        }
        self.parity_groups
            .retain(|&(_, end)| end > self.rcv_delivered);
        self.stats.bytes_delivered += total;
        total
    }

    /// Try XOR-parity recovery: a stored group with exactly one missing
    /// contiguous range can be reconstructed.
    fn try_fec_recover(&mut self) {
        let groups = self.parity_groups.clone();
        for (start, end) in groups {
            let mut cursor = start.max(self.rcv_delivered);
            let mut gaps: Vec<(u64, u64)> = Vec::new();
            for (&seq, &len) in self.ooo.range(start..end) {
                if seq > cursor {
                    gaps.push((cursor, seq));
                }
                cursor = cursor.max(seq + u64::from(len));
            }
            if cursor < end {
                gaps.push((cursor, end));
            }
            if gaps.len() == 1 {
                let (lo, hi) = gaps[0];
                self.ooo.insert(lo, (hi - lo) as u32);
                self.recovered += 1;
                telemetry::counter("stack.mux.fec_recovered").inc();
                self.parity_groups.retain(|&(s, _)| s != start);
            } else if gaps.is_empty() {
                self.parity_groups.retain(|&(s, _)| s != start);
            }
        }
    }

    /// Emit acks: one per pipe with unreported receipts.
    fn emit_acks(&mut self, acts: &mut Vec<TcpAction>) {
        for i in 0..self.cfg.n_pipes {
            if self.rx_per_pipe[i] > self.rx_acked_per_pipe[i] {
                let p = self.mk_ctl(
                    PacketKind::MuxAck,
                    self.rx_per_pipe[i],
                    self.rcv_delivered,
                    i,
                );
                self.rx_acked_per_pipe[i] = self.rx_per_pipe[i];
                self.stats.acks_sent += 1;
                telemetry::counter("stack.mux.acks_sent").inc();
                acts.push(TcpAction::SendCtl(p));
            }
        }
        self.rx_since_ack = 0;
    }

    /// Process a cumulative ack + per-pipe receipt report.
    fn on_ack(&mut self, pkt: &Packet, now: Nanos, acts: &mut Vec<TcpAction>) {
        let was_full = self.outstanding_bytes() + u64::from(self.dgram_ip()) > self.cfg.window;
        // Cumulative ack clears the retransmission ledger.
        let cum = pkt.ack;
        let cleared: Vec<u64> = self
            .unacked
            .range(..cum)
            .filter(|(&s, u)| s + u64::from(u.len) <= cum)
            .map(|(&s, _)| s)
            .collect();
        if !cleared.is_empty() {
            self.last_cum_progress = now;
        }
        for s in cleared {
            self.unacked.remove(&s);
        }
        self.retx.retain(|&(s, len)| s + u64::from(len) > cum);
        self.egress.on_ack(&self.ctx(now));
        // Per-pipe liveness: the peer reports how many datagrams it has
        // received over the ack's pipe.
        if let Some(pi) = pkt.meta.pipe {
            let i = pi as usize;
            if i < self.health.len() {
                let h = &mut self.health[i];
                if pkt.seq > h.acked_pkts {
                    h.acked_pkts = pkt.seq;
                    h.last_progress = now;
                }
                if !h.alive {
                    // Any ack on a dead pipe revives it.
                    h.alive = true;
                    h.backoff_exp = 0;
                    h.last_progress = now;
                    telemetry::counter("stack.mux.revives").inc();
                }
            }
        }
        if was_full && self.outstanding_bytes() + u64::from(self.dgram_ip()) <= self.cfg.window {
            acts.push(TcpAction::Sendable);
        }
    }

    /// Declare pipe `i` dead: drain its unacked datagrams back into the
    /// retransmission queue (they will be re-sent over live pipes) and
    /// start probing it with exponential backoff.
    fn fail_over(&mut self, i: usize, now: Nanos) {
        let h = &mut self.health[i];
        h.alive = false;
        h.backoff_exp = 0;
        h.next_probe = now + self.cfg.probe_base;
        self.stats.failovers += 1;
        telemetry::counter("stack.mux.failovers").inc();
        let drained: Vec<(u64, u32)> = self
            .unacked
            .iter()
            .filter(|(_, u)| u.pipe == i as u8)
            .map(|(&s, u)| (s, u.len))
            .collect();
        for (s, len) in drained {
            if !self.retx.iter().any(|&(rs, _)| rs == s) {
                self.retx.push((s, len));
            }
        }
        self.retx.sort_unstable();
    }
}

impl TransportCore for Multiplex {
    fn input(&mut self, pkt: &Packet, now: Nanos, _cpu: &mut Cpu) -> Vec<TcpAction> {
        let mut acts = Vec::new();
        match pkt.kind {
            PacketKind::MuxInit => {
                if let Some(pi) = pkt.meta.pipe {
                    let i = pi as usize;
                    if i < self.rx_per_pipe.len() {
                        self.rx_per_pipe[i] += 1;
                    }
                }
                if !self.is_client {
                    // Echo the hello once; answer probes with an ack on
                    // the probed pipe either way.
                    if !self.connected {
                        self.connected = true;
                        // Echo on the pipe the hello arrived on: that leg
                        // demonstrably works in at least one direction,
                        // while pipe 0 may be the dead leg the client's
                        // hello retry just routed around.
                        let pipe = pkt
                            .meta
                            .pipe
                            .map(|p| (p as usize).min(self.cfg.n_pipes - 1))
                            .unwrap_or(0);
                        let echo = self.mk_ctl(PacketKind::MuxInit, 0, 0, pipe);
                        acts.push(TcpAction::SendCtl(echo));
                        acts.push(TcpAction::Connected);
                    }
                    self.emit_acks(&mut acts);
                } else if !self.connected {
                    self.connected = true;
                    acts.push(TcpAction::Connected);
                    acts.push(TcpAction::Sendable);
                }
            }
            PacketKind::MuxData => {
                if let Some(pi) = pkt.meta.pipe {
                    let i = pi as usize;
                    if i < self.rx_per_pipe.len() {
                        self.rx_per_pipe[i] += 1;
                    }
                }
                let end = pkt.seq_end();
                if end <= self.rcv_delivered || self.ooo.contains_key(&pkt.seq) {
                    telemetry::counter("stack.mux.dup_drops").inc();
                } else {
                    self.ooo.insert(pkt.seq, pkt.payload);
                    self.try_fec_recover();
                    let n = self.advance_delivery();
                    if n > 0 {
                        acts.push(TcpAction::Deliver(n));
                    }
                }
                self.rx_since_ack += 1;
                if self.rx_since_ack >= self.cfg.ack_every {
                    self.emit_acks(&mut acts);
                }
            }
            PacketKind::MuxParity => {
                if let Some(pi) = pkt.meta.pipe {
                    let i = pi as usize;
                    if i < self.rx_per_pipe.len() {
                        self.rx_per_pipe[i] += 1;
                    }
                }
                let (start, end) = (pkt.seq, pkt.ack);
                if end > self.rcv_delivered && !self.parity_groups.iter().any(|&(s, _)| s == start)
                {
                    self.parity_groups.push((start, end));
                }
                self.try_fec_recover();
                let n = self.advance_delivery();
                if n > 0 {
                    acts.push(TcpAction::Deliver(n));
                }
            }
            PacketKind::MuxAck => self.on_ack(pkt, now, &mut acts),
            _ => {}
        }
        self.arm_timer(now, &mut acts);
        acts
    }

    fn output(&mut self, now: Nanos, cpu: &mut Cpu) -> Vec<TcpAction> {
        let mut acts = Vec::new();
        if self.is_client && !self.hello_sent {
            self.hello_sent = true;
            self.hello_attempts = 1;
            let hello = self.mk_ctl(PacketKind::MuxInit, 0, 0, 0);
            acts.push(TcpAction::SendCtl(hello));
        }
        if !self.connected {
            // Still arm the probe timer: the hello may have gone down a
            // dead leg, and only the timer can retry it elsewhere.
            self.arm_timer(now, &mut acts);
            return acts;
        }
        // Drain retransmissions first (failover / tail-loss recovery).
        let retx = std::mem::take(&mut self.retx);
        for (seq, len) in retx {
            if self.unacked.contains_key(&seq) {
                self.emit_data(seq, len, true, now, cpu, &mut acts);
            }
        }
        // Fresh data, windowed.
        let mss = u64::from(self.dgram_ip() - MUX_HDR_IP);
        while self.queued > 0 && self.outstanding_bytes() + mss <= self.cfg.window {
            let len = self.queued.min(mss) as u32;
            let seq = self.snd_nxt;
            self.queued -= u64::from(len);
            self.snd_nxt += u64::from(len);
            self.emit_data(seq, len, false, now, cpu, &mut acts);
        }
        self.arm_timer(now, &mut acts);
        acts
    }

    fn on_timer(&mut self, kind: TimerKind, gen: u64, now: Nanos) -> Vec<TcpAction> {
        if kind != TimerKind::Probe || gen != self.timer_gen {
            return Vec::new();
        }
        self.timer_armed = false;
        let mut acts = Vec::new();
        // Connection racing: an unanswered hello is retried on the next
        // pipe (rotating), so establishment needs only one working leg
        // in each direction — the hello itself carries no liveness
        // signal, so a pinned pipe would deadlock behind one dead leg.
        if self.is_client && !self.connected {
            let pipe = (self.hello_attempts as usize) % self.cfg.n_pipes;
            self.hello_attempts += 1;
            telemetry::counter("stack.mux.hello_retries").inc();
            let hello = self.mk_ctl(PacketKind::MuxInit, 0, 0, pipe);
            acts.push(TcpAction::SendCtl(hello));
        }
        // Liveness scoring: a pipe with packets outstanding and no ack
        // progress for liveness_timeout is failed over.
        for i in 0..self.cfg.n_pipes {
            let h = &self.health[i];
            if h.alive
                && h.sent_pkts > h.acked_pkts
                && now.saturating_sub(h.last_progress) >= self.cfg.liveness_timeout
                && self.health.iter().filter(|h| h.alive).count() > 1
            {
                self.fail_over(i, now);
            }
        }
        // Probe dead pipes with exponential backoff; an ack coming back
        // revives the pipe.
        for i in 0..self.cfg.n_pipes {
            let (probe, next_exp) = {
                let h = &self.health[i];
                (!h.alive && now >= h.next_probe, h.backoff_exp + 1)
            };
            if probe {
                let p = self.mk_ctl(PacketKind::MuxInit, 0, self.rcv_delivered, i);
                telemetry::counter("stack.mux.probes").inc();
                acts.push(TcpAction::SendCtl(p));
                let h = &mut self.health[i];
                h.backoff_exp = next_exp;
                let mut wait = self.cfg.probe_base;
                for _ in 0..next_exp.min(16) {
                    wait = (wait * 2).min(self.cfg.probe_max);
                }
                h.next_probe = now + wait;
            }
        }
        // Tail-loss recovery: if the cumulative ack has stalled, requeue
        // the oldest unacked datagram.
        if !self.unacked.is_empty()
            && now.saturating_sub(self.last_cum_progress) >= self.cfg.liveness_timeout
        {
            if let Some((&seq, u)) = self.unacked.iter().next() {
                if !self.retx.iter().any(|&(s, _)| s == seq) {
                    self.retx.push((seq, u.len));
                }
            }
            self.last_cum_progress = now;
            acts.push(TcpAction::Sendable);
        }
        self.arm_timer(now, &mut acts);
        acts
    }

    fn write(&mut self, len: u64) -> u64 {
        self.queued += len;
        len
    }

    fn set_shaper(&mut self, shaper: BoxShaper) {
        self.egress.set_shaper(shaper);
    }

    fn set_mtu(&mut self, mtu_ip: u32) {
        self.mtu_ip = mtu_ip;
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.egress.set_tracer(tracer);
    }

    fn cwnd(&self) -> u64 {
        self.cfg.window
    }

    fn outstanding(&self) -> u64 {
        self.outstanding_bytes()
    }

    fn pacing_rate_bps(&self) -> Option<u64> {
        None
    }

    fn mtu_ip(&self) -> u32 {
        self.dgram_ip()
    }

    fn flow_stats(&self) -> FlowStats {
        FlowStats {
            bytes_delivered: self.stats.bytes_delivered,
            segs_sent: self.stats.pkts_sent,
            pkts_sent: self.stats.pkts_sent,
            acks_sent: self.stats.acks_sent,
            retransmits: self.stats.retransmits,
            timeouts: self.stats.failovers,
            shaped_segs: self.egress.shaped_segs(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuModel;

    fn cpu() -> Cpu {
        Cpu::new(CpuModel::infinitely_fast())
    }

    #[test]
    fn round_robin_rotates_and_skips_dead() {
        let mut s = Splitter::new(SplitterSpec::RoundRobin, 3, SimRng::new(1));
        let alive = vec![true, true, true];
        let picks: Vec<usize> = (0..6).map(|_| s.pick(&alive, false)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
        let alive = vec![true, false, true];
        let picks: Vec<usize> = (0..4).map(|_| s.pick(&alive, false)).collect();
        assert_eq!(picks, vec![0, 2, 0, 2]);
    }

    #[test]
    fn weighted_respects_ratio() {
        let spec = SplitterSpec::Weighted {
            weights: vec![3, 1],
        };
        let mut s = Splitter::new(spec, 2, SimRng::new(1));
        let alive = vec![true, true];
        let mut counts = [0u32; 2];
        for _ in 0..400 {
            counts[s.pick(&alive, false)] += 1;
        }
        assert_eq!(counts[0], 300);
        assert_eq!(counts[1], 100);
    }

    #[test]
    fn padded_random_is_deterministic_and_padding_aware() {
        let alive = vec![true, true, true, true];
        let mut a = Splitter::new(SplitterSpec::PaddedRandom, 4, SimRng::new(7));
        let mut b = Splitter::new(SplitterSpec::PaddedRandom, 4, SimRng::new(7));
        let pa: Vec<usize> = (0..32).map(|_| a.pick(&alive, false)).collect();
        let pb: Vec<usize> = (0..32).map(|_| b.pick(&alive, false)).collect();
        assert_eq!(pa, pb, "same seed, same assignment");
        // Padding goes to the least-loaded pipe: after loading pipe 0
        // heavily, padding must avoid it.
        let mut s = Splitter::new(SplitterSpec::PaddedRandom, 2, SimRng::new(7));
        s.sent = vec![10, 0];
        assert_eq!(s.pick(&alive[..2], true), 1);
    }

    #[test]
    fn splitter_spec_validates_weights() {
        let bad = SplitterSpec::Weighted {
            weights: vec![1, 0],
        };
        assert!(bad.validate(2).is_err());
        assert!(bad.validate(3).is_err());
        assert!(SplitterSpec::RoundRobin.validate(4).is_ok());
    }

    /// Shuttle actions between two Multiplex endpoints in memory (no
    /// Network): deliver every emitted packet, optionally dropping data
    /// datagrams routed over a victim pipe.
    fn shuttle(
        client: &mut Multiplex,
        server: &mut Multiplex,
        drop_pipe: Option<u8>,
        rounds: usize,
    ) -> u64 {
        let mut now = Nanos::ZERO;
        let mut delivered = 0u64;
        let mut timers: Vec<(bool, Nanos, u64)> = Vec::new(); // (is_client, at, gen)
        let mut inbox: Vec<(bool, Packet)> = Vec::new(); // destined-for-client?
        let mut c = cpu();

        let mut acts = client.output(now, &mut c);
        for _ in 0..rounds {
            let mut next: Vec<(bool, Packet)> = Vec::new();
            // `acts` always belongs to the client at loop top; fold in
            // pending packets both ways.
            let apply = |from_client: bool,
                         acts: Vec<TcpAction>,
                         next: &mut Vec<(bool, Packet)>,
                         timers: &mut Vec<(bool, Nanos, u64)>,
                         delivered: &mut u64| {
                for a in acts {
                    match a {
                        TcpAction::SendSeg(seg) => {
                            for p in seg.pkts {
                                if drop_pipe.is_some() && p.meta.pipe == drop_pipe {
                                    continue; // blackhole this leg
                                }
                                next.push((!from_client, p));
                            }
                        }
                        TcpAction::SendCtl(p)
                            if !(drop_pipe.is_some() && p.meta.pipe == drop_pipe) =>
                        {
                            next.push((!from_client, p));
                        }
                        TcpAction::ArmTimer { at, gen, .. } => timers.push((from_client, at, gen)),
                        // Server-side delivery: count client->server bytes.
                        TcpAction::Deliver(n) if !from_client => *delivered += n,
                        _ => {}
                    }
                }
            };
            apply(true, acts, &mut next, &mut timers, &mut delivered);
            // Deliver queued packets.
            for (to_client, p) in inbox.drain(..) {
                let ep: &mut Multiplex = if to_client { client } else { server };
                let mut got = ep.input(&p, now, &mut c);
                got.extend(ep.output(now, &mut c));
                apply(to_client, got, &mut next, &mut timers, &mut delivered);
            }
            // Fire due timers.
            now += Nanos::from_millis(60);
            let due: Vec<(bool, u64)> = timers
                .iter()
                .filter(|&&(_, at, _)| at <= now)
                .map(|&(isc, _, gen)| (isc, gen))
                .collect();
            timers.retain(|&(_, at, _)| at > now);
            for (isc, gen) in due {
                let ep: &mut Multiplex = if isc { client } else { server };
                let mut got = ep.on_timer(TimerKind::Probe, gen, now);
                got.extend(ep.output(now, &mut c));
                apply(isc, got, &mut next, &mut timers, &mut delivered);
            }
            inbox = next;
            acts = Vec::new();
            if inbox.is_empty() && timers.is_empty() && delivered > 0 {
                break;
            }
        }
        delivered
    }

    #[test]
    fn loopback_delivers_in_order_over_two_pipes() {
        let cfg = MuxConfig::default();
        let mut client = Multiplex::client(FlowId(1), cfg.clone(), 11);
        let mut server = Multiplex::server(FlowId(1), cfg, 12);
        client.write(10_000);
        let got = shuttle(&mut client, &mut server, None, 50);
        assert_eq!(got, 10_000);
        assert_eq!(server.rcv_delivered, 10_000);
        assert!(server.ooo.is_empty());
    }

    #[test]
    fn fec_recovers_single_loss_without_retransmit() {
        let cfg = MuxConfig {
            fec_group: Some(4),
            ..MuxConfig::default()
        };
        let mut client = Multiplex::client(FlowId(1), cfg.clone(), 11);
        let mut server = Multiplex::server(FlowId(1), cfg, 12);
        client.write(4 * 1200);
        // Hand-deliver: handshake, then drop exactly one data datagram.
        let mut c = cpu();
        let now = Nanos::ZERO;
        let hello = client.output(now, &mut c);
        let hello_pkt = match &hello[0] {
            TcpAction::SendCtl(p) => p.clone(),
            other => panic!("expected hello, got {other:?}"),
        };
        let mut sacts = server.input(&hello_pkt, now, &mut c);
        sacts.extend(server.output(now, &mut c));
        let echo = sacts
            .iter()
            .find_map(|a| match a {
                TcpAction::SendCtl(p) if p.kind == PacketKind::MuxInit => Some(p.clone()),
                _ => None,
            })
            .expect("echo");
        let mut cacts = client.input(&echo, now, &mut c);
        cacts.extend(client.output(now, &mut c));
        let mut data: Vec<Packet> = cacts
            .iter()
            .filter_map(|a| match a {
                TcpAction::SendSeg(seg) => Some(seg.pkts.clone()),
                _ => None,
            })
            .flatten()
            .collect();
        // 4 data + 1 parity
        assert_eq!(data.len(), 5);
        assert_eq!(
            data.iter()
                .filter(|p| p.kind == PacketKind::MuxParity)
                .count(),
            1
        );
        // Drop the second data datagram.
        let victim = data.remove(1);
        assert_eq!(victim.kind, PacketKind::MuxData);
        let mut delivered = 0u64;
        for p in &data {
            for a in server.input(p, now, &mut c) {
                if let TcpAction::Deliver(n) = a {
                    delivered += n;
                }
            }
        }
        assert_eq!(delivered, 4 * 1200, "parity filled the gap");
        assert_eq!(server.fec_recovered(), 1);
        assert_eq!(server.rcv_delivered, 4 * 1200);
    }

    #[test]
    fn dead_pipe_fails_over_and_stream_completes() {
        let cfg = MuxConfig {
            n_pipes: 2,
            liveness_timeout: Nanos::from_millis(100),
            probe_base: Nanos::from_millis(40),
            ..MuxConfig::default()
        };
        let mut client = Multiplex::client(FlowId(1), cfg.clone(), 11);
        let mut server = Multiplex::server(FlowId(1), cfg, 12);
        client.write(20_000);
        let got = shuttle(&mut client, &mut server, Some(1), 200);
        assert_eq!(got, 20_000, "all bytes arrive despite a black-holed pipe");
        assert!(
            client.stats.failovers >= 1,
            "the dead pipe was detected and failed over"
        );
        assert_eq!(client.alive_pipes(), 1);
    }

    #[test]
    fn hello_retry_establishes_through_dead_first_pipe() {
        // Pipe 0 — the leg the first hello is pinned to — is black-holed
        // from t=0. Establishment must race the retry onto pipe 1 and
        // the whole stream must still complete.
        let cfg = MuxConfig {
            n_pipes: 2,
            liveness_timeout: Nanos::from_millis(100),
            probe_base: Nanos::from_millis(40),
            ..MuxConfig::default()
        };
        let mut client = Multiplex::client(FlowId(1), cfg.clone(), 11);
        let mut server = Multiplex::server(FlowId(1), cfg, 12);
        client.write(20_000);
        let got = shuttle(&mut client, &mut server, Some(0), 200);
        assert_eq!(got, 20_000, "stream completes despite dead hello pipe");
        assert!(client.connected, "hello retry raced onto the live pipe");
        assert!(client.hello_attempts >= 2, "the pinned hello was retried");
    }

    #[test]
    fn window_limits_outstanding_bytes() {
        let cfg = MuxConfig {
            window: 4 * 1200,
            ..MuxConfig::default()
        };
        let mut client = Multiplex::client(FlowId(1), cfg.clone(), 11);
        let mut server = Multiplex::server(FlowId(1), cfg, 12);
        client.write(100_000);
        let mut c = cpu();
        let now = Nanos::ZERO;
        let hello = client.output(now, &mut c);
        let hello_pkt = match &hello[0] {
            TcpAction::SendCtl(p) => p.clone(),
            _ => panic!(),
        };
        let mut sacts = server.input(&hello_pkt, now, &mut c);
        sacts.extend(server.output(now, &mut c));
        let echo = sacts
            .iter()
            .find_map(|a| match a {
                TcpAction::SendCtl(p) => Some(p.clone()),
                _ => None,
            })
            .unwrap();
        let mut cacts = client.input(&echo, now, &mut c);
        cacts.extend(client.output(now, &mut c));
        let sent: usize = cacts
            .iter()
            .filter(|a| matches!(a, TcpAction::SendSeg(_)))
            .count();
        assert_eq!(sent, 4, "window caps the initial burst");
        assert!(client.outstanding() <= client.cwnd());
    }
}
