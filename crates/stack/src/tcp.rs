//! TCP with the asynchronous send path the paper dissects.
//!
//! The model keeps full sequence-number accounting (so delivery
//! correctness is checkable) but carries no payload bytes. It implements:
//!
//! * window-gated, buffer-backed sending — `send()` only copies into the
//!   socket buffer; transmission happens when cwnd/rwnd open (§2.3's first
//!   asynchrony),
//! * TSO segment construction with CC-driven autosizing (Linux's
//!   `tcp_tso_autosize`: roughly 1 ms of the pacing rate, at least 2 MSS),
//! * the three Stob hook points: TSO size, per-packet size, extra
//!   departure delay (see [`crate::shaper::Shaper`]),
//! * pacing timestamps consumed by the FQ qdisc,
//! * TCP-small-queues back-pressure (bytes in qdisc+NIC are capped;
//!   completions re-trigger output),
//! * RTT estimation (RFC 6298), RTO with exponential backoff, fast
//!   retransmit on three duplicate ACKs with a NewReno-style recovery
//!   point, delayed ACKs, optional Nagle,
//! * SYN/SYN-ACK establishment and FIN teardown, so captures contain the
//!   handshake packets a real pcap shows.
//!
//! Simplifications (documented for fidelity review): no SACK (recovery is
//! NewReno-like), no ECN, no window scaling negotiation (windows are byte
//! counts directly), and the receive buffer is drained instantly by the
//! application, so the advertised window is constant at `cfg.recv_wnd`.

use crate::cc::{make_cc, AckInfo, CongestionControl};
use crate::config::{StackConfig, IP_TCP_OVERHEAD, MIN_IP_PACKET};
use crate::cpu::Cpu;
use crate::egress::{EgressLabels, EgressPipeline, FlowStats, TransportCore};
use crate::qdisc::SegDesc;
use crate::shaper::{BoxShaper, ShapeCtx};
use netsim::{FlowId, Nanos, Packet, PacketKind};
use std::collections::BTreeMap;

/// Connection lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpState {
    Closed,
    SynSent,
    SynReceived,
    Established,
    FinWait,
    CloseWait,
    Done,
}

/// What timer kind a scheduled event refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerKind {
    Rto,
    DelAck,
    /// Multipath liveness probe / failover tick (`stack::mux`). TCP and
    /// QUIC ignore it.
    Probe,
}

/// Effects the connection asks the host/event loop to carry out.
#[derive(Debug)]
pub enum TcpAction {
    /// Paced data segment for the qdisc.
    SendSeg(SegDesc),
    /// Unpaced control packet (SYN/SYN-ACK/ACK/FIN) for the prio band.
    SendCtl(Packet),
    /// (Re-)arm a timer; `gen` disambiguates stale events.
    ArmTimer {
        kind: TimerKind,
        at: Nanos,
        gen: u64,
    },
    /// `n` new in-order payload bytes are available to the application.
    Deliver(u64),
    /// Socket-buffer space freed after the app previously hit the limit.
    Sendable,
    /// Handshake completed.
    Connected,
    /// Peer's FIN fully received.
    PeerClosed,
}

/// Per-connection counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConnStats {
    pub bytes_acked: u64,
    pub bytes_delivered: u64,
    pub segs_sent: u64,
    pub pkts_sent: u64,
    pub acks_sent: u64,
    pub fast_retransmits: u64,
    pub rtos: u64,
    pub max_cwnd: u64,
    pub shaped_segs: u64,
}

/// One endpoint of a TCP connection.
pub struct TcpConn {
    pub flow: FlowId,
    pub cfg: StackConfig,
    pub cc: Box<dyn CongestionControl>,
    /// Shared egress pipeline: owns the shaper, pacing clock, CPU charge
    /// and tracer hookup (see [`crate::egress`]).
    pub egress: EgressPipeline,
    pub state: TcpState,
    is_client: bool,

    // ---- send side ----
    app_written: u64,
    snd_una: u64,
    snd_nxt: u64,
    peer_rwnd: u64,
    dup_acks: u32,
    recovery_point: Option<u64>,
    /// Bytes currently in qdisc + NIC (TSQ accounting).
    tsq_bytes: u64,
    blocked: bool,
    fin_queued: bool,
    fin_sent: bool,

    // ---- timers / RTT ----
    srtt: Option<Nanos>,
    rttvar: Nanos,
    rto: Nanos,
    rto_backoff: u32,
    rto_deadline: Nanos,
    rto_armed: bool,
    rto_gen: u64,
    delack_pending: bool,
    delack_gen: u64,
    /// Outstanding RTT probes: seq_end -> send time. Multiple probes
    /// approximate per-segment TCP timestamps, giving HyStart and the
    /// RTO estimator sub-RTT reaction time. Cleared by any
    /// retransmission (Karn's algorithm).
    rtt_probes: BTreeMap<u64, Nanos>,
    /// SACK scoreboard: received-above-cumulative ranges reported by
    /// the peer, as start -> end (RFC 2018-lite, one block per ACK).
    sacked: BTreeMap<u64, u64>,

    // ---- receive side ----
    rcv_nxt: u64,
    ooo: BTreeMap<u64, u64>,
    delack_count: u32,
    peer_fin_at: Option<u64>,
    peer_closed_delivered: bool,

    // ---- progress counters for ShapeCtx ----
    data_bytes_sent: u64,
    data_pkts_sent: u64,
    data_segs_sent: u64,

    pub stats: ConnStats,
}

impl TcpConn {
    pub fn new(flow: FlowId, cfg: StackConfig, is_client: bool) -> Self {
        let cc = make_cc(cfg.cc, cfg.mss(), cfg.init_cwnd_segs);
        TcpConn {
            flow,
            cc,
            egress: EgressPipeline::new(EgressLabels::TCP),
            state: TcpState::Closed,
            is_client,
            app_written: 0,
            snd_una: 0,
            snd_nxt: 0,
            peer_rwnd: cfg.recv_wnd, // assume symmetric until first packet
            dup_acks: 0,
            recovery_point: None,
            tsq_bytes: 0,
            blocked: false,
            fin_queued: false,
            fin_sent: false,
            srtt: None,
            rttvar: Nanos::ZERO,
            rto: cfg.init_rto,
            rto_backoff: 0,
            rto_deadline: Nanos::ZERO,
            rto_armed: false,
            rto_gen: 0,
            delack_pending: false,
            delack_gen: 0,
            rtt_probes: BTreeMap::new(),
            sacked: BTreeMap::new(),
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            delack_count: 0,
            peer_fin_at: None,
            peer_closed_delivered: false,
            data_bytes_sent: 0,
            data_pkts_sent: 0,
            data_segs_sent: 0,
            stats: ConnStats::default(),
            cfg,
        }
    }

    pub fn set_shaper(&mut self, shaper: BoxShaper) {
        self.egress.set_shaper(shaper);
    }

    /// Install a flow-trace sink: every subsequent packet-size, TSO and
    /// pacing decision this endpoint makes is recorded as a
    /// [`netsim::telemetry::FlowEvent`].
    pub fn set_tracer(&mut self, tracer: netsim::telemetry::Tracer) {
        self.egress.set_tracer(tracer);
    }

    /// Mid-flow path-MTU reduction (the stand-in for an ICMP
    /// "fragmentation needed"): future packetization uses the smaller
    /// size. Only shrinks — never grows past the configured MTU — and
    /// never goes below the RFC 879 minimum packet.
    pub fn set_mtu(&mut self, mtu_ip: u32) {
        self.cfg.mtu_ip = mtu_ip.clamp(MIN_IP_PACKET, self.cfg.mtu_ip);
    }

    // ---------------------------------------------------------------
    // Introspection
    // ---------------------------------------------------------------

    pub fn inflight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }
    /// Bytes SACKed above the cumulative ACK point.
    pub fn sacked_bytes(&self) -> u64 {
        self.sacked
            .iter()
            .map(|(&s, &e)| e - s.max(self.snd_una).min(e))
            .sum()
    }
    /// RFC 6675 "pipe": bytes believed to actually be in the network.
    pub fn pipe(&self) -> u64 {
        self.inflight().saturating_sub(self.sacked_bytes())
    }
    fn note_sack(&mut self, lo: u64, hi: u64) {
        if hi <= lo || hi <= self.snd_una {
            return;
        }
        let lo = lo.max(self.snd_una);
        // Merge with overlapping/adjacent ranges.
        let mut new_lo = lo;
        let mut new_hi = hi;
        let overlapping: Vec<u64> = self
            .sacked
            .range(..=hi)
            .filter(|(&s, &e)| e >= lo && s <= hi)
            .map(|(&s, _)| s)
            .collect();
        for s in overlapping {
            let e = self.sacked.remove(&s).expect("range present");
            new_lo = new_lo.min(s);
            new_hi = new_hi.max(e);
        }
        self.sacked.insert(new_lo, new_hi);
    }
    fn drop_sacked_below_una(&mut self) {
        let una = self.snd_una;
        let stale: Vec<u64> = self
            .sacked
            .iter()
            .filter(|(_, &e)| e <= una)
            .map(|(&s, _)| s)
            .collect();
        for s in stale {
            self.sacked.remove(&s);
        }
        // Trim a range straddling una.
        if let Some((&s, &e)) = self.sacked.range(..una).next_back() {
            if e > una {
                self.sacked.remove(&s);
                self.sacked.insert(una, e);
            }
        }
    }
    pub fn send_buffered(&self) -> u64 {
        self.app_written - self.snd_una
    }
    pub fn established(&self) -> bool {
        matches!(
            self.state,
            TcpState::Established | TcpState::FinWait | TcpState::CloseWait
        )
    }
    pub fn srtt(&self) -> Option<Nanos> {
        self.srtt
    }
    pub fn cwnd(&self) -> u64 {
        self.cc.cwnd()
    }
    pub fn bytes_remaining_to_send(&self) -> u64 {
        self.app_written - self.snd_nxt
    }
    /// All data (and FIN, if requested) sent and acknowledged.
    pub fn send_complete(&self) -> bool {
        self.snd_una == self.app_written && (!self.fin_queued || self.fin_sent)
    }

    fn shape_ctx(&self, now: Nanos) -> ShapeCtx {
        ShapeCtx {
            flow: self.flow,
            now,
            cwnd: self.cc.cwnd(),
            pacing_rate_bps: if self.cfg.pacing {
                self.cc.pacing_rate_bps(self.srtt)
            } else {
                None
            },
            in_slow_start: self.cc.in_slow_start(),
            bytes_sent: self.data_bytes_sent,
            pkts_sent: self.data_pkts_sent,
            segs_sent: self.data_segs_sent,
            mtu_ip: self.cfg.mtu_ip,
            mss: self.cfg.mss(),
        }
    }

    // ---------------------------------------------------------------
    // Application interface
    // ---------------------------------------------------------------

    /// Start an active open. Returns the SYN to transmit.
    pub fn connect(&mut self, now: Nanos) -> Vec<TcpAction> {
        assert_eq!(self.state, TcpState::Closed);
        assert!(self.is_client);
        self.state = TcpState::SynSent;
        self.rtt_probes.insert(0, now);
        let mut pkt = Packet::tcp_ack(self.flow, 0, 0);
        pkt.kind = PacketKind::TcpSyn;
        pkt.rwnd = self.cfg.recv_wnd;
        let mut acts = vec![TcpAction::SendCtl(pkt)];
        acts.extend(self.arm_rto(now));
        acts
    }

    /// `send()` syscall: copy up to `len` bytes into the socket buffer.
    /// Returns bytes accepted (0 when the buffer is full — the app must
    /// wait for [`TcpAction::Sendable`]).
    pub fn write(&mut self, len: u64) -> u64 {
        let space = self.cfg.send_buf.saturating_sub(self.send_buffered());
        let accepted = len.min(space);
        self.app_written += accepted;
        if accepted < len {
            self.blocked = true;
        }
        accepted
    }

    /// Application close: queue a FIN after all written data.
    pub fn close(&mut self) {
        self.fin_queued = true;
        if self.state == TcpState::Established {
            self.state = TcpState::FinWait;
        }
    }

    // ---------------------------------------------------------------
    // Output path (transport -> qdisc)
    // ---------------------------------------------------------------

    /// Push as much data as window, TSQ and pacing permit. This is the
    /// routine every ACK/credit/write re-enters; the paper's point is
    /// that *this* code — not the application — decides the final packet
    /// sequence.
    pub fn output(&mut self, now: Nanos, cpu: &mut Cpu) -> Vec<TcpAction> {
        let mut acts = Vec::new();
        if !self.established() {
            return acts;
        }
        loop {
            let available = self.app_written - self.snd_nxt;
            if available == 0 {
                break;
            }
            let wnd = self.cc.cwnd().min(self.peer_rwnd);
            // SACK-aware: window-gate on the pipe estimate so recovery
            // keeps transmitting new data while holes are repaired.
            let inflight = self.pipe();
            if inflight >= wnd {
                break;
            }
            if self.tsq_bytes >= self.cfg.tsq_limit {
                break; // TCP small queues: wait for NIC completions
            }
            let budget = (wnd - inflight).min(available);
            let mss = self.cfg.mss() as u64;

            // Nagle: hold sub-MSS data while anything is outstanding.
            if self.cfg.nagle && budget < mss && inflight > 0 && !self.fin_queued {
                break;
            }

            let ctx = self.shape_ctx(now);
            // TSO autosizing (stage ①), then the shaper's resegment hook
            // (stage ②) via the shared pipeline.
            let proposed_pkts =
                EgressPipeline::tso_autosize(&ctx, self.cfg.tso, self.cfg.tso_max_pkts, budget);
            let shaped_pkts = self.egress.segment_pkts(&ctx, proposed_pkts);

            // Build the segment's packets, consulting the per-packet
            // sizing hook (flexible TSO, §5.5 — stage ③).
            let mut pkts: Vec<Packet> = Vec::with_capacity(shaped_pkts as usize);
            let mut remaining = budget;
            let mut shaped = shaped_pkts != proposed_pkts;
            for i in 0..shaped_pkts {
                if remaining == 0 {
                    break;
                }
                let natural_payload = remaining.min(mss) as u32;
                let proposed_ip = natural_payload + IP_TCP_OVERHEAD;
                let ip = self.egress.packet_ip_size(
                    &ctx,
                    i,
                    proposed_ip,
                    MIN_IP_PACKET.min(proposed_ip),
                    self.cfg.mtu_ip.min(proposed_ip),
                );
                shaped |= ip != proposed_ip;
                let payload = ip - IP_TCP_OVERHEAD;
                let mut pkt = Packet::tcp_data(
                    self.flow,
                    self.snd_nxt + (budget - remaining),
                    self.rcv_nxt,
                    payload,
                );
                pkt.rwnd = self.cfg.recv_wnd;
                pkt.meta.tso_burst = self.data_segs_sent + 1;
                pkt.meta.shaped = shaped;
                remaining -= payload as u64;
                pkts.push(pkt);
            }
            if pkts.is_empty() {
                break;
            }
            let payload_total = budget - remaining;
            let npkts = pkts.len() as u32;

            // Stages ④–⑥: CPU charge, pacing gate, shaper extra delay
            // and pacing-clock advance, all in the shared pipeline.
            let wire_bytes: u64 = pkts.iter().map(|p| p.wire_len as u64).sum();
            let paced =
                self.egress
                    .pace_segment(&ctx, now, cpu, payload_total, npkts, wire_bytes, shaped);
            let eligible = paced.eligible;
            if paced.shaped {
                for p in &mut pkts {
                    p.meta.shaped = true;
                }
                self.stats.shaped_segs += 1;
            }

            self.snd_nxt += payload_total;
            self.data_bytes_sent += payload_total;
            self.data_pkts_sent += npkts as u64;
            self.data_segs_sent += 1;
            self.stats.segs_sent += 1;
            self.stats.pkts_sent += npkts as u64;
            self.stats.max_cwnd = self.stats.max_cwnd.max(self.cc.cwnd());
            self.tsq_bytes += wire_bytes;
            if self.rtt_probes.len() < 64 {
                self.rtt_probes.insert(self.snd_nxt, now);
            }
            acts.push(TcpAction::SendSeg(SegDesc::new(self.flow, pkts, eligible)));
            acts.extend(self.arm_rto(now));
        }
        // FIN rides after all data has been segmented.
        if self.fin_queued
            && !self.fin_sent
            && self.app_written == self.snd_nxt
            && self.established()
        {
            self.fin_sent = true;
            let mut fin = Packet::tcp_ack(self.flow, self.snd_nxt, self.rcv_nxt);
            fin.kind = PacketKind::TcpFin;
            fin.rwnd = self.cfg.recv_wnd;
            acts.push(TcpAction::SendCtl(fin));
        }
        acts
    }

    /// NIC finished serializing `wire_bytes` of this flow: release TSQ
    /// budget. Caller should invoke [`TcpConn::output`] afterwards.
    pub fn tsq_credit(&mut self, wire_bytes: u64) {
        self.tsq_bytes = self.tsq_bytes.saturating_sub(wire_bytes);
    }

    // ---------------------------------------------------------------
    // Input path
    // ---------------------------------------------------------------

    /// Process an arriving packet. `cpu` is the receiving host's CPU.
    pub fn input(&mut self, pkt: &Packet, now: Nanos, cpu: &mut Cpu) -> Vec<TcpAction> {
        let mut acts = Vec::new();
        match pkt.kind {
            PacketKind::TcpSyn => {
                // Passive open.
                if self.state == TcpState::Closed || self.state == TcpState::SynReceived {
                    self.state = TcpState::SynReceived;
                    self.peer_rwnd = pkt.rwnd;
                    let mut sa = Packet::tcp_ack(self.flow, 0, 0);
                    sa.kind = PacketKind::TcpSynAck;
                    sa.rwnd = self.cfg.recv_wnd;
                    acts.push(TcpAction::SendCtl(sa));
                    acts.extend(self.arm_rto(now));
                }
                return acts;
            }
            PacketKind::TcpSynAck => {
                if self.state == TcpState::SynSent {
                    self.state = TcpState::Established;
                    self.peer_rwnd = pkt.rwnd;
                    if let Some(t0) = self.rtt_probes.remove(&0) {
                        self.rtt_sample(now - t0);
                    }
                    self.disarm_rto();
                    acts.push(TcpAction::Connected);
                    acts.push(TcpAction::SendCtl(self.make_ack()));
                    self.stats.acks_sent += 1;
                }
                return acts;
            }
            _ => {}
        }
        // Completing the server side of the handshake.
        if self.state == TcpState::SynReceived {
            self.state = TcpState::Established;
            self.disarm_rto();
            acts.push(TcpAction::Connected);
        }
        self.peer_rwnd = pkt.rwnd;
        if let Some((lo, hi)) = pkt.meta.sack {
            self.note_sack(lo, hi);
        }

        // ---- ACK processing (all packets carry a cumulative ACK) ----
        if pkt.ack > self.snd_una {
            let newly = pkt.ack - self.snd_una;
            self.snd_una = pkt.ack;
            self.stats.bytes_acked += newly;
            self.dup_acks = 0;
            self.rto_backoff = 0;
            let _ = cpu.charge(now, cpu.model.per_ack_rx);
            self.drop_sacked_below_una();
            // Harvest every probe this ACK covers; sample from the most
            // recent one (closest to a per-segment timestamp).
            let covered: Vec<u64> = self.rtt_probes.range(..=pkt.ack).map(|(&k, _)| k).collect();
            let mut latest: Option<Nanos> = None;
            for k in covered {
                let t0 = self.rtt_probes.remove(&k).expect("probe present");
                latest = Some(latest.map_or(t0, |l: Nanos| l.max(t0)));
            }
            let rtt = latest.map(|t0| {
                let s = now - t0;
                self.rtt_sample(s);
                s
            });
            let mut partial_retx = false;
            if let Some(rp) = self.recovery_point {
                if pkt.ack >= rp {
                    self.recovery_point = None;
                } else {
                    // NewReno partial ACK: the cumulative ACK advanced but
                    // stopped below the recovery point, exposing the next
                    // hole — retransmit it immediately (RFC 6582).
                    partial_retx = true;
                }
            }
            let info = AckInfo {
                newly_acked: newly,
                rtt,
                now,
                inflight: self.pipe(),
            };
            self.cc.on_ack(&info);
            netsim::tm_histo!("stack.cc.cwnd_bytes").record(self.cc.cwnd());
            let ctx = self.shape_ctx(now);
            self.egress.on_ack(&ctx);
            if partial_retx && self.inflight() > 0 {
                acts.push(self.retransmit_head(now));
            }
            if self.snd_una == self.snd_nxt {
                self.disarm_rto();
            } else {
                acts.extend(self.arm_rto(now));
            }
            if self.blocked && self.send_buffered() < self.cfg.send_buf {
                self.blocked = false;
                acts.push(TcpAction::Sendable);
            }
        } else if pkt.ack == self.snd_una
            && self.inflight() > 0
            && pkt.payload == 0
            && pkt.kind == PacketKind::TcpAck
        {
            self.dup_acks += 1;
            if self.dup_acks == 3 && self.recovery_point.is_none() {
                // Fast retransmit.
                self.recovery_point = Some(self.snd_nxt);
                self.cc.on_loss(now, self.pipe());
                self.stats.fast_retransmits += 1;
                acts.push(self.retransmit_head(now));
                acts.extend(self.arm_rto(now));
            }
        }

        // ---- data reassembly ----
        if pkt.payload > 0 {
            let _ = cpu.charge(now, cpu.model.per_data_rx);
            let delivered_before = self.rcv_nxt;
            if pkt.seq_end() <= self.rcv_nxt {
                // Duplicate of old data: ACK immediately.
                acts.push(TcpAction::SendCtl(self.make_ack()));
                self.stats.acks_sent += 1;
            } else if pkt.seq <= self.rcv_nxt {
                self.rcv_nxt = pkt.seq_end();
                self.drain_ooo();
                let newly = self.rcv_nxt - delivered_before;
                self.stats.bytes_delivered += newly;
                acts.push(TcpAction::Deliver(newly));
                acts.extend(self.maybe_ack(now));
            } else {
                // Out of order: store and send an immediate dup ACK.
                self.ooo.insert(pkt.seq, pkt.payload as u64);
                acts.push(TcpAction::SendCtl(self.make_ack()));
                self.stats.acks_sent += 1;
            }
        }

        // ---- FIN ----
        if pkt.kind == PacketKind::TcpFin {
            self.peer_fin_at = Some(pkt.seq.max(self.rcv_nxt));
            if pkt.seq <= self.rcv_nxt {
                acts.push(TcpAction::SendCtl(self.make_ack()));
                self.stats.acks_sent += 1;
            }
        }
        if let Some(fin_at) = self.peer_fin_at {
            if self.rcv_nxt >= fin_at && !self.peer_closed_delivered {
                self.peer_closed_delivered = true;
                if self.state == TcpState::Established {
                    self.state = TcpState::CloseWait;
                }
                acts.push(TcpAction::PeerClosed);
            }
        }
        acts
    }

    fn drain_ooo(&mut self) {
        loop {
            let mut advanced = false;
            let keys: Vec<u64> = self.ooo.range(..=self.rcv_nxt).map(|(&s, _)| s).collect();
            for s in keys {
                let len = self.ooo.remove(&s).expect("ooo key vanished");
                let end = s + len;
                if end > self.rcv_nxt {
                    self.rcv_nxt = end;
                    advanced = true;
                }
            }
            if !advanced {
                break;
            }
        }
    }

    fn make_ack(&self) -> Packet {
        let mut a = Packet::tcp_ack(self.flow, self.snd_nxt, self.rcv_nxt);
        a.rwnd = self.cfg.recv_wnd;
        // Report the lowest out-of-order range as a SACK block.
        if let Some((&s, &l)) = self.ooo.iter().next() {
            a.meta.sack = Some((s, s + l));
        }
        a
    }

    fn maybe_ack(&mut self, now: Nanos) -> Vec<TcpAction> {
        self.delack_count += 1;
        if self.delack_count >= self.cfg.delack_segs {
            self.delack_count = 0;
            self.delack_pending = false;
            self.stats.acks_sent += 1;
            vec![TcpAction::SendCtl(self.make_ack())]
        } else if !self.delack_pending {
            self.delack_pending = true;
            self.delack_gen += 1;
            vec![TcpAction::ArmTimer {
                kind: TimerKind::DelAck,
                at: now + self.cfg.delack_timeout,
                gen: self.delack_gen,
            }]
        } else {
            Vec::new()
        }
    }

    // ---------------------------------------------------------------
    // Timers
    // ---------------------------------------------------------------

    fn rtt_sample(&mut self, sample: Nanos) {
        match self.srtt {
            None => {
                self.srtt = Some(sample);
                self.rttvar = sample / 2;
            }
            Some(srtt) => {
                let err = if sample > srtt {
                    sample - srtt
                } else {
                    srtt - sample
                };
                self.rttvar = (self.rttvar * 3 + err) / 4;
                self.srtt = Some((srtt * 7 + sample) / 8);
            }
        }
        let rto = self.srtt.expect("srtt set above") + self.rttvar * 4;
        self.rto = rto.max(self.cfg.min_rto).min(Nanos::from_secs(60));
    }

    fn arm_rto(&mut self, now: Nanos) -> Option<TcpAction> {
        self.rto_deadline = now + self.rto * (1 << self.rto_backoff.min(6));
        if self.rto_armed {
            return None; // lazy: the pending event will re-check
        }
        self.rto_armed = true;
        self.rto_gen += 1;
        Some(TcpAction::ArmTimer {
            kind: TimerKind::Rto,
            at: self.rto_deadline,
            gen: self.rto_gen,
        })
    }

    fn disarm_rto(&mut self) {
        self.rto_armed = false;
    }

    /// Retransmit one MSS from the head of the unacked window.
    fn retransmit_head(&mut self, now: Nanos) -> TcpAction {
        self.rtt_probes.clear(); // Karn
        let natural = (self.snd_nxt - self.snd_una).min(self.cfg.mss() as u64) as u32;
        // The shaper's packet-size decision applies to retransmissions
        // too: the eavesdropper sees them like any other packet.
        let ctx = self.shape_ctx(now);
        let proposed_ip = natural + IP_TCP_OVERHEAD;
        let ip = self.egress.size_retransmit(
            &ctx,
            proposed_ip,
            MIN_IP_PACKET.min(proposed_ip),
            self.cfg.mtu_ip.min(proposed_ip),
        );
        let len = ip - IP_TCP_OVERHEAD;
        let mut pkt = Packet::tcp_data(self.flow, self.snd_una, self.rcv_nxt, len);
        pkt.rwnd = self.cfg.recv_wnd;
        pkt.meta.retransmit = true;
        // Retransmissions bypass pacing (Linux sends them immediately).
        TcpAction::SendCtl(pkt)
    }

    /// A timer event fired.
    pub fn on_timer(&mut self, kind: TimerKind, gen: u64, now: Nanos) -> Vec<TcpAction> {
        match kind {
            TimerKind::DelAck => {
                if gen != self.delack_gen || !self.delack_pending {
                    return Vec::new();
                }
                self.delack_pending = false;
                self.delack_count = 0;
                self.stats.acks_sent += 1;
                vec![TcpAction::SendCtl(self.make_ack())]
            }
            TimerKind::Rto => {
                if gen != self.rto_gen || !self.rto_armed {
                    return Vec::new();
                }
                if now < self.rto_deadline {
                    // Deadline moved forward by ACKs: re-sleep.
                    self.rto_gen += 1;
                    return vec![TcpAction::ArmTimer {
                        kind: TimerKind::Rto,
                        at: self.rto_deadline,
                        gen: self.rto_gen,
                    }];
                }
                self.rto_armed = false;
                match self.state {
                    TcpState::SynSent => {
                        // Retransmit SYN.
                        self.rto_backoff += 1;
                        let mut p = Packet::tcp_ack(self.flow, 0, 0);
                        p.kind = PacketKind::TcpSyn;
                        p.rwnd = self.cfg.recv_wnd;
                        let mut acts = vec![TcpAction::SendCtl(p)];
                        acts.extend(self.arm_rto(now));
                        acts
                    }
                    TcpState::SynReceived => {
                        self.rto_backoff += 1;
                        let mut p = Packet::tcp_ack(self.flow, 0, 0);
                        p.kind = PacketKind::TcpSynAck;
                        p.rwnd = self.cfg.recv_wnd;
                        let mut acts = vec![TcpAction::SendCtl(p)];
                        acts.extend(self.arm_rto(now));
                        acts
                    }
                    _ if self.inflight() > 0 => {
                        self.stats.rtos += 1;
                        self.rto_backoff += 1;
                        self.cc.on_rto(now);
                        self.sacked.clear();
                        self.dup_acks = 0;
                        self.recovery_point = Some(self.snd_nxt);
                        let mut acts = vec![self.retransmit_head(now)];
                        acts.extend(self.arm_rto(now));
                        acts
                    }
                    _ => Vec::new(),
                }
            }
            TimerKind::Probe => Vec::new(),
        }
    }
}

impl TransportCore for TcpConn {
    fn input(&mut self, pkt: &Packet, now: Nanos, cpu: &mut Cpu) -> Vec<TcpAction> {
        TcpConn::input(self, pkt, now, cpu)
    }
    fn output(&mut self, now: Nanos, cpu: &mut Cpu) -> Vec<TcpAction> {
        TcpConn::output(self, now, cpu)
    }
    fn on_timer(&mut self, kind: TimerKind, gen: u64, now: Nanos) -> Vec<TcpAction> {
        TcpConn::on_timer(self, kind, gen, now)
    }
    fn write(&mut self, len: u64) -> u64 {
        TcpConn::write(self, len)
    }
    fn on_nic_release(&mut self, wire_bytes: u64) {
        self.tsq_credit(wire_bytes);
    }
    fn set_shaper(&mut self, shaper: BoxShaper) {
        TcpConn::set_shaper(self, shaper);
    }
    fn set_mtu(&mut self, mtu_ip: u32) {
        TcpConn::set_mtu(self, mtu_ip);
    }
    fn set_tracer(&mut self, tracer: netsim::telemetry::Tracer) {
        TcpConn::set_tracer(self, tracer);
    }
    fn cwnd(&self) -> u64 {
        self.cc.cwnd()
    }
    fn outstanding(&self) -> u64 {
        self.pipe()
    }
    fn pacing_rate_bps(&self) -> Option<u64> {
        if self.cfg.pacing {
            self.cc.pacing_rate_bps(self.srtt)
        } else {
            None
        }
    }
    fn mtu_ip(&self) -> u32 {
        self.cfg.mtu_ip
    }
    fn srtt(&self) -> Option<Nanos> {
        TcpConn::srtt(self)
    }
    fn flow_stats(&self) -> FlowStats {
        FlowStats {
            bytes_delivered: self.stats.bytes_delivered,
            segs_sent: self.stats.segs_sent,
            pkts_sent: self.stats.pkts_sent,
            acks_sent: self.stats.acks_sent,
            retransmits: self.stats.fast_retransmits,
            timeouts: self.stats.rtos,
            shaped_segs: self.stats.shaped_segs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StackConfig;
    use crate::cpu::{Cpu, CpuModel};
    use crate::shaper::Shaper;

    const MSS: u64 = 1448;

    fn pair() -> (TcpConn, TcpConn, Cpu, Cpu) {
        // TSQ is effectively disabled: the shuttle harness has no NIC to
        // send completion credits, so back-pressure would deadlock it.
        // TSQ behaviour is tested explicitly in
        // `tsq_limits_qdisc_occupancy` and end-to-end in `net::tests`.
        let cfg = StackConfig {
            pacing: false,
            tsq_limit: u64::MAX,
            ..StackConfig::default()
        };
        (
            TcpConn::new(FlowId(1), cfg.clone(), true),
            TcpConn::new(FlowId(1), cfg, false),
            Cpu::new(CpuModel::infinitely_fast()),
            Cpu::new(CpuModel::infinitely_fast()),
        )
    }

    /// Shuttle actions between the two endpoints until quiescent,
    /// simulating a zero-latency lossless wire. Returns delivered bytes
    /// observed at each endpoint.
    fn shuttle(
        a: &mut TcpConn,
        b: &mut TcpConn,
        cpu_a: &mut Cpu,
        cpu_b: &mut Cpu,
        now: Nanos,
        initial: Vec<TcpAction>,
        from_a: bool,
    ) -> (u64, u64) {
        let mut delivered = (0u64, 0u64);
        let mut inbox: Vec<(bool, Packet)> = Vec::new();
        let absorb = |acts: Vec<TcpAction>,
                      from_a: bool,
                      inbox: &mut Vec<(bool, Packet)>,
                      delivered: &mut (u64, u64)| {
            for act in acts {
                match act {
                    TcpAction::SendSeg(seg) => {
                        for p in seg.pkts {
                            inbox.push((from_a, p));
                        }
                    }
                    TcpAction::SendCtl(p) => inbox.push((from_a, p)),
                    TcpAction::Deliver(n) => {
                        if from_a {
                            delivered.0 += n;
                        } else {
                            delivered.1 += n;
                        }
                    }
                    _ => {}
                }
            }
        };
        absorb(initial, from_a, &mut inbox, &mut delivered);
        let mut guard = 0;
        loop {
            guard += 1;
            assert!(guard < 100_000, "shuttle did not converge");
            if inbox.is_empty() {
                // Wire idle: flush any pending delayed ACKs, as the
                // delack timer eventually would.
                if a.delack_pending {
                    let acts = a.on_timer(TimerKind::DelAck, a.delack_gen, now);
                    absorb(acts, true, &mut inbox, &mut delivered);
                }
                if b.delack_pending {
                    let acts = b.on_timer(TimerKind::DelAck, b.delack_gen, now);
                    absorb(acts, false, &mut inbox, &mut delivered);
                }
                if inbox.is_empty() {
                    break;
                }
            }
            let (src_a, pkt) = inbox.remove(0); // FIFO: in-order wire
            if src_a {
                let acts = b.input(&pkt, now, cpu_b);
                absorb(acts, false, &mut inbox, &mut delivered);
                let acts = b.output(now, cpu_b);
                absorb(acts, false, &mut inbox, &mut delivered);
            } else {
                let acts = a.input(&pkt, now, cpu_a);
                absorb(acts, true, &mut inbox, &mut delivered);
                let acts = a.output(now, cpu_a);
                absorb(acts, true, &mut inbox, &mut delivered);
            }
        }
        delivered
    }

    fn establish(a: &mut TcpConn, b: &mut TcpConn, cpu_a: &mut Cpu, cpu_b: &mut Cpu) {
        let syn = a.connect(Nanos::ZERO);
        shuttle(a, b, cpu_a, cpu_b, Nanos::ZERO, syn, true);
        assert!(a.established());
        assert!(b.established());
    }

    #[test]
    fn three_way_handshake() {
        let (mut a, mut b, mut ca, mut cb) = pair();
        establish(&mut a, &mut b, &mut ca, &mut cb);
    }

    #[test]
    fn write_copies_into_buffer_and_blocks_at_limit() {
        let (mut a, _, _, _) = pair();
        a.cfg.send_buf = 10_000;
        assert_eq!(a.write(4_000), 4_000);
        assert_eq!(a.write(10_000), 6_000);
        assert_eq!(a.write(100), 0); // full: async send path, §2.3
        assert_eq!(a.send_buffered(), 10_000);
    }

    #[test]
    fn bulk_transfer_delivers_exact_bytes() {
        let (mut a, mut b, mut ca, mut cb) = pair();
        establish(&mut a, &mut b, &mut ca, &mut cb);
        let n = 1_000_000;
        assert_eq!(a.write(n), n);
        let acts = a.output(Nanos::from_millis(1), &mut ca);
        let (_, to_b) = shuttle(
            &mut a,
            &mut b,
            &mut ca,
            &mut cb,
            Nanos::from_millis(1),
            acts,
            true,
        );
        assert_eq!(to_b, n, "receiver must get exactly the written bytes");
        assert_eq!(a.snd_una, n);
        assert_eq!(b.rcv_nxt, n);
        assert!(a.send_complete());
    }

    #[test]
    fn output_respects_cwnd() {
        let (mut a, mut b, mut ca, mut cb) = pair();
        establish(&mut a, &mut b, &mut ca, &mut cb);
        a.write(10_000_000);
        let acts = a.output(Nanos::from_millis(1), &mut ca);
        let sent: u64 = acts
            .iter()
            .filter_map(|x| match x {
                TcpAction::SendSeg(s) => Some(s.payload_bytes()),
                _ => None,
            })
            .sum();
        assert!(sent <= a.cwnd(), "sent {sent} > cwnd {}", a.cwnd());
        assert!(sent >= a.cwnd() - MSS, "undershoot: {sent}");
        let _ = (&mut b, &mut cb);
    }

    #[test]
    fn output_respects_peer_rwnd() {
        let (mut a, mut b, mut ca, mut cb) = pair();
        b.cfg.recv_wnd = 5_000;
        establish(&mut a, &mut b, &mut ca, &mut cb);
        a.write(1_000_000);
        let acts = a.output(Nanos::from_millis(1), &mut ca);
        let sent: u64 = acts
            .iter()
            .filter_map(|x| match x {
                TcpAction::SendSeg(s) => Some(s.payload_bytes()),
                _ => None,
            })
            .sum();
        assert!(sent <= 5_000, "rwnd violated: {sent}");
    }

    #[test]
    fn tso_packets_are_mss_sized_except_last() {
        let (mut a, mut b, mut ca, mut cb) = pair();
        establish(&mut a, &mut b, &mut ca, &mut cb);
        a.write(MSS * 3 + 100);
        let acts = a.output(Nanos::from_millis(1), &mut ca);
        let pkts: Vec<u32> = acts
            .iter()
            .filter_map(|x| match x {
                TcpAction::SendSeg(s) => Some(s.pkts.iter().map(|p| p.payload).collect::<Vec<_>>()),
                _ => None,
            })
            .flatten()
            .collect();
        assert_eq!(pkts, vec![1448, 1448, 1448, 100]);
        let _ = (&mut b, &mut cb);
    }

    #[test]
    fn tsq_limits_qdisc_occupancy() {
        let (mut a, mut b, mut ca, mut cb) = pair();
        a.cfg.tsq_limit = 3 * 1514;
        a.cfg.tso = false; // one packet per segment, so the cap is tight
        establish(&mut a, &mut b, &mut ca, &mut cb);
        a.write(10_000_000);
        let acts = a.output(Nanos::from_millis(1), &mut ca);
        let wire: u64 = acts
            .iter()
            .filter_map(|x| match x {
                TcpAction::SendSeg(s) => Some(s.wire_bytes),
                _ => None,
            })
            .sum();
        // The check runs before each segment, so at most one segment of
        // overshoot past the limit.
        assert!(wire <= 3 * 1514 + 1514, "TSQ exceeded: {wire}");
        assert!(wire >= 3 * 1514, "valve closed too early: {wire}");
        // Crediting reopens the valve.
        a.tsq_credit(wire);
        let acts2 = a.output(Nanos::from_millis(2), &mut ca);
        assert!(
            acts2.iter().any(|x| matches!(x, TcpAction::SendSeg(_))),
            "credit must reopen output"
        );
    }

    #[test]
    fn delayed_ack_every_second_segment() {
        let (mut a, mut b, mut ca, mut cb) = pair();
        establish(&mut a, &mut b, &mut ca, &mut cb);
        let mut p1 = Packet::tcp_data(FlowId(1), 0, 0, MSS as u32);
        p1.rwnd = 1 << 20;
        let acts = b.input(&p1, Nanos::from_millis(1), &mut cb);
        // First segment: delack timer armed, no immediate ACK.
        assert!(acts.iter().any(|x| matches!(
            x,
            TcpAction::ArmTimer {
                kind: TimerKind::DelAck,
                ..
            }
        )));
        assert!(!acts.iter().any(|x| matches!(x, TcpAction::SendCtl(_))));
        let mut p2 = Packet::tcp_data(FlowId(1), MSS, 0, MSS as u32);
        p2.rwnd = 1 << 20;
        let acts2 = b.input(&p2, Nanos::from_millis(1), &mut cb);
        // Second segment: immediate cumulative ACK.
        let acked: Vec<u64> = acts2
            .iter()
            .filter_map(|x| match x {
                TcpAction::SendCtl(p) => Some(p.ack),
                _ => None,
            })
            .collect();
        assert_eq!(acked, vec![2 * MSS]);
        let _ = (&mut a, &mut ca);
    }

    #[test]
    fn delack_timer_flushes_pending_ack() {
        let (mut _a, mut b, _ca, mut cb) = pair();
        b.state = TcpState::Established;
        let mut p1 = Packet::tcp_data(FlowId(1), 0, 0, 500);
        p1.rwnd = 1 << 20;
        let acts = b.input(&p1, Nanos::ZERO, &mut cb);
        let (gen, at) = acts
            .iter()
            .find_map(|x| match x {
                TcpAction::ArmTimer {
                    kind: TimerKind::DelAck,
                    at,
                    gen,
                } => Some((*gen, *at)),
                _ => None,
            })
            .expect("delack armed");
        let acts2 = b.on_timer(TimerKind::DelAck, gen, at);
        let acked: Vec<u64> = acts2
            .iter()
            .filter_map(|x| match x {
                TcpAction::SendCtl(p) => Some(p.ack),
                _ => None,
            })
            .collect();
        assert_eq!(acked, vec![500]);
        // Stale timer does nothing.
        assert!(b.on_timer(TimerKind::DelAck, gen, at).is_empty());
    }

    #[test]
    fn out_of_order_triggers_dup_acks_and_reassembly() {
        let (mut _a, mut b, _ca, mut cb) = pair();
        b.state = TcpState::Established;
        // Packet 2 arrives before packet 1.
        let mut p2 = Packet::tcp_data(FlowId(1), 1000, 0, 1000);
        p2.rwnd = 1 << 20;
        let acts = b.input(&p2, Nanos::ZERO, &mut cb);
        let dup: Vec<u64> = acts
            .iter()
            .filter_map(|x| match x {
                TcpAction::SendCtl(p) => Some(p.ack),
                _ => None,
            })
            .collect();
        assert_eq!(dup, vec![0], "dup ACK must re-assert rcv_nxt=0");
        let mut p1 = Packet::tcp_data(FlowId(1), 0, 0, 1000);
        p1.rwnd = 1 << 20;
        let acts = b.input(&p1, Nanos::ZERO, &mut cb);
        let delivered: u64 = acts
            .iter()
            .filter_map(|x| match x {
                TcpAction::Deliver(n) => Some(*n),
                _ => None,
            })
            .sum();
        assert_eq!(delivered, 2000, "hole filled: both packets delivered");
        assert_eq!(b.rcv_nxt, 2000);
    }

    #[test]
    fn three_dup_acks_trigger_fast_retransmit() {
        let (mut a, mut b, mut ca, mut cb) = pair();
        establish(&mut a, &mut b, &mut ca, &mut cb);
        a.write(100_000);
        let _ = a.output(Nanos::from_millis(1), &mut ca);
        let cwnd_before = a.cwnd();
        let mut dup = Packet::tcp_ack(FlowId(1), 0, 0);
        dup.rwnd = 1 << 20;
        for _ in 0..2 {
            let acts = a.input(&dup, Nanos::from_millis(2), &mut ca);
            assert!(acts.is_empty());
        }
        let acts = a.input(&dup, Nanos::from_millis(2), &mut ca);
        let retx: Vec<&Packet> = acts
            .iter()
            .filter_map(|x| match x {
                TcpAction::SendCtl(p) if p.meta.retransmit => Some(p),
                _ => None,
            })
            .collect();
        assert_eq!(retx.len(), 1);
        assert_eq!(retx[0].seq, 0);
        assert_eq!(retx[0].payload as u64, MSS);
        assert!(a.cwnd() < cwnd_before, "loss must shrink cwnd");
        assert_eq!(a.stats.fast_retransmits, 1);
        // A 4th dup ACK must not retransmit again (recovery point set).
        let acts = a.input(&dup, Nanos::from_millis(2), &mut ca);
        assert!(acts
            .iter()
            .all(|x| !matches!(x, TcpAction::SendCtl(p) if p.meta.retransmit)));
    }

    #[test]
    fn rto_fires_and_backs_off() {
        let (mut a, mut b, mut ca, mut cb) = pair();
        establish(&mut a, &mut b, &mut ca, &mut cb);
        a.write(10_000);
        let acts = a.output(Nanos::from_millis(1), &mut ca);
        let (gen, at) = acts
            .iter()
            .find_map(|x| match x {
                TcpAction::ArmTimer {
                    kind: TimerKind::Rto,
                    at,
                    gen,
                } => Some((*gen, *at)),
                _ => None,
            })
            .expect("rto armed");
        let acts = a.on_timer(TimerKind::Rto, gen, at);
        assert!(acts
            .iter()
            .any(|x| matches!(x, TcpAction::SendCtl(p) if p.meta.retransmit && p.seq == 0)));
        assert_eq!(a.stats.rtos, 1);
        assert_eq!(a.cwnd(), MSS, "RTO collapses window");
    }

    #[test]
    fn rto_backoff_doubles_then_caps() {
        // Successive RTO firings without forward progress back off
        // exponentially, but the multiplier is capped (shift 6 = 64x) so
        // a long outage never overflows the deadline arithmetic.
        let (mut a, mut b, mut ca, mut cb) = pair();
        establish(&mut a, &mut b, &mut ca, &mut cb);
        a.write(10_000);
        let _ = a.output(Nanos::from_millis(1), &mut ca);
        let mut intervals = Vec::new();
        for _ in 0..9 {
            let fired_at = a.rto_deadline;
            let acts = a.on_timer(TimerKind::Rto, a.rto_gen, fired_at);
            assert!(acts
                .iter()
                .any(|x| matches!(x, TcpAction::SendCtl(p) if p.meta.retransmit)));
            intervals.push(a.rto_deadline - fired_at);
        }
        // First firing leaves backoff=1: the next wait is 2x the base RTO.
        for i in 1..intervals.len() {
            let expect = if i < 6 {
                intervals[i - 1] * 2
            } else {
                intervals[5] // capped: constant from shift 6 onward
            };
            assert_eq!(intervals[i], expect, "interval {i}");
        }
        assert_eq!(intervals[8], intervals[0] * 32, "cap is 64x base RTO");
        assert_eq!(a.stats.rtos, 9);
    }

    #[test]
    fn sack_scoreboard_merges_overlapping_and_adjacent_ranges() {
        let (mut a, _b, _ca, _cb) = pair();
        // Two disjoint holes.
        a.note_sack(1_000, 2_000);
        a.note_sack(3_000, 4_000);
        assert_eq!(a.sacked.len(), 2);
        assert_eq!(a.sacked_bytes(), 2_000);
        // A block exactly bridging them (adjacent on both sides) must
        // collapse the scoreboard to a single range.
        a.note_sack(2_000, 3_000);
        assert_eq!(a.sacked.len(), 1);
        assert_eq!(a.sacked.get(&1_000), Some(&4_000));
        // Overlapping extensions on either side grow the same range.
        a.note_sack(500, 1_500);
        a.note_sack(3_500, 4_500);
        assert_eq!(a.sacked.len(), 1);
        assert_eq!(a.sacked.get(&500), Some(&4_500));
        assert_eq!(a.sacked_bytes(), 4_000);
        // A fully-contained block is absorbed without double counting.
        a.note_sack(600, 700);
        assert_eq!(a.sacked.len(), 1);
        assert_eq!(a.sacked_bytes(), 4_000);
        // Degenerate and stale blocks are ignored.
        a.note_sack(5_000, 5_000);
        a.snd_una = 10_000;
        a.note_sack(6_000, 7_000);
        assert_eq!(a.sacked.len(), 1);
    }

    #[test]
    fn fast_retransmit_then_rto_recovers_from_a_loss_burst() {
        // A burst loses the head segment AND its fast retransmission; the
        // connection must fall back to RTO and still deliver every byte.
        let (mut a, mut b, mut ca, mut cb) = pair();
        establish(&mut a, &mut b, &mut ca, &mut cb);
        let n = 100_000;
        a.write(n);
        let acts = a.output(Nanos::from_millis(1), &mut ca);
        let pkts: Vec<Packet> = acts
            .iter()
            .flat_map(|x| match x {
                TcpAction::SendSeg(s) => s.pkts.clone(),
                _ => Vec::new(),
            })
            .collect();
        assert!(pkts.len() >= 4, "need a window to lose the head of");
        // Head packet lost: every later arrival provokes a dup ACK.
        let mut dup_acks = Vec::new();
        for p in &pkts[1..] {
            for act in b.input(p, Nanos::from_millis(2), &mut cb) {
                if let TcpAction::SendCtl(ack) = act {
                    dup_acks.push(ack);
                }
            }
        }
        assert!(dup_acks.len() >= 3);
        let mut retx = Vec::new();
        for ack in &dup_acks {
            for act in a.input(ack, Nanos::from_millis(3), &mut ca) {
                if let TcpAction::SendCtl(p) = act {
                    if p.meta.retransmit {
                        retx.push(p);
                    }
                }
            }
        }
        assert_eq!(retx.len(), 1, "exactly one fast retransmit");
        assert_eq!(retx[0].seq, 0);
        assert_eq!(a.stats.fast_retransmits, 1);
        // The retransmission is lost too: the RTO fires next.
        let fired_at = a.rto_deadline;
        let acts = a.on_timer(TimerKind::Rto, a.rto_gen, fired_at);
        assert_eq!(a.stats.rtos, 1);
        assert_eq!(a.rto_backoff, 1);
        assert!(a.sacked.is_empty(), "RTO flushes the SACK scoreboard");
        assert!(acts
            .iter()
            .any(|x| matches!(x, TcpAction::SendCtl(p) if p.meta.retransmit && p.seq == 0)));
        // Let the (delivered) RTO retransmission drive full recovery.
        let (_, to_b) = shuttle(&mut a, &mut b, &mut ca, &mut cb, fired_at, acts, true);
        assert_eq!(to_b, n, "every byte delivered despite the double loss");
        assert!(a.send_complete());
        assert_eq!(b.rcv_nxt, n);
    }

    #[test]
    fn rto_deadline_moves_with_acks() {
        let (mut a, mut b, mut ca, mut cb) = pair();
        establish(&mut a, &mut b, &mut ca, &mut cb);
        a.write(1_000_000);
        let acts = a.output(Nanos::from_millis(1), &mut ca);
        let (gen, at) = acts
            .iter()
            .find_map(|x| match x {
                TcpAction::ArmTimer {
                    kind: TimerKind::Rto,
                    at,
                    gen,
                } => Some((*gen, *at)),
                _ => None,
            })
            .expect("armed");
        // An ACK arrives, pushing the deadline out.
        let mut ack = Packet::tcp_ack(FlowId(1), 0, MSS);
        ack.rwnd = 1 << 20;
        let _ = a.input(&ack, Nanos::from_millis(100), &mut ca);
        // Old timer fires: should re-arm, not retransmit.
        let acts = a.on_timer(TimerKind::Rto, gen, at);
        assert!(acts
            .iter()
            .all(|x| !matches!(x, TcpAction::SendCtl(p) if p.meta.retransmit)));
        assert!(acts.iter().any(|x| matches!(
            x,
            TcpAction::ArmTimer {
                kind: TimerKind::Rto,
                ..
            }
        )));
        assert_eq!(a.stats.rtos, 0);
    }

    #[test]
    fn fin_handshake_closes_both_sides() {
        let (mut a, mut b, mut ca, mut cb) = pair();
        establish(&mut a, &mut b, &mut ca, &mut cb);
        a.write(5_000);
        a.close();
        let acts = a.output(Nanos::from_millis(1), &mut ca);
        // FIN present after the data.
        assert!(acts
            .iter()
            .any(|x| matches!(x, TcpAction::SendCtl(p) if p.kind == PacketKind::TcpFin)));
        let mut saw_close = false;
        let mut inbox: Vec<Packet> = acts
            .iter()
            .filter_map(|x| match x {
                TcpAction::SendSeg(s) => Some(s.pkts.clone()),
                TcpAction::SendCtl(p) => Some(vec![p.clone()]),
                _ => None,
            })
            .flatten()
            .collect();
        while let Some(p) = inbox.pop() {
            for act in b.input(&p, Nanos::from_millis(2), &mut cb) {
                if matches!(act, TcpAction::PeerClosed) {
                    saw_close = true;
                }
            }
        }
        assert!(saw_close, "receiver must learn of the FIN");
    }

    #[test]
    fn rtt_estimation_converges() {
        let (mut a, _b, mut ca, _cb) = pair();
        a.state = TcpState::Established;
        a.write(1_000_000);
        for i in 0..20u64 {
            let t_send = Nanos::from_millis(i * 100);
            let _ = a.output(t_send, &mut ca);
            let mut ack = Packet::tcp_ack(FlowId(1), 0, a.snd_nxt);
            ack.rwnd = 1 << 20;
            let _ = a.input(&ack, t_send + Nanos::from_millis(20), &mut ca);
        }
        let srtt = a.srtt().expect("srtt measured");
        let err = srtt.as_millis_f64() - 20.0;
        assert!(err.abs() < 2.0, "srtt {} off", srtt);
        // RTO respects the floor.
        assert!(a.rto >= a.cfg.min_rto);
    }

    #[test]
    fn shaper_tso_hook_limits_segment_size() {
        struct Cap(u32);
        impl Shaper for Cap {
            fn tso_segment_pkts(&mut self, _c: &ShapeCtx, p: u32) -> u32 {
                p.min(self.0)
            }
        }
        let (mut a, mut b, mut ca, mut cb) = pair();
        establish(&mut a, &mut b, &mut ca, &mut cb);
        a.set_shaper(Box::new(Cap(2)));
        a.write(MSS * 10);
        let acts = a.output(Nanos::from_millis(1), &mut ca);
        let mut shaped_any = false;
        for x in &acts {
            if let TcpAction::SendSeg(s) = x {
                assert!(s.pkts.len() <= 2, "segment has {} pkts", s.pkts.len());
                shaped_any |= s.pkts.iter().any(|p| p.meta.shaped);
            }
        }
        // At least the first (cut-down) segments carry the shaped mark;
        // a final segment the shaper happened not to alter may not.
        assert!(shaped_any);
        assert!(a.stats.shaped_segs > 0);
    }

    #[test]
    fn shaper_packet_size_hook_shrinks_packets() {
        struct Small;
        impl Shaper for Small {
            fn packet_ip_size(&mut self, _c: &ShapeCtx, _i: u32, p: u32) -> u32 {
                p.min(700)
            }
        }
        let (mut a, mut b, mut ca, mut cb) = pair();
        establish(&mut a, &mut b, &mut ca, &mut cb);
        a.set_shaper(Box::new(Small));
        a.write(10_000);
        let acts = a.output(Nanos::from_millis(1), &mut ca);
        let sizes: Vec<u32> = acts
            .iter()
            .filter_map(|x| match x {
                TcpAction::SendSeg(s) => Some(
                    s.pkts
                        .iter()
                        .map(|p| p.payload + IP_TCP_OVERHEAD)
                        .collect::<Vec<_>>(),
                ),
                _ => None,
            })
            .flatten()
            .collect();
        assert!(!sizes.is_empty());
        assert!(sizes.iter().all(|&s| s <= 700), "sizes {sizes:?}");
        // Payload is conserved: total equals what the window allowed.
        let payload: u64 = acts
            .iter()
            .filter_map(|x| match x {
                TcpAction::SendSeg(s) => Some(s.payload_bytes()),
                _ => None,
            })
            .sum();
        assert_eq!(payload, 10_000);
    }

    #[test]
    fn shaper_cannot_grow_past_proposed() {
        struct Greedy;
        impl Shaper for Greedy {
            fn tso_segment_pkts(&mut self, _c: &ShapeCtx, p: u32) -> u32 {
                p * 10 // tries to burst harder than the CCA allows
            }
            fn packet_ip_size(&mut self, _c: &ShapeCtx, _i: u32, _p: u32) -> u32 {
                9000 // tries jumbo frames past the MTU
            }
        }
        let (mut a, mut b, mut ca, mut cb) = pair();
        establish(&mut a, &mut b, &mut ca, &mut cb);
        a.set_shaper(Box::new(Greedy));
        a.write(1_000_000);
        let acts = a.output(Nanos::from_millis(1), &mut ca);
        let mut total = 0u64;
        for x in &acts {
            if let TcpAction::SendSeg(s) = x {
                assert!(s.pkts.len() as u32 <= a.cfg.tso_max_pkts);
                for p in &s.pkts {
                    assert!(p.payload + IP_TCP_OVERHEAD <= a.cfg.mtu_ip);
                }
                total += s.payload_bytes();
            }
        }
        assert!(total <= a.cwnd(), "cwnd violated by greedy shaper");
    }

    #[test]
    fn nagle_holds_small_segments() {
        let (mut a, mut b, mut ca, mut cb) = pair();
        a.cfg.nagle = true;
        establish(&mut a, &mut b, &mut ca, &mut cb);
        a.write(100);
        let acts = a.output(Nanos::from_millis(1), &mut ca);
        // First small write goes out (nothing in flight).
        assert_eq!(
            acts.iter()
                .filter(|x| matches!(x, TcpAction::SendSeg(_)))
                .count(),
            1
        );
        a.write(50);
        let acts2 = a.output(Nanos::from_millis(1), &mut ca);
        // Second small write held back while the first is unacked.
        assert!(acts2.iter().all(|x| !matches!(x, TcpAction::SendSeg(_))));
    }

    #[test]
    fn pacing_spaces_segments() {
        // Pacing on; TSO off so the initial window leaves as several
        // segments whose departure times the pacer must space out.
        let cfg = StackConfig {
            tso: false,
            tsq_limit: u64::MAX,
            ..StackConfig::default()
        };
        let mut a = TcpConn::new(FlowId(1), cfg.clone(), true);
        let mut b = TcpConn::new(FlowId(1), cfg, false);
        let mut ca = Cpu::new(CpuModel::infinitely_fast());
        let mut cb = Cpu::new(CpuModel::infinitely_fast());
        establish(&mut a, &mut b, &mut ca, &mut cb);
        // Seed an RTT so pacing has a rate.
        a.rtt_sample(Nanos::from_millis(10));
        a.write(10_000_000);
        let acts = a.output(Nanos::from_millis(1), &mut ca);
        let times: Vec<Nanos> = acts
            .iter()
            .filter_map(|x| match x {
                TcpAction::SendSeg(s) => Some(s.eligible_at),
                _ => None,
            })
            .collect();
        assert!(
            times.len() >= 2,
            "need multiple segments, got {}",
            times.len()
        );
        assert!(
            times.windows(2).all(|w| w[1] > w[0]),
            "pacing must strictly space departures: {times:?}"
        );
    }
}
