//! Queuing discipline: FQ with pacing, plus a priority band for ACKs.
//!
//! This is the paper's second asynchrony (§2.3): once the transport pushes
//! a segment down, *another execution context* decides when it actually
//! reaches the NIC — here, the earliest-eligible-first scheduler over
//! per-flow FIFOs, honouring each segment's pacing timestamp, exactly like
//! Linux's `fq` qdisc that BBR relies on. Departure times are nanosecond
//! granularity (§4.2).

use netsim::{FlowId, Nanos, Packet};
use std::collections::{BTreeMap, VecDeque};

/// A transport segment queued for the NIC: the unit TSO operates on.
#[derive(Debug, Clone)]
pub struct SegDesc {
    pub flow: FlowId,
    /// Fully built wire packets the NIC will emit back-to-back.
    pub pkts: Vec<Packet>,
    /// Earliest departure time (pacing + CPU + shaper delay).
    pub eligible_at: Nanos,
    /// Total wire bytes (cached).
    pub wire_bytes: u64,
}

impl SegDesc {
    pub fn new(flow: FlowId, pkts: Vec<Packet>, eligible_at: Nanos) -> Self {
        let wire_bytes = pkts.iter().map(|p| p.wire_len as u64).sum();
        SegDesc {
            flow,
            pkts,
            eligible_at,
            wire_bytes,
        }
    }

    pub fn payload_bytes(&self) -> u64 {
        self.pkts.iter().map(|p| p.payload as u64).sum()
    }
}

/// FQ-style pacing qdisc.
#[derive(Debug, Default)]
pub struct FqQdisc {
    /// Per-flow FIFO of paced segments. BTreeMap for deterministic
    /// iteration order.
    flows: BTreeMap<FlowId, VecDeque<SegDesc>>,
    /// Strict-priority band for pure ACKs / handshake packets (Linux
    /// does not pace these either).
    prio: VecDeque<SegDesc>,
    /// Backlog bytes per flow (for TSQ accounting by the caller).
    backlog: BTreeMap<FlowId, u64>,
    pub total_segments: u64,
}

impl FqQdisc {
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueue a paced data segment.
    pub fn enqueue(&mut self, seg: SegDesc) {
        netsim::tm_counter!("stack.qdisc.enqueued").inc();
        let b = self.backlog.entry(seg.flow).or_insert(0);
        *b += seg.wire_bytes;
        // fetch_max is order-independent, so the high-water mark stays
        // deterministic even when independent sims share the registry.
        netsim::tm_gauge!("stack.qdisc.backlog_hwm_bytes").set_max(*b);
        self.total_segments += 1;
        self.flows.entry(seg.flow).or_default().push_back(seg);
    }

    /// Enqueue into the unpaced priority band.
    pub fn enqueue_prio(&mut self, seg: SegDesc) {
        netsim::tm_counter!("stack.qdisc.enqueued_prio").inc();
        self.total_segments += 1;
        self.prio.push_back(seg);
    }

    /// Dequeue the next segment the NIC may transmit at `now`:
    /// priority band first, then the eligible flow head with the earliest
    /// pacing timestamp (ties broken by flow id for determinism).
    pub fn dequeue(&mut self, now: Nanos) -> Option<SegDesc> {
        if let Some(seg) = self.prio.pop_front() {
            return Some(seg);
        }
        let mut best: Option<(Nanos, FlowId)> = None;
        for (&flow, q) in &self.flows {
            if let Some(head) = q.front() {
                if head.eligible_at <= now {
                    match best {
                        Some((t, _)) if t <= head.eligible_at => {}
                        _ => best = Some((head.eligible_at, flow)),
                    }
                }
            }
        }
        let (_, flow) = best?;
        let q = self.flows.get_mut(&flow).expect("flow disappeared");
        let seg = q.pop_front().expect("empty eligible flow");
        if q.is_empty() {
            self.flows.remove(&flow);
        }
        let b = self.backlog.get_mut(&seg.flow).expect("backlog missing");
        *b -= seg.wire_bytes;
        if *b == 0 {
            self.backlog.remove(&seg.flow);
        }
        Some(seg)
    }

    /// Earliest time at which anything will become eligible, if the qdisc
    /// is non-empty but nothing is eligible right now.
    pub fn next_eligible(&self) -> Option<Nanos> {
        if !self.prio.is_empty() {
            return Some(Nanos::ZERO);
        }
        self.flows
            .values()
            .filter_map(|q| q.front().map(|s| s.eligible_at))
            .min()
    }

    /// Bytes of `flow` currently sitting in the qdisc (TSQ input).
    pub fn flow_backlog(&self, flow: FlowId) -> u64 {
        self.backlog.get(&flow).copied().unwrap_or(0)
    }

    pub fn is_empty(&self) -> bool {
        self.prio.is_empty() && self.flows.is_empty()
    }

    pub fn len_segments(&self) -> usize {
        self.prio.len() + self.flows.values().map(|q| q.len()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::PacketKind;

    fn seg(flow: u32, eligible: u64, payload: u32) -> SegDesc {
        let p = Packet::tcp_data(FlowId(flow), 0, 0, payload);
        SegDesc::new(FlowId(flow), vec![p], Nanos(eligible))
    }

    fn ack_seg(flow: u32) -> SegDesc {
        let p = Packet::tcp_ack(FlowId(flow), 0, 0);
        SegDesc::new(FlowId(flow), vec![p], Nanos::ZERO)
    }

    #[test]
    fn pacing_holds_back_ineligible_segments() {
        let mut q = FqQdisc::new();
        q.enqueue(seg(1, 1_000, 100));
        assert!(q.dequeue(Nanos(500)).is_none());
        assert_eq!(q.next_eligible(), Some(Nanos(1_000)));
        assert!(q.dequeue(Nanos(1_000)).is_some());
        assert!(q.is_empty());
    }

    #[test]
    fn earliest_eligible_first_across_flows() {
        let mut q = FqQdisc::new();
        q.enqueue(seg(2, 300, 100));
        q.enqueue(seg(1, 100, 100));
        q.enqueue(seg(3, 200, 100));
        let order: Vec<u32> = std::iter::from_fn(|| q.dequeue(Nanos(10_000)))
            .map(|s| s.flow.0)
            .collect();
        assert_eq!(order, vec![1, 3, 2]);
    }

    #[test]
    fn per_flow_fifo_is_preserved() {
        let mut q = FqQdisc::new();
        let mut a = seg(1, 100, 10);
        a.pkts[0].seq = 1;
        let mut b = seg(1, 50, 20); // later-queued but earlier timestamp
        b.pkts[0].seq = 2;
        q.enqueue(a);
        q.enqueue(b);
        // FIFO within the flow: seq 1 leaves first even though seq 2 has
        // an earlier pacing time (real fq behaves per-flow FIFO too).
        let first = q.dequeue(Nanos(10_000)).unwrap();
        assert_eq!(first.pkts[0].seq, 1);
    }

    #[test]
    fn prio_band_bypasses_pacing() {
        let mut q = FqQdisc::new();
        q.enqueue(seg(1, 1_000_000, 100));
        q.enqueue_prio(ack_seg(1));
        let first = q.dequeue(Nanos(0)).unwrap();
        assert_eq!(first.pkts[0].kind, PacketKind::TcpAck);
        assert!(q.dequeue(Nanos(0)).is_none());
        assert_eq!(q.len_segments(), 1);
    }

    #[test]
    fn backlog_accounting() {
        let mut q = FqQdisc::new();
        q.enqueue(seg(1, 0, 1000)); // wire 1066
        q.enqueue(seg(1, 0, 1000));
        q.enqueue(seg(2, 0, 500));
        assert_eq!(q.flow_backlog(FlowId(1)), 2 * 1066);
        assert_eq!(q.flow_backlog(FlowId(2)), 566);
        q.dequeue(Nanos(0));
        assert_eq!(q.flow_backlog(FlowId(1)), 1066);
        q.dequeue(Nanos(0));
        q.dequeue(Nanos(0));
        assert_eq!(q.flow_backlog(FlowId(1)), 0);
        assert_eq!(q.flow_backlog(FlowId(2)), 0);
        assert!(q.is_empty());
    }

    #[test]
    fn next_eligible_empty_and_prio() {
        let mut q = FqQdisc::new();
        assert_eq!(q.next_eligible(), None);
        q.enqueue_prio(ack_seg(1));
        assert_eq!(q.next_eligible(), Some(Nanos::ZERO));
    }

    #[test]
    fn tie_break_is_deterministic_by_flow_id() {
        let mut q = FqQdisc::new();
        q.enqueue(seg(9, 100, 10));
        q.enqueue(seg(4, 100, 10));
        assert_eq!(q.dequeue(Nanos(200)).unwrap().flow, FlowId(4));
    }

    #[test]
    fn seg_desc_byte_math() {
        let pkts = vec![
            Packet::tcp_data(FlowId(1), 0, 0, 1448),
            Packet::tcp_data(FlowId(1), 1448, 0, 500),
        ];
        let s = SegDesc::new(FlowId(1), pkts, Nanos(0));
        assert_eq!(s.payload_bytes(), 1948);
        assert_eq!(s.wire_bytes, 1948 + 2 * 66);
    }
}
