//! QUIC-lite: the third column of Figure 1.
//!
//! The paper stresses that moving to QUIC does not restore application
//! control over the packet sequence: QUIC provides a *stream* abstraction,
//! sizes its own packets from PMTU discovery, schedules datagram handoff
//! to UDP from its own congestion controller, and (with UDP GSO / the
//! emerging QUIC NIC offload, §2.3) batches datagrams that then leave at
//! line rate. This module models exactly those properties:
//!
//! * stream bytes are packetized into `max_datagram`-sized UDP datagrams
//!   chosen by the transport, not the app,
//! * a GSO-style batch (several datagrams handed down as one segment)
//!   plays the role TSO plays for TCP, and passes through the same
//!   [`crate::shaper::Shaper`] hooks so Stob policies apply to QUIC too,
//! * acknowledgments are packet-number based, with packet-threshold loss
//!   detection (RFC 9002's `kPacketThreshold = 3`) and a PTO timer,
//! * the congestion-control trait is shared with TCP.
//!
//! Wire-field conventions (the model is metadata-only): on `QuicData`
//! packets `seq` is the *packet number* and `ack` carries the *stream
//! offset* of the payload (standing in for the STREAM frame header). On
//! `QuicAck` packets `ack` is the largest received packet number and
//! `seq` the contiguous floor (all packet numbers below it received) —
//! a two-value stand-in for QUIC's ACK ranges.

use crate::cc::{make_cc, AckInfo, CongestionControl};
use crate::config::StackConfig;
use crate::cpu::Cpu;
use crate::egress::{EgressLabels, EgressPipeline, FlowStats, TransportCore};
use crate::qdisc::SegDesc;
use crate::shaper::{BoxShaper, ShapeCtx};
use crate::tcp::{TcpAction, TimerKind};
use netsim::{FlowId, Nanos, Packet, PacketKind};
use std::collections::BTreeMap;

/// QUIC short-header + UDP + IP + Ethernet overhead per datagram.
pub const QUIC_WIRE_OVERHEAD: u32 = 60;
/// Max payload per datagram after PMTU discovery on an Ethernet path.
pub const DEFAULT_MAX_DATAGRAM: u32 = 1350;
/// RFC 9002 packet reordering threshold.
const PACKET_THRESHOLD: u64 = 3;
/// Datagrams per GSO batch.
const GSO_BATCH: u32 = 16;
/// Header bytes we charge when converting datagram payload to an
/// "IP packet size" for the shaper hook (UDP 8 + IP 20 + QUIC short 18).
const DGRAM_HDR: u32 = 46;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuicState {
    Closed,
    Connecting,
    Established,
}

#[derive(Debug, Clone, Copy)]
struct SentPacket {
    offset: u64,
    len: u32,
    sent_at: Nanos,
    is_retx: bool,
}

#[derive(Debug, Clone, Copy, Default)]
pub struct QuicStats {
    pub pkts_sent: u64,
    pub batches_sent: u64,
    pub retransmissions: u64,
    pub ptos: u64,
    pub bytes_delivered: u64,
    pub acks_sent: u64,
}

/// One endpoint of a QUIC-lite connection (single stream).
pub struct QuicConn {
    pub flow: FlowId,
    pub cfg: StackConfig,
    pub state: QuicState,
    is_client: bool,
    cc: Box<dyn CongestionControl>,
    /// Shared egress pipeline: owns the shaper, pacing clock, CPU charge
    /// and tracer hookup (see [`crate::egress`]).
    pub egress: EgressPipeline,
    max_datagram: u32,

    // ---- send side ----
    app_written: u64,
    /// Next fresh stream byte to packetize.
    snd_offset: u64,
    next_pkt_num: u64,
    unacked: BTreeMap<u64, SentPacket>,
    /// Stream ranges awaiting retransmission.
    retx_queue: Vec<(u64, u32)>,
    inflight_bytes: u64,
    pto_gen: u64,
    pto_armed: bool,
    pto_deadline: Nanos,
    srtt: Option<Nanos>,

    // ---- receive side ----
    largest_recv: Option<u64>,
    /// All packet numbers `< recv_contig` have been received.
    recv_contig: u64,
    recv_ooo: BTreeMap<u64, ()>,
    /// Out-of-order stream fragments: offset -> len.
    stream_recv: BTreeMap<u64, u64>,
    stream_delivered: u64,
    ack_counter: u32,

    pub stats: QuicStats,
}

impl QuicConn {
    pub fn new(flow: FlowId, cfg: StackConfig, is_client: bool) -> Self {
        let cc = make_cc(cfg.cc, DEFAULT_MAX_DATAGRAM, cfg.init_cwnd_segs);
        QuicConn {
            flow,
            state: QuicState::Closed,
            is_client,
            cc,
            egress: EgressPipeline::new(EgressLabels::QUIC),
            max_datagram: DEFAULT_MAX_DATAGRAM,
            app_written: 0,
            snd_offset: 0,
            next_pkt_num: 0,
            unacked: BTreeMap::new(),
            retx_queue: Vec::new(),
            inflight_bytes: 0,
            pto_gen: 0,
            pto_armed: false,
            pto_deadline: Nanos::ZERO,
            srtt: None,
            largest_recv: None,
            recv_contig: 0,
            recv_ooo: BTreeMap::new(),
            stream_recv: BTreeMap::new(),
            stream_delivered: 0,
            ack_counter: 0,
            stats: QuicStats::default(),
            cfg,
        }
    }

    pub fn set_shaper(&mut self, shaper: BoxShaper) {
        self.egress.set_shaper(shaper);
    }

    /// Install a flow-trace sink: every subsequent packet-size, GSO and
    /// pacing decision this endpoint makes is recorded as a
    /// [`netsim::telemetry::FlowEvent`].
    pub fn set_tracer(&mut self, tracer: netsim::telemetry::Tracer) {
        self.egress.set_tracer(tracer);
    }

    /// Mid-flow path-MTU reduction: shrink the datagram size used for
    /// future packetization (downward-only PMTU re-discovery). A floor
    /// keeps a pathological schedule from producing degenerate datagrams.
    pub fn set_mtu(&mut self, mtu_ip: u32) {
        let dgram = mtu_ip.saturating_sub(DGRAM_HDR).max(256);
        self.max_datagram = self.max_datagram.min(dgram);
    }
    pub fn established(&self) -> bool {
        self.state == QuicState::Established
    }
    pub fn delivered(&self) -> u64 {
        self.stream_delivered
    }
    pub fn cwnd(&self) -> u64 {
        self.cc.cwnd()
    }
    pub fn inflight(&self) -> u64 {
        self.inflight_bytes
    }
    pub fn fully_acked(&self) -> bool {
        self.unacked.is_empty() && self.retx_queue.is_empty()
    }

    /// Client handshake start: a padded Initial datagram (QUIC requires
    /// Initials to be at least 1200 bytes).
    pub fn connect(&mut self, _now: Nanos) -> Vec<TcpAction> {
        assert!(self.is_client && self.state == QuicState::Closed);
        self.state = QuicState::Connecting;
        let p = Packet {
            id: 0,
            flow: self.flow,
            kind: PacketKind::QuicInit,
            seq: 0,
            ack: 0,
            payload: 0,
            wire_len: 1200 + QUIC_WIRE_OVERHEAD,
            rwnd: self.cfg.recv_wnd,
            sent_at: Nanos::ZERO,
            meta: Default::default(),
        };
        vec![TcpAction::SendCtl(p)]
    }

    fn shape_ctx(&self, now: Nanos) -> ShapeCtx {
        ShapeCtx {
            flow: self.flow,
            now,
            cwnd: self.cc.cwnd(),
            pacing_rate_bps: if self.cfg.pacing {
                self.cc.pacing_rate_bps(self.srtt)
            } else {
                None
            },
            in_slow_start: self.cc.in_slow_start(),
            bytes_sent: self.snd_offset,
            pkts_sent: self.stats.pkts_sent,
            segs_sent: self.stats.batches_sent,
            mtu_ip: self.max_datagram + DGRAM_HDR,
            mss: self.max_datagram,
        }
    }

    /// Application write (stream send). The stream buffer is unbounded in
    /// this model; flow control is congestion control only.
    pub fn write(&mut self, len: u64) -> u64 {
        self.app_written += len;
        len
    }

    /// Packetize and emit what congestion control permits, batching up to
    /// a GSO segment at a time.
    pub fn output(&mut self, now: Nanos, cpu: &mut Cpu) -> Vec<TcpAction> {
        let mut acts = Vec::new();
        if self.state != QuicState::Established {
            return acts;
        }
        loop {
            if self.retx_queue.is_empty() && self.app_written == self.snd_offset {
                break;
            }
            if self.inflight_bytes >= self.cc.cwnd() {
                break;
            }
            let ctx = self.shape_ctx(now);
            // GSO batch size through the shared pipeline (stage ② — the
            // batch proposal is the fixed GSO_BATCH, not CC-autosized).
            let batch_max = self.egress.segment_pkts(&ctx, GSO_BATCH);
            let mut shaped = batch_max != GSO_BATCH;
            let mut pkts = Vec::new();
            let mut batch_payload = 0u64;
            for i in 0..batch_max {
                if self.inflight_bytes + batch_payload >= self.cc.cwnd() {
                    break;
                }
                // Prefer retransmissions, then fresh stream data.
                let (offset, want, is_retx) = if let Some((off, len)) = self.retx_queue.pop() {
                    (off, len, true)
                } else {
                    let fresh = self.app_written - self.snd_offset;
                    if fresh == 0 {
                        break;
                    }
                    (
                        self.snd_offset,
                        fresh.min(self.max_datagram as u64) as u32,
                        false,
                    )
                };
                let proposed_ip = want.min(self.max_datagram) + DGRAM_HDR;
                let shaped_ip =
                    self.egress
                        .packet_ip_size(&ctx, i, proposed_ip, DGRAM_HDR + 1, proposed_ip);
                shaped |= shaped_ip != proposed_ip;
                let len = shaped_ip - DGRAM_HDR;
                if is_retx {
                    if len < want {
                        // Shrunk retransmission: requeue the tail.
                        self.retx_queue.push((offset + len as u64, want - len));
                    }
                    self.stats.retransmissions += 1;
                } else {
                    self.snd_offset += len as u64;
                }
                let num = self.next_pkt_num;
                self.next_pkt_num += 1;
                let mut p = Packet {
                    id: 0,
                    flow: self.flow,
                    kind: PacketKind::QuicData,
                    seq: num,
                    ack: offset, // stream offset (see module docs)
                    payload: len,
                    wire_len: len + QUIC_WIRE_OVERHEAD,
                    rwnd: self.cfg.recv_wnd,
                    sent_at: Nanos::ZERO,
                    meta: Default::default(),
                };
                p.meta.tso_burst = self.stats.batches_sent + 1;
                p.meta.retransmit = is_retx;
                self.unacked.insert(
                    num,
                    SentPacket {
                        offset,
                        len,
                        sent_at: now,
                        is_retx,
                    },
                );
                batch_payload += len as u64;
                pkts.push(p);
            }
            if pkts.is_empty() {
                break;
            }
            self.inflight_bytes += batch_payload;
            self.stats.pkts_sent += pkts.len() as u64;
            self.stats.batches_sent += 1;
            // Stages ④–⑥: CPU charge, pacing gate, shaper extra delay
            // and pacing-clock advance, all in the shared pipeline.
            let wire: u64 = pkts.iter().map(|p| p.wire_len as u64).sum();
            let npkts = pkts.len() as u32;
            let paced =
                self.egress
                    .pace_segment(&ctx, now, cpu, batch_payload, npkts, wire, shaped);
            let eligible = paced.eligible;
            acts.push(TcpAction::SendSeg(SegDesc::new(self.flow, pkts, eligible)));
            acts.extend(self.arm_pto(now));
        }
        acts
    }

    fn arm_pto(&mut self, now: Nanos) -> Option<TcpAction> {
        let pto = self
            .srtt
            .map(|s| s * 2 + Nanos::from_millis(10))
            .unwrap_or(self.cfg.init_rto);
        self.pto_deadline = now + pto.max(self.cfg.min_rto);
        if self.pto_armed {
            return None;
        }
        self.pto_armed = true;
        self.pto_gen += 1;
        Some(TcpAction::ArmTimer {
            kind: TimerKind::Rto,
            at: self.pto_deadline,
            gen: self.pto_gen,
        })
    }

    /// Handle an arriving datagram.
    pub fn input(&mut self, pkt: &Packet, now: Nanos, cpu: &mut Cpu) -> Vec<TcpAction> {
        let mut acts = Vec::new();
        match pkt.kind {
            PacketKind::QuicInit => {
                match (self.is_client, self.state) {
                    (false, QuicState::Closed) => {
                        // Server: respond with its handshake flight and
                        // consider the connection up (1-RTT model).
                        self.state = QuicState::Established;
                        let mut resp = pkt.clone();
                        resp.wire_len = 3700 + QUIC_WIRE_OVERHEAD;
                        resp.rwnd = self.cfg.recv_wnd;
                        acts.push(TcpAction::Connected);
                        acts.push(TcpAction::SendCtl(resp));
                    }
                    (true, QuicState::Connecting) => {
                        self.state = QuicState::Established;
                        acts.push(TcpAction::Connected);
                    }
                    _ => {}
                }
                acts
            }
            PacketKind::QuicAck => {
                let _ = cpu.charge(now, cpu.model.per_ack_rx);
                self.process_ack(pkt.ack, pkt.seq, now, &mut acts);
                acts
            }
            PacketKind::QuicData => {
                let _ = cpu.charge(now, cpu.model.per_data_rx);
                let num = pkt.seq;
                self.largest_recv = Some(self.largest_recv.map_or(num, |l| l.max(num)));
                if num == self.recv_contig {
                    self.recv_contig += 1;
                    while self.recv_ooo.remove(&self.recv_contig).is_some() {
                        self.recv_contig += 1;
                    }
                } else if num > self.recv_contig {
                    self.recv_ooo.insert(num, ());
                }
                acts.extend(self.deliver_stream(pkt.ack, pkt.payload as u64));
                self.ack_counter += 1;
                // Immediate ACK on reordering (RFC 9000 §13.2.1), else
                // every second packet.
                let out_of_order = !self.recv_ooo.is_empty() || num + 1 < self.recv_contig;
                if out_of_order || self.ack_counter >= self.cfg.delack_segs {
                    self.ack_counter = 0;
                    acts.push(TcpAction::SendCtl(self.make_ack()));
                    self.stats.acks_sent += 1;
                }
                acts
            }
            _ => acts,
        }
    }

    /// Offset-based stream reassembly: buffer the fragment, then advance
    /// the contiguous delivery frontier.
    fn deliver_stream(&mut self, offset: u64, len: u64) -> Vec<TcpAction> {
        if offset + len > self.stream_delivered {
            self.stream_recv.insert(offset, len);
        }
        let mut newly = 0u64;
        while let Some((&off, &l)) = self.stream_recv.first_key_value() {
            if off > self.stream_delivered {
                break;
            }
            self.stream_recv.remove(&off);
            let end = off + l;
            if end > self.stream_delivered {
                newly += end - self.stream_delivered;
                self.stream_delivered = end;
            }
        }
        self.stats.bytes_delivered += newly;
        if newly > 0 {
            vec![TcpAction::Deliver(newly)]
        } else {
            Vec::new()
        }
    }

    fn make_ack(&self) -> Packet {
        Packet {
            id: 0,
            flow: self.flow,
            kind: PacketKind::QuicAck,
            seq: self.recv_contig, // contiguous floor
            ack: self.largest_recv.unwrap_or(0),
            payload: 0,
            wire_len: QUIC_WIRE_OVERHEAD,
            rwnd: self.cfg.recv_wnd,
            sent_at: Nanos::ZERO,
            meta: Default::default(),
        }
    }

    fn process_ack(
        &mut self,
        largest: u64,
        contig_floor: u64,
        now: Nanos,
        acts: &mut Vec<TcpAction>,
    ) {
        let mut newly_acked = 0u64;
        let mut rtt = None;
        let acked: Vec<u64> = self
            .unacked
            .range(..contig_floor)
            .map(|(&n, _)| n)
            .chain(self.unacked.contains_key(&largest).then_some(largest))
            .collect();
        for n in acked {
            if let Some(sp) = self.unacked.remove(&n) {
                newly_acked += sp.len as u64;
                self.inflight_bytes = self.inflight_bytes.saturating_sub(sp.len as u64);
                if n == largest && !sp.is_retx {
                    rtt = Some(now - sp.sent_at);
                }
            }
        }
        if let Some(r) = rtt {
            self.srtt = Some(match self.srtt {
                None => r,
                Some(s) => (s * 7 + r) / 8,
            });
        }
        if newly_acked > 0 {
            self.cc.on_ack(&AckInfo {
                newly_acked,
                rtt,
                now,
                inflight: self.inflight_bytes,
            });
            netsim::tm_histo!("stack.cc.cwnd_bytes").record(self.cc.cwnd());
            let ctx = self.shape_ctx(now);
            self.egress.on_ack(&ctx);
            if self.unacked.is_empty() {
                self.pto_armed = false;
            } else if let Some(a) = self.arm_pto(now) {
                acts.push(a);
            }
        }
        // Packet-threshold loss detection, head-hole only: our two-value
        // ACK cannot distinguish "received above the floor" from "lost
        // above the floor", so only the *first* unacked packet — the hole
        // the contiguous floor is stuck on — may be declared lost, and
        // only once the largest acked is PACKET_THRESHOLD past it
        // (RFC 9002's reordering window). Holes are repaired head-first,
        // like NewReno; the floor then jumps and exposes the next hole.
        if let Some((&head, _)) = self.unacked.iter().next() {
            if largest >= head + PACKET_THRESHOLD {
                self.cc.on_loss(now, self.inflight_bytes);
                let sp = self.unacked.remove(&head).expect("head tracked");
                self.inflight_bytes = self.inflight_bytes.saturating_sub(sp.len as u64);
                self.retx_queue.push((sp.offset, sp.len));
            }
        }
    }

    /// PTO timer fired.
    pub fn on_timer(&mut self, kind: TimerKind, gen: u64, now: Nanos) -> Vec<TcpAction> {
        if kind != TimerKind::Rto || gen != self.pto_gen || !self.pto_armed {
            return Vec::new();
        }
        if now < self.pto_deadline {
            self.pto_gen += 1;
            return vec![TcpAction::ArmTimer {
                kind: TimerKind::Rto,
                at: self.pto_deadline,
                gen: self.pto_gen,
            }];
        }
        self.pto_armed = false;
        if self.unacked.is_empty() {
            return Vec::new();
        }
        self.stats.ptos += 1;
        self.cc.on_rto(now);
        // Re-queue the earliest unacked range for retransmission.
        let (&n, &sp) = self.unacked.iter().next().expect("nonempty");
        self.unacked.remove(&n);
        self.inflight_bytes = self.inflight_bytes.saturating_sub(sp.len as u64);
        self.retx_queue.push((sp.offset, sp.len));
        let mut acts = Vec::new();
        acts.extend(self.arm_pto(now));
        acts
    }
}

impl TransportCore for QuicConn {
    fn input(&mut self, pkt: &Packet, now: Nanos, cpu: &mut Cpu) -> Vec<TcpAction> {
        QuicConn::input(self, pkt, now, cpu)
    }
    fn output(&mut self, now: Nanos, cpu: &mut Cpu) -> Vec<TcpAction> {
        QuicConn::output(self, now, cpu)
    }
    fn on_timer(&mut self, kind: TimerKind, gen: u64, now: Nanos) -> Vec<TcpAction> {
        QuicConn::on_timer(self, kind, gen, now)
    }
    fn write(&mut self, len: u64) -> u64 {
        QuicConn::write(self, len)
    }
    fn set_shaper(&mut self, shaper: BoxShaper) {
        QuicConn::set_shaper(self, shaper);
    }
    fn set_mtu(&mut self, mtu_ip: u32) {
        QuicConn::set_mtu(self, mtu_ip);
    }
    fn set_tracer(&mut self, tracer: netsim::telemetry::Tracer) {
        QuicConn::set_tracer(self, tracer);
    }
    fn cwnd(&self) -> u64 {
        self.cc.cwnd()
    }
    fn outstanding(&self) -> u64 {
        self.inflight_bytes
    }
    fn pacing_rate_bps(&self) -> Option<u64> {
        if self.cfg.pacing {
            self.cc.pacing_rate_bps(self.srtt)
        } else {
            None
        }
    }
    fn mtu_ip(&self) -> u32 {
        self.max_datagram + DGRAM_HDR
    }
    fn srtt(&self) -> Option<Nanos> {
        self.srtt
    }
    fn flow_stats(&self) -> FlowStats {
        FlowStats {
            bytes_delivered: self.stats.bytes_delivered,
            segs_sent: self.stats.batches_sent,
            pkts_sent: self.stats.pkts_sent,
            acks_sent: self.stats.acks_sent,
            retransmits: self.stats.retransmissions,
            timeouts: self.stats.ptos,
            shaped_segs: self.egress.shaped_segs(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuModel;

    fn pair() -> (QuicConn, QuicConn, Cpu, Cpu) {
        let cfg = StackConfig {
            pacing: false,
            ..StackConfig::default()
        };
        (
            QuicConn::new(FlowId(9), cfg.clone(), true),
            QuicConn::new(FlowId(9), cfg, false),
            Cpu::new(CpuModel::infinitely_fast()),
            Cpu::new(CpuModel::infinitely_fast()),
        )
    }

    fn establish(c: &mut QuicConn, s: &mut QuicConn, cc: &mut Cpu, cs: &mut Cpu) {
        let acts = c.connect(Nanos::ZERO);
        let init = match &acts[0] {
            TcpAction::SendCtl(p) => p.clone(),
            _ => panic!("expected Initial"),
        };
        assert!(init.wire_len >= 1200, "Initial must be padded");
        let sacts = s.input(&init, Nanos::from_millis(10), cs);
        let resp = sacts
            .iter()
            .find_map(|a| match a {
                TcpAction::SendCtl(p) => Some(p.clone()),
                _ => None,
            })
            .expect("server flight");
        let _ = c.input(&resp, Nanos::from_millis(20), cc);
        assert!(c.established() && s.established());
    }

    /// Lossless in-order shuttle for stream data.
    fn shuttle(c: &mut QuicConn, s: &mut QuicConn, cc: &mut Cpu, cs: &mut Cpu, now: Nanos) {
        let mut wire: Vec<(bool, Packet)> = Vec::new();
        fn push(acts: Vec<TcpAction>, from_client: bool, wire: &mut Vec<(bool, Packet)>) {
            for a in acts {
                match a {
                    TcpAction::SendSeg(seg) => {
                        for p in seg.pkts {
                            wire.push((from_client, p));
                        }
                    }
                    TcpAction::SendCtl(p) => wire.push((from_client, p)),
                    _ => {}
                }
            }
        }
        push(c.output(now, cc), true, &mut wire);
        push(s.output(now, cs), false, &mut wire);
        let mut guard = 0;
        loop {
            guard += 1;
            assert!(guard < 200_000, "no convergence");
            if wire.is_empty() {
                // Flush any ACK the receiver is still batching.
                if s.ack_counter > 0 {
                    s.ack_counter = 0;
                    s.stats.acks_sent += 1;
                    wire.push((false, s.make_ack()));
                }
                if c.ack_counter > 0 {
                    c.ack_counter = 0;
                    c.stats.acks_sent += 1;
                    wire.push((true, c.make_ack()));
                }
                if wire.is_empty() {
                    break;
                }
            }
            let (from_client, p) = wire.remove(0);
            if from_client {
                push(s.input(&p, now, cs), false, &mut wire);
                push(s.output(now, cs), false, &mut wire);
            } else {
                push(c.input(&p, now, cc), true, &mut wire);
                push(c.output(now, cc), true, &mut wire);
            }
        }
    }

    #[test]
    fn handshake_establishes_both_ends() {
        let (mut c, mut s, mut cc, mut cs) = pair();
        establish(&mut c, &mut s, &mut cc, &mut cs);
    }

    #[test]
    fn stream_bytes_delivered_exactly() {
        let (mut c, mut s, mut cc, mut cs) = pair();
        establish(&mut c, &mut s, &mut cc, &mut cs);
        c.write(500_000);
        shuttle(&mut c, &mut s, &mut cc, &mut cs, Nanos::from_millis(30));
        assert_eq!(s.delivered(), 500_000);
        assert!(c.fully_acked(), "all packets acked");
    }

    #[test]
    fn datagrams_do_not_exceed_max_size() {
        let (mut c, mut s, mut cc, mut cs) = pair();
        establish(&mut c, &mut s, &mut cc, &mut cs);
        c.write(100_000);
        let acts = c.output(Nanos::from_millis(30), &mut cc);
        let mut data_pkts = 0;
        for a in &acts {
            if let TcpAction::SendSeg(seg) = a {
                for p in &seg.pkts {
                    assert!(p.payload <= DEFAULT_MAX_DATAGRAM);
                    assert_eq!(p.wire_len, p.payload + QUIC_WIRE_OVERHEAD);
                    data_pkts += 1;
                }
                assert!(seg.pkts.len() as u32 <= GSO_BATCH);
            }
        }
        assert!(data_pkts > 0);
        let _ = (&mut s, &mut cs);
    }

    #[test]
    fn cwnd_limits_inflight() {
        let (mut c, mut s, mut cc, mut cs) = pair();
        establish(&mut c, &mut s, &mut cc, &mut cs);
        c.write(10_000_000);
        let _ = c.output(Nanos::from_millis(30), &mut cc);
        assert!(c.inflight() <= c.cwnd() + DEFAULT_MAX_DATAGRAM as u64);
        let _ = (&mut s, &mut cs);
    }

    #[test]
    fn reordering_within_threshold_is_tolerated() {
        let (mut c, mut s, mut cc, mut cs) = pair();
        establish(&mut c, &mut s, &mut cc, &mut cs);
        c.write(3 * DEFAULT_MAX_DATAGRAM as u64);
        let acts = c.output(Nanos::from_millis(30), &mut cc);
        let mut pkts: Vec<Packet> = acts
            .iter()
            .filter_map(|a| match a {
                TcpAction::SendSeg(seg) => Some(seg.pkts.clone()),
                _ => None,
            })
            .flatten()
            .collect();
        assert_eq!(pkts.len(), 3);
        pkts.swap(0, 2); // deliver 2,1,0
        for p in &pkts {
            let _ = s.input(p, Nanos::from_millis(40), &mut cs);
        }
        assert_eq!(s.delivered(), 3 * DEFAULT_MAX_DATAGRAM as u64);
    }

    #[test]
    fn packet_threshold_loss_detection_retransmits() {
        let (mut c, mut s, mut cc, mut cs) = pair();
        establish(&mut c, &mut s, &mut cc, &mut cs);
        c.write(8 * DEFAULT_MAX_DATAGRAM as u64);
        let acts = c.output(Nanos::from_millis(30), &mut cc);
        let pkts: Vec<Packet> = acts
            .iter()
            .filter_map(|a| match a {
                TcpAction::SendSeg(seg) => Some(seg.pkts.clone()),
                _ => None,
            })
            .flatten()
            .collect();
        assert!(pkts.len() >= 8, "got {}", pkts.len());
        // Drop packet 0; deliver the rest; collect the server's ACKs.
        let mut acks = Vec::new();
        for p in &pkts[1..] {
            for a in s.input(p, Nanos::from_millis(40), &mut cs) {
                if let TcpAction::SendCtl(ap) = a {
                    acks.push(ap);
                }
            }
        }
        let cwnd_before = c.cwnd();
        for a in &acks {
            let _ = c.input(a, Nanos::from_millis(50), &mut cc);
        }
        assert!(
            !c.retx_queue.is_empty() || c.stats.retransmissions > 0,
            "loss not detected"
        );
        // Retransmission carries the missing range; recovery completes.
        shuttle(&mut c, &mut s, &mut cc, &mut cs, Nanos::from_millis(60));
        assert_eq!(s.delivered(), 8 * DEFAULT_MAX_DATAGRAM as u64);
        assert!(c.cwnd() <= cwnd_before, "loss must not grow cwnd");
        assert!(c.stats.retransmissions >= 1);
    }

    #[test]
    fn pto_recovers_tail_loss() {
        let (mut c, mut s, mut cc, mut cs) = pair();
        establish(&mut c, &mut s, &mut cc, &mut cs);
        c.write(1000);
        let acts = c.output(Nanos::from_millis(30), &mut cc);
        let (gen, at) = acts
            .iter()
            .find_map(|a| match a {
                TcpAction::ArmTimer { at, gen, .. } => Some((*gen, *at)),
                _ => None,
            })
            .expect("PTO armed");
        // The lone packet is lost; the timer fires.
        let _ = c.on_timer(TimerKind::Rto, gen, at);
        assert_eq!(c.stats.ptos, 1);
        // Next output retransmits.
        let acts = c.output(at, &mut cc);
        let retx: Vec<Packet> = acts
            .iter()
            .filter_map(|a| match a {
                TcpAction::SendSeg(seg) => Some(seg.pkts.clone()),
                _ => None,
            })
            .flatten()
            .collect();
        assert!(retx.iter().any(|p| p.meta.retransmit));
        for p in &retx {
            let _ = s.input(p, at + Nanos::from_millis(10), &mut cs);
        }
        assert_eq!(s.delivered(), 1000);
    }

    #[test]
    fn stale_pto_is_ignored() {
        let (mut c, mut s, mut cc, mut cs) = pair();
        establish(&mut c, &mut s, &mut cc, &mut cs);
        c.write(1000);
        let acts = c.output(Nanos::from_millis(30), &mut cc);
        let (gen, at) = acts
            .iter()
            .find_map(|a| match a {
                TcpAction::ArmTimer { at, gen, .. } => Some((*gen, *at)),
                _ => None,
            })
            .unwrap();
        // Deliver the packet and ACK it before the timer fires.
        let pkt = acts
            .iter()
            .find_map(|a| match a {
                TcpAction::SendSeg(seg) => Some(seg.pkts[0].clone()),
                _ => None,
            })
            .expect("data packet");
        let _ = s.input(&pkt, Nanos::from_millis(31), &mut cs);
        let ack = s.make_ack();
        let _ = c.input(&ack, Nanos::from_millis(32), &mut cc);
        assert!(c.fully_acked());
        assert!(c.on_timer(TimerKind::Rto, gen, at).is_empty());
        assert_eq!(c.stats.ptos, 0);
    }

    #[test]
    fn shaper_hooks_apply_to_quic_batches() {
        struct Two;
        impl crate::shaper::Shaper for Two {
            fn tso_segment_pkts(&mut self, _c: &ShapeCtx, p: u32) -> u32 {
                p.min(2)
            }
        }
        let (mut c, mut s, mut cc, mut cs) = pair();
        establish(&mut c, &mut s, &mut cc, &mut cs);
        c.set_shaper(Box::new(Two));
        c.write(10 * DEFAULT_MAX_DATAGRAM as u64);
        let acts = c.output(Nanos::from_millis(30), &mut cc);
        for a in &acts {
            if let TcpAction::SendSeg(seg) = a {
                assert!(seg.pkts.len() <= 2);
            }
        }
        let _ = (&mut s, &mut cs);
    }

    #[test]
    fn shaped_small_datagrams_conserve_stream_bytes() {
        struct Small;
        impl crate::shaper::Shaper for Small {
            fn packet_ip_size(&mut self, _c: &ShapeCtx, _i: u32, p: u32) -> u32 {
                p.min(700)
            }
        }
        let (mut c, mut s, mut cc, mut cs) = pair();
        establish(&mut c, &mut s, &mut cc, &mut cs);
        c.set_shaper(Box::new(Small));
        c.write(50_000);
        shuttle(&mut c, &mut s, &mut cc, &mut cs, Nanos::from_millis(30));
        assert_eq!(s.delivered(), 50_000, "shaping must not lose bytes");
    }
}
