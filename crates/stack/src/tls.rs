//! TLS record-layer model.
//!
//! Figure 1's left two columns differ in *where* TLS records are formed:
//! in the application (userspace TLS) or inside the stack (kTLS). For
//! traffic analysis what matters is the byte inflation and framing TLS
//! imposes between application objects and the TCP byte stream, plus the
//! record-padding facility (TLS 1.3 allows zero-padding records, which is
//! where the paper expects *application-driven* padding policies to be
//! implemented — Stob deliberately leaves padding to the application,
//! §4.2).
//!
//! We model records as byte accounting: `wrap(n)` returns how many
//! ciphertext bytes enter the TCP stream for `n` plaintext bytes.

/// Maximum plaintext fragment per TLS record (RFC 8446).
pub const MAX_RECORD_PLAINTEXT: u64 = 16_384;
/// Per-record overhead: 5-byte header + 16-byte AEAD tag + 1-byte content
/// type (TLS 1.3 inner type).
pub const RECORD_OVERHEAD: u64 = 22;

/// Where records are produced (affects which layer may pad).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlsMode {
    /// Records formed by the application library before `send()`.
    Userspace,
    /// Records formed inside the stack (kTLS): the stack sees plaintext
    /// sizes and may apply record padding itself.
    Kernel,
}

/// Record padding policy: pad each record's plaintext up to a multiple of
/// `quantum` bytes (0 or 1 = no padding). This is the TLS 1.3 padding
/// mechanism several app-level defenses (ALPaCA-style) build on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordPadding {
    pub quantum: u64,
}

impl RecordPadding {
    pub const NONE: RecordPadding = RecordPadding { quantum: 0 };

    pub fn padded_len(&self, plaintext: u64) -> u64 {
        if self.quantum <= 1 || plaintext == 0 {
            return plaintext;
        }
        plaintext.div_ceil(self.quantum) * self.quantum
    }
}

/// A TLS session's record-layer accounting.
#[derive(Debug, Clone)]
pub struct TlsSession {
    pub mode: TlsMode,
    pub padding: RecordPadding,
    /// Total plaintext bytes wrapped.
    pub plaintext_bytes: u64,
    /// Total ciphertext bytes produced.
    pub ciphertext_bytes: u64,
    pub records: u64,
}

impl TlsSession {
    pub fn new(mode: TlsMode) -> Self {
        TlsSession {
            mode,
            padding: RecordPadding::NONE,
            plaintext_bytes: 0,
            ciphertext_bytes: 0,
            records: 0,
        }
    }

    pub fn with_padding(mode: TlsMode, quantum: u64) -> Self {
        let mut s = Self::new(mode);
        s.padding = RecordPadding { quantum };
        s
    }

    /// Wrap `n` plaintext bytes into records; returns ciphertext bytes to
    /// write to the transport.
    pub fn wrap(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        let mut remaining = n;
        let mut out = 0;
        while remaining > 0 {
            let frag = remaining.min(MAX_RECORD_PLAINTEXT);
            let padded = self.padding.padded_len(frag).min(MAX_RECORD_PLAINTEXT);
            out += padded + RECORD_OVERHEAD;
            self.records += 1;
            remaining -= frag;
        }
        self.plaintext_bytes += n;
        self.ciphertext_bytes += out;
        out
    }

    /// Bandwidth overhead ratio so far: extra bytes / plaintext bytes.
    pub fn overhead(&self) -> f64 {
        if self.plaintext_bytes == 0 {
            0.0
        } else {
            (self.ciphertext_bytes - self.plaintext_bytes) as f64 / self.plaintext_bytes as f64
        }
    }

    /// Size in ciphertext bytes of the TLS 1.3 handshake flights we
    /// emulate at connection setup: (client hello, server hello + cert
    /// flight, client finished).
    pub fn handshake_flights() -> (u64, u64, u64) {
        (517, 3700, 80)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_small_record() {
        let mut s = TlsSession::new(TlsMode::Userspace);
        let out = s.wrap(1000);
        assert_eq!(out, 1000 + RECORD_OVERHEAD);
        assert_eq!(s.records, 1);
    }

    #[test]
    fn fragments_at_16k() {
        let mut s = TlsSession::new(TlsMode::Userspace);
        let out = s.wrap(MAX_RECORD_PLAINTEXT * 2 + 5);
        assert_eq!(s.records, 3);
        assert_eq!(out, MAX_RECORD_PLAINTEXT * 2 + 5 + 3 * RECORD_OVERHEAD);
    }

    #[test]
    fn zero_bytes_produce_nothing() {
        let mut s = TlsSession::new(TlsMode::Kernel);
        assert_eq!(s.wrap(0), 0);
        assert_eq!(s.records, 0);
    }

    #[test]
    fn padding_rounds_up_to_quantum() {
        let p = RecordPadding { quantum: 1024 };
        assert_eq!(p.padded_len(1), 1024);
        assert_eq!(p.padded_len(1024), 1024);
        assert_eq!(p.padded_len(1025), 2048);
        assert_eq!(p.padded_len(0), 0);
        assert_eq!(RecordPadding::NONE.padded_len(777), 777);
    }

    #[test]
    fn padded_session_inflates() {
        let mut s = TlsSession::with_padding(TlsMode::Kernel, 4096);
        let out = s.wrap(100);
        assert_eq!(out, 4096 + RECORD_OVERHEAD);
        assert!(s.overhead() > 40.0);
    }

    #[test]
    fn padding_never_exceeds_record_max() {
        // 12000 fits one fragment; padding would round to 20000, which
        // exceeds the record maximum and clamps to 16384.
        let mut s = TlsSession::with_padding(TlsMode::Kernel, 10_000);
        assert_eq!(s.wrap(12_000), 16_384 + RECORD_OVERHEAD);
        assert_eq!(s.records, 1);
    }

    #[test]
    fn overhead_ratio() {
        let mut s = TlsSession::new(TlsMode::Userspace);
        s.wrap(MAX_RECORD_PLAINTEXT);
        let expect = RECORD_OVERHEAD as f64 / MAX_RECORD_PLAINTEXT as f64;
        assert!((s.overhead() - expect).abs() < 1e-12);
    }

    #[test]
    fn handshake_flight_sizes_plausible() {
        let (ch, sh, fin) = TlsSession::handshake_flights();
        assert!(ch > 100 && ch < 2000);
        assert!(sh > 2000 && sh < 10_000);
        assert!(fin > 0 && fin < 500);
    }
}
