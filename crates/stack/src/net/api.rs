//! The application-facing control surface: [`Api`] is the handle passed
//! into every [`App`](super::App) callback, providing connection setup
//! (TCP, QUIC, or any custom [`TransportCore`]), socket-style writes,
//! shaper installation, timers, and per-flow stats.

use super::host::Transport;
use super::{Ev, Network, CLIENT};
use crate::config::StackConfig;
use crate::egress::{FlowStats, TransportCore};
use crate::quic::QuicConn;
use crate::shaper::BoxShaper;
use crate::tcp::TcpConn;
use netsim::{FlowId, Nanos, SimRng};

/// Application-facing handle, passed into every [`App`](super::App)
/// callback.
pub struct Api<'a> {
    pub(super) net: &'a mut Network,
    pub(super) host: usize,
}

/// Kinds of application-visible events (used by recording apps).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppEvent {
    Connected,
    Data(u64),
    Sendable,
    PeerClosed,
    Timer(u64),
}

impl<'a> Api<'a> {
    pub fn now(&self) -> Nanos {
        self.net.q.now()
    }

    pub fn host(&self) -> usize {
        self.host
    }

    /// Open a TCP connection to the other host (client side only) using
    /// the host's default stack config.
    pub fn connect(&mut self) -> FlowId {
        let cfg = self.net.hosts[self.host].cfg.stack.clone();
        self.connect_with(cfg, None)
    }

    /// Open a connection with an explicit stack config and optional
    /// shaper (the `setsockopt`-style control surface §5.3 points at).
    pub fn connect_with(&mut self, cfg: StackConfig, shaper: Option<BoxShaper>) -> FlowId {
        assert_eq!(self.host, CLIENT, "only the client opens connections");
        let flow = FlowId(self.net.next_flow);
        self.net.next_flow += 1;
        let mut conn = TcpConn::new(flow, cfg, true);
        if let Some(s) = shaper {
            conn.set_shaper(s);
        }
        if let Some(tr) = &self.net.tracer {
            conn.set_tracer(tr.clone());
        }
        let now = self.net.q.now();
        let acts = conn.connect(now);
        self.net.hosts[self.host]
            .conns
            .insert(flow, Transport::Tcp(conn));
        self.net.apply(self.host, flow, acts);
        flow
    }

    /// Open a QUIC connection to the other host (client side only).
    pub fn connect_quic(&mut self, cfg: StackConfig, shaper: Option<BoxShaper>) -> FlowId {
        assert_eq!(self.host, CLIENT, "only the client opens connections");
        let flow = FlowId(self.net.next_flow);
        self.net.next_flow += 1;
        let mut conn = QuicConn::new(flow, cfg, true);
        if let Some(s) = shaper {
            conn.set_shaper(s);
        }
        if let Some(tr) = &self.net.tracer {
            conn.set_tracer(tr.clone());
        }
        let now = self.net.q.now();
        let acts = conn.connect(now);
        self.net.hosts[self.host]
            .conns
            .insert(flow, Transport::Quic(conn));
        self.net.apply(self.host, flow, acts);
        flow
    }

    /// Install a custom transport (client side only). The constructor
    /// receives the allocated flow id; the returned [`TransportCore`] is
    /// driven through the same qdisc/NIC datapath as TCP and QUIC.
    ///
    /// Custom transports perform no handshake in this model: the flow is
    /// usable immediately, and data pushed via [`Api::send`] flows as
    /// soon as the transport's `output` emits segments. See the
    /// crate-level example in [`crate::egress`] for a full walk-through.
    pub fn connect_custom(
        &mut self,
        make: impl FnOnce(FlowId) -> Box<dyn TransportCore>,
    ) -> FlowId {
        assert_eq!(self.host, CLIENT, "only the client opens connections");
        let flow = FlowId(self.net.next_flow);
        self.net.next_flow += 1;
        let mut core = make(flow);
        if let Some(tr) = &self.net.tracer {
            core.set_tracer(tr.clone());
        }
        self.net.hosts[self.host]
            .conns
            .insert(flow, Transport::Custom(core));
        flow
    }

    /// Install a shaper on an existing connection (either host). This is
    /// how a server-side deployment (§5.4) attaches Stob policies to
    /// accepted connections.
    pub fn set_shaper(&mut self, flow: FlowId, shaper: BoxShaper) {
        if let Some(conn) = self.net.hosts[self.host].conns.get_mut(&flow) {
            conn.core_mut().set_shaper(shaper);
        }
    }

    /// Write up to `bytes` into the socket buffer; returns bytes accepted.
    pub fn send(&mut self, flow: FlowId, bytes: u64) -> u64 {
        let now = self.net.q.now();
        let (accepted, acts) = {
            let h = &mut self.net.hosts[self.host];
            let Some(conn) = h.conns.get_mut(&flow) else {
                return 0;
            };
            let core = conn.core_mut();
            let accepted = core.write(bytes);
            let acts = core.output(now, &mut h.cpu);
            (accepted, acts)
        };
        self.net.apply(self.host, flow, acts);
        accepted
    }

    /// Close our direction of the connection (FIN after queued data).
    pub fn close(&mut self, flow: FlowId) {
        let now = self.net.q.now();
        let acts = {
            let h = &mut self.net.hosts[self.host];
            // QUIC-lite models no CONNECTION_CLOSE frame; closing is a
            // TCP-only operation here.
            match h.conns.get_mut(&flow).and_then(Transport::as_tcp_mut) {
                Some(conn) => {
                    conn.close();
                    conn.output(now, &mut h.cpu)
                }
                None => return,
            }
        };
        self.net.apply(self.host, flow, acts);
    }

    /// Arm an application timer delivering `token` after `delay`.
    pub fn set_timer(&mut self, delay: Nanos, token: u64) {
        let host = self.host;
        self.net.q.schedule_in(delay, Ev::AppTimer { host, token });
    }

    /// Arm (or re-arm) a stall watchdog on `flow`: if no packet arrives
    /// for the flow within `idle_timeout`, the app's
    /// [`on_stall`](super::App::on_stall) callback fires and the watch
    /// disarms. The forward-progress clock restarts now; every arrival
    /// for the flow pushes it forward.
    pub fn watch(&mut self, flow: FlowId, idle_timeout: Nanos) {
        assert!(
            !idle_timeout.is_zero(),
            "a zero idle timeout would fire the watchdog unconditionally"
        );
        let now = self.net.q.now();
        let host = self.host;
        let h = &mut self.net.hosts[host];
        h.watch_gen += 1;
        let gen = h.watch_gen;
        h.watch.insert(
            flow,
            super::host::Watch {
                timeout: idle_timeout,
                last_progress: now,
                gen,
            },
        );
        self.net
            .q
            .schedule_at(now + idle_timeout, Ev::Watchdog { host, flow, gen });
    }

    /// Disarm the stall watchdog on `flow`, if armed.
    pub fn unwatch(&mut self, flow: FlowId) {
        self.net.hosts[self.host].watch.remove(&flow);
    }

    /// Abort `flow` locally and immediately: the connection state is
    /// discarded (no FIN/close handshake — this models an application
    /// giving up on a stalled connection), its watchdog is disarmed, and
    /// packets still arriving for the flow are ignored as stray. The
    /// peer's half keeps retransmitting into the void until its own
    /// timers give up, exactly like a real half-dead TCP connection.
    pub fn abort(&mut self, flow: FlowId) {
        let h = &mut self.net.hosts[self.host];
        h.watch.remove(&flow);
        if h.conns.remove(&flow).is_some() {
            netsim::tm_counter!("stack.recovery.aborts").inc();
            if let Some(tr) = &self.net.tracer {
                let now = self.net.q.now();
                tr.rec(
                    now,
                    u64::from(flow.0),
                    "net",
                    "abort",
                    0,
                    0,
                    "recovery-abort",
                );
            }
        }
    }

    /// Transport-agnostic stats of one of this host's connections.
    pub fn flow_stats(&self, flow: FlowId) -> Option<FlowStats> {
        self.net.flow_stats(self.host, flow)
    }

    /// Smoothed RTT of a connection, if measured.
    pub fn srtt(&self, flow: FlowId) -> Option<Nanos> {
        self.net.hosts[self.host]
            .conns
            .get(&flow)
            .and_then(|t| t.core().srtt())
    }

    /// Deterministic per-app randomness.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.net.rng
    }
}

#[cfg(test)]
mod tests {
    use super::super::{Network, SERVER};
    use crate::apps::{BulkSender, ShapedSender, Sink};
    use crate::config::{HostConfig, PathConfig, StackConfig};
    use crate::cpu::CpuModel;
    use netsim::FlowId;

    fn fast_host() -> HostConfig {
        HostConfig {
            cpu: CpuModel::infinitely_fast(),
            ..HostConfig::default()
        }
    }

    /// `ShapedSender` drives a transfer through `connect_with` exactly
    /// like a plain `BulkSender` does through `connect`.
    #[test]
    fn shaped_sender_without_shaper_matches_bulk_sender() {
        let total = 300_000;
        let run = |app: Box<dyn crate::net::App>| {
            let mut net = Network::new(
                fast_host(),
                fast_host(),
                PathConfig::internet(50, 20),
                app,
                Box::new(Sink::default()),
                61,
            );
            net.run_to_idle();
            net.flow_stats(SERVER, FlowId(1)).expect("flow stats")
        };
        let plain = run(Box::new(BulkSender::new(total)));
        let shaped = run(Box::new(ShapedSender::new(
            BulkSender::new(total),
            StackConfig::default(),
            None,
        )));
        assert_eq!(plain.bytes_delivered, total);
        assert_eq!(plain, shaped);
    }
}
