//! The application-facing control surface: [`Api`] is the handle passed
//! into every [`App`](super::App) callback, providing connection setup
//! (TCP, QUIC, or any custom [`TransportCore`]), socket-style writes,
//! shaper installation, timers, and per-flow stats.

use super::host::Transport;
use super::{Ev, Network, CLIENT};
use crate::config::StackConfig;
use crate::egress::{FlowStats, TransportCore};
use crate::quic::QuicConn;
use crate::shaper::BoxShaper;
use crate::tcp::{ConnStats, TcpConn};
use netsim::{FlowId, Nanos, SimRng};

/// Application-facing handle, passed into every [`App`](super::App)
/// callback.
pub struct Api<'a> {
    pub(super) net: &'a mut Network,
    pub(super) host: usize,
}

/// Kinds of application-visible events (used by recording apps).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppEvent {
    Connected,
    Data(u64),
    Sendable,
    PeerClosed,
    Timer(u64),
}

impl<'a> Api<'a> {
    pub fn now(&self) -> Nanos {
        self.net.q.now()
    }

    pub fn host(&self) -> usize {
        self.host
    }

    /// Open a TCP connection to the other host (client side only) using
    /// the host's default stack config.
    pub fn connect(&mut self) -> FlowId {
        let cfg = self.net.hosts[self.host].cfg.stack.clone();
        self.connect_with(cfg, None)
    }

    /// Open a connection with an explicit stack config and optional
    /// shaper (the `setsockopt`-style control surface §5.3 points at).
    pub fn connect_with(&mut self, cfg: StackConfig, shaper: Option<BoxShaper>) -> FlowId {
        assert_eq!(self.host, CLIENT, "only the client opens connections");
        let flow = FlowId(self.net.next_flow);
        self.net.next_flow += 1;
        let mut conn = TcpConn::new(flow, cfg, true);
        if let Some(s) = shaper {
            conn.set_shaper(s);
        }
        if let Some(tr) = &self.net.tracer {
            conn.set_tracer(tr.clone());
        }
        let now = self.net.q.now();
        let acts = conn.connect(now);
        self.net.hosts[self.host]
            .conns
            .insert(flow, Transport::Tcp(conn));
        self.net.apply(self.host, flow, acts);
        flow
    }

    /// Open a QUIC connection to the other host (client side only).
    pub fn connect_quic(&mut self, cfg: StackConfig, shaper: Option<BoxShaper>) -> FlowId {
        assert_eq!(self.host, CLIENT, "only the client opens connections");
        let flow = FlowId(self.net.next_flow);
        self.net.next_flow += 1;
        let mut conn = QuicConn::new(flow, cfg, true);
        if let Some(s) = shaper {
            conn.set_shaper(s);
        }
        if let Some(tr) = &self.net.tracer {
            conn.set_tracer(tr.clone());
        }
        let now = self.net.q.now();
        let acts = conn.connect(now);
        self.net.hosts[self.host]
            .conns
            .insert(flow, Transport::Quic(conn));
        self.net.apply(self.host, flow, acts);
        flow
    }

    /// Install a custom transport (client side only). The constructor
    /// receives the allocated flow id; the returned [`TransportCore`] is
    /// driven through the same qdisc/NIC datapath as TCP and QUIC.
    ///
    /// Custom transports perform no handshake in this model: the flow is
    /// usable immediately, and data pushed via [`Api::send`] flows as
    /// soon as the transport's `output` emits segments. See the
    /// crate-level example in [`crate::egress`] for a full walk-through.
    pub fn connect_custom(
        &mut self,
        make: impl FnOnce(FlowId) -> Box<dyn TransportCore>,
    ) -> FlowId {
        assert_eq!(self.host, CLIENT, "only the client opens connections");
        let flow = FlowId(self.net.next_flow);
        self.net.next_flow += 1;
        let mut core = make(flow);
        if let Some(tr) = &self.net.tracer {
            core.set_tracer(tr.clone());
        }
        self.net.hosts[self.host]
            .conns
            .insert(flow, Transport::Custom(core));
        flow
    }

    /// Install a shaper on an existing connection (either host). This is
    /// how a server-side deployment (§5.4) attaches Stob policies to
    /// accepted connections.
    pub fn set_shaper(&mut self, flow: FlowId, shaper: BoxShaper) {
        if let Some(conn) = self.net.hosts[self.host].conns.get_mut(&flow) {
            conn.core_mut().set_shaper(shaper);
        }
    }

    /// Write up to `bytes` into the socket buffer; returns bytes accepted.
    pub fn send(&mut self, flow: FlowId, bytes: u64) -> u64 {
        let now = self.net.q.now();
        let (accepted, acts) = {
            let h = &mut self.net.hosts[self.host];
            let Some(conn) = h.conns.get_mut(&flow) else {
                return 0;
            };
            let core = conn.core_mut();
            let accepted = core.write(bytes);
            let acts = core.output(now, &mut h.cpu);
            (accepted, acts)
        };
        self.net.apply(self.host, flow, acts);
        accepted
    }

    /// Close our direction of the connection (FIN after queued data).
    pub fn close(&mut self, flow: FlowId) {
        let now = self.net.q.now();
        let acts = {
            let h = &mut self.net.hosts[self.host];
            // QUIC-lite models no CONNECTION_CLOSE frame; closing is a
            // TCP-only operation here.
            match h.conns.get_mut(&flow).and_then(Transport::as_tcp_mut) {
                Some(conn) => {
                    conn.close();
                    conn.output(now, &mut h.cpu)
                }
                None => return,
            }
        };
        self.net.apply(self.host, flow, acts);
    }

    /// Arm an application timer delivering `token` after `delay`.
    pub fn set_timer(&mut self, delay: Nanos, token: u64) {
        let host = self.host;
        self.net.q.schedule_in(delay, Ev::AppTimer { host, token });
    }

    /// Transport-agnostic stats of one of this host's connections.
    pub fn flow_stats(&self, flow: FlowId) -> Option<FlowStats> {
        self.net.flow_stats(self.host, flow)
    }

    /// TCP-specific stats of one of this host's connections.
    #[deprecated(note = "use `flow_stats` for transport-agnostic counters")]
    pub fn conn_stats(&self, flow: FlowId) -> Option<ConnStats> {
        #[allow(deprecated)]
        self.net.conn_stats(self.host, flow)
    }

    /// Smoothed RTT of a connection, if measured.
    pub fn srtt(&self, flow: FlowId) -> Option<Nanos> {
        self.net.hosts[self.host]
            .conns
            .get(&flow)
            .and_then(|t| t.core().srtt())
    }

    /// Deterministic per-app randomness.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.net.rng
    }
}

#[cfg(test)]
mod tests {
    use super::super::{Network, SERVER};
    use crate::apps::{BulkSender, Sink};
    use crate::config::{HostConfig, PathConfig, StackConfig};
    use crate::cpu::CpuModel;
    use crate::net::{Api, App, CLIENT};
    use netsim::{FlowId, Nanos};

    fn fast_host() -> HostConfig {
        HostConfig {
            cpu: CpuModel::infinitely_fast(),
            ..HostConfig::default()
        }
    }

    /// The deprecated TCP getters must keep working and agree with the
    /// unified accessor.
    #[test]
    #[allow(deprecated)]
    fn deprecated_conn_stats_wrapper_matches_flow_stats() {
        let total = 300_000;
        let mut net = Network::new(
            fast_host(),
            fast_host(),
            PathConfig::internet(50, 20),
            Box::new(BulkSender::new(total)),
            Box::new(Sink::default()),
            61,
        );
        net.run_to_idle();
        let legacy = net.conn_stats(SERVER, FlowId(1)).expect("tcp stats");
        let unified = net.flow_stats(SERVER, FlowId(1)).expect("flow stats");
        assert_eq!(legacy.bytes_delivered, total);
        assert_eq!(unified.bytes_delivered, legacy.bytes_delivered);
        let c_legacy = net.conn_stats(CLIENT, FlowId(1)).unwrap();
        let c_unified = net.flow_stats(CLIENT, FlowId(1)).unwrap();
        assert_eq!(c_unified.segs_sent, c_legacy.segs_sent);
        assert_eq!(c_unified.pkts_sent, c_legacy.pkts_sent);
        assert_eq!(c_unified.acks_sent, c_legacy.acks_sent);
        assert_eq!(c_unified.retransmits, c_legacy.fast_retransmits);
        assert_eq!(c_unified.timeouts, c_legacy.rtos);
        // And the TCP-only getter stays TCP-only.
        assert!(net.quic_stats(SERVER, FlowId(1)).is_none());
    }

    /// Same contract for the deprecated QUIC getter.
    #[test]
    #[allow(deprecated)]
    fn deprecated_quic_stats_wrapper_matches_flow_stats() {
        struct QuicOnce;
        impl App for QuicOnce {
            fn on_start(&mut self, api: &mut Api) {
                api.connect_quic(StackConfig::default(), None);
            }
            fn on_connected(&mut self, api: &mut Api, flow: FlowId) {
                api.send(flow, 200_000);
            }
        }
        let mut net = Network::new(
            fast_host(),
            fast_host(),
            PathConfig::internet(100, 20),
            Box::new(QuicOnce),
            Box::new(Sink::default()),
            62,
        );
        net.run_until(Nanos::from_secs(10));
        let legacy = net.quic_stats(SERVER, FlowId(1)).expect("quic stats");
        let unified = net.flow_stats(SERVER, FlowId(1)).expect("flow stats");
        assert_eq!(legacy.bytes_delivered, 200_000);
        assert_eq!(unified.bytes_delivered, legacy.bytes_delivered);
        let c_legacy = net.quic_stats(CLIENT, FlowId(1)).unwrap();
        let c_unified = net.flow_stats(CLIENT, FlowId(1)).unwrap();
        assert_eq!(c_unified.segs_sent, c_legacy.batches_sent);
        assert_eq!(c_unified.pkts_sent, c_legacy.pkts_sent);
        assert_eq!(c_unified.retransmits, c_legacy.retransmissions);
        assert_eq!(c_unified.timeouts, c_legacy.ptos);
        assert!(net.conn_stats(SERVER, FlowId(1)).is_none());
    }
}
