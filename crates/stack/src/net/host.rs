//! Per-host state: the stack instances (transport connections), the CPU
//! model, the qdisc, and the NIC — everything below the application on
//! one side of the path.

use super::table::FlowTable;
use crate::config::HostConfig;
use crate::cpu::Cpu;
use crate::egress::TransportCore;
use crate::nic::Nic;
use crate::qdisc::FqQdisc;
use crate::quic::QuicConn;
use crate::tcp::TcpConn;
use netsim::Nanos;

/// A transport endpoint: the stack supports TCP and QUIC side by side
/// (Figure 1's columns share everything below the transport layer), plus
/// arbitrary user-supplied [`TransportCore`] implementations installed
/// via `Api::connect_custom`.
///
/// The network driver speaks to all variants exclusively through
/// [`core`](Transport::core) / [`core_mut`](Transport::core_mut); the
/// `as_*` accessors are the narrow escape hatch for transport-specific
/// stats and operations (TCP `close`, legacy stats getters).
pub(super) enum Transport {
    Tcp(TcpConn),
    Quic(QuicConn),
    Custom(Box<dyn TransportCore>),
}

impl Transport {
    /// The transport-agnostic driver interface.
    pub(super) fn core(&self) -> &dyn TransportCore {
        match self {
            Transport::Tcp(c) => c,
            Transport::Quic(c) => c,
            Transport::Custom(c) => c.as_ref(),
        }
    }

    /// Mutable transport-agnostic driver interface.
    pub(super) fn core_mut(&mut self) -> &mut dyn TransportCore {
        match self {
            Transport::Tcp(c) => c,
            Transport::Quic(c) => c,
            Transport::Custom(c) => c.as_mut(),
        }
    }

    /// TCP-specific escape hatch (`close`).
    pub(super) fn as_tcp_mut(&mut self) -> Option<&mut TcpConn> {
        match self {
            Transport::Tcp(c) => Some(c),
            _ => None,
        }
    }
}

/// Stall-watchdog state for one watched flow: the forward-progress clock
/// (`last_progress` advances on every arrival for the flow) plus the idle
/// timeout after which the application is told the flow stalled.
pub(super) struct Watch {
    pub(super) timeout: Nanos,
    pub(super) last_progress: Nanos,
    /// Arm generation; watchdog events from an earlier arm are stale.
    pub(super) gen: u64,
}

pub(super) struct Host {
    pub(super) cfg: HostConfig,
    pub(super) cpu: Cpu,
    pub(super) nic: Nic,
    pub(super) qdisc: FqQdisc,
    pub(super) conns: FlowTable<Transport>,
    /// Earliest pending QdiscCheck, to avoid event storms.
    pub(super) next_check: Option<Nanos>,
    /// Armed stall watchdogs, per flow (see `Api::watch`).
    pub(super) watch: FlowTable<Watch>,
    /// Monotonic arm counter feeding `Watch::gen`.
    pub(super) watch_gen: u64,
}

impl Host {
    pub(super) fn new(cfg: HostConfig) -> Self {
        Host {
            cpu: Cpu::new(cfg.cpu),
            nic: Nic::new(cfg.nic_rate_bps),
            qdisc: FqQdisc::new(),
            conns: FlowTable::new(),
            next_check: None,
            watch: FlowTable::new(),
            watch_gen: 0,
            cfg,
        }
    }
}
