//! Dense per-host flow tables.
//!
//! Flow ids are allocated densely (a monotone counter starting at 1),
//! so keying per-flow state on a `BTreeMap<FlowId, T>` pays tree walks
//! and node allocations for what is really vector indexing. At
//! fleet scale — tens of thousands of resident flows per shard, every
//! packet arrival doing at least one lookup — that cost sits directly
//! on the hottest path in the repo. [`FlowTable`] is the replacement:
//! a flat `Vec<Option<T>>` indexed by `FlowId`, O(1) lookup, one cache
//! line per probe, with deterministic ascending-id iteration (matching
//! the `BTreeMap` order it replaced, so goldens are unchanged).
//!
//! The API mirrors the `BTreeMap` subset the network driver used, which
//! is why lookups take `&FlowId`. Both the per-host connection tables
//! (`super::host::Host`) and the per-shard flow tables in the fleet
//! engine (`stob::fleet`) build on this type.

use netsim::FlowId;

/// Dense map from [`FlowId`] to per-flow state.
///
/// Slots are never shrunk: a removed flow leaves a `None` hole that is
/// reused if the same id is ever re-inserted. Because flow ids are
/// allocated monotonically per [`super::Network`], table capacity is
/// bounded by the number of flows ever opened, and iteration order is
/// ascending id — stable and thread-count independent.
pub struct FlowTable<T> {
    slots: Vec<Option<T>>,
    len: usize,
}

impl<T> Default for FlowTable<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> FlowTable<T> {
    /// An empty table.
    pub fn new() -> Self {
        FlowTable {
            slots: Vec::new(),
            len: 0,
        }
    }

    /// An empty table pre-sized for flow ids below `cap`.
    pub fn with_capacity(cap: usize) -> Self {
        FlowTable {
            slots: Vec::with_capacity(cap),
            len: 0,
        }
    }

    /// Insert state for `flow`, returning the previous occupant if any.
    pub fn insert(&mut self, flow: FlowId, val: T) -> Option<T> {
        let idx = flow.0 as usize;
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, || None);
        }
        let old = self.slots[idx].replace(val);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// State for `flow`, if present.
    pub fn get(&self, flow: &FlowId) -> Option<&T> {
        self.slots.get(flow.0 as usize)?.as_ref()
    }

    /// Mutable state for `flow`, if present.
    pub fn get_mut(&mut self, flow: &FlowId) -> Option<&mut T> {
        self.slots.get_mut(flow.0 as usize)?.as_mut()
    }

    /// Remove and return the state for `flow`.
    pub fn remove(&mut self, flow: &FlowId) -> Option<T> {
        let old = self.slots.get_mut(flow.0 as usize)?.take();
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// Is state present for `flow`?
    pub fn contains_key(&self, flow: &FlowId) -> bool {
        self.get(flow).is_some()
    }

    /// Number of present flows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no flows are present.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterate `(flow, state)` in ascending flow-id order.
    pub fn iter(&self) -> impl Iterator<Item = (FlowId, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|v| (FlowId(i as u32), v)))
    }

    /// Iterate `(flow, state)` mutably in ascending flow-id order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (FlowId, &mut T)> {
        self.slots
            .iter_mut()
            .enumerate()
            .filter_map(|(i, s)| s.as_mut().map(|v| (FlowId(i as u32), v)))
    }

    /// Iterate states mutably in ascending flow-id order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.slots.iter_mut().filter_map(|s| s.as_mut())
    }

    /// Iterate states in ascending flow-id order.
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.slots.iter().filter_map(|s| s.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut t: FlowTable<&str> = FlowTable::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(FlowId(3), "a"), None);
        assert_eq!(t.insert(FlowId(1), "b"), None);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(&FlowId(3)), Some(&"a"));
        assert!(t.contains_key(&FlowId(1)));
        assert!(!t.contains_key(&FlowId(2)));
        assert_eq!(t.insert(FlowId(3), "a2"), Some("a"));
        assert_eq!(t.len(), 2, "replacement does not grow the table");
        assert_eq!(t.remove(&FlowId(3)), Some("a2"));
        assert_eq!(t.remove(&FlowId(3)), None);
        assert_eq!(t.remove(&FlowId(99)), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn iteration_is_ascending_id_order() {
        // Matches the BTreeMap ordering this type replaced.
        let mut t = FlowTable::new();
        for id in [7u32, 2, 9, 4] {
            t.insert(FlowId(id), id * 10);
        }
        let got: Vec<_> = t.iter().map(|(f, &v)| (f.0, v)).collect();
        assert_eq!(got, vec![(2, 20), (4, 40), (7, 70), (9, 90)]);
        for v in t.values_mut() {
            *v += 1;
        }
        let vals: Vec<_> = t.values().copied().collect();
        assert_eq!(vals, vec![21, 41, 71, 91]);
    }

    #[test]
    fn removed_slot_is_reusable() {
        let mut t = FlowTable::new();
        t.insert(FlowId(5), 1);
        t.remove(&FlowId(5));
        assert_eq!(t.insert(FlowId(5), 2), None);
        assert_eq!(t.get(&FlowId(5)), Some(&2));
        assert_eq!(t.len(), 1);
    }
}
