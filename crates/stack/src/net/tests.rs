//! End-to-end tests of the simulated network: handshakes, bulk
//! transfers, loss recovery, QUIC, and fair sharing. Fault-injection and
//! auditor tests live in `tests_faults`.

use super::{Api, App, Network, CLIENT, SERVER};
use crate::apps::{BulkSender, NullApp, Sink};
use crate::config::{CcKind, HostConfig, PathConfig, StackConfig};
use crate::cpu::CpuModel;
use netsim::{Direction, FlowId, Nanos, PacketKind};

fn fast_hosts() -> (HostConfig, HostConfig) {
    let h = HostConfig {
        cpu: CpuModel::infinitely_fast(),
        ..HostConfig::default()
    };
    (h.clone(), h)
}

#[test]
fn bulk_transfer_is_exact_over_internet_path() {
    let (hc, hs) = fast_hosts();
    let total = 5_000_000;
    let mut net = Network::new(
        hc,
        hs,
        PathConfig::internet(50, 30),
        Box::new(BulkSender::new(total)),
        Box::new(Sink::default()),
        1,
    );
    let end = net.run_to_idle();
    let sink_bytes = net.flow_stats(SERVER, FlowId(1)).unwrap().bytes_delivered;
    assert_eq!(sink_bytes, total, "delivery must be exact");
    // Sanity on elapsed: 5 MB at 50 Mb/s is >= 0.8 s.
    assert!(end > Nanos::from_millis(800), "finished too fast: {end}");
    assert!(end < Nanos::from_secs(10), "took too long: {end}");
}

#[test]
fn handshake_takes_one_rtt() {
    struct Probe {
        connected_at: Option<Nanos>,
    }
    impl App for Probe {
        fn on_start(&mut self, api: &mut Api) {
            api.connect();
        }
        fn on_connected(&mut self, api: &mut Api, _f: FlowId) {
            self.connected_at = Some(api.now());
        }
    }
    let (hc, hs) = fast_hosts();
    let path = PathConfig::internet(100, 40);
    let mut net = Network::new(
        hc,
        hs,
        path,
        Box::new(Probe { connected_at: None }),
        Box::new(NullApp),
        2,
    );
    net.run_to_idle();
    // Reach into the capture to find when the client learned.
    let synack = net
        .client_capture
        .records
        .iter()
        .find(|r| r.kind == PacketKind::TcpSynAck)
        .expect("SYN-ACK captured");
    let rtt_ms = synack.ts.as_millis_f64();
    assert!(
        (39.0..45.0).contains(&rtt_ms),
        "SYN-ACK after {rtt_ms} ms, expected ~40"
    );
}

#[test]
fn capture_sees_handshake_then_data_in_order() {
    let (hc, hs) = fast_hosts();
    let mut net = Network::new(
        hc,
        hs,
        PathConfig::internet(50, 20),
        Box::new(BulkSender::new(100_000)),
        Box::new(Sink::default()),
        3,
    );
    net.run_to_idle();
    let recs = &net.client_capture.records;
    assert!(net.client_capture.is_time_ordered());
    assert_eq!(recs[0].kind, PacketKind::TcpSyn);
    assert_eq!(recs[0].dir, Direction::Out);
    assert_eq!(recs[1].kind, PacketKind::TcpSynAck);
    assert_eq!(recs[1].dir, Direction::In);
    assert!(recs.iter().any(|r| r.kind == PacketKind::TcpData));
    assert!(recs.iter().any(|r| r.kind == PacketKind::TcpFin));
}

#[test]
fn loss_is_recovered_exactly() {
    let (hc, hs) = fast_hosts();
    let mut path = PathConfig::internet(50, 20);
    path.loss = 0.02;
    let total = 2_000_000;
    let mut net = Network::new(
        hc,
        hs,
        path,
        Box::new(BulkSender::new(total)),
        Box::new(Sink::default()),
        4,
    );
    net.run_to_idle();
    assert_eq!(
        net.flow_stats(SERVER, FlowId(1)).unwrap().bytes_delivered,
        total
    );
    assert!(net.path_stats.random_drops > 0, "loss never injected");
    let cs = net.flow_stats(CLIENT, FlowId(1)).unwrap();
    assert!(
        cs.retransmits + cs.timeouts > 0,
        "loss must trigger recovery"
    );
}

#[test]
fn tso_microburst_visible_at_line_rate() {
    // Over the 100 Gb/s lab path, packets of one TSO segment leave
    // back-to-back at line rate (§4.2's micro burst).
    let (mut hc, hs) = fast_hosts();
    hc.stack.pacing = false;
    hc.stack.cc = CcKind::Cubic;
    let mut net = Network::new(
        hc,
        hs,
        PathConfig::lab_100g(),
        Box::new(BulkSender::new(10_000_000)),
        Box::new(Sink::default()),
        5,
    );
    net.run_until(Nanos::from_millis(50));
    let data: Vec<_> = net
        .client_capture
        .records
        .iter()
        .filter(|r| r.kind == PacketKind::TcpData && r.dir == Direction::Out)
        .collect();
    assert!(data.len() > 50, "need a burst, got {}", data.len());
    // Find at least one run of >= 8 packets with ~121 ns spacing.
    let mut run = 0;
    let mut best = 0;
    for w in data.windows(2) {
        let gap = (w[1].ts - w[0].ts).as_nanos();
        if gap <= 125 {
            run += 1;
            best = best.max(run);
        } else {
            run = 0;
        }
    }
    assert!(best >= 8, "longest line-rate run {best}");
}

#[test]
fn cpu_model_bounds_throughput_on_lab_path() {
    // With the calibrated default CPU model, a single flow over
    // 100 Gb/s is CPU-bound around 35-55 Gb/s (Figure 3's default
    // operating point).
    let hc = HostConfig::default();
    let hs = HostConfig::default();
    let mut net = Network::new(
        hc,
        hs,
        PathConfig::lab_100g(),
        Box::new(BulkSender::endless()),
        Box::new(Sink::default()),
        6,
    );
    let warmup = Nanos::from_millis(30);
    net.run_until(warmup);
    let base = net
        .flow_stats(SERVER, FlowId(1))
        .map(|s| s.bytes_delivered)
        .unwrap_or(0);
    let window = Nanos::from_millis(50);
    net.run_until(warmup + window);
    let bytes = net.flow_stats(SERVER, FlowId(1)).unwrap().bytes_delivered - base;
    let gbps = bytes as f64 * 8.0 / window.as_secs_f64() / 1e9;
    assert!(
        (30.0..60.0).contains(&gbps),
        "CPU-bound goodput {gbps:.1} Gb/s out of calibration band"
    );
}

#[test]
fn two_flows_share_the_bottleneck() {
    struct TwoFlows;
    impl App for TwoFlows {
        fn on_start(&mut self, api: &mut Api) {
            api.connect();
            api.connect();
        }
        fn on_connected(&mut self, api: &mut Api, flow: FlowId) {
            api.send(flow, 2_000_000);
            api.close(flow);
        }
        fn on_sendable(&mut self, _api: &mut Api, _flow: FlowId) {}
    }
    let (hc, hs) = fast_hosts();
    let mut net = Network::new(
        hc,
        hs,
        PathConfig::internet(50, 20),
        Box::new(TwoFlows),
        Box::new(Sink::default()),
        7,
    );
    net.run_to_idle();
    let d1 = net.flow_stats(SERVER, FlowId(1)).unwrap().bytes_delivered;
    let d2 = net.flow_stats(SERVER, FlowId(2)).unwrap().bytes_delivered;
    assert_eq!(d1, 2_000_000);
    assert_eq!(d2, 2_000_000);
}

#[test]
fn quic_transfer_end_to_end() {
    struct QuicSender {
        written: bool,
    }
    impl App for QuicSender {
        fn on_start(&mut self, api: &mut Api) {
            api.connect_quic(StackConfig::default(), None);
        }
        fn on_connected(&mut self, api: &mut Api, flow: FlowId) {
            if !self.written {
                self.written = true;
                api.send(flow, 1_000_000);
            }
        }
    }
    let (hc, hs) = fast_hosts();
    let mut net = Network::new(
        hc,
        hs,
        PathConfig::internet(100, 20),
        Box::new(QuicSender { written: false }),
        Box::new(Sink::default()),
        21,
    );
    net.run_until(Nanos::from_secs(20));
    let st = net.flow_stats(SERVER, FlowId(1)).expect("server quic conn");
    assert_eq!(st.bytes_delivered, 1_000_000);
    // The capture contains the Initial handshake and QUIC data.
    assert!(net
        .client_capture
        .records
        .iter()
        .any(|r| r.kind == PacketKind::QuicInit));
    let data = net
        .client_capture
        .records
        .iter()
        .filter(|r| r.kind == PacketKind::QuicData)
        .count();
    assert!(data >= 700, "expected ~741 datagrams, saw {data}");
}

#[test]
fn quic_flow_survives_loss() {
    struct QuicSender;
    impl App for QuicSender {
        fn on_start(&mut self, api: &mut Api) {
            api.connect_quic(StackConfig::default(), None);
        }
        fn on_connected(&mut self, api: &mut Api, flow: FlowId) {
            api.send(flow, 500_000);
        }
    }
    let (hc, hs) = fast_hosts();
    let mut path = PathConfig::internet(50, 20);
    path.loss = 0.02;
    let mut net = Network::new(
        hc,
        hs,
        path,
        Box::new(QuicSender),
        Box::new(Sink::default()),
        22,
    );
    net.run_until(Nanos::from_secs(30));
    let st = net.flow_stats(SERVER, FlowId(1)).expect("server conn");
    assert_eq!(st.bytes_delivered, 500_000, "QUIC must recover from loss");
    let cs = net.flow_stats(CLIENT, FlowId(1)).expect("client conn");
    assert!(cs.retransmits > 0);
}

#[test]
fn quic_shaper_applies_on_the_wire() {
    struct Shaped;
    impl App for Shaped {
        fn on_start(&mut self, api: &mut Api) {
            struct Small;
            impl crate::shaper::Shaper for Small {
                fn packet_ip_size(&mut self, _c: &crate::shaper::ShapeCtx, _i: u32, p: u32) -> u32 {
                    p.min(700)
                }
            }
            api.connect_quic(StackConfig::default(), Some(Box::new(Small)));
        }
        fn on_connected(&mut self, api: &mut Api, flow: FlowId) {
            api.send(flow, 200_000);
        }
    }
    let (hc, hs) = fast_hosts();
    let mut net = Network::new(
        hc,
        hs,
        PathConfig::internet(100, 10),
        Box::new(Shaped),
        Box::new(Sink::default()),
        23,
    );
    net.run_until(Nanos::from_secs(10));
    let st = net.flow_stats(SERVER, FlowId(1)).expect("server conn");
    assert_eq!(st.bytes_delivered, 200_000);
    for r in &net.client_capture.records {
        if r.kind == PacketKind::QuicData && r.dir == Direction::Out {
            assert!(r.wire_len <= 700 + 14, "datagram {} too big", r.wire_len);
        }
    }
}

#[test]
fn fq_shares_the_nic_between_flows_fairly() {
    // Two simultaneous bulk flows from the same host: FQ's
    // earliest-eligible-first scheduling plus per-flow pacing should
    // split the bottleneck roughly evenly.
    struct TwoBulk {
        pumped: std::collections::BTreeSet<u32>,
    }
    impl App for TwoBulk {
        fn on_start(&mut self, api: &mut Api) {
            api.connect();
            api.connect();
        }
        fn on_connected(&mut self, api: &mut Api, flow: FlowId) {
            self.pumped.insert(flow.0);
            api.send(flow, 1 << 30);
        }
        fn on_sendable(&mut self, api: &mut Api, flow: FlowId) {
            api.send(flow, 1 << 30);
        }
    }
    let (hc, hs) = fast_hosts();
    let mut net = Network::new(
        hc,
        hs,
        PathConfig::internet(100, 20),
        Box::new(TwoBulk {
            pumped: Default::default(),
        }),
        Box::new(Sink::default()),
        31,
    );
    net.run_until(Nanos::from_secs(8));
    let d1 = net
        .flow_stats(SERVER, FlowId(1))
        .expect("f1")
        .bytes_delivered;
    let d2 = net
        .flow_stats(SERVER, FlowId(2))
        .expect("f2")
        .bytes_delivered;
    let ratio = d1.max(d2) as f64 / d1.min(d2).max(1) as f64;
    assert!(
        ratio < 2.0,
        "flows too unfair: {d1} vs {d2} (ratio {ratio:.2})"
    );
    // And together they saturate a good share of the bottleneck.
    let total_gbps = (d1 + d2) as f64 * 8.0 / 8.0 / 1e9;
    assert!(
        total_gbps > 0.05,
        "aggregate goodput {total_gbps:.3} Gb/s too low"
    );
}

#[test]
fn app_timers_fire_in_order() {
    struct Timers {
        fired: Vec<u64>,
    }
    impl App for Timers {
        fn on_start(&mut self, api: &mut Api) {
            api.set_timer(Nanos::from_millis(5), 1);
            api.set_timer(Nanos::from_millis(1), 2);
            api.set_timer(Nanos::from_millis(3), 3);
        }
        fn on_timer(&mut self, _api: &mut Api, token: u64) {
            self.fired.push(token);
        }
    }
    let (hc, hs) = fast_hosts();
    let mut net = Network::new(
        hc,
        hs,
        PathConfig::default(),
        Box::new(Timers { fired: vec![] }),
        Box::new(NullApp),
        8,
    );
    net.run_to_idle();
    // We can't reach into the boxed app; assert via time instead.
    assert_eq!(net.now(), Nanos::from_millis(5));
}
