//! The simulated network: two hosts (client and server) joined by a
//! symmetric bottleneck, driven by a deterministic event loop.
//!
//! A passive vantage point at the client access link records every packet
//! in both directions — the `tcpdump` of the paper's §3 data collection.
//! A second vantage point at the server side supports server-side defense
//! studies (§5.4 argues the server side is the right deployment point).
//!
//! The module splits along the datapath:
//!
//! * [`mod@self`] — the [`Network`] container, event loop, fault/audit
//!   wiring, and stats introspection;
//! * `host` — per-host state (transport connections behind the
//!   [`TransportCore`] trait, CPU, qdisc,
//!   NIC);
//! * `delivery` — event handlers and the path datapath (qdisc→NIC,
//!   bottleneck, faults, arrival/passive open);
//! * [`table`] — the dense [`FlowTable`] keying per-flow state (shared
//!   with the fleet engine's per-shard tables);
//! * `api` — the application-facing [`Api`] handle.

mod api;
mod delivery;
mod host;
pub mod table;
#[cfg(test)]
mod tests;
#[cfg(test)]
mod tests_faults;

pub use api::{Api, AppEvent};
pub use table::FlowTable;

use crate::config::{HostConfig, PathConfig};
use crate::cpu::Cpu;
use crate::egress::{FlowStats, TransportCore};
use crate::tcp::TimerKind;
use host::Host;
use netsim::telemetry::Tracer;
use netsim::{
    AuditReport, Auditor, Capture, DropTailQueue, EventQueue, FaultInjector, FaultSchedule,
    FaultStats, FlowId, Link, Nanos, Packet, PathLedger, PipeProfile, SimRng,
};

pub const CLIENT: usize = 0;
pub const SERVER: usize = 1;

/// Callbacks through which applications drive the stack. All I/O is
/// asynchronous: `Api::send` only fills the socket buffer, mirroring the
/// `send()` semantics §2.3 builds its argument on.
pub trait App {
    fn on_start(&mut self, _api: &mut Api) {}
    /// Client side: connection established.
    fn on_connected(&mut self, _api: &mut Api, _flow: FlowId) {}
    /// Server side: a new connection completed its handshake.
    fn on_accept(&mut self, _api: &mut Api, _flow: FlowId) {}
    /// `bytes` new in-order bytes arrived on `flow`.
    fn on_data(&mut self, _api: &mut Api, _flow: FlowId, _bytes: u64) {}
    /// Socket-buffer space is available again after a short write.
    fn on_sendable(&mut self, _api: &mut Api, _flow: FlowId) {}
    /// The peer closed its direction of the connection.
    fn on_peer_closed(&mut self, _api: &mut Api, _flow: FlowId) {}
    /// An application timer set via [`Api::set_timer`] fired.
    fn on_timer(&mut self, _api: &mut Api, _token: u64) {}
    /// A stall watchdog armed via [`Api::watch`] fired: `flow` made no
    /// forward progress (no packet arrived for it) for `idle`. The watch
    /// is disarmed before this callback; re-arm with [`Api::watch`] (or
    /// tear the flow down with [`Api::abort`]) to keep supervising.
    fn on_stall(&mut self, _api: &mut Api, _flow: FlowId, _idle: Nanos) {}
}

/// Events flowing through the simulator.
#[derive(Debug)]
enum Ev {
    /// A packet arrives at a host (after the bottleneck + propagation).
    Arrive { host: usize, pkt: Packet },
    /// One wire packet's last bit left the host NIC.
    PktLeaveNic { host: usize, pkt: Packet },
    /// The NIC finished serializing a whole segment of `flow`.
    SegTxDone {
        host: usize,
        flow: FlowId,
        wire: u64,
    },
    /// Bottleneck transmitter finished the packet in flight.
    BnTxDone { dir: usize },
    /// Re-examine the qdisc (pacing eligibility or NIC became free).
    QdiscCheck { host: usize },
    /// Transport timer.
    ConnTimer {
        host: usize,
        flow: FlowId,
        kind: TimerKind,
        gen: u64,
    },
    /// Application timer.
    AppTimer { host: usize, token: u64 },
    /// A buffering link flap ended: drain held packets into the path.
    FlapRelease { dir: usize },
    /// Scheduled mid-flow path-MTU reduction from the fault schedule.
    MtuChange { new_mtu_ip: u32 },
    /// Stall-watchdog deadline for a watched flow. `gen` invalidates
    /// events from a previous arm of the same flow's watch.
    Watchdog { host: usize, flow: FlowId, gen: u64 },
}

/// Counters for the path between the hosts.
#[derive(Debug, Clone, Copy, Default)]
pub struct PathStats {
    pub random_drops: u64,
    pub overflow_drops: u64,
    pub delivered_pkts: u64,
}

/// One provisioned multipath leg: an independent pair of directed links
/// (client→server, server→client) with its own loss, fault injector,
/// conservation ledger, and on-path vantage point. Packets whose
/// [`netsim::PacketMeta::pipe`] names this leg bypass the default
/// bottleneck entirely (see `delivery::route_pipe`).
pub(super) struct PipeState {
    pub(super) profile: PipeProfile,
    /// Directed links, indexed by source host (like the bottleneck).
    pub(super) links: [Link; 2],
    pub(super) faults: Option<FaultInjector>,
    pub(super) ledger: PathLedger,
    /// Vantage point on this leg: `Out` = client→server. An observer
    /// here sees only the packets the splitter routed over this leg.
    pub(super) capture: Capture,
}

/// Passive-open constructor installed by [`Network::set_custom_acceptor`].
pub type CustomAcceptor = Box<dyn FnMut(FlowId) -> Box<dyn TransportCore>>;

/// The whole simulated world.
pub struct Network {
    q: EventQueue<Ev>,
    hosts: [Host; 2],
    apps: [Option<Box<dyn App>>; 2],
    path: PathConfig,
    bn_queue: [DropTailQueue; 2],
    bn_inflight: [Option<Packet>; 2],
    rng: SimRng,
    next_flow: u32,
    started: bool,
    /// Fault injector, when a schedule was installed via `set_faults`.
    faults: Option<FaultInjector>,
    /// Packets held during a buffering link flap, per direction.
    flap_held: [Vec<Packet>; 2],
    /// Runtime invariant checker (debug default; `STOB_AUDIT=1` or
    /// `set_audit` elsewhere).
    auditor: Auditor,
    /// Shared flow-trace ring: every shaping decision on either host is
    /// recorded here when installed (`set_tracer`).
    tracer: Option<Tracer>,
    /// End-to-end flow ledger: every packet, tagged or not.
    ledger: PathLedger,
    /// Ledger for packets on the default (single) path only; together
    /// with the per-pipe ledgers it must sum to `ledger` field-by-field.
    default_ledger: PathLedger,
    /// Provisioned multipath legs (`provision_pipes`); empty = classic
    /// single-path operation.
    pub(super) pipes: Vec<PipeState>,
    /// Passive-open constructor for custom transports: a MuxInit (or any
    /// Mux datagram) arriving at the server for an unknown flow is
    /// accepted through this, mirroring TCP SYN / QUIC Initial handling.
    pub(super) custom_acceptor: Option<CustomAcceptor>,
    pub path_stats: PathStats,
    /// Vantage point at the client access link (the paper's capture
    /// position). `Out` = client→server.
    pub client_capture: Capture,
    /// Vantage point at the server access link. `Out` = server→client.
    pub server_capture: Capture,
}

impl Network {
    pub fn new(
        client: HostConfig,
        server: HostConfig,
        path: PathConfig,
        client_app: Box<dyn App>,
        server_app: Box<dyn App>,
        seed: u64,
    ) -> Self {
        Network {
            q: EventQueue::new(),
            hosts: [Host::new(client), Host::new(server)],
            apps: [Some(client_app), Some(server_app)],
            bn_queue: [
                DropTailQueue::new(path.queue_bytes),
                DropTailQueue::new(path.queue_bytes),
            ],
            bn_inflight: [None, None],
            path,
            rng: SimRng::new(seed),
            next_flow: 1,
            started: false,
            faults: None,
            flap_held: [Vec::new(), Vec::new()],
            auditor: Auditor::new(),
            tracer: None,
            ledger: PathLedger::default(),
            default_ledger: PathLedger::default(),
            pipes: Vec::new(),
            custom_acceptor: None,
            path_stats: PathStats::default(),
            client_capture: Capture::new(),
            server_capture: Capture::new(),
        }
    }

    pub fn now(&self) -> Nanos {
        self.q.now()
    }

    /// Deliver `on_start` to both apps (server first, so it is listening
    /// before the client connects).
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        self.with_app(SERVER, |app, api| app.on_start(api));
        self.with_app(CLIENT, |app, api| app.on_start(api));
    }

    /// Run until the event queue drains. Returns the final time.
    pub fn run_to_idle(&mut self) -> Nanos {
        self.start();
        let mut sp = netsim::telemetry::span("stack.net.event_loop");
        let t0 = self.q.now();
        while let Some((t, ev)) = self.q.pop() {
            self.auditor.check_monotonic(t);
            self.handle(ev);
        }
        sp.sim_window(t0, self.q.now());
        self.q.now()
    }

    /// Run until simulated `deadline`; later events stay queued.
    pub fn run_until(&mut self, deadline: Nanos) {
        self.start();
        let mut sp = netsim::telemetry::span("stack.net.event_loop");
        let t0 = self.q.now();
        while let Some(t) = self.q.peek_time() {
            if t > deadline {
                break;
            }
            let (t, ev) = self.q.pop().expect("peeked event vanished");
            self.auditor.check_monotonic(t);
            self.handle(ev);
        }
        sp.sim_window(t0, self.q.now());
    }

    // ------------------------------------------------------------------
    // Fault injection & auditing
    // ------------------------------------------------------------------

    /// Install a fault schedule. MTU-drop items become scheduled events;
    /// the rest are consulted as packets traverse the path.
    pub fn set_faults(&mut self, schedule: &FaultSchedule) {
        let inj = FaultInjector::new(schedule);
        for (at, new_mtu_ip) in inj.mtu_events() {
            self.q
                .schedule_at(at.max(self.q.now()), Ev::MtuChange { new_mtu_ip });
        }
        self.faults = Some(inj);
    }

    /// Counters of faults that actually fired (`None` without a schedule).
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.faults.as_ref().map(|f| f.stats)
    }

    // ------------------------------------------------------------------
    // Multipath provisioning
    // ------------------------------------------------------------------

    /// Provision multipath legs for this network. Packets tagged with
    /// `meta.pipe = Some(i)` are routed over leg `i` — an independent
    /// pair of directed [`Link`]s with the profile's rate/delay/loss and
    /// an independently seeded fault schedule (see
    /// [`netsim::multilink::provision`]) — instead of the default
    /// bottleneck. Untagged packets are unaffected, so TCP/QUIC flows
    /// coexist with a multiplexed flow in the same simulation.
    ///
    /// Pipe fault schedules drive per-leg loss/outage/jitter; scheduled
    /// MTU changes in a pipe scenario are ignored (MTU is an end-host
    /// property, not a leg property). Link flaps on a leg drop rather
    /// than buffer: an outage on an unreliable datagram leg loses
    /// packets, and recovery is the multiplexer's job.
    pub fn provision_pipes(&mut self, profiles: &[PipeProfile], seed: u64, horizon: Nanos) {
        self.pipes = netsim::provision(profiles, seed, horizon)
            .into_iter()
            .map(|p| PipeState {
                links: [
                    Link::new(p.profile.rate_bps, p.profile.one_way_delay),
                    Link::new(p.profile.rate_bps, p.profile.one_way_delay),
                ],
                faults: p.schedule.as_ref().map(FaultInjector::new),
                ledger: PathLedger::default(),
                capture: Capture::new(),
                profile: p.profile,
            })
            .collect();
    }

    /// Install the passive-open constructor for custom transports: a
    /// multipath datagram arriving at the server for an unknown flow
    /// creates the connection through `make` (the server-side analogue
    /// of [`Api::connect_custom`]).
    pub fn set_custom_acceptor(
        &mut self,
        make: impl FnMut(FlowId) -> Box<dyn TransportCore> + 'static,
    ) {
        self.custom_acceptor = Some(Box::new(make));
    }

    /// Number of provisioned multipath legs.
    pub fn pipe_count(&self) -> usize {
        self.pipes.len()
    }

    /// The vantage point on leg `i` (packets the splitter routed there).
    pub fn pipe_capture(&self, i: usize) -> Option<&Capture> {
        self.pipes.get(i).map(|p| &p.capture)
    }

    /// Leg `i`'s conservation ledger.
    pub fn pipe_ledger(&self, i: usize) -> Option<PathLedger> {
        self.pipes.get(i).map(|p| p.ledger)
    }

    /// Fault counters for leg `i` (`None` if it has no schedule).
    pub fn pipe_fault_stats(&self, i: usize) -> Option<FaultStats> {
        self.pipes
            .get(i)
            .and_then(|p| p.faults.as_ref())
            .map(|f| f.stats)
    }

    /// Force the invariant auditor on or off (debug builds default on;
    /// release builds honour `STOB_AUDIT=1`).
    pub fn set_audit(&mut self, on: bool) {
        self.auditor.set_enabled(on);
    }

    /// Install a flow tracer: from now on every shaping decision on
    /// either host (transport sizing/pacing, qdisc release, NIC bursts,
    /// fault hits) is recorded into the shared bounded ring. Existing
    /// connections pick it up immediately.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        for h in self.hosts.iter_mut() {
            for conn in h.conns.values_mut() {
                conn.core_mut().set_tracer(tracer.clone());
            }
        }
        self.tracer = Some(tracer);
    }

    /// The installed flow tracer, if any.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    /// Final invariant report: runs the conservation check over the
    /// end-to-end flow ledger, a per-pipe conservation check over every
    /// provisioned leg, and the multipath sum rule (default path +
    /// per-pipe ledgers must account for the flow ledger field by
    /// field), then snapshots all recorded violations.
    pub fn audit_report(&mut self) -> AuditReport {
        let now = self.q.now();
        let in_transit = self.in_transit_pkts();
        self.auditor.check_conservation(
            now,
            self.ledger.injected,
            self.ledger.delivered,
            self.ledger.dropped,
            in_transit,
        );
        for (i, p) in self.pipes.iter().enumerate() {
            self.auditor.check_pipe_conservation(
                now,
                i,
                p.ledger.injected,
                p.ledger.delivered,
                p.ledger.dropped,
                p.ledger.arrivals_pending,
            );
        }
        if !self.pipes.is_empty() {
            let sum = |f: fn(&PathLedger) -> u64| -> u64 {
                f(&self.default_ledger) + self.pipes.iter().map(|p| f(&p.ledger)).sum::<u64>()
            };
            self.auditor.check_multipath_sum(
                now,
                "injected",
                sum(|l| l.injected),
                self.ledger.injected,
            );
            self.auditor.check_multipath_sum(
                now,
                "delivered",
                sum(|l| l.delivered),
                self.ledger.delivered,
            );
            self.auditor.check_multipath_sum(
                now,
                "dropped",
                sum(|l| l.dropped),
                self.ledger.dropped,
            );
        }
        self.auditor.report()
    }

    /// Packets currently somewhere on the path (bottleneck queues, the
    /// transmitters, flap-hold buffers, or propagating toward a host).
    fn in_transit_pkts(&self) -> u64 {
        let queued: u64 = self.bn_queue.iter().map(|q| q.len() as u64).sum();
        let inflight = self.bn_inflight.iter().flatten().count() as u64;
        let held: u64 = self.flap_held.iter().map(|h| h.len() as u64).sum();
        queued + inflight + held + self.ledger.arrivals_pending
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Transport-agnostic stats for any flow on `host`, whatever its
    /// transport (TCP, QUIC, or custom).
    pub fn flow_stats(&self, host: usize, flow: FlowId) -> Option<FlowStats> {
        self.hosts[host]
            .conns
            .get(&flow)
            .map(|t| t.core().flow_stats())
    }

    pub fn cpu(&self, host: usize) -> &Cpu {
        &self.hosts[host].cpu
    }

    pub fn nic_counters(&self, host: usize) -> (u64, u64) {
        (
            self.hosts[host].nic.segments_tx,
            self.hosts[host].nic.packets_tx,
        )
    }
}
