//! Fault-injection and runtime-auditor tests: compound fault schedules,
//! link flaps, mid-flow MTU drops, and the negative tests that prove the
//! invariant checks actually fire.

use super::{Api, App, Network, CLIENT, SERVER};
use crate::apps::{BulkSender, NullApp, Sink};
use crate::config::{HostConfig, PathConfig};
use crate::cpu::CpuModel;
use crate::qdisc::SegDesc;
use crate::tcp::TcpAction;
use netsim::{Direction, FaultSchedule, FlowId, Nanos, Packet, PacketKind};

fn fast_hosts() -> (HostConfig, HostConfig) {
    let h = HostConfig {
        cpu: CpuModel::infinitely_fast(),
        ..HostConfig::default()
    };
    (h.clone(), h)
}

#[test]
fn clean_run_audits_clean() {
    // A lossy (Bernoulli) bulk transfer with the auditor forced on:
    // every invariant must hold and the ledger must balance.
    let (hc, hs) = fast_hosts();
    let mut path = PathConfig::internet(50, 20);
    path.loss = 0.02;
    let mut net = Network::new(
        hc,
        hs,
        path,
        Box::new(BulkSender::new(1_000_000)),
        Box::new(Sink::default()),
        40,
    );
    net.set_audit(true);
    net.run_to_idle();
    let rep = net.audit_report();
    assert!(rep.clean(), "violations: {:?}", rep.violations);
    assert!(rep.checks > 0);
}

#[test]
fn faulted_run_recovers_and_audits_clean() {
    use netsim::FaultKind;
    // GE burst loss + reordering + duplication at once: TCP must
    // still deliver exactly, and no invariant may break.
    let (hc, hs) = fast_hosts();
    let total = 1_000_000;
    let mut net = Network::new(
        hc,
        hs,
        PathConfig::internet(50, 20),
        Box::new(BulkSender::new(total)),
        Box::new(Sink::default()),
        41,
    );
    let sched = FaultSchedule::new(0xFA)
        .push(FaultKind::GilbertElliott {
            p_good_to_bad: 0.01,
            p_bad_to_good: 0.3,
            loss_good: 0.0,
            loss_bad: 0.3,
        })
        .push(FaultKind::Reorder {
            prob: 0.05,
            max_extra: Nanos::from_millis(2),
        })
        .push(FaultKind::Duplicate { prob: 0.02 });
    net.set_faults(&sched);
    net.set_audit(true);
    net.run_to_idle();
    assert_eq!(
        net.flow_stats(SERVER, FlowId(1)).unwrap().bytes_delivered,
        total,
        "delivery must survive compound faults"
    );
    let stats = net.fault_stats().unwrap();
    assert!(stats.ge_drops > 0, "{stats:?}");
    assert!(stats.duplicates > 0, "{stats:?}");
    let rep = net.audit_report();
    assert!(rep.clean(), "violations: {:?}", rep.violations);
}

#[test]
fn buffering_flap_stalls_then_completes() {
    use netsim::FaultKind;
    let (hc, hs) = fast_hosts();
    let total = 2_000_000;
    let mut net = Network::new(
        hc,
        hs,
        PathConfig::internet(50, 20),
        Box::new(BulkSender::new(total)),
        Box::new(Sink::default()),
        42,
    );
    let sched = FaultSchedule::new(7).push(FaultKind::LinkFlap {
        down_at: Nanos::from_millis(100),
        up_at: Nanos::from_millis(250),
        drop: false,
    });
    net.set_faults(&sched);
    net.set_audit(true);
    net.run_to_idle();
    assert_eq!(
        net.flow_stats(SERVER, FlowId(1)).unwrap().bytes_delivered,
        total
    );
    assert!(net.fault_stats().unwrap().flap_held > 0);
    let rep = net.audit_report();
    assert!(rep.clean(), "violations: {:?}", rep.violations);
}

#[test]
fn hard_outage_forces_recovery() {
    use netsim::FaultKind;
    let (hc, hs) = fast_hosts();
    let total = 2_000_000;
    let mut net = Network::new(
        hc,
        hs,
        PathConfig::internet(50, 20),
        Box::new(BulkSender::new(total)),
        Box::new(Sink::default()),
        43,
    );
    let sched = FaultSchedule::new(9).push(FaultKind::LinkFlap {
        down_at: Nanos::from_millis(100),
        up_at: Nanos::from_millis(220),
        drop: true,
    });
    net.set_faults(&sched);
    net.set_audit(true);
    net.run_to_idle();
    assert_eq!(
        net.flow_stats(SERVER, FlowId(1)).unwrap().bytes_delivered,
        total,
        "transfer must complete after the outage"
    );
    assert!(net.fault_stats().unwrap().flap_drops > 0);
    let cs = net.flow_stats(CLIENT, FlowId(1)).unwrap();
    assert!(
        cs.retransmits + cs.timeouts > 0,
        "an outage must trigger loss recovery"
    );
    assert!(net.audit_report().clean());
}

#[test]
fn mid_flow_mtu_drop_shrinks_packets() {
    use netsim::FaultKind;
    let (hc, hs) = fast_hosts();
    let total = 3_000_000;
    let mut net = Network::new(
        hc,
        hs,
        PathConfig::internet(50, 20),
        Box::new(BulkSender::new(total)),
        Box::new(Sink::default()),
        44,
    );
    let at = Nanos::from_millis(150);
    let sched = FaultSchedule::new(1).push(FaultKind::MtuDrop {
        at,
        new_mtu_ip: 1200,
    });
    net.set_faults(&sched);
    net.set_audit(true);
    net.run_to_idle();
    assert_eq!(
        net.flow_stats(SERVER, FlowId(1)).unwrap().bytes_delivered,
        total
    );
    assert_eq!(net.fault_stats().unwrap().mtu_changes, 1);
    // Segments queued before the change drain with the old size;
    // everything packetized well after it obeys the reduced MTU
    // (1200 IP + 14 Ethernet on the wire).
    let slack = Nanos::from_millis(200);
    let late: Vec<u32> = net
        .client_capture
        .records
        .iter()
        .filter(|r| r.kind == PacketKind::TcpData && r.dir == Direction::Out && r.ts > at + slack)
        .map(|r| r.wire_len)
        .collect();
    assert!(!late.is_empty(), "transfer ended before the MTU change");
    assert!(
        late.iter().all(|&w| w <= 1214),
        "oversized post-change packet: {late:?}"
    );
    assert!(net.audit_report().clean());
}

#[test]
fn auditor_flags_a_segment_released_before_its_pacing_time() {
    // Negative test: deliberately violate the pacing-release
    // invariant through the real dequeue path by pushing a segment
    // whose release time is in the future into the unpaced band.
    let (hc, hs) = fast_hosts();
    let mut net = Network::new(
        hc,
        hs,
        PathConfig::default(),
        Box::new(NullApp),
        Box::new(NullApp),
        45,
    );
    net.set_audit(true);
    net.start();
    let pkt = Packet::tcp_data(FlowId(9), 0, 0, 1000);
    let seg = SegDesc::new(FlowId(9), vec![pkt], Nanos::from_millis(5));
    net.hosts[CLIENT].qdisc.enqueue_prio(seg);
    net.qdisc_check(CLIENT); // departs at t=0, 5 ms early
    let rep = net.audit_report();
    assert!(!rep.clean());
    assert_eq!(
        rep.violations[0].invariant,
        netsim::Invariant::PacingRelease
    );
}

#[test]
fn auditor_flags_departures_beyond_the_cc_grant() {
    // Negative test for the §4.2 safety rule: fabricate an output
    // batch far larger than the flow's congestion window and push it
    // through `apply`. The real stack clamps its emissions (see
    // `tcp::tests::shaper_cannot_grow_past_proposed`), so this
    // models a buggy shaper integration bypassing those clamps.
    struct Opener;
    impl App for Opener {
        fn on_start(&mut self, api: &mut Api) {
            api.connect();
        }
    }
    let (hc, hs) = fast_hosts();
    let mut net = Network::new(
        hc,
        hs,
        PathConfig::internet(50, 20),
        Box::new(Opener),
        Box::new(NullApp),
        46,
    );
    net.set_audit(true);
    net.run_to_idle(); // handshake completes, connection idle
    let flow = FlowId(1);
    let cwnd = net.hosts[CLIENT]
        .conns
        .get(&flow)
        .expect("conn")
        .core()
        .cwnd();
    let mss = 1448u64;
    let total = cwnd + 200_000; // far beyond grant + burst slop
    let npkts = total.div_ceil(mss);
    let pkts: Vec<Packet> = (0..npkts)
        .map(|i| Packet::tcp_data(flow, i * mss, 0, mss as u32))
        .collect();
    let seg = SegDesc::new(flow, pkts, net.now());
    net.apply(CLIENT, flow, vec![TcpAction::SendSeg(seg)]);
    let rep = net.audit_report();
    assert!(
        rep.violations
            .iter()
            .any(|v| v.invariant == netsim::Invariant::SafetyRule),
        "safety breach not flagged: {:?}",
        rep.violations
    );
}
