//! Fault-injection and runtime-auditor tests: compound fault schedules,
//! link flaps, mid-flow MTU drops, and the negative tests that prove the
//! invariant checks actually fire.

use super::{Api, App, Network, CLIENT, SERVER};
use crate::apps::{BulkSender, NullApp, Sink};
use crate::config::{HostConfig, PathConfig, StackConfig};
use crate::cpu::CpuModel;
use crate::qdisc::SegDesc;
use crate::tcp::TcpAction;
use netsim::{Direction, FaultSchedule, FlowId, Nanos, Packet, PacketKind};
use std::sync::{Arc, Mutex};

fn fast_hosts() -> (HostConfig, HostConfig) {
    let h = HostConfig {
        cpu: CpuModel::infinitely_fast(),
        ..HostConfig::default()
    };
    (h.clone(), h)
}

#[test]
fn clean_run_audits_clean() {
    // A lossy (Bernoulli) bulk transfer with the auditor forced on:
    // every invariant must hold and the ledger must balance.
    let (hc, hs) = fast_hosts();
    let mut path = PathConfig::internet(50, 20);
    path.loss = 0.02;
    let mut net = Network::new(
        hc,
        hs,
        path,
        Box::new(BulkSender::new(1_000_000)),
        Box::new(Sink::default()),
        40,
    );
    net.set_audit(true);
    net.run_to_idle();
    let rep = net.audit_report();
    assert!(rep.clean(), "violations: {:?}", rep.violations);
    assert!(rep.checks > 0);
}

#[test]
fn faulted_run_recovers_and_audits_clean() {
    use netsim::FaultKind;
    // GE burst loss + reordering + duplication at once: TCP must
    // still deliver exactly, and no invariant may break.
    let (hc, hs) = fast_hosts();
    let total = 1_000_000;
    let mut net = Network::new(
        hc,
        hs,
        PathConfig::internet(50, 20),
        Box::new(BulkSender::new(total)),
        Box::new(Sink::default()),
        41,
    );
    let sched = FaultSchedule::new(0xFA)
        .push(FaultKind::GilbertElliott {
            p_good_to_bad: 0.01,
            p_bad_to_good: 0.3,
            loss_good: 0.0,
            loss_bad: 0.3,
        })
        .push(FaultKind::Reorder {
            prob: 0.05,
            max_extra: Nanos::from_millis(2),
        })
        .push(FaultKind::Duplicate { prob: 0.02 });
    net.set_faults(&sched);
    net.set_audit(true);
    net.run_to_idle();
    assert_eq!(
        net.flow_stats(SERVER, FlowId(1)).unwrap().bytes_delivered,
        total,
        "delivery must survive compound faults"
    );
    let stats = net.fault_stats().unwrap();
    assert!(stats.ge_drops > 0, "{stats:?}");
    assert!(stats.duplicates > 0, "{stats:?}");
    let rep = net.audit_report();
    assert!(rep.clean(), "violations: {:?}", rep.violations);
}

#[test]
fn buffering_flap_stalls_then_completes() {
    use netsim::FaultKind;
    let (hc, hs) = fast_hosts();
    let total = 2_000_000;
    let mut net = Network::new(
        hc,
        hs,
        PathConfig::internet(50, 20),
        Box::new(BulkSender::new(total)),
        Box::new(Sink::default()),
        42,
    );
    let sched = FaultSchedule::new(7).push(FaultKind::LinkFlap {
        down_at: Nanos::from_millis(100),
        up_at: Nanos::from_millis(250),
        drop: false,
    });
    net.set_faults(&sched);
    net.set_audit(true);
    net.run_to_idle();
    assert_eq!(
        net.flow_stats(SERVER, FlowId(1)).unwrap().bytes_delivered,
        total
    );
    assert!(net.fault_stats().unwrap().flap_held > 0);
    let rep = net.audit_report();
    assert!(rep.clean(), "violations: {:?}", rep.violations);
}

#[test]
fn hard_outage_forces_recovery() {
    use netsim::FaultKind;
    let (hc, hs) = fast_hosts();
    let total = 2_000_000;
    let mut net = Network::new(
        hc,
        hs,
        PathConfig::internet(50, 20),
        Box::new(BulkSender::new(total)),
        Box::new(Sink::default()),
        43,
    );
    let sched = FaultSchedule::new(9).push(FaultKind::LinkFlap {
        down_at: Nanos::from_millis(100),
        up_at: Nanos::from_millis(220),
        drop: true,
    });
    net.set_faults(&sched);
    net.set_audit(true);
    net.run_to_idle();
    assert_eq!(
        net.flow_stats(SERVER, FlowId(1)).unwrap().bytes_delivered,
        total,
        "transfer must complete after the outage"
    );
    assert!(net.fault_stats().unwrap().flap_drops > 0);
    let cs = net.flow_stats(CLIENT, FlowId(1)).unwrap();
    assert!(
        cs.retransmits + cs.timeouts > 0,
        "an outage must trigger loss recovery"
    );
    assert!(net.audit_report().clean());
}

#[test]
fn mid_flow_mtu_drop_shrinks_packets() {
    use netsim::FaultKind;
    let (hc, hs) = fast_hosts();
    let total = 3_000_000;
    let mut net = Network::new(
        hc,
        hs,
        PathConfig::internet(50, 20),
        Box::new(BulkSender::new(total)),
        Box::new(Sink::default()),
        44,
    );
    let at = Nanos::from_millis(150);
    let sched = FaultSchedule::new(1).push(FaultKind::MtuDrop {
        at,
        new_mtu_ip: 1200,
    });
    net.set_faults(&sched);
    net.set_audit(true);
    net.run_to_idle();
    assert_eq!(
        net.flow_stats(SERVER, FlowId(1)).unwrap().bytes_delivered,
        total
    );
    assert_eq!(net.fault_stats().unwrap().mtu_changes, 1);
    // Segments queued before the change drain with the old size;
    // everything packetized well after it obeys the reduced MTU
    // (1200 IP + 14 Ethernet on the wire).
    let slack = Nanos::from_millis(200);
    let late: Vec<u32> = net
        .client_capture
        .records
        .iter()
        .filter(|r| r.kind == PacketKind::TcpData && r.dir == Direction::Out && r.ts > at + slack)
        .map(|r| r.wire_len)
        .collect();
    assert!(!late.is_empty(), "transfer ended before the MTU change");
    assert!(
        late.iter().all(|&w| w <= 1214),
        "oversized post-change packet: {late:?}"
    );
    assert!(net.audit_report().clean());
}

// ---------------------------------------------------------------------
// QUIC under faults (the suite above is TCP through `BulkSender::new`;
// QUIC shares everything below the transport, but its loss recovery and
// packetization are its own code paths).
// ---------------------------------------------------------------------

#[test]
fn quic_buffering_flap_stalls_then_completes() {
    let (hc, hs) = fast_hosts();
    let total = 1_000_000;
    let mut net = Network::new(
        hc,
        hs,
        PathConfig::internet(50, 20),
        Box::new(BulkSender::quic(total)),
        Box::new(Sink::default()),
        50,
    );
    let sched = FaultSchedule::new(7).push(netsim::FaultKind::LinkFlap {
        down_at: Nanos::from_millis(100),
        up_at: Nanos::from_millis(250),
        drop: false,
    });
    net.set_faults(&sched);
    net.set_audit(true);
    net.run_until(Nanos::from_secs(30));
    assert_eq!(
        net.flow_stats(SERVER, FlowId(1)).unwrap().bytes_delivered,
        total,
        "QUIC must ride out a buffering flap"
    );
    assert!(net.fault_stats().unwrap().flap_held > 0);
    let rep = net.audit_report();
    assert!(rep.clean(), "violations: {:?}", rep.violations);
}

#[test]
fn quic_hard_outage_forces_recovery() {
    let (hc, hs) = fast_hosts();
    let total = 1_000_000;
    let mut net = Network::new(
        hc,
        hs,
        PathConfig::internet(50, 20),
        Box::new(BulkSender::quic(total)),
        Box::new(Sink::default()),
        51,
    );
    let sched = FaultSchedule::new(9).push(netsim::FaultKind::LinkFlap {
        down_at: Nanos::from_millis(100),
        up_at: Nanos::from_millis(220),
        drop: true,
    });
    net.set_faults(&sched);
    net.set_audit(true);
    net.run_until(Nanos::from_secs(30));
    assert_eq!(
        net.flow_stats(SERVER, FlowId(1)).unwrap().bytes_delivered,
        total,
        "QUIC transfer must complete after the outage"
    );
    assert!(net.fault_stats().unwrap().flap_drops > 0);
    let cs = net.flow_stats(CLIENT, FlowId(1)).unwrap();
    assert!(
        cs.retransmits + cs.timeouts > 0,
        "an outage must trigger QUIC loss recovery"
    );
    assert!(net.audit_report().clean());
}

#[test]
fn quic_mid_flow_mtu_drop_shrinks_datagrams() {
    let (hc, hs) = fast_hosts();
    let total = 3_000_000;
    let mut net = Network::new(
        hc,
        hs,
        PathConfig::internet(50, 20),
        Box::new(BulkSender::quic(total)),
        Box::new(Sink::default()),
        52,
    );
    let at = Nanos::from_millis(150);
    let sched = FaultSchedule::new(1).push(netsim::FaultKind::MtuDrop {
        at,
        new_mtu_ip: 1200,
    });
    net.set_faults(&sched);
    net.set_audit(true);
    net.run_until(Nanos::from_secs(30));
    assert_eq!(
        net.flow_stats(SERVER, FlowId(1)).unwrap().bytes_delivered,
        total
    );
    assert_eq!(net.fault_stats().unwrap().mtu_changes, 1);
    let slack = Nanos::from_millis(200);
    let late: Vec<u32> = net
        .client_capture
        .records
        .iter()
        .filter(|r| r.kind == PacketKind::QuicData && r.dir == Direction::Out && r.ts > at + slack)
        .map(|r| r.wire_len)
        .collect();
    assert!(!late.is_empty(), "transfer ended before the MTU change");
    assert!(
        late.iter().all(|&w| w <= 1214),
        "oversized post-change datagram: {late:?}"
    );
    assert!(net.audit_report().clean());
}

// ---------------------------------------------------------------------
// Stall watchdogs + reconnect-with-resumption (the recovery runtime's
// stack-level substrate).
// ---------------------------------------------------------------------

/// What a supervised fetcher observed, for assertions after the run.
#[derive(Default)]
struct RecoveryLog {
    stalls: Vec<(FlowId, Nanos)>,
    reconnects: u64,
    received: u64,
    completed: bool,
}

/// Size of the fetcher's request "message".
const REQ: u64 = 100;

/// A download client supervised by a stall watchdog: it requests `total`
/// response bytes, counts what actually arrives, and on stall aborts the
/// connection, opens a fresh one (same transport), and re-requests
/// exactly the bytes still missing — the recovery loop the loader's
/// browser runs per page object, distilled to one flow.
struct RecoveringFetcher {
    total: u64,
    flow: Option<FlowId>,
    timeout: Nanos,
    quic: bool,
    reconnect: bool,
    log: Arc<Mutex<RecoveryLog>>,
    /// Out-of-band channel telling the responder how much to serve for
    /// the next request (the loader shares state the same way).
    serve: Arc<Mutex<u64>>,
}

impl RecoveringFetcher {
    fn open(&mut self, api: &mut Api) {
        let flow = if self.quic {
            api.connect_quic(StackConfig::default(), None)
        } else {
            api.connect()
        };
        api.watch(flow, self.timeout);
        self.flow = Some(flow);
    }
}

impl App for RecoveringFetcher {
    fn on_start(&mut self, api: &mut Api) {
        self.open(api);
    }
    fn on_connected(&mut self, api: &mut Api, flow: FlowId) {
        if Some(flow) != self.flow {
            return;
        }
        let remaining = self.total - self.log.lock().unwrap().received;
        *self.serve.lock().unwrap() = remaining;
        api.send(flow, REQ);
    }
    fn on_data(&mut self, api: &mut Api, flow: FlowId, bytes: u64) {
        if Some(flow) != self.flow {
            return;
        }
        let mut log = self.log.lock().unwrap();
        log.received += bytes;
        if log.received >= self.total && !log.completed {
            log.completed = true;
            drop(log);
            api.unwatch(flow);
            if !self.quic {
                api.close(flow);
            }
        }
    }
    fn on_stall(&mut self, api: &mut Api, flow: FlowId, idle: Nanos) {
        self.log.lock().unwrap().stalls.push((flow, idle));
        api.abort(flow);
        if self.reconnect {
            self.log.lock().unwrap().reconnects += 1;
            self.open(api);
        }
    }
}

/// The matching server: any request bytes trigger a response of whatever
/// size the shared `serve` cell currently asks for.
#[derive(Default)]
struct Responder {
    serve: Arc<Mutex<u64>>,
    remaining: std::collections::BTreeMap<FlowId, u64>,
}

impl Responder {
    fn pump(&mut self, api: &mut Api, flow: FlowId) {
        let Some(rem) = self.remaining.get_mut(&flow) else {
            return;
        };
        while *rem > 0 {
            let accepted = api.send(flow, *rem);
            *rem -= accepted;
            if accepted == 0 {
                return;
            }
        }
    }
}

impl App for Responder {
    fn on_data(&mut self, api: &mut Api, flow: FlowId, _bytes: u64) {
        let want = *self.serve.lock().unwrap();
        let entry = self.remaining.entry(flow).or_insert(0);
        if *entry == 0 && want > 0 {
            *entry = want;
        }
        self.pump(api, flow);
    }
    fn on_sendable(&mut self, api: &mut Api, flow: FlowId) {
        self.pump(api, flow);
    }
    fn on_peer_closed(&mut self, api: &mut Api, flow: FlowId) {
        api.close(flow);
    }
}

fn recovering_net(
    total: u64,
    quic: bool,
    reconnect: bool,
    seed: u64,
) -> (Network, Arc<Mutex<RecoveryLog>>) {
    let (hc, hs) = fast_hosts();
    let log = Arc::new(Mutex::new(RecoveryLog::default()));
    let serve = Arc::new(Mutex::new(0u64));
    let app = RecoveringFetcher {
        total,
        flow: None,
        timeout: Nanos::from_millis(300),
        quic,
        reconnect,
        log: Arc::clone(&log),
        serve: Arc::clone(&serve),
    };
    let server = Responder {
        serve,
        remaining: Default::default(),
    };
    let net = Network::new(
        hc,
        hs,
        PathConfig::internet(50, 20),
        Box::new(app),
        Box::new(server),
        seed,
    );
    (net, log)
}

#[test]
fn watchdog_stays_quiet_on_a_healthy_transfer() {
    let (mut net, log) = recovering_net(1_000_000, false, false, 53);
    net.set_audit(true);
    net.run_until(Nanos::from_secs(30));
    let log = log.lock().unwrap();
    assert!(log.completed, "transfer should finish");
    assert!(
        log.stalls.is_empty(),
        "no stall on a healthy path: {:?}",
        log.stalls
    );
    assert!(net.audit_report().clean());
}

#[test]
fn watchdog_fires_once_during_a_long_outage() {
    let (mut net, log) = recovering_net(5_000_000, false, false, 54);
    // Outage long past the watchdog timeout; no reconnect, so the
    // transfer stays dead after the abort.
    let sched = FaultSchedule::new(3).push(netsim::FaultKind::LinkFlap {
        down_at: Nanos::from_millis(100),
        up_at: Nanos::from_secs(20),
        drop: true,
    });
    net.set_faults(&sched);
    net.set_audit(true);
    net.run_until(Nanos::from_secs(5));
    let log = log.lock().unwrap();
    assert_eq!(log.stalls.len(), 1, "exactly one stall: {:?}", log.stalls);
    let (flow, idle) = log.stalls[0];
    assert_eq!(flow, FlowId(1));
    // The reported idle is at least the timeout and well under 2x (the
    // forward-progress bound), because arrivals stopped abruptly.
    assert!(idle >= Nanos::from_millis(300), "idle {idle}");
    assert!(idle <= Nanos::from_millis(600), "idle {idle}");
    assert!(!log.completed);
    let rep = net.audit_report();
    assert!(rep.clean(), "violations: {:?}", rep.violations);
}

#[test]
fn tcp_reconnect_resumes_remaining_bytes_after_outage() {
    let total = 2_000_000;
    let (mut net, log) = recovering_net(total, false, true, 55);
    let sched = FaultSchedule::new(4).push(netsim::FaultKind::LinkFlap {
        down_at: Nanos::from_millis(100),
        up_at: Nanos::from_millis(1600),
        drop: true,
    });
    net.set_faults(&sched);
    net.set_audit(true);
    net.run_until(Nanos::from_secs(30));
    let log = log.lock().unwrap();
    assert!(!log.stalls.is_empty(), "outage must stall the flow");
    assert!(log.reconnects >= 1);
    assert!(log.completed, "resumed transfer must finish");
    // Every re-request asks for exactly the bytes still missing, so the
    // client ends up with the total and not a byte more.
    assert_eq!(log.received, total, "client byte accounting");
    assert!(net.audit_report().clean());
}

#[test]
fn quic_reconnect_resumes_remaining_bytes_after_outage() {
    let total = 2_000_000;
    let (mut net, log) = recovering_net(total, true, true, 56);
    let sched = FaultSchedule::new(4).push(netsim::FaultKind::LinkFlap {
        down_at: Nanos::from_millis(100),
        up_at: Nanos::from_millis(1600),
        drop: true,
    });
    net.set_faults(&sched);
    net.set_audit(true);
    net.run_until(Nanos::from_secs(30));
    let log = log.lock().unwrap();
    assert!(!log.stalls.is_empty(), "outage must stall the flow");
    assert!(log.reconnects >= 1);
    assert!(log.completed, "resumed QUIC transfer must finish");
    assert_eq!(log.received, total, "client byte accounting");
    assert!(net.audit_report().clean());
}

#[test]
fn abort_discards_the_connection_and_disarms_the_watch() {
    struct Aborter;
    impl App for Aborter {
        fn on_start(&mut self, api: &mut Api) {
            let flow = api.connect();
            api.watch(flow, Nanos::from_millis(100));
        }
        fn on_connected(&mut self, api: &mut Api, flow: FlowId) {
            api.send(flow, 100_000);
            api.abort(flow);
        }
        fn on_stall(&mut self, _api: &mut Api, _flow: FlowId, _idle: Nanos) {
            panic!("watch must be disarmed by abort");
        }
    }
    let (hc, hs) = fast_hosts();
    let mut net = Network::new(
        hc,
        hs,
        PathConfig::internet(50, 20),
        Box::new(Aborter),
        Box::new(Sink::default()),
        57,
    );
    net.set_audit(true);
    net.run_until(Nanos::from_secs(90));
    assert!(
        net.hosts[CLIENT].conns.is_empty(),
        "aborted conn still present"
    );
    assert!(net.hosts[CLIENT].watch.is_empty(), "watch still armed");
    // The server half was created by the handshake and now retransmits
    // into the void; that is expected and must not break conservation.
    let rep = net.audit_report();
    assert!(rep.clean(), "violations: {:?}", rep.violations);
}

#[test]
fn rearmed_watchdog_ignores_stale_generation_events() {
    // Arm, then immediately re-arm with a longer timeout: the first
    // arm's queued event must not fire a stall at its earlier deadline.
    struct Rearm {
        log: Arc<Mutex<RecoveryLog>>,
    }
    impl App for Rearm {
        fn on_start(&mut self, api: &mut Api) {
            let flow = api.connect();
            api.watch(flow, Nanos::from_millis(100));
            api.watch(flow, Nanos::from_secs(5));
        }
        fn on_stall(&mut self, api: &mut Api, flow: FlowId, idle: Nanos) {
            self.log.lock().unwrap().stalls.push((flow, idle));
            api.abort(flow);
        }
    }
    let (hc, hs) = fast_hosts();
    let log = Arc::new(Mutex::new(RecoveryLog::default()));
    let mut net = Network::new(
        hc,
        hs,
        PathConfig::internet(50, 20),
        Box::new(Rearm {
            log: Arc::clone(&log),
        }),
        Box::new(Sink::default()),
        58,
    );
    net.set_audit(true);
    // Idle connection: the 5 s watch eventually fires, the stale 100 ms
    // one must not.
    net.run_until(Nanos::from_secs(10));
    let log = log.lock().unwrap();
    assert_eq!(log.stalls.len(), 1, "{:?}", log.stalls);
    assert!(log.stalls[0].1 >= Nanos::from_secs(5), "{:?}", log.stalls);
    assert!(net.audit_report().clean());
}

#[test]
fn auditor_flags_a_segment_released_before_its_pacing_time() {
    // Negative test: deliberately violate the pacing-release
    // invariant through the real dequeue path by pushing a segment
    // whose release time is in the future into the unpaced band.
    let (hc, hs) = fast_hosts();
    let mut net = Network::new(
        hc,
        hs,
        PathConfig::default(),
        Box::new(NullApp),
        Box::new(NullApp),
        45,
    );
    net.set_audit(true);
    net.start();
    let pkt = Packet::tcp_data(FlowId(9), 0, 0, 1000);
    let seg = SegDesc::new(FlowId(9), vec![pkt], Nanos::from_millis(5));
    net.hosts[CLIENT].qdisc.enqueue_prio(seg);
    net.qdisc_check(CLIENT); // departs at t=0, 5 ms early
    let rep = net.audit_report();
    assert!(!rep.clean());
    assert_eq!(
        rep.violations[0].invariant,
        netsim::Invariant::PacingRelease
    );
}

#[test]
fn auditor_flags_departures_beyond_the_cc_grant() {
    // Negative test for the §4.2 safety rule: fabricate an output
    // batch far larger than the flow's congestion window and push it
    // through `apply`. The real stack clamps its emissions (see
    // `tcp::tests::shaper_cannot_grow_past_proposed`), so this
    // models a buggy shaper integration bypassing those clamps.
    struct Opener;
    impl App for Opener {
        fn on_start(&mut self, api: &mut Api) {
            api.connect();
        }
    }
    let (hc, hs) = fast_hosts();
    let mut net = Network::new(
        hc,
        hs,
        PathConfig::internet(50, 20),
        Box::new(Opener),
        Box::new(NullApp),
        46,
    );
    net.set_audit(true);
    net.run_to_idle(); // handshake completes, connection idle
    let flow = FlowId(1);
    let cwnd = net.hosts[CLIENT]
        .conns
        .get(&flow)
        .expect("conn")
        .core()
        .cwnd();
    let mss = 1448u64;
    let total = cwnd + 200_000; // far beyond grant + burst slop
    let npkts = total.div_ceil(mss);
    let pkts: Vec<Packet> = (0..npkts)
        .map(|i| Packet::tcp_data(flow, i * mss, 0, mss as u32))
        .collect();
    let seg = SegDesc::new(flow, pkts, net.now());
    net.apply(CLIENT, flow, vec![TcpAction::SendSeg(seg)]);
    let rep = net.audit_report();
    assert!(
        rep.violations
            .iter()
            .any(|v| v.invariant == netsim::Invariant::SafetyRule),
        "safety breach not flagged: {:?}",
        rep.violations
    );
}
