//! The datapath: event dispatch, qdisc→NIC feeding, the bottleneck
//! queues, fault injection at path entry, and packet arrival (including
//! passive open of server-side connections).
//!
//! Every connection is driven exclusively through
//! [`TransportCore`](crate::egress::TransportCore) — this file contains
//! no transport-specific code beyond the passive-open constructor choice.

use super::host::Transport;
use super::{Api, Ev, Network, CLIENT, SERVER};
use crate::qdisc::SegDesc;
use crate::quic::QuicConn;
use crate::tcp::{TcpAction, TcpConn};
use netsim::fault::Departure;
use netsim::{Direction, FlowId, Nanos, Packet, PacketKind};

impl Network {
    pub(super) fn handle(&mut self, ev: Ev) {
        netsim::tm_counter!("stack.net.events").inc();
        match ev {
            Ev::QdiscCheck { host } => {
                self.hosts[host].next_check = None;
                self.qdisc_check(host);
            }
            Ev::PktLeaveNic { host, pkt } => self.pkt_leave_nic(host, pkt),
            Ev::SegTxDone { host, flow, wire } => {
                let now = self.q.now();
                let acts = {
                    let h = &mut self.hosts[host];
                    let Some(conn) = h.conns.get_mut(&flow) else {
                        return;
                    };
                    let core = conn.core_mut();
                    core.on_nic_release(wire);
                    core.output(now, &mut h.cpu)
                };
                self.apply(host, flow, acts);
            }
            Ev::BnTxDone { dir } => self.bn_tx_done(dir),
            Ev::Arrive { host, pkt } => self.arrive(host, pkt),
            Ev::ConnTimer {
                host,
                flow,
                kind,
                gen,
            } => {
                let now = self.q.now();
                let acts = match self.hosts[host].conns.get_mut(&flow) {
                    Some(conn) => conn.core_mut().on_timer(kind, gen, now),
                    None => return,
                };
                self.apply(host, flow, acts);
                let more = {
                    let h = &mut self.hosts[host];
                    match h.conns.get_mut(&flow) {
                        Some(conn) => conn.core_mut().output(now, &mut h.cpu),
                        None => return,
                    }
                };
                self.apply(host, flow, more);
            }
            Ev::AppTimer { host, token } => {
                self.with_app(host, |app, api| app.on_timer(api, token));
            }
            Ev::FlapRelease { dir } => self.flap_release(dir),
            Ev::MtuChange { new_mtu_ip } => self.mtu_change(new_mtu_ip),
            Ev::Watchdog { host, flow, gen } => self.watchdog(host, flow, gen),
        }
    }

    /// A stall watchdog's deadline arrived. If the flow made progress
    /// since the event was scheduled, push the deadline forward; if not,
    /// audit the forward-progress invariant, disarm, and tell the app.
    fn watchdog(&mut self, host: usize, flow: FlowId, gen: u64) {
        let now = self.q.now();
        let (idle, timeout) = {
            let Some(w) = self.hosts[host].watch.get(&flow) else {
                return; // disarmed (unwatch/abort) since scheduling
            };
            if w.gen != gen {
                return; // stale event from a previous arm
            }
            let due = w.last_progress + w.timeout;
            if due > now {
                // Progress since the event was scheduled: re-examine at
                // the pushed-forward deadline, same generation.
                self.q.schedule_at(due, Ev::Watchdog { host, flow, gen });
                return;
            }
            (now.saturating_sub(w.last_progress), w.timeout)
        };
        // The watchdog must examine a stalled flow within a small multiple
        // of its timeout of the stall beginning; 2x allows for one full
        // reschedule of slack. Beyond that the recovery runtime itself
        // lost track of the flow.
        self.auditor
            .check_progress(now, u64::from(flow.0), idle, timeout * 2);
        self.hosts[host].watch.remove(&flow);
        netsim::tm_counter!("stack.recovery.stalls").inc();
        if let Some(tr) = &self.tracer {
            tr.rec(
                now,
                u64::from(flow.0),
                "net",
                "stall",
                idle.as_nanos(),
                timeout.as_nanos(),
                "watchdog-idle-timeout",
            );
        }
        self.with_app(host, |app, api| app.on_stall(api, flow, idle));
    }

    /// Apply a scheduled path-MTU reduction to every live connection on
    /// both hosts (the stand-in for ICMP "fragmentation needed" reaching
    /// each endpoint). Segments already queued keep their old size;
    /// everything packetized afterwards uses the smaller MTU.
    fn mtu_change(&mut self, new_mtu_ip: u32) {
        if let Some(f) = self.faults.as_mut() {
            f.stats.mtu_changes += 1;
        }
        netsim::tm_counter!("netsim.fault.mtu_changes").inc();
        if let Some(tr) = &self.tracer {
            tr.rec(
                self.q.now(),
                0,
                "net",
                "mtu-change",
                0,
                u64::from(new_mtu_ip),
                "fault-schedule",
            );
        }
        for h in self.hosts.iter_mut() {
            for conn in h.conns.values_mut() {
                conn.core_mut().set_mtu(new_mtu_ip);
            }
        }
    }

    /// Apply transport actions produced by conn `flow` on `host`.
    pub(super) fn apply(&mut self, host: usize, flow: FlowId, acts: Vec<TcpAction>) {
        let now = self.q.now();
        // §4.2 audit: the batch of fresh (non-retransmit) departures one
        // output pass authorises must fit within the congestion
        // controller's grant, and so must the flow's in-network estimate.
        // `slop` is the one-burst overshoot the send loop structurally
        // permits (the gate runs before each segment is built).
        if self.auditor.enabled() {
            let fresh: u64 = acts
                .iter()
                .filter_map(|a| match a {
                    TcpAction::SendSeg(s) if !s.pkts.iter().any(|p| p.meta.retransmit) => {
                        Some(s.payload_bytes())
                    }
                    _ => None,
                })
                .sum();
            if fresh > 0 {
                let (outstanding, grant) = match self.hosts[host].conns.get(&flow) {
                    Some(t) => {
                        let c = t.core();
                        (c.outstanding().max(fresh), c.cwnd())
                    }
                    None => (0, u64::MAX),
                };
                let s = &self.hosts[host].cfg.stack;
                let slop = u64::from(s.tso_max_pkts.max(16)) * u64::from(s.mss());
                self.auditor.check_safety(
                    now,
                    u64::from(flow.0),
                    outstanding,
                    grant.saturating_add(slop),
                );
            }
        }
        for act in acts {
            match act {
                TcpAction::SendSeg(seg) => {
                    let at = seg.eligible_at;
                    self.hosts[host].qdisc.enqueue(seg);
                    self.schedule_check(host, at.max(now));
                }
                TcpAction::SendCtl(pkt) => {
                    let seg = SegDesc::new(flow, vec![pkt], now);
                    self.hosts[host].qdisc.enqueue_prio(seg);
                    self.schedule_check(host, now);
                }
                TcpAction::ArmTimer { kind, at, gen } => {
                    self.q.schedule_at(
                        at.max(now),
                        Ev::ConnTimer {
                            host,
                            flow,
                            kind,
                            gen,
                        },
                    );
                }
                TcpAction::Deliver(n) => {
                    self.with_app(host, |app, api| app.on_data(api, flow, n));
                }
                TcpAction::Sendable => {
                    self.with_app(host, |app, api| app.on_sendable(api, flow));
                }
                TcpAction::Connected => {
                    if host == CLIENT {
                        self.with_app(host, |app, api| app.on_connected(api, flow));
                    } else {
                        self.with_app(host, |app, api| app.on_accept(api, flow));
                    }
                }
                TcpAction::PeerClosed => {
                    self.with_app(host, |app, api| app.on_peer_closed(api, flow));
                }
            }
        }
    }

    pub(super) fn with_app(&mut self, host: usize, f: impl FnOnce(&mut dyn super::App, &mut Api)) {
        if let Some(mut app) = self.apps[host].take() {
            {
                let mut api = Api { net: self, host };
                f(app.as_mut(), &mut api);
            }
            debug_assert!(self.apps[host].is_none(), "reentrant app callback");
            self.apps[host] = Some(app);
        }
    }

    fn schedule_check(&mut self, host: usize, at: Nanos) {
        let at = at.max(self.q.now());
        match self.hosts[host].next_check {
            Some(t) if t <= at => {}
            _ => {
                self.hosts[host].next_check = Some(at);
                self.q.schedule_at(at, Ev::QdiscCheck { host });
            }
        }
    }

    /// Try to feed the NIC from the qdisc.
    pub(super) fn qdisc_check(&mut self, host: usize) {
        let now = self.q.now();
        let h = &mut self.hosts[host];
        if !h.nic.idle_at(now) {
            let free = h.nic.free_at();
            self.schedule_check(host, free);
            return;
        }
        match h.qdisc.dequeue(now) {
            Some(seg) => {
                self.auditor
                    .check_release(now, seg.eligible_at, u64::from(seg.flow.0));
                // Pacer release delay: how long past its eligible time a
                // segment actually reached the NIC (0 = on time).
                netsim::tm_histo!("stack.qdisc.release_delay_ns")
                    .record(now.saturating_sub(seg.eligible_at).as_nanos());
                let flow = seg.flow;
                let wire = seg.wire_bytes;
                let npkts = seg.pkts.len() as u64;
                netsim::tm_histo!("stack.nic.pkts_per_seg").record(npkts);
                if let Some(tr) = &self.tracer {
                    tr.rec(
                        now,
                        u64::from(flow.0),
                        "qdisc",
                        "release",
                        seg.eligible_at.as_nanos(),
                        now.as_nanos(),
                        "earliest-eligible-first",
                    );
                    tr.rec(
                        now,
                        u64::from(flow.0),
                        "nic",
                        "tx-seg",
                        npkts,
                        wire,
                        "tso-burst",
                    );
                }
                let (done, pkts) = h.nic.transmit_segment(now, seg);
                for (t, pkt) in pkts {
                    self.q.schedule_at(t, Ev::PktLeaveNic { host, pkt });
                }
                self.q.schedule_at(done, Ev::SegTxDone { host, flow, wire });
                // Check again when the NIC frees up.
                self.schedule_check(host, done);
            }
            None => {
                if let Some(t) = h.qdisc.next_eligible() {
                    let t = t.max(now);
                    self.schedule_check(host, t);
                }
            }
        }
    }

    /// A packet's last bit left a host NIC: record it at the local
    /// vantage point, then enter the bottleneck toward the other host —
    /// or, for a packet tagged with a provisioned pipe, route it over
    /// that leg instead.
    fn pkt_leave_nic(&mut self, host: usize, pkt: Packet) {
        let now = self.q.now();
        match host {
            CLIENT => self.client_capture.observe(now, Direction::Out, &pkt),
            _ => self.server_capture.observe(now, Direction::Out, &pkt),
        }
        if let Some(pi) = pkt.meta.pipe {
            let i = pi as usize;
            if i < self.pipes.len() {
                self.route_pipe(host, i, pkt);
                return;
            }
        }
        self.ledger.injected += 1;
        self.default_ledger.injected += 1;
        // Random loss (configured paths only).
        if self.path.loss > 0.0 && self.rng.chance(self.path.loss) {
            self.path_stats.random_drops += 1;
            self.ledger.dropped += 1;
            self.default_ledger.dropped += 1;
            netsim::tm_counter!("stack.net.random_drops").inc();
            return;
        }
        let dir = host; // direction index = source host
                        // Fault injection at the path entry: burst loss, duplication,
                        // then link flaps (a dropped packet cannot duplicate; a held one
                        // waits out the outage).
        let mut copies: u64 = 1;
        if let Some(f) = self.faults.as_mut() {
            match f.on_departure(dir, now) {
                Departure::Deliver => {}
                Departure::Drop => {
                    self.ledger.dropped += 1;
                    self.default_ledger.dropped += 1;
                    netsim::tm_counter!("netsim.fault.drops").inc();
                    if let Some(tr) = &self.tracer {
                        tr.rec(
                            now,
                            u64::from(pkt.flow.0),
                            "net",
                            "fault-drop",
                            u64::from(pkt.wire_len),
                            0,
                            "fault-schedule",
                        );
                    }
                    return;
                }
                Departure::Duplicate => {
                    copies = 2;
                    self.ledger.injected += 1;
                    self.default_ledger.injected += 1;
                    netsim::tm_counter!("netsim.fault.duplicates").inc();
                }
            }
            if let Some(down) = f.link_down(dir, now) {
                if down.drop {
                    f.stats.flap_drops += copies;
                    self.ledger.dropped += copies;
                    self.default_ledger.dropped += copies;
                    netsim::tm_counter!("netsim.fault.flap_drops").add(copies);
                    return;
                }
                f.stats.flap_held += copies;
                netsim::tm_counter!("netsim.fault.flap_held").add(copies);
                let first = self.flap_held[dir].is_empty();
                if copies == 2 {
                    self.flap_held[dir].push(pkt.clone());
                }
                self.flap_held[dir].push(pkt);
                if first {
                    self.q.schedule_at(down.until, Ev::FlapRelease { dir });
                }
                return;
            }
        }
        if copies == 2 {
            self.enter_bottleneck(dir, pkt.clone());
        }
        self.enter_bottleneck(dir, pkt);
    }

    /// Route a tagged packet over provisioned leg `i`: observe it at the
    /// leg's vantage point, apply the leg's own loss and fault schedule,
    /// serialize it on the leg's directed [`netsim::Link`], and schedule
    /// its arrival. Both the flow ledger and the leg's ledger account
    /// for every outcome, so the auditor's per-pipe conservation and
    /// multipath-sum invariants can be checked at teardown.
    fn route_pipe(&mut self, src: usize, i: usize, pkt: Packet) {
        let now = self.q.now();
        let dir = src; // direction index = source host, like the bottleneck
        let p = &mut self.pipes[i];
        let obs = if src == CLIENT {
            Direction::Out
        } else {
            Direction::In
        };
        p.capture.observe(now, obs, &pkt);
        self.ledger.injected += 1;
        p.ledger.injected += 1;
        netsim::tm_counter!("stack.net.pipe_pkts").inc();
        // Leg-local random loss.
        if p.profile.loss > 0.0 && self.rng.chance(p.profile.loss) {
            self.path_stats.random_drops += 1;
            self.ledger.dropped += 1;
            p.ledger.dropped += 1;
            netsim::tm_counter!("stack.net.pipe_drops").inc();
            return;
        }
        // Leg-local faults: burst loss, duplication, outages. Flaps on a
        // datagram leg always drop (no buffering); the multiplexer's
        // failover machinery is the recovery path.
        let mut copies: u64 = 1;
        let mut extra = Nanos::ZERO;
        if let Some(f) = p.faults.as_mut() {
            match f.on_departure(dir, now) {
                Departure::Deliver => {}
                Departure::Drop => {
                    self.ledger.dropped += 1;
                    p.ledger.dropped += 1;
                    netsim::tm_counter!("stack.net.pipe_drops").inc();
                    return;
                }
                Departure::Duplicate => {
                    copies = 2;
                    self.ledger.injected += 1;
                    p.ledger.injected += 1;
                }
            }
            if f.link_down(dir, now).is_some() {
                f.stats.flap_drops += copies;
                self.ledger.dropped += copies;
                p.ledger.dropped += copies;
                netsim::tm_counter!("stack.net.pipe_drops").add(copies);
                return;
            }
            extra = f.extra_arrival_delay(dir, now);
        }
        let dst = 1 - src;
        for _ in 0..copies {
            let (_tx_done, arrival) = p.links[dir].transmit(now, u64::from(pkt.wire_len));
            self.ledger.arrivals_pending += 1;
            p.ledger.arrivals_pending += 1;
            self.q.schedule_at(
                arrival + extra,
                Ev::Arrive {
                    host: dst,
                    pkt: pkt.clone(),
                },
            );
        }
    }

    /// Hand a packet to the bottleneck transmitter for direction `dir`.
    fn enter_bottleneck(&mut self, dir: usize, pkt: Packet) {
        let now = self.q.now();
        if self.bn_inflight[dir].is_none() {
            let tx = Nanos::for_bytes_at_rate(pkt.wire_len as u64, self.path.bottleneck_bps);
            self.bn_inflight[dir] = Some(pkt);
            self.q.schedule_at(now + tx, Ev::BnTxDone { dir });
        } else if !self.bn_queue[dir].enqueue(pkt) {
            self.path_stats.overflow_drops += 1;
            self.ledger.dropped += 1;
        }
    }

    /// A buffering flap's recovery time arrived: if the link is still
    /// down (overlapping windows), re-arm; otherwise drain the held
    /// packets in order.
    fn flap_release(&mut self, dir: usize) {
        let now = self.q.now();
        if let Some(f) = self.faults.as_ref() {
            if let Some(down) = f.link_down(dir, now) {
                self.q.schedule_at(down.until, Ev::FlapRelease { dir });
                return;
            }
        }
        let held = std::mem::take(&mut self.flap_held[dir]);
        for pkt in held {
            self.enter_bottleneck(dir, pkt);
        }
    }

    fn bn_tx_done(&mut self, dir: usize) {
        let now = self.q.now();
        let pkt = self.bn_inflight[dir].take().expect("no packet in flight");
        let dst = 1 - dir;
        self.path_stats.delivered_pkts += 1;
        // Reorder jitter and RTT spikes stretch propagation only:
        // packets may overtake each other, never travel back in time.
        let mut delay = self.path.one_way_delay;
        if let Some(f) = self.faults.as_mut() {
            delay += f.extra_arrival_delay(dir, now);
        }
        self.ledger.arrivals_pending += 1;
        self.default_ledger.arrivals_pending += 1;
        self.q
            .schedule_at(now + delay, Ev::Arrive { host: dst, pkt });
        if let Some(next) = self.bn_queue[dir].dequeue() {
            let tx = Nanos::for_bytes_at_rate(next.wire_len as u64, self.path.bottleneck_bps);
            self.bn_inflight[dir] = Some(next);
            self.q.schedule_at(now + tx, Ev::BnTxDone { dir });
        }
    }

    fn arrive(&mut self, host: usize, pkt: Packet) {
        let now = self.q.now();
        self.ledger.arrivals_pending -= 1;
        self.ledger.delivered += 1;
        match pkt.meta.pipe {
            Some(pi) if (pi as usize) < self.pipes.len() => {
                let l = &mut self.pipes[pi as usize].ledger;
                l.arrivals_pending -= 1;
                l.delivered += 1;
            }
            _ => {
                self.default_ledger.arrivals_pending -= 1;
                self.default_ledger.delivered += 1;
            }
        }
        if self.auditor.enabled() {
            let in_transit = self.in_transit_pkts();
            self.auditor.check_conservation(
                now,
                self.ledger.injected,
                self.ledger.delivered,
                self.ledger.dropped,
                in_transit,
            );
        }
        match host {
            CLIENT => self.client_capture.observe(now, Direction::In, &pkt),
            _ => self.server_capture.observe(now, Direction::In, &pkt),
        }
        let flow = pkt.flow;
        // Any arrival for a watched flow is forward progress: the stall
        // watchdog's clock restarts (the pending event re-schedules itself
        // lazily when it fires).
        if !self.hosts[host].watch.is_empty() {
            if let Some(w) = self.hosts[host].watch.get_mut(&flow) {
                w.last_progress = now;
            }
        }
        // Passive open: a SYN (TCP) or Initial (QUIC) for an unknown
        // flow creates the server connection.
        if !self.hosts[host].conns.contains_key(&flow) {
            let mut conn = if pkt.kind == PacketKind::TcpSyn && host == SERVER {
                let cfg = self.hosts[host].cfg.stack.clone();
                Transport::Tcp(TcpConn::new(flow, cfg, false))
            } else if pkt.kind == PacketKind::QuicInit && host == SERVER {
                let cfg = self.hosts[host].cfg.stack.clone();
                Transport::Quic(QuicConn::new(flow, cfg, false))
            } else if pkt.kind == PacketKind::MuxInit && host == SERVER {
                match self.custom_acceptor.as_mut() {
                    Some(make) => Transport::Custom(make(flow)),
                    None => return, // no acceptor installed: stray
                }
            } else {
                return; // stray packet for a dead/unknown flow
            };
            if let Some(tr) = &self.tracer {
                conn.core_mut().set_tracer(tr.clone());
            }
            self.hosts[host].conns.insert(flow, conn);
        }
        let acts = {
            let h = &mut self.hosts[host];
            let conn = h.conns.get_mut(&flow).expect("conn just ensured");
            conn.core_mut().input(&pkt, now, &mut h.cpu)
        };
        self.apply(host, flow, acts);
        let more = {
            let h = &mut self.hosts[host];
            match h.conns.get_mut(&flow) {
                Some(conn) => conn.core_mut().output(now, &mut h.cpu),
                None => return,
            }
        };
        self.apply(host, flow, more);
    }
}
