//! NIC model with TSO.
//!
//! The NIC takes one transport segment and emits its packets back-to-back
//! at line rate — the *micro burst* of §4.2: "packets in the same TSO
//! segment cannot be interleaved". Packet boundaries were already decided
//! when the segment was built (by MSS, or by a Stob shaper exercising the
//! paper's §5.5 *flexible TSO*), so the NIC here only assigns wall-clock
//! departure times.

use crate::qdisc::SegDesc;
use netsim::{Link, Nanos, Packet};

/// A host NIC: a transmitter serializing at line rate.
#[derive(Debug)]
pub struct Nic {
    link: Link,
    pub segments_tx: u64,
    pub packets_tx: u64,
}

impl Nic {
    pub fn new(rate_bps: u64) -> Self {
        Nic {
            link: Link::new(rate_bps, Nanos::ZERO),
            segments_tx: 0,
            packets_tx: 0,
        }
    }

    pub fn rate_bps(&self) -> u64 {
        self.link.rate_bps
    }

    /// Is the transmitter idle at `now`?
    pub fn idle_at(&self, now: Nanos) -> bool {
        self.link.idle_at(now)
    }

    /// Time the transmitter frees up.
    pub fn free_at(&self) -> Nanos {
        self.link.free_at()
    }

    /// Serialize a whole segment starting no earlier than `now`.
    ///
    /// Returns `(tx_done, packets)` where each packet is stamped with the
    /// time its last bit leaves the NIC. The caller (the event loop)
    /// schedules network delivery from these times.
    pub fn transmit_segment(&mut self, now: Nanos, seg: SegDesc) -> (Nanos, Vec<(Nanos, Packet)>) {
        let mut out = Vec::with_capacity(seg.pkts.len());
        let mut done = now;
        for mut pkt in seg.pkts {
            let (tx_done, _) = self.link.transmit(now, pkt.wire_len as u64);
            pkt.sent_at = tx_done;
            done = tx_done;
            self.packets_tx += 1;
            out.push((tx_done, pkt));
        }
        self.segments_tx += 1;
        netsim::tm_counter!("stack.nic.segments_tx").inc();
        netsim::tm_counter!("stack.nic.packets_tx").add(out.len() as u64);
        (done, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::FlowId;

    fn burst(n: usize, payload: u32) -> SegDesc {
        let pkts = (0..n)
            .map(|i| {
                let mut p = Packet::tcp_data(FlowId(1), i as u64 * payload as u64, 0, payload);
                p.meta.tso_burst = 7;
                p
            })
            .collect();
        SegDesc::new(FlowId(1), pkts, Nanos::ZERO)
    }

    #[test]
    fn burst_leaves_back_to_back_at_line_rate() {
        let mut nic = Nic::new(100_000_000_000);
        let (done, pkts) = nic.transmit_segment(Nanos::ZERO, burst(4, 1448));
        // 1514-byte wire packets at 100 Gb/s: 121.12 ns each -> 121 ns
        // (integer truncation).
        let gaps: Vec<u64> = pkts
            .windows(2)
            .map(|w| (w[1].0 - w[0].0).as_nanos())
            .collect();
        assert!(gaps.iter().all(|&g| g == 121), "gaps {gaps:?}");
        assert_eq!(done, pkts.last().unwrap().0);
        assert_eq!(nic.packets_tx, 4);
        assert_eq!(nic.segments_tx, 1);
    }

    #[test]
    fn sent_at_is_stamped() {
        let mut nic = Nic::new(1_000_000_000);
        let (_, pkts) = nic.transmit_segment(Nanos::from_micros(5), burst(2, 1000));
        for (t, p) in &pkts {
            assert_eq!(p.sent_at, *t);
            assert!(*t > Nanos::from_micros(5));
        }
    }

    #[test]
    fn successive_segments_queue_on_transmitter() {
        let mut nic = Nic::new(1_000_000_000);
        let (d1, _) = nic.transmit_segment(Nanos::ZERO, burst(1, 1184)); // 1250 wire = 10us
        assert_eq!(d1, Nanos::from_micros(10));
        assert!(!nic.idle_at(Nanos::from_micros(5)));
        let (d2, _) = nic.transmit_segment(Nanos::from_micros(5), burst(1, 1184));
        assert_eq!(d2, Nanos::from_micros(20));
        assert_eq!(nic.free_at(), d2);
    }
}
