//! The packet-sequence shaping hook — the mechanism half of Stob.
//!
//! §4.2 of the paper identifies three stack decisions an obfuscation
//! framework must be able to influence:
//!
//! 1. **TSO sizing** — how many packets ride in one segment handed to the
//!    NIC (packets within a segment cannot be interleaved or paced apart);
//! 2. **packet sizing** — the wire size of each packet the NIC emits
//!    (normally fixed at MSS by TSO, except the last packet; the paper's
//!    §5.5 "flexible TSO" relaxes this);
//! 3. **departure timing** — extra pacing delay applied to a segment on
//!    top of what the congestion controller requested.
//!
//! The `stack` crate calls a [`Shaper`] at exactly those three points. The
//! default [`NoopShaper`] changes nothing; the `stob` crate provides the
//! policy implementations plus the safety envelope ("never more aggressive
//! than the CCA decided").

use netsim::{FlowId, Nanos};

/// Read-only stack state offered to a shaper at each decision point.
///
/// These are the fields Stob policies key on: connection phase (slow start
/// vs. steady state — §5.1 suggests suspending obfuscation where pacing is
/// load-bearing for the CCA), progress counters (for position-dependent
/// policies such as "protect the first N packets", which §3 shows is where
/// censors must act), and the CC-granted budget (for the safety cap).
#[derive(Debug, Clone, Copy)]
pub struct ShapeCtx {
    pub flow: FlowId,
    pub now: Nanos,
    /// Current congestion window, bytes.
    pub cwnd: u64,
    /// CC pacing rate if pacing is active (bits/s).
    pub pacing_rate_bps: Option<u64>,
    /// True while the CCA is in its startup phase.
    pub in_slow_start: bool,
    /// Payload bytes sent so far on this flow.
    pub bytes_sent: u64,
    /// Wire data packets sent so far on this flow.
    pub pkts_sent: u64,
    /// TSO segments sent so far on this flow.
    pub segs_sent: u64,
    /// Path MTU as IP packet size (e.g. 1500).
    pub mtu_ip: u32,
    /// MSS in payload bytes.
    pub mss: u32,
}

/// Packet-sequence shaping hooks. All methods have identity defaults so a
/// shaper can override only the decisions it cares about.
pub trait Shaper {
    /// Choose the TSO segment size in *packets*. `proposed` is what the
    /// stack (CC autosizing) wanted. Returning more than `proposed` is
    /// permitted by the trait but clipped by the stack to `proposed` —
    /// growing bursts would be more aggressive than the CCA decided.
    fn tso_segment_pkts(&mut self, _ctx: &ShapeCtx, proposed: u32) -> u32 {
        proposed
    }

    /// Choose the IP size of the `pkt_index`-th packet within the current
    /// segment. `proposed` is the stack's choice (MTU, or the remainder
    /// for the final packet). Values are clamped by the stack to
    /// `[MIN_IP_PACKET, mtu_ip]` and to the remaining payload.
    fn packet_ip_size(&mut self, _ctx: &ShapeCtx, _pkt_index: u32, proposed: u32) -> u32 {
        proposed
    }

    /// Extra delay added to the segment's pacing-decided departure time.
    /// Only non-negative shifts exist by construction: a shaper cannot
    /// schedule a departure earlier than the CCA allowed. The delay also
    /// advances the flow's pacing clock, so per-segment delays *stretch*
    /// consecutive inter-departure gaps (the paper's §3 semantics)
    /// rather than shifting the whole schedule once.
    fn extra_delay(&mut self, _ctx: &ShapeCtx) -> Nanos {
        Nanos::ZERO
    }

    /// Called once per ACK processed, letting stateful strategies observe
    /// flow progress without a separate feedback channel.
    fn on_ack(&mut self, _ctx: &ShapeCtx) {}
}

/// The identity shaper: stock Linux behaviour.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopShaper;

impl Shaper for NoopShaper {}

/// Forwarding impl so a boxed shaper can sit inside generic wrappers
/// (`SafetyCap<S>`, guards, chains) without an extra newtype at every
/// call site.
impl Shaper for Box<dyn Shaper> {
    fn tso_segment_pkts(&mut self, ctx: &ShapeCtx, proposed: u32) -> u32 {
        (**self).tso_segment_pkts(ctx, proposed)
    }
    fn packet_ip_size(&mut self, ctx: &ShapeCtx, pkt_index: u32, proposed: u32) -> u32 {
        (**self).packet_ip_size(ctx, pkt_index, proposed)
    }
    fn extra_delay(&mut self, ctx: &ShapeCtx) -> Nanos {
        (**self).extra_delay(ctx)
    }
    fn on_ack(&mut self, ctx: &ShapeCtx) {
        (**self).on_ack(ctx)
    }
}

/// Boxed shaper alias used throughout the stack.
pub type BoxShaper = Box<dyn Shaper>;

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> ShapeCtx {
        ShapeCtx {
            flow: FlowId(1),
            now: Nanos(0),
            cwnd: 10 * 1448,
            pacing_rate_bps: Some(1_000_000_000),
            in_slow_start: true,
            bytes_sent: 0,
            pkts_sent: 0,
            segs_sent: 0,
            mtu_ip: 1500,
            mss: 1448,
        }
    }

    #[test]
    fn noop_is_identity() {
        let mut s = NoopShaper;
        let c = ctx();
        assert_eq!(s.tso_segment_pkts(&c, 44), 44);
        assert_eq!(s.packet_ip_size(&c, 3, 1500), 1500);
        assert_eq!(s.extra_delay(&c), Nanos::ZERO);
    }

    #[test]
    fn custom_shaper_overrides_one_hook() {
        struct Halver;
        impl Shaper for Halver {
            fn tso_segment_pkts(&mut self, _c: &ShapeCtx, p: u32) -> u32 {
                (p / 2).max(1)
            }
        }
        let mut s = Halver;
        let c = ctx();
        assert_eq!(s.tso_segment_pkts(&c, 44), 22);
        assert_eq!(s.tso_segment_pkts(&c, 1), 1);
        // Untouched hooks keep identity defaults.
        assert_eq!(s.packet_ip_size(&c, 0, 1500), 1500);
    }

    #[test]
    fn boxed_shaper_forwards_to_inner() {
        struct Fixed;
        impl Shaper for Fixed {
            fn packet_ip_size(&mut self, _c: &ShapeCtx, _i: u32, _p: u32) -> u32 {
                600
            }
            fn extra_delay(&mut self, _c: &ShapeCtx) -> Nanos {
                Nanos::from_micros(7)
            }
        }
        let mut boxed: Box<dyn Shaper> = Box::new(Fixed);
        let c = ctx();
        assert_eq!(boxed.packet_ip_size(&c, 0, 1500), 600);
        assert_eq!(boxed.extra_delay(&c), Nanos::from_micros(7));
        assert_eq!(boxed.tso_segment_pkts(&c, 44), 44, "identity default");
    }
}
