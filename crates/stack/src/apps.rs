//! Reusable application endpoints for experiments and tests.
//!
//! `BulkSender` + `Sink` form the iperf3-style memory-to-memory transfer
//! used by Figure 3; `NullApp` is the do-nothing peer.

use crate::config::StackConfig;
use crate::net::{Api, App};
use crate::shaper::BoxShaper;
use netsim::FlowId;

/// How much a bulk sender tries to write per `send()` call. Large enough
/// to keep the socket buffer full, mirroring iperf3's behaviour.
const CHUNK: u64 = 1 << 20;

/// Client app that opens one connection and pumps bytes as fast as the
/// socket buffer accepts them.
pub struct BulkSender {
    /// Total payload to send; `None` = run forever (until the simulation
    /// deadline stops it).
    total: Option<u64>,
    written: u64,
    flow: Option<FlowId>,
    closed: bool,
    /// Open the connection over QUIC instead of TCP.
    quic: bool,
}

impl BulkSender {
    pub fn new(total: u64) -> Self {
        BulkSender {
            total: Some(total),
            written: 0,
            flow: None,
            closed: false,
            quic: false,
        }
    }

    /// A bulk sender that transfers over QUIC instead of TCP. QUIC-lite
    /// models no CONNECTION_CLOSE, so the transfer simply goes idle once
    /// everything is delivered.
    pub fn quic(total: u64) -> Self {
        BulkSender {
            quic: true,
            ..BulkSender::new(total)
        }
    }

    /// An endless sender for steady-state throughput measurements.
    pub fn endless() -> Self {
        BulkSender {
            total: None,
            written: 0,
            flow: None,
            closed: false,
            quic: false,
        }
    }

    pub fn written(&self) -> u64 {
        self.written
    }

    fn pump(&mut self, api: &mut Api, flow: FlowId) {
        loop {
            let want = match self.total {
                Some(t) => (t - self.written).min(CHUNK),
                None => CHUNK,
            };
            if want == 0 {
                if !self.closed {
                    self.closed = true;
                    api.close(flow);
                }
                return;
            }
            let accepted = api.send(flow, want);
            self.written += accepted;
            if accepted < want {
                return; // buffer full; wait for on_sendable
            }
        }
    }
}

impl App for BulkSender {
    fn on_start(&mut self, api: &mut Api) {
        self.flow = Some(if self.quic {
            let cfg = crate::config::StackConfig::default();
            api.connect_quic(cfg, None)
        } else {
            api.connect()
        });
    }
    fn on_connected(&mut self, api: &mut Api, flow: FlowId) {
        self.pump(api, flow);
    }
    fn on_sendable(&mut self, api: &mut Api, flow: FlowId) {
        self.pump(api, flow);
    }
}

/// A [`BulkSender`] whose connection is opened with an explicit stack
/// configuration and an optional shaper already attached — the
/// "defended bulk transfer" endpoint used by the figure-3 and ablation
/// harnesses.
pub struct ShapedSender {
    inner: BulkSender,
    cfg: StackConfig,
    shaper: Option<BoxShaper>,
}

impl ShapedSender {
    pub fn new(inner: BulkSender, cfg: StackConfig, shaper: Option<BoxShaper>) -> Self {
        ShapedSender { inner, cfg, shaper }
    }

    pub fn written(&self) -> u64 {
        self.inner.written()
    }
}

impl App for ShapedSender {
    fn on_start(&mut self, api: &mut Api) {
        let shaper = self.shaper.take();
        self.inner.flow = Some(api.connect_with(self.cfg.clone(), shaper));
    }
    fn on_connected(&mut self, api: &mut Api, flow: FlowId) {
        self.inner.pump(api, flow);
    }
    fn on_sendable(&mut self, api: &mut Api, flow: FlowId) {
        self.inner.pump(api, flow);
    }
}

/// Server app that consumes everything it receives.
#[derive(Default)]
pub struct Sink {
    pub received: u64,
}

impl App for Sink {
    fn on_data(&mut self, _api: &mut Api, _flow: FlowId, bytes: u64) {
        self.received += bytes;
    }
    fn on_peer_closed(&mut self, api: &mut Api, flow: FlowId) {
        api.close(flow);
    }
}

/// An app that does nothing at all.
pub struct NullApp;

impl App for NullApp {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HostConfig;
    use crate::cpu::CpuModel;
    use crate::net::Network;
    use crate::PathConfig;
    use netsim::Nanos;

    #[test]
    fn bulk_sender_stops_at_total_and_closes() {
        let h = HostConfig {
            cpu: CpuModel::infinitely_fast(),
            ..HostConfig::default()
        };
        let mut net = Network::new(
            h.clone(),
            h,
            PathConfig::internet(100, 10),
            Box::new(BulkSender::new(300_000)),
            Box::new(Sink::default()),
            11,
        );
        net.run_to_idle();
        let s = net.flow_stats(crate::net::SERVER, FlowId(1)).unwrap();
        assert_eq!(s.bytes_delivered, 300_000);
        // FIN seen at the server vantage.
        assert!(net
            .server_capture
            .records
            .iter()
            .any(|r| r.kind == netsim::PacketKind::TcpFin));
    }

    #[test]
    fn endless_sender_runs_until_deadline() {
        let h = HostConfig {
            cpu: CpuModel::infinitely_fast(),
            ..HostConfig::default()
        };
        let mut net = Network::new(
            h.clone(),
            h,
            PathConfig::internet(100, 10),
            Box::new(BulkSender::endless()),
            Box::new(Sink::default()),
            12,
        );
        net.run_until(Nanos::from_millis(200));
        let s = net.flow_stats(crate::net::SERVER, FlowId(1)).unwrap();
        assert!(s.bytes_delivered > 500_000, "only {}", s.bytes_delivered);
    }
}
