//! The simulated network: two hosts (client and server) joined by a
//! symmetric bottleneck, driven by a deterministic event loop.
//!
//! A passive vantage point at the client access link records every packet
//! in both directions — the `tcpdump` of the paper's §3 data collection.
//! A second vantage point at the server side supports server-side defense
//! studies (§5.4 argues the server side is the right deployment point).

use crate::config::{HostConfig, PathConfig, StackConfig};
use crate::cpu::Cpu;
use crate::nic::Nic;
use crate::qdisc::{FqQdisc, SegDesc};
use crate::quic::{QuicConn, QuicStats};
use crate::shaper::BoxShaper;
use crate::tcp::{ConnStats, TcpAction, TcpConn, TimerKind};
use netsim::fault::Departure;
use netsim::telemetry::Tracer;
use netsim::{
    AuditReport, Auditor, Capture, Direction, DropTailQueue, EventQueue, FaultInjector,
    FaultSchedule, FaultStats, FlowId, Nanos, Packet, PacketKind, SimRng,
};
use std::collections::BTreeMap;

pub const CLIENT: usize = 0;
pub const SERVER: usize = 1;

/// Callbacks through which applications drive the stack. All I/O is
/// asynchronous: `Api::send` only fills the socket buffer, mirroring the
/// `send()` semantics §2.3 builds its argument on.
pub trait App {
    fn on_start(&mut self, _api: &mut Api) {}
    /// Client side: connection established.
    fn on_connected(&mut self, _api: &mut Api, _flow: FlowId) {}
    /// Server side: a new connection completed its handshake.
    fn on_accept(&mut self, _api: &mut Api, _flow: FlowId) {}
    /// `bytes` new in-order bytes arrived on `flow`.
    fn on_data(&mut self, _api: &mut Api, _flow: FlowId, _bytes: u64) {}
    /// Socket-buffer space is available again after a short write.
    fn on_sendable(&mut self, _api: &mut Api, _flow: FlowId) {}
    /// The peer closed its direction of the connection.
    fn on_peer_closed(&mut self, _api: &mut Api, _flow: FlowId) {}
    /// An application timer set via [`Api::set_timer`] fired.
    fn on_timer(&mut self, _api: &mut Api, _token: u64) {}
}

/// Events flowing through the simulator.
#[derive(Debug)]
enum Ev {
    /// A packet arrives at a host (after the bottleneck + propagation).
    Arrive { host: usize, pkt: Packet },
    /// One wire packet's last bit left the host NIC.
    PktLeaveNic { host: usize, pkt: Packet },
    /// The NIC finished serializing a whole segment of `flow`.
    SegTxDone {
        host: usize,
        flow: FlowId,
        wire: u64,
    },
    /// Bottleneck transmitter finished the packet in flight.
    BnTxDone { dir: usize },
    /// Re-examine the qdisc (pacing eligibility or NIC became free).
    QdiscCheck { host: usize },
    /// Transport timer.
    ConnTimer {
        host: usize,
        flow: FlowId,
        kind: TimerKind,
        gen: u64,
    },
    /// Application timer.
    AppTimer { host: usize, token: u64 },
    /// A buffering link flap ended: drain held packets into the path.
    FlapRelease { dir: usize },
    /// Scheduled mid-flow path-MTU reduction from the fault schedule.
    MtuChange { new_mtu_ip: u32 },
}

/// A transport endpoint: the stack supports TCP and QUIC side by side
/// (Figure 1's columns share everything below the transport layer).
enum Transport {
    Tcp(TcpConn),
    Quic(QuicConn),
}

impl Transport {
    fn input(&mut self, pkt: &Packet, now: Nanos, cpu: &mut crate::cpu::Cpu) -> Vec<TcpAction> {
        match self {
            Transport::Tcp(c) => c.input(pkt, now, cpu),
            Transport::Quic(c) => c.input(pkt, now, cpu),
        }
    }
    fn output(&mut self, now: Nanos, cpu: &mut crate::cpu::Cpu) -> Vec<TcpAction> {
        match self {
            Transport::Tcp(c) => c.output(now, cpu),
            Transport::Quic(c) => c.output(now, cpu),
        }
    }
    fn on_timer(&mut self, kind: TimerKind, gen: u64, now: Nanos) -> Vec<TcpAction> {
        match self {
            Transport::Tcp(c) => c.on_timer(kind, gen, now),
            Transport::Quic(c) => c.on_timer(kind, gen, now),
        }
    }
    fn tsq_credit(&mut self, wire: u64) {
        if let Transport::Tcp(c) = self {
            c.tsq_credit(wire);
        }
    }
    fn write(&mut self, len: u64) -> u64 {
        match self {
            Transport::Tcp(c) => c.write(len),
            Transport::Quic(c) => c.write(len),
        }
    }
    fn set_shaper(&mut self, shaper: BoxShaper) {
        match self {
            Transport::Tcp(c) => c.set_shaper(shaper),
            Transport::Quic(c) => c.set_shaper(shaper),
        }
    }
    fn set_mtu(&mut self, mtu_ip: u32) {
        match self {
            Transport::Tcp(c) => c.set_mtu(mtu_ip),
            Transport::Quic(c) => c.set_mtu(mtu_ip),
        }
    }
    fn set_tracer(&mut self, tracer: Tracer) {
        match self {
            Transport::Tcp(c) => c.set_tracer(tracer),
            Transport::Quic(c) => c.set_tracer(tracer),
        }
    }
}

struct Host {
    cfg: HostConfig,
    cpu: Cpu,
    nic: Nic,
    qdisc: FqQdisc,
    conns: BTreeMap<FlowId, Transport>,
    /// Earliest pending QdiscCheck, to avoid event storms.
    next_check: Option<Nanos>,
}

impl Host {
    fn new(cfg: HostConfig) -> Self {
        Host {
            cpu: Cpu::new(cfg.cpu),
            nic: Nic::new(cfg.nic_rate_bps),
            qdisc: FqQdisc::new(),
            conns: BTreeMap::new(),
            next_check: None,
            cfg,
        }
    }
}

/// Counters for the path between the hosts.
#[derive(Debug, Clone, Copy, Default)]
pub struct PathStats {
    pub random_drops: u64,
    pub overflow_drops: u64,
    pub delivered_pkts: u64,
}

/// Packet-conservation ledger kept for the auditor: everything injected
/// into the path must end up delivered, dropped (and counted), or still
/// in transit.
#[derive(Debug, Clone, Copy, Default)]
struct PathLedger {
    injected: u64,
    delivered: u64,
    dropped: u64,
    /// Arrive events scheduled but not yet handled.
    arrivals_pending: u64,
}

/// The whole simulated world.
pub struct Network {
    q: EventQueue<Ev>,
    hosts: [Host; 2],
    apps: [Option<Box<dyn App>>; 2],
    path: PathConfig,
    bn_queue: [DropTailQueue; 2],
    bn_inflight: [Option<Packet>; 2],
    rng: SimRng,
    next_flow: u32,
    started: bool,
    /// Fault injector, when a schedule was installed via `set_faults`.
    faults: Option<FaultInjector>,
    /// Packets held during a buffering link flap, per direction.
    flap_held: [Vec<Packet>; 2],
    /// Runtime invariant checker (debug default; `STOB_AUDIT=1` or
    /// `set_audit` elsewhere).
    auditor: Auditor,
    /// Shared flow-trace ring: every shaping decision on either host is
    /// recorded here when installed (`set_tracer`).
    tracer: Option<Tracer>,
    ledger: PathLedger,
    pub path_stats: PathStats,
    /// Vantage point at the client access link (the paper's capture
    /// position). `Out` = client→server.
    pub client_capture: Capture,
    /// Vantage point at the server access link. `Out` = server→client.
    pub server_capture: Capture,
}

impl Network {
    pub fn new(
        client: HostConfig,
        server: HostConfig,
        path: PathConfig,
        client_app: Box<dyn App>,
        server_app: Box<dyn App>,
        seed: u64,
    ) -> Self {
        Network {
            q: EventQueue::new(),
            hosts: [Host::new(client), Host::new(server)],
            apps: [Some(client_app), Some(server_app)],
            bn_queue: [
                DropTailQueue::new(path.queue_bytes),
                DropTailQueue::new(path.queue_bytes),
            ],
            bn_inflight: [None, None],
            path,
            rng: SimRng::new(seed),
            next_flow: 1,
            started: false,
            faults: None,
            flap_held: [Vec::new(), Vec::new()],
            auditor: Auditor::new(),
            tracer: None,
            ledger: PathLedger::default(),
            path_stats: PathStats::default(),
            client_capture: Capture::new(),
            server_capture: Capture::new(),
        }
    }

    pub fn now(&self) -> Nanos {
        self.q.now()
    }

    /// Deliver `on_start` to both apps (server first, so it is listening
    /// before the client connects).
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        self.with_app(SERVER, |app, api| app.on_start(api));
        self.with_app(CLIENT, |app, api| app.on_start(api));
    }

    /// Run until the event queue drains. Returns the final time.
    pub fn run_to_idle(&mut self) -> Nanos {
        self.start();
        let mut sp = netsim::telemetry::span("stack.net.event_loop");
        let t0 = self.q.now();
        while let Some((t, ev)) = self.q.pop() {
            self.auditor.check_monotonic(t);
            self.handle(ev);
        }
        sp.sim_window(t0, self.q.now());
        self.q.now()
    }

    /// Run until simulated `deadline`; later events stay queued.
    pub fn run_until(&mut self, deadline: Nanos) {
        self.start();
        let mut sp = netsim::telemetry::span("stack.net.event_loop");
        let t0 = self.q.now();
        while let Some(t) = self.q.peek_time() {
            if t > deadline {
                break;
            }
            let (t, ev) = self.q.pop().expect("peeked event vanished");
            self.auditor.check_monotonic(t);
            self.handle(ev);
        }
        sp.sim_window(t0, self.q.now());
    }

    // ------------------------------------------------------------------
    // Fault injection & auditing
    // ------------------------------------------------------------------

    /// Install a fault schedule. MTU-drop items become scheduled events;
    /// the rest are consulted as packets traverse the path.
    pub fn set_faults(&mut self, schedule: &FaultSchedule) {
        let inj = FaultInjector::new(schedule);
        for (at, new_mtu_ip) in inj.mtu_events() {
            self.q
                .schedule_at(at.max(self.q.now()), Ev::MtuChange { new_mtu_ip });
        }
        self.faults = Some(inj);
    }

    /// Counters of faults that actually fired (`None` without a schedule).
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.faults.as_ref().map(|f| f.stats)
    }

    /// Force the invariant auditor on or off (debug builds default on;
    /// release builds honour `STOB_AUDIT=1`).
    pub fn set_audit(&mut self, on: bool) {
        self.auditor.set_enabled(on);
    }

    /// Install a flow tracer: from now on every shaping decision on
    /// either host (transport sizing/pacing, qdisc release, NIC bursts,
    /// fault hits) is recorded into the shared bounded ring. Existing
    /// connections pick it up immediately.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        for h in self.hosts.iter_mut() {
            for conn in h.conns.values_mut() {
                conn.set_tracer(tracer.clone());
            }
        }
        self.tracer = Some(tracer);
    }

    /// The installed flow tracer, if any.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    /// Final invariant report: runs the conservation check over the path
    /// ledger, then snapshots all recorded violations.
    pub fn audit_report(&mut self) -> AuditReport {
        let now = self.q.now();
        let in_transit = self.in_transit_pkts();
        self.auditor.check_conservation(
            now,
            self.ledger.injected,
            self.ledger.delivered,
            self.ledger.dropped,
            in_transit,
        );
        self.auditor.report()
    }

    /// Packets currently somewhere on the path (bottleneck queues, the
    /// transmitters, flap-hold buffers, or propagating toward a host).
    fn in_transit_pkts(&self) -> u64 {
        let queued: u64 = self.bn_queue.iter().map(|q| q.len() as u64).sum();
        let inflight = self.bn_inflight.iter().flatten().count() as u64;
        let held: u64 = self.flap_held.iter().map(|h| h.len() as u64).sum();
        queued + inflight + held + self.ledger.arrivals_pending
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    pub fn conn_stats(&self, host: usize, flow: FlowId) -> Option<ConnStats> {
        match self.hosts[host].conns.get(&flow) {
            Some(Transport::Tcp(c)) => Some(c.stats),
            _ => None,
        }
    }

    pub fn quic_stats(&self, host: usize, flow: FlowId) -> Option<QuicStats> {
        match self.hosts[host].conns.get(&flow) {
            Some(Transport::Quic(c)) => Some(c.stats),
            _ => None,
        }
    }

    pub fn cpu(&self, host: usize) -> &Cpu {
        &self.hosts[host].cpu
    }

    pub fn nic_counters(&self, host: usize) -> (u64, u64) {
        (
            self.hosts[host].nic.segments_tx,
            self.hosts[host].nic.packets_tx,
        )
    }

    // ------------------------------------------------------------------
    // Event handling
    // ------------------------------------------------------------------

    fn handle(&mut self, ev: Ev) {
        netsim::tm_counter!("stack.net.events").inc();
        match ev {
            Ev::QdiscCheck { host } => {
                self.hosts[host].next_check = None;
                self.qdisc_check(host);
            }
            Ev::PktLeaveNic { host, pkt } => self.pkt_leave_nic(host, pkt),
            Ev::SegTxDone { host, flow, wire } => {
                let now = self.q.now();
                if let Some(conn) = self.hosts[host].conns.get_mut(&flow) {
                    conn.tsq_credit(wire);
                    let acts = {
                        let h = &mut self.hosts[host];
                        let conn = h.conns.get_mut(&flow).expect("conn vanished");
                        conn.output(now, &mut h.cpu)
                    };
                    self.apply(host, flow, acts);
                }
            }
            Ev::BnTxDone { dir } => self.bn_tx_done(dir),
            Ev::Arrive { host, pkt } => self.arrive(host, pkt),
            Ev::ConnTimer {
                host,
                flow,
                kind,
                gen,
            } => {
                let now = self.q.now();
                let acts = match self.hosts[host].conns.get_mut(&flow) {
                    Some(conn) => conn.on_timer(kind, gen, now),
                    None => return,
                };
                self.apply(host, flow, acts);
                let more = {
                    let h = &mut self.hosts[host];
                    match h.conns.get_mut(&flow) {
                        Some(conn) => conn.output(now, &mut h.cpu),
                        None => return,
                    }
                };
                self.apply(host, flow, more);
            }
            Ev::AppTimer { host, token } => {
                self.with_app(host, |app, api| app.on_timer(api, token));
            }
            Ev::FlapRelease { dir } => self.flap_release(dir),
            Ev::MtuChange { new_mtu_ip } => self.mtu_change(new_mtu_ip),
        }
    }

    /// Apply a scheduled path-MTU reduction to every live connection on
    /// both hosts (the stand-in for ICMP "fragmentation needed" reaching
    /// each endpoint). Segments already queued keep their old size;
    /// everything packetized afterwards uses the smaller MTU.
    fn mtu_change(&mut self, new_mtu_ip: u32) {
        if let Some(f) = self.faults.as_mut() {
            f.stats.mtu_changes += 1;
        }
        netsim::tm_counter!("netsim.fault.mtu_changes").inc();
        if let Some(tr) = &self.tracer {
            tr.rec(
                self.q.now(),
                0,
                "net",
                "mtu-change",
                0,
                u64::from(new_mtu_ip),
                "fault-schedule",
            );
        }
        for h in self.hosts.iter_mut() {
            for conn in h.conns.values_mut() {
                conn.set_mtu(new_mtu_ip);
            }
        }
    }

    /// Apply transport actions produced by conn `flow` on `host`.
    fn apply(&mut self, host: usize, flow: FlowId, acts: Vec<TcpAction>) {
        let now = self.q.now();
        // §4.2 audit: the batch of fresh (non-retransmit) departures one
        // output pass authorises must fit within the congestion
        // controller's grant, and so must the flow's in-network estimate.
        // `slop` is the one-burst overshoot the send loop structurally
        // permits (the gate runs before each segment is built).
        if self.auditor.enabled() {
            let fresh: u64 = acts
                .iter()
                .filter_map(|a| match a {
                    TcpAction::SendSeg(s) if !s.pkts.iter().any(|p| p.meta.retransmit) => {
                        Some(s.payload_bytes())
                    }
                    _ => None,
                })
                .sum();
            if fresh > 0 {
                let (outstanding, grant) = match self.hosts[host].conns.get(&flow) {
                    Some(Transport::Tcp(c)) => (c.pipe().max(fresh), c.cwnd()),
                    Some(Transport::Quic(c)) => (c.inflight().max(fresh), c.cwnd()),
                    None => (0, u64::MAX),
                };
                let s = &self.hosts[host].cfg.stack;
                let slop = u64::from(s.tso_max_pkts.max(16)) * u64::from(s.mss());
                self.auditor.check_safety(
                    now,
                    u64::from(flow.0),
                    outstanding,
                    grant.saturating_add(slop),
                );
            }
        }
        for act in acts {
            match act {
                TcpAction::SendSeg(seg) => {
                    let at = seg.eligible_at;
                    self.hosts[host].qdisc.enqueue(seg);
                    self.schedule_check(host, at.max(now));
                }
                TcpAction::SendCtl(pkt) => {
                    let seg = SegDesc::new(flow, vec![pkt], now);
                    self.hosts[host].qdisc.enqueue_prio(seg);
                    self.schedule_check(host, now);
                }
                TcpAction::ArmTimer { kind, at, gen } => {
                    self.q.schedule_at(
                        at.max(now),
                        Ev::ConnTimer {
                            host,
                            flow,
                            kind,
                            gen,
                        },
                    );
                }
                TcpAction::Deliver(n) => {
                    self.with_app(host, |app, api| app.on_data(api, flow, n));
                }
                TcpAction::Sendable => {
                    self.with_app(host, |app, api| app.on_sendable(api, flow));
                }
                TcpAction::Connected => {
                    if host == CLIENT {
                        self.with_app(host, |app, api| app.on_connected(api, flow));
                    } else {
                        self.with_app(host, |app, api| app.on_accept(api, flow));
                    }
                }
                TcpAction::PeerClosed => {
                    self.with_app(host, |app, api| app.on_peer_closed(api, flow));
                }
            }
        }
    }

    fn with_app(&mut self, host: usize, f: impl FnOnce(&mut dyn App, &mut Api)) {
        if let Some(mut app) = self.apps[host].take() {
            {
                let mut api = Api { net: self, host };
                f(app.as_mut(), &mut api);
            }
            debug_assert!(self.apps[host].is_none(), "reentrant app callback");
            self.apps[host] = Some(app);
        }
    }

    fn schedule_check(&mut self, host: usize, at: Nanos) {
        let at = at.max(self.q.now());
        match self.hosts[host].next_check {
            Some(t) if t <= at => {}
            _ => {
                self.hosts[host].next_check = Some(at);
                self.q.schedule_at(at, Ev::QdiscCheck { host });
            }
        }
    }

    /// Try to feed the NIC from the qdisc.
    fn qdisc_check(&mut self, host: usize) {
        let now = self.q.now();
        let h = &mut self.hosts[host];
        if !h.nic.idle_at(now) {
            let free = h.nic.free_at();
            self.schedule_check(host, free);
            return;
        }
        match h.qdisc.dequeue(now) {
            Some(seg) => {
                self.auditor
                    .check_release(now, seg.eligible_at, u64::from(seg.flow.0));
                // Pacer release delay: how long past its eligible time a
                // segment actually reached the NIC (0 = on time).
                netsim::tm_histo!("stack.qdisc.release_delay_ns")
                    .record(now.saturating_sub(seg.eligible_at).as_nanos());
                let flow = seg.flow;
                let wire = seg.wire_bytes;
                let npkts = seg.pkts.len() as u64;
                netsim::tm_histo!("stack.nic.pkts_per_seg").record(npkts);
                if let Some(tr) = &self.tracer {
                    tr.rec(
                        now,
                        u64::from(flow.0),
                        "qdisc",
                        "release",
                        seg.eligible_at.as_nanos(),
                        now.as_nanos(),
                        "earliest-eligible-first",
                    );
                    tr.rec(
                        now,
                        u64::from(flow.0),
                        "nic",
                        "tx-seg",
                        npkts,
                        wire,
                        "tso-burst",
                    );
                }
                let (done, pkts) = h.nic.transmit_segment(now, seg);
                for (t, pkt) in pkts {
                    self.q.schedule_at(t, Ev::PktLeaveNic { host, pkt });
                }
                self.q.schedule_at(done, Ev::SegTxDone { host, flow, wire });
                // Check again when the NIC frees up.
                self.schedule_check(host, done);
            }
            None => {
                if let Some(t) = h.qdisc.next_eligible() {
                    let t = t.max(now);
                    self.schedule_check(host, t);
                }
            }
        }
    }

    /// A packet's last bit left a host NIC: record it at the local
    /// vantage point, then enter the bottleneck toward the other host.
    fn pkt_leave_nic(&mut self, host: usize, pkt: Packet) {
        let now = self.q.now();
        match host {
            CLIENT => self.client_capture.observe(now, Direction::Out, &pkt),
            _ => self.server_capture.observe(now, Direction::Out, &pkt),
        }
        self.ledger.injected += 1;
        // Random loss (configured paths only).
        if self.path.loss > 0.0 && self.rng.chance(self.path.loss) {
            self.path_stats.random_drops += 1;
            self.ledger.dropped += 1;
            netsim::tm_counter!("stack.net.random_drops").inc();
            return;
        }
        let dir = host; // direction index = source host
                        // Fault injection at the path entry: burst loss, duplication,
                        // then link flaps (a dropped packet cannot duplicate; a held one
                        // waits out the outage).
        let mut copies: u64 = 1;
        if let Some(f) = self.faults.as_mut() {
            match f.on_departure(dir, now) {
                Departure::Deliver => {}
                Departure::Drop => {
                    self.ledger.dropped += 1;
                    netsim::tm_counter!("netsim.fault.drops").inc();
                    if let Some(tr) = &self.tracer {
                        tr.rec(
                            now,
                            u64::from(pkt.flow.0),
                            "net",
                            "fault-drop",
                            u64::from(pkt.wire_len),
                            0,
                            "fault-schedule",
                        );
                    }
                    return;
                }
                Departure::Duplicate => {
                    copies = 2;
                    self.ledger.injected += 1;
                    netsim::tm_counter!("netsim.fault.duplicates").inc();
                }
            }
            if let Some(down) = f.link_down(dir, now) {
                if down.drop {
                    f.stats.flap_drops += copies;
                    self.ledger.dropped += copies;
                    netsim::tm_counter!("netsim.fault.flap_drops").add(copies);
                    return;
                }
                f.stats.flap_held += copies;
                netsim::tm_counter!("netsim.fault.flap_held").add(copies);
                let first = self.flap_held[dir].is_empty();
                if copies == 2 {
                    self.flap_held[dir].push(pkt.clone());
                }
                self.flap_held[dir].push(pkt);
                if first {
                    self.q.schedule_at(down.until, Ev::FlapRelease { dir });
                }
                return;
            }
        }
        if copies == 2 {
            self.enter_bottleneck(dir, pkt.clone());
        }
        self.enter_bottleneck(dir, pkt);
    }

    /// Hand a packet to the bottleneck transmitter for direction `dir`.
    fn enter_bottleneck(&mut self, dir: usize, pkt: Packet) {
        let now = self.q.now();
        if self.bn_inflight[dir].is_none() {
            let tx = Nanos::for_bytes_at_rate(pkt.wire_len as u64, self.path.bottleneck_bps);
            self.bn_inflight[dir] = Some(pkt);
            self.q.schedule_at(now + tx, Ev::BnTxDone { dir });
        } else if !self.bn_queue[dir].enqueue(pkt) {
            self.path_stats.overflow_drops += 1;
            self.ledger.dropped += 1;
        }
    }

    /// A buffering flap's recovery time arrived: if the link is still
    /// down (overlapping windows), re-arm; otherwise drain the held
    /// packets in order.
    fn flap_release(&mut self, dir: usize) {
        let now = self.q.now();
        if let Some(f) = self.faults.as_ref() {
            if let Some(down) = f.link_down(dir, now) {
                self.q.schedule_at(down.until, Ev::FlapRelease { dir });
                return;
            }
        }
        let held = std::mem::take(&mut self.flap_held[dir]);
        for pkt in held {
            self.enter_bottleneck(dir, pkt);
        }
    }

    fn bn_tx_done(&mut self, dir: usize) {
        let now = self.q.now();
        let pkt = self.bn_inflight[dir].take().expect("no packet in flight");
        let dst = 1 - dir;
        self.path_stats.delivered_pkts += 1;
        // Reorder jitter and RTT spikes stretch propagation only:
        // packets may overtake each other, never travel back in time.
        let mut delay = self.path.one_way_delay;
        if let Some(f) = self.faults.as_mut() {
            delay += f.extra_arrival_delay(dir, now);
        }
        self.ledger.arrivals_pending += 1;
        self.q
            .schedule_at(now + delay, Ev::Arrive { host: dst, pkt });
        if let Some(next) = self.bn_queue[dir].dequeue() {
            let tx = Nanos::for_bytes_at_rate(next.wire_len as u64, self.path.bottleneck_bps);
            self.bn_inflight[dir] = Some(next);
            self.q.schedule_at(now + tx, Ev::BnTxDone { dir });
        }
    }

    fn arrive(&mut self, host: usize, pkt: Packet) {
        let now = self.q.now();
        self.ledger.arrivals_pending -= 1;
        self.ledger.delivered += 1;
        if self.auditor.enabled() {
            let in_transit = self.in_transit_pkts();
            self.auditor.check_conservation(
                now,
                self.ledger.injected,
                self.ledger.delivered,
                self.ledger.dropped,
                in_transit,
            );
        }
        match host {
            CLIENT => self.client_capture.observe(now, Direction::In, &pkt),
            _ => self.server_capture.observe(now, Direction::In, &pkt),
        }
        let flow = pkt.flow;
        // Passive open: a SYN (TCP) or Initial (QUIC) for an unknown
        // flow creates the server connection.
        if !self.hosts[host].conns.contains_key(&flow) {
            let mut conn = if pkt.kind == PacketKind::TcpSyn && host == SERVER {
                let cfg = self.hosts[host].cfg.stack.clone();
                Transport::Tcp(TcpConn::new(flow, cfg, false))
            } else if pkt.kind == PacketKind::QuicInit && host == SERVER {
                let cfg = self.hosts[host].cfg.stack.clone();
                Transport::Quic(QuicConn::new(flow, cfg, false))
            } else {
                return; // stray packet for a dead/unknown flow
            };
            if let Some(tr) = &self.tracer {
                conn.set_tracer(tr.clone());
            }
            self.hosts[host].conns.insert(flow, conn);
        }
        let acts = {
            let h = &mut self.hosts[host];
            let conn = h.conns.get_mut(&flow).expect("conn just ensured");
            conn.input(&pkt, now, &mut h.cpu)
        };
        self.apply(host, flow, acts);
        let more = {
            let h = &mut self.hosts[host];
            match h.conns.get_mut(&flow) {
                Some(conn) => conn.output(now, &mut h.cpu),
                None => return,
            }
        };
        self.apply(host, flow, more);
    }
}

/// Application-facing handle, passed into every [`App`] callback.
pub struct Api<'a> {
    net: &'a mut Network,
    host: usize,
}

/// Kinds of application-visible events (used by recording apps).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppEvent {
    Connected,
    Data(u64),
    Sendable,
    PeerClosed,
    Timer(u64),
}

impl<'a> Api<'a> {
    pub fn now(&self) -> Nanos {
        self.net.q.now()
    }

    pub fn host(&self) -> usize {
        self.host
    }

    /// Open a TCP connection to the other host (client side only) using
    /// the host's default stack config.
    pub fn connect(&mut self) -> FlowId {
        let cfg = self.net.hosts[self.host].cfg.stack.clone();
        self.connect_with(cfg, None)
    }

    /// Open a connection with an explicit stack config and optional
    /// shaper (the `setsockopt`-style control surface §5.3 points at).
    pub fn connect_with(&mut self, cfg: StackConfig, shaper: Option<BoxShaper>) -> FlowId {
        assert_eq!(self.host, CLIENT, "only the client opens connections");
        let flow = FlowId(self.net.next_flow);
        self.net.next_flow += 1;
        let mut conn = TcpConn::new(flow, cfg, true);
        if let Some(s) = shaper {
            conn.set_shaper(s);
        }
        if let Some(tr) = &self.net.tracer {
            conn.set_tracer(tr.clone());
        }
        let now = self.net.q.now();
        let acts = conn.connect(now);
        self.net.hosts[self.host]
            .conns
            .insert(flow, Transport::Tcp(conn));
        self.net.apply(self.host, flow, acts);
        flow
    }

    /// Open a QUIC connection to the other host (client side only).
    pub fn connect_quic(&mut self, cfg: StackConfig, shaper: Option<BoxShaper>) -> FlowId {
        assert_eq!(self.host, CLIENT, "only the client opens connections");
        let flow = FlowId(self.net.next_flow);
        self.net.next_flow += 1;
        let mut conn = QuicConn::new(flow, cfg, true);
        if let Some(s) = shaper {
            conn.set_shaper(s);
        }
        if let Some(tr) = &self.net.tracer {
            conn.set_tracer(tr.clone());
        }
        let now = self.net.q.now();
        let acts = conn.connect(now);
        self.net.hosts[self.host]
            .conns
            .insert(flow, Transport::Quic(conn));
        self.net.apply(self.host, flow, acts);
        flow
    }

    /// Install a shaper on an existing connection (either host). This is
    /// how a server-side deployment (§5.4) attaches Stob policies to
    /// accepted connections.
    pub fn set_shaper(&mut self, flow: FlowId, shaper: BoxShaper) {
        if let Some(conn) = self.net.hosts[self.host].conns.get_mut(&flow) {
            conn.set_shaper(shaper);
        }
    }

    /// Write up to `bytes` into the socket buffer; returns bytes accepted.
    pub fn send(&mut self, flow: FlowId, bytes: u64) -> u64 {
        let now = self.net.q.now();
        let (accepted, acts) = {
            let h = &mut self.net.hosts[self.host];
            let Some(conn) = h.conns.get_mut(&flow) else {
                return 0;
            };
            let accepted = conn.write(bytes);
            let acts = conn.output(now, &mut h.cpu);
            (accepted, acts)
        };
        self.net.apply(self.host, flow, acts);
        accepted
    }

    /// Close our direction of the connection (FIN after queued data).
    pub fn close(&mut self, flow: FlowId) {
        let now = self.net.q.now();
        let acts = {
            let h = &mut self.net.hosts[self.host];
            match h.conns.get_mut(&flow) {
                // QUIC-lite models no CONNECTION_CLOSE frame; closing is
                // a TCP-only operation here.
                Some(Transport::Tcp(conn)) => {
                    conn.close();
                    conn.output(now, &mut h.cpu)
                }
                _ => return,
            }
        };
        self.net.apply(self.host, flow, acts);
    }

    /// Arm an application timer delivering `token` after `delay`.
    pub fn set_timer(&mut self, delay: Nanos, token: u64) {
        let host = self.host;
        self.net.q.schedule_in(delay, Ev::AppTimer { host, token });
    }

    /// Stats of one of this host's connections.
    pub fn conn_stats(&self, flow: FlowId) -> Option<ConnStats> {
        self.net.conn_stats(self.host, flow)
    }

    /// Smoothed RTT of a connection, if measured.
    pub fn srtt(&self, flow: FlowId) -> Option<Nanos> {
        match self.net.hosts[self.host].conns.get(&flow) {
            Some(Transport::Tcp(c)) => c.srtt(),
            _ => None,
        }
    }

    /// Deterministic per-app randomness.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.net.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{BulkSender, NullApp, Sink};
    use crate::config::CcKind;
    use crate::cpu::CpuModel;

    fn fast_hosts() -> (HostConfig, HostConfig) {
        let h = HostConfig {
            cpu: CpuModel::infinitely_fast(),
            ..HostConfig::default()
        };
        (h.clone(), h)
    }

    #[test]
    fn bulk_transfer_is_exact_over_internet_path() {
        let (hc, hs) = fast_hosts();
        let total = 5_000_000;
        let mut net = Network::new(
            hc,
            hs,
            PathConfig::internet(50, 30),
            Box::new(BulkSender::new(total)),
            Box::new(Sink::default()),
            1,
        );
        let end = net.run_to_idle();
        let sink_bytes = net.conn_stats(SERVER, FlowId(1)).unwrap().bytes_delivered;
        assert_eq!(sink_bytes, total, "delivery must be exact");
        // Sanity on elapsed: 5 MB at 50 Mb/s is >= 0.8 s.
        assert!(end > Nanos::from_millis(800), "finished too fast: {end}");
        assert!(end < Nanos::from_secs(10), "took too long: {end}");
    }

    #[test]
    fn handshake_takes_one_rtt() {
        struct Probe {
            connected_at: Option<Nanos>,
        }
        impl App for Probe {
            fn on_start(&mut self, api: &mut Api) {
                api.connect();
            }
            fn on_connected(&mut self, api: &mut Api, _f: FlowId) {
                self.connected_at = Some(api.now());
            }
        }
        let (hc, hs) = fast_hosts();
        let path = PathConfig::internet(100, 40);
        let mut net = Network::new(
            hc,
            hs,
            path,
            Box::new(Probe { connected_at: None }),
            Box::new(NullApp),
            2,
        );
        net.run_to_idle();
        // Reach into the capture to find when the client learned.
        let synack = net
            .client_capture
            .records
            .iter()
            .find(|r| r.kind == PacketKind::TcpSynAck)
            .expect("SYN-ACK captured");
        let rtt_ms = synack.ts.as_millis_f64();
        assert!(
            (39.0..45.0).contains(&rtt_ms),
            "SYN-ACK after {rtt_ms} ms, expected ~40"
        );
    }

    #[test]
    fn capture_sees_handshake_then_data_in_order() {
        let (hc, hs) = fast_hosts();
        let mut net = Network::new(
            hc,
            hs,
            PathConfig::internet(50, 20),
            Box::new(BulkSender::new(100_000)),
            Box::new(Sink::default()),
            3,
        );
        net.run_to_idle();
        let recs = &net.client_capture.records;
        assert!(net.client_capture.is_time_ordered());
        assert_eq!(recs[0].kind, PacketKind::TcpSyn);
        assert_eq!(recs[0].dir, Direction::Out);
        assert_eq!(recs[1].kind, PacketKind::TcpSynAck);
        assert_eq!(recs[1].dir, Direction::In);
        assert!(recs.iter().any(|r| r.kind == PacketKind::TcpData));
        assert!(recs.iter().any(|r| r.kind == PacketKind::TcpFin));
    }

    #[test]
    fn loss_is_recovered_exactly() {
        let (hc, hs) = fast_hosts();
        let mut path = PathConfig::internet(50, 20);
        path.loss = 0.02;
        let total = 2_000_000;
        let mut net = Network::new(
            hc,
            hs,
            path,
            Box::new(BulkSender::new(total)),
            Box::new(Sink::default()),
            4,
        );
        net.run_to_idle();
        assert_eq!(
            net.conn_stats(SERVER, FlowId(1)).unwrap().bytes_delivered,
            total
        );
        assert!(net.path_stats.random_drops > 0, "loss never injected");
        let cs = net.conn_stats(CLIENT, FlowId(1)).unwrap();
        assert!(
            cs.fast_retransmits + cs.rtos > 0,
            "loss must trigger recovery"
        );
    }

    #[test]
    fn tso_microburst_visible_at_line_rate() {
        // Over the 100 Gb/s lab path, packets of one TSO segment leave
        // back-to-back at line rate (§4.2's micro burst).
        let (mut hc, hs) = fast_hosts();
        hc.stack.pacing = false;
        hc.stack.cc = CcKind::Cubic;
        let mut net = Network::new(
            hc,
            hs,
            PathConfig::lab_100g(),
            Box::new(BulkSender::new(10_000_000)),
            Box::new(Sink::default()),
            5,
        );
        net.run_until(Nanos::from_millis(50));
        let data: Vec<_> = net
            .client_capture
            .records
            .iter()
            .filter(|r| r.kind == PacketKind::TcpData && r.dir == Direction::Out)
            .collect();
        assert!(data.len() > 50, "need a burst, got {}", data.len());
        // Find at least one run of >= 8 packets with ~121 ns spacing.
        let mut run = 0;
        let mut best = 0;
        for w in data.windows(2) {
            let gap = (w[1].ts - w[0].ts).as_nanos();
            if gap <= 125 {
                run += 1;
                best = best.max(run);
            } else {
                run = 0;
            }
        }
        assert!(best >= 8, "longest line-rate run {best}");
    }

    #[test]
    fn cpu_model_bounds_throughput_on_lab_path() {
        // With the calibrated default CPU model, a single flow over
        // 100 Gb/s is CPU-bound around 35-55 Gb/s (Figure 3's default
        // operating point).
        let hc = HostConfig::default();
        let hs = HostConfig::default();
        let mut net = Network::new(
            hc,
            hs,
            PathConfig::lab_100g(),
            Box::new(BulkSender::endless()),
            Box::new(Sink::default()),
            6,
        );
        let warmup = Nanos::from_millis(30);
        net.run_until(warmup);
        let base = net
            .conn_stats(SERVER, FlowId(1))
            .map(|s| s.bytes_delivered)
            .unwrap_or(0);
        let window = Nanos::from_millis(50);
        net.run_until(warmup + window);
        let bytes = net.conn_stats(SERVER, FlowId(1)).unwrap().bytes_delivered - base;
        let gbps = bytes as f64 * 8.0 / window.as_secs_f64() / 1e9;
        assert!(
            (30.0..60.0).contains(&gbps),
            "CPU-bound goodput {gbps:.1} Gb/s out of calibration band"
        );
    }

    #[test]
    fn two_flows_share_the_bottleneck() {
        struct TwoFlows;
        impl App for TwoFlows {
            fn on_start(&mut self, api: &mut Api) {
                api.connect();
                api.connect();
            }
            fn on_connected(&mut self, api: &mut Api, flow: FlowId) {
                api.send(flow, 2_000_000);
                api.close(flow);
            }
            fn on_sendable(&mut self, _api: &mut Api, _flow: FlowId) {}
        }
        let (hc, hs) = fast_hosts();
        let mut net = Network::new(
            hc,
            hs,
            PathConfig::internet(50, 20),
            Box::new(TwoFlows),
            Box::new(Sink::default()),
            7,
        );
        net.run_to_idle();
        let d1 = net.conn_stats(SERVER, FlowId(1)).unwrap().bytes_delivered;
        let d2 = net.conn_stats(SERVER, FlowId(2)).unwrap().bytes_delivered;
        assert_eq!(d1, 2_000_000);
        assert_eq!(d2, 2_000_000);
    }

    #[test]
    fn quic_transfer_end_to_end() {
        struct QuicSender {
            written: bool,
        }
        impl App for QuicSender {
            fn on_start(&mut self, api: &mut Api) {
                api.connect_quic(StackConfig::default(), None);
            }
            fn on_connected(&mut self, api: &mut Api, flow: FlowId) {
                if !self.written {
                    self.written = true;
                    api.send(flow, 1_000_000);
                }
            }
        }
        let (hc, hs) = fast_hosts();
        let mut net = Network::new(
            hc,
            hs,
            PathConfig::internet(100, 20),
            Box::new(QuicSender { written: false }),
            Box::new(Sink::default()),
            21,
        );
        net.run_until(Nanos::from_secs(20));
        let st = net.quic_stats(SERVER, FlowId(1)).expect("server quic conn");
        assert_eq!(st.bytes_delivered, 1_000_000);
        // The capture contains the Initial handshake and QUIC data.
        assert!(net
            .client_capture
            .records
            .iter()
            .any(|r| r.kind == PacketKind::QuicInit));
        let data = net
            .client_capture
            .records
            .iter()
            .filter(|r| r.kind == PacketKind::QuicData)
            .count();
        assert!(data >= 700, "expected ~741 datagrams, saw {data}");
    }

    #[test]
    fn quic_flow_survives_loss() {
        struct QuicSender;
        impl App for QuicSender {
            fn on_start(&mut self, api: &mut Api) {
                api.connect_quic(StackConfig::default(), None);
            }
            fn on_connected(&mut self, api: &mut Api, flow: FlowId) {
                api.send(flow, 500_000);
            }
        }
        let (hc, hs) = fast_hosts();
        let mut path = PathConfig::internet(50, 20);
        path.loss = 0.02;
        let mut net = Network::new(
            hc,
            hs,
            path,
            Box::new(QuicSender),
            Box::new(Sink::default()),
            22,
        );
        net.run_until(Nanos::from_secs(30));
        let st = net.quic_stats(SERVER, FlowId(1)).expect("server conn");
        assert_eq!(st.bytes_delivered, 500_000, "QUIC must recover from loss");
        let cs = net.quic_stats(CLIENT, FlowId(1)).expect("client conn");
        assert!(cs.retransmissions > 0);
    }

    #[test]
    fn quic_shaper_applies_on_the_wire() {
        struct Shaped;
        impl App for Shaped {
            fn on_start(&mut self, api: &mut Api) {
                struct Small;
                impl crate::shaper::Shaper for Small {
                    fn packet_ip_size(
                        &mut self,
                        _c: &crate::shaper::ShapeCtx,
                        _i: u32,
                        p: u32,
                    ) -> u32 {
                        p.min(700)
                    }
                }
                api.connect_quic(StackConfig::default(), Some(Box::new(Small)));
            }
            fn on_connected(&mut self, api: &mut Api, flow: FlowId) {
                api.send(flow, 200_000);
            }
        }
        let (hc, hs) = fast_hosts();
        let mut net = Network::new(
            hc,
            hs,
            PathConfig::internet(100, 10),
            Box::new(Shaped),
            Box::new(Sink::default()),
            23,
        );
        net.run_until(Nanos::from_secs(10));
        let st = net.quic_stats(SERVER, FlowId(1)).expect("server conn");
        assert_eq!(st.bytes_delivered, 200_000);
        for r in &net.client_capture.records {
            if r.kind == PacketKind::QuicData && r.dir == Direction::Out {
                assert!(r.wire_len <= 700 + 14, "datagram {} too big", r.wire_len);
            }
        }
    }

    #[test]
    fn fq_shares_the_nic_between_flows_fairly() {
        // Two simultaneous bulk flows from the same host: FQ's
        // earliest-eligible-first scheduling plus per-flow pacing should
        // split the bottleneck roughly evenly.
        struct TwoBulk {
            pumped: std::collections::BTreeSet<u32>,
        }
        impl App for TwoBulk {
            fn on_start(&mut self, api: &mut Api) {
                api.connect();
                api.connect();
            }
            fn on_connected(&mut self, api: &mut Api, flow: FlowId) {
                self.pumped.insert(flow.0);
                api.send(flow, 1 << 30);
            }
            fn on_sendable(&mut self, api: &mut Api, flow: FlowId) {
                api.send(flow, 1 << 30);
            }
        }
        let (hc, hs) = fast_hosts();
        let mut net = Network::new(
            hc,
            hs,
            PathConfig::internet(100, 20),
            Box::new(TwoBulk {
                pumped: Default::default(),
            }),
            Box::new(Sink::default()),
            31,
        );
        net.run_until(Nanos::from_secs(8));
        let d1 = net
            .conn_stats(SERVER, FlowId(1))
            .expect("f1")
            .bytes_delivered;
        let d2 = net
            .conn_stats(SERVER, FlowId(2))
            .expect("f2")
            .bytes_delivered;
        let ratio = d1.max(d2) as f64 / d1.min(d2).max(1) as f64;
        assert!(
            ratio < 2.0,
            "flows too unfair: {d1} vs {d2} (ratio {ratio:.2})"
        );
        // And together they saturate a good share of the bottleneck.
        let total_gbps = (d1 + d2) as f64 * 8.0 / 8.0 / 1e9;
        assert!(
            total_gbps > 0.05,
            "aggregate goodput {total_gbps:.3} Gb/s too low"
        );
    }

    #[test]
    fn clean_run_audits_clean() {
        // A lossy (Bernoulli) bulk transfer with the auditor forced on:
        // every invariant must hold and the ledger must balance.
        let (hc, hs) = fast_hosts();
        let mut path = PathConfig::internet(50, 20);
        path.loss = 0.02;
        let mut net = Network::new(
            hc,
            hs,
            path,
            Box::new(BulkSender::new(1_000_000)),
            Box::new(Sink::default()),
            40,
        );
        net.set_audit(true);
        net.run_to_idle();
        let rep = net.audit_report();
        assert!(rep.clean(), "violations: {:?}", rep.violations);
        assert!(rep.checks > 0);
    }

    #[test]
    fn faulted_run_recovers_and_audits_clean() {
        use netsim::FaultKind;
        // GE burst loss + reordering + duplication at once: TCP must
        // still deliver exactly, and no invariant may break.
        let (hc, hs) = fast_hosts();
        let total = 1_000_000;
        let mut net = Network::new(
            hc,
            hs,
            PathConfig::internet(50, 20),
            Box::new(BulkSender::new(total)),
            Box::new(Sink::default()),
            41,
        );
        let sched = FaultSchedule::new(0xFA)
            .push(FaultKind::GilbertElliott {
                p_good_to_bad: 0.01,
                p_bad_to_good: 0.3,
                loss_good: 0.0,
                loss_bad: 0.3,
            })
            .push(FaultKind::Reorder {
                prob: 0.05,
                max_extra: Nanos::from_millis(2),
            })
            .push(FaultKind::Duplicate { prob: 0.02 });
        net.set_faults(&sched);
        net.set_audit(true);
        net.run_to_idle();
        assert_eq!(
            net.conn_stats(SERVER, FlowId(1)).unwrap().bytes_delivered,
            total,
            "delivery must survive compound faults"
        );
        let stats = net.fault_stats().unwrap();
        assert!(stats.ge_drops > 0, "{stats:?}");
        assert!(stats.duplicates > 0, "{stats:?}");
        let rep = net.audit_report();
        assert!(rep.clean(), "violations: {:?}", rep.violations);
    }

    #[test]
    fn buffering_flap_stalls_then_completes() {
        use netsim::FaultKind;
        let (hc, hs) = fast_hosts();
        let total = 2_000_000;
        let mut net = Network::new(
            hc,
            hs,
            PathConfig::internet(50, 20),
            Box::new(BulkSender::new(total)),
            Box::new(Sink::default()),
            42,
        );
        let sched = FaultSchedule::new(7).push(FaultKind::LinkFlap {
            down_at: Nanos::from_millis(100),
            up_at: Nanos::from_millis(250),
            drop: false,
        });
        net.set_faults(&sched);
        net.set_audit(true);
        net.run_to_idle();
        assert_eq!(
            net.conn_stats(SERVER, FlowId(1)).unwrap().bytes_delivered,
            total
        );
        assert!(net.fault_stats().unwrap().flap_held > 0);
        let rep = net.audit_report();
        assert!(rep.clean(), "violations: {:?}", rep.violations);
    }

    #[test]
    fn hard_outage_forces_recovery() {
        use netsim::FaultKind;
        let (hc, hs) = fast_hosts();
        let total = 2_000_000;
        let mut net = Network::new(
            hc,
            hs,
            PathConfig::internet(50, 20),
            Box::new(BulkSender::new(total)),
            Box::new(Sink::default()),
            43,
        );
        let sched = FaultSchedule::new(9).push(FaultKind::LinkFlap {
            down_at: Nanos::from_millis(100),
            up_at: Nanos::from_millis(220),
            drop: true,
        });
        net.set_faults(&sched);
        net.set_audit(true);
        net.run_to_idle();
        assert_eq!(
            net.conn_stats(SERVER, FlowId(1)).unwrap().bytes_delivered,
            total,
            "transfer must complete after the outage"
        );
        assert!(net.fault_stats().unwrap().flap_drops > 0);
        let cs = net.conn_stats(CLIENT, FlowId(1)).unwrap();
        assert!(
            cs.fast_retransmits + cs.rtos > 0,
            "an outage must trigger loss recovery"
        );
        assert!(net.audit_report().clean());
    }

    #[test]
    fn mid_flow_mtu_drop_shrinks_packets() {
        use netsim::FaultKind;
        let (hc, hs) = fast_hosts();
        let total = 3_000_000;
        let mut net = Network::new(
            hc,
            hs,
            PathConfig::internet(50, 20),
            Box::new(BulkSender::new(total)),
            Box::new(Sink::default()),
            44,
        );
        let at = Nanos::from_millis(150);
        let sched = FaultSchedule::new(1).push(FaultKind::MtuDrop {
            at,
            new_mtu_ip: 1200,
        });
        net.set_faults(&sched);
        net.set_audit(true);
        net.run_to_idle();
        assert_eq!(
            net.conn_stats(SERVER, FlowId(1)).unwrap().bytes_delivered,
            total
        );
        assert_eq!(net.fault_stats().unwrap().mtu_changes, 1);
        // Segments queued before the change drain with the old size;
        // everything packetized well after it obeys the reduced MTU
        // (1200 IP + 14 Ethernet on the wire).
        let slack = Nanos::from_millis(200);
        let late: Vec<u32> = net
            .client_capture
            .records
            .iter()
            .filter(|r| {
                r.kind == PacketKind::TcpData && r.dir == Direction::Out && r.ts > at + slack
            })
            .map(|r| r.wire_len)
            .collect();
        assert!(!late.is_empty(), "transfer ended before the MTU change");
        assert!(
            late.iter().all(|&w| w <= 1214),
            "oversized post-change packet: {late:?}"
        );
        assert!(net.audit_report().clean());
    }

    #[test]
    fn auditor_flags_a_segment_released_before_its_pacing_time() {
        // Negative test: deliberately violate the pacing-release
        // invariant through the real dequeue path by pushing a segment
        // whose release time is in the future into the unpaced band.
        let (hc, hs) = fast_hosts();
        let mut net = Network::new(
            hc,
            hs,
            PathConfig::default(),
            Box::new(NullApp),
            Box::new(NullApp),
            45,
        );
        net.set_audit(true);
        net.start();
        let pkt = Packet::tcp_data(FlowId(9), 0, 0, 1000);
        let seg = SegDesc::new(FlowId(9), vec![pkt], Nanos::from_millis(5));
        net.hosts[CLIENT].qdisc.enqueue_prio(seg);
        net.qdisc_check(CLIENT); // departs at t=0, 5 ms early
        let rep = net.audit_report();
        assert!(!rep.clean());
        assert_eq!(
            rep.violations[0].invariant,
            netsim::Invariant::PacingRelease
        );
    }

    #[test]
    fn auditor_flags_departures_beyond_the_cc_grant() {
        // Negative test for the §4.2 safety rule: fabricate an output
        // batch far larger than the flow's congestion window and push it
        // through `apply`. The real stack clamps its emissions (see
        // `tcp::tests::shaper_cannot_grow_past_proposed`), so this
        // models a buggy shaper integration bypassing those clamps.
        struct Opener;
        impl App for Opener {
            fn on_start(&mut self, api: &mut Api) {
                api.connect();
            }
        }
        let (hc, hs) = fast_hosts();
        let mut net = Network::new(
            hc,
            hs,
            PathConfig::internet(50, 20),
            Box::new(Opener),
            Box::new(NullApp),
            46,
        );
        net.set_audit(true);
        net.run_to_idle(); // handshake completes, connection idle
        let flow = FlowId(1);
        let cwnd = match net.hosts[CLIENT].conns.get(&flow) {
            Some(Transport::Tcp(c)) => c.cwnd(),
            _ => panic!("tcp conn expected"),
        };
        let mss = 1448u64;
        let total = cwnd + 200_000; // far beyond grant + burst slop
        let npkts = total.div_ceil(mss);
        let pkts: Vec<Packet> = (0..npkts)
            .map(|i| Packet::tcp_data(flow, i * mss, 0, mss as u32))
            .collect();
        let seg = SegDesc::new(flow, pkts, net.now());
        net.apply(CLIENT, flow, vec![TcpAction::SendSeg(seg)]);
        let rep = net.audit_report();
        assert!(
            rep.violations
                .iter()
                .any(|v| v.invariant == netsim::Invariant::SafetyRule),
            "safety breach not flagged: {:?}",
            rep.violations
        );
    }

    #[test]
    fn app_timers_fire_in_order() {
        struct Timers {
            fired: Vec<u64>,
        }
        impl App for Timers {
            fn on_start(&mut self, api: &mut Api) {
                api.set_timer(Nanos::from_millis(5), 1);
                api.set_timer(Nanos::from_millis(1), 2);
                api.set_timer(Nanos::from_millis(3), 3);
            }
            fn on_timer(&mut self, _api: &mut Api, token: u64) {
                self.fired.push(token);
            }
        }
        let (hc, hs) = fast_hosts();
        let mut net = Network::new(
            hc,
            hs,
            PathConfig::default(),
            Box::new(Timers { fired: vec![] }),
            Box::new(NullApp),
            8,
        );
        net.run_to_idle();
        // We can't reach into the boxed app; assert via time instead.
        assert_eq!(net.now(), Nanos::from_millis(5));
    }
}
