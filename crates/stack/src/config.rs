//! Configuration for hosts, stacks and network paths.

use crate::cpu::CpuModel;
use netsim::Nanos;

/// Ethernet framing overhead per packet (bytes). `wire_len = ip_len + ETH`.
pub const ETH_OVERHEAD: u32 = 14;
/// IPv4 + TCP header (incl. 12 B timestamp option) per packet.
pub const IP_TCP_OVERHEAD: u32 = 52;
/// Minimum IP packet size we will emit for a data packet. RFC 879's
/// default MSS of 536 corresponds to a 576-byte IP packet; the paper's §3
/// chooses its splitting threshold so that split halves never go below the
/// minimum TCP MSS of 536 bytes.
pub const MIN_IP_PACKET: u32 = 588; // 536 payload + 52 headers

/// Which congestion controller a connection runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcKind {
    Reno,
    Cubic,
    Bbr,
}

/// Per-connection / per-stack tunables. Mirrors the knobs a kernel exposes
/// via sysctl and `setsockopt`.
#[derive(Debug, Clone)]
pub struct StackConfig {
    /// Path MTU as an IP packet size (default 1500, i.e. Ethernet).
    pub mtu_ip: u32,
    /// Congestion controller.
    pub cc: CcKind,
    /// Initial congestion window in segments (RFC 6928 default).
    pub init_cwnd_segs: u32,
    /// Send socket buffer in bytes.
    pub send_buf: u64,
    /// Receive window we advertise (bytes). The HTTPOS-style baseline
    /// shrinks this to force small sender bursts — at large cost (§2.3).
    pub recv_wnd: u64,
    /// Whether TSO/GSO is enabled (off = one packet per segment).
    pub tso: bool,
    /// Maximum TSO segment size in packets (Linux: 64 KB => ~44 packets
    /// with a 1448-byte MSS).
    pub tso_max_pkts: u32,
    /// Enable FQ pacing of data segments.
    pub pacing: bool,
    /// Pacing rate as a fraction of the CC-estimated rate during
    /// congestion avoidance (Linux default 120%; we use 1.2 as well).
    pub pacing_gain_ca: f64,
    /// TCP small queues: per-flow cap on bytes sitting in qdisc + NIC.
    pub tsq_limit: u64,
    /// Delayed-ACK: ACK every `delack_segs` full-sized segments...
    pub delack_segs: u32,
    /// ...or after this timeout, whichever first.
    pub delack_timeout: Nanos,
    /// Nagle's algorithm (off = TCP_NODELAY, the common case for web).
    pub nagle: bool,
    /// Minimum retransmission timeout (Linux: 200 ms).
    pub min_rto: Nanos,
    /// Initial RTO before any RTT sample (RFC 6298: 1 s).
    pub init_rto: Nanos,
}

impl StackConfig {
    /// MSS in payload bytes for the configured MTU.
    pub fn mss(&self) -> u32 {
        self.mtu_ip - IP_TCP_OVERHEAD
    }
    /// Wire length of a full-sized packet.
    pub fn full_wire(&self) -> u32 {
        self.mtu_ip + ETH_OVERHEAD
    }
}

impl Default for StackConfig {
    fn default() -> Self {
        StackConfig {
            mtu_ip: 1500,
            cc: CcKind::Cubic,
            init_cwnd_segs: 10,
            send_buf: 32 << 20,
            recv_wnd: 32 << 20,
            tso: true,
            tso_max_pkts: 44,
            pacing: true,
            pacing_gain_ca: 1.2,
            tsq_limit: 512 << 10,
            delack_segs: 2,
            delack_timeout: Nanos::from_millis(40),
            nagle: false,
            min_rto: Nanos::from_millis(200),
            init_rto: Nanos::from_secs(1),
        }
    }
}

/// A host: a CPU, a NIC line rate, and default stack settings for new
/// connections.
#[derive(Debug, Clone)]
pub struct HostConfig {
    /// NIC line rate in bits/s; TSO bursts serialize at this rate.
    pub nic_rate_bps: u64,
    pub cpu: CpuModel,
    pub stack: StackConfig,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            nic_rate_bps: 100_000_000_000,
            cpu: CpuModel::default(),
            stack: StackConfig::default(),
        }
    }
}

/// The network path between the two hosts (symmetric dumbbell).
#[derive(Debug, Clone)]
pub struct PathConfig {
    /// Bottleneck rate in each direction (bits/s).
    pub bottleneck_bps: u64,
    /// One-way propagation delay.
    pub one_way_delay: Nanos,
    /// Bottleneck queue capacity in bytes.
    pub queue_bytes: u64,
    /// Independent random loss probability applied at the bottleneck
    /// (in addition to overflow drops). 0.0 for the wired experiments.
    pub loss: f64,
}

impl PathConfig {
    /// The 100 Gb/s short-RTT lab path of Figure 3 (two servers,
    /// back-to-back 100 GbE).
    pub fn lab_100g() -> Self {
        PathConfig {
            bottleneck_bps: 100_000_000_000,
            one_way_delay: Nanos::from_micros(25),
            queue_bytes: 8 << 20,
            loss: 0.0,
        }
    }

    /// A residential-access-like Internet path, used when generating
    /// website traces (client behind tens of Mb/s, tens of ms RTT).
    pub fn internet(bottleneck_mbps: u64, rtt_ms: u64) -> Self {
        PathConfig {
            bottleneck_bps: bottleneck_mbps * 1_000_000,
            one_way_delay: Nanos::from_micros(rtt_ms * 500),
            queue_bytes: (bottleneck_mbps * 1_000_000 / 8) / 4, // ~250 ms of buffer
            loss: 0.0,
        }
    }

    pub fn rtt(&self) -> Nanos {
        self.one_way_delay * 2
    }
}

impl Default for PathConfig {
    fn default() -> Self {
        PathConfig::lab_100g()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mss_matches_ethernet_defaults() {
        let c = StackConfig::default();
        assert_eq!(c.mss(), 1448);
        assert_eq!(c.full_wire(), 1514);
    }

    #[test]
    fn min_packet_honours_rfc879_floor() {
        assert_eq!(MIN_IP_PACKET - IP_TCP_OVERHEAD, 536);
    }

    #[test]
    fn internet_path_shape() {
        let p = PathConfig::internet(50, 30);
        assert_eq!(p.bottleneck_bps, 50_000_000);
        assert_eq!(p.rtt(), Nanos::from_millis(30));
        assert!(p.queue_bytes > 0);
    }

    #[test]
    fn lab_path_is_100g() {
        let p = PathConfig::lab_100g();
        assert_eq!(p.bottleneck_bps, 100_000_000_000);
        assert_eq!(p.rtt(), Nanos::from_micros(50));
    }
}
