//! CUBIC congestion control (RFC 8312 style) — the Linux default, and the
//! controller used for the Figure 3 reproduction runs.

use super::{window_pacing_rate, AckInfo, CongestionControl};
use netsim::Nanos;

/// CUBIC constant C in (MSS, seconds) units.
const C: f64 = 0.4;
/// Multiplicative decrease factor.
const BETA: f64 = 0.7;

#[derive(Debug, Clone)]
pub struct Cubic {
    mss: u64,
    cwnd: u64,
    ssthresh: u64,
    /// Window size (bytes) just before the last reduction.
    w_max: f64,
    /// Epoch start of the current cubic growth phase.
    epoch_start: Option<Nanos>,
    /// K: time offset at which the cubic curve crosses w_max (seconds).
    k: f64,
    /// Reno-friendly window estimate (bytes).
    w_est: f64,
    /// Guard: at most one reduction per RTT-ish interval.
    in_recovery_until: Option<Nanos>,
    /// Last SRTT-ish sample for the friendliness term.
    last_rtt: Nanos,
    /// Smallest RTT seen (HyStart baseline).
    min_rtt: Option<Nanos>,
    /// Consecutive above-threshold samples (HyStart debounce: a single
    /// delayed-ACK-inflated sample must not end slow start).
    hystart_above: u32,
}

impl Cubic {
    pub fn new(mss: u32, init_cwnd_segs: u32) -> Self {
        Cubic {
            mss: mss as u64,
            cwnd: mss as u64 * init_cwnd_segs as u64,
            ssthresh: u64::MAX,
            w_max: 0.0,
            epoch_start: None,
            k: 0.0,
            w_est: 0.0,
            in_recovery_until: None,
            last_rtt: Nanos::from_millis(100),
            min_rtt: None,
            hystart_above: 0,
        }
    }

    fn segs(&self, bytes: u64) -> f64 {
        bytes as f64 / self.mss as f64
    }

    fn reduce(&mut self, now: Nanos) {
        self.w_max = self.cwnd as f64;
        self.cwnd = ((self.cwnd as f64 * BETA) as u64).max(2 * self.mss);
        self.ssthresh = self.cwnd;
        self.epoch_start = None;
        self.in_recovery_until = Some(now + self.last_rtt);
    }
}

impl CongestionControl for Cubic {
    fn cwnd(&self) -> u64 {
        self.cwnd
    }

    fn on_ack(&mut self, ack: &AckInfo) {
        if let Some(rtt) = ack.rtt {
            self.last_rtt = rtt;
            if self.min_rtt.is_none_or(|m| rtt < m) {
                self.min_rtt = Some(rtt);
            }
            // HyStart-lite (delay increase detection): leave slow start
            // before the queue overflows, as Linux CUBIC does. Require
            // several consecutive elevated samples so a stray
            // delayed-ACK-inflated measurement cannot end slow start.
            if self.in_slow_start() {
                if let Some(m) = self.min_rtt {
                    let thresh = m + (m / 8).max(Nanos::from_millis(4));
                    if rtt > thresh && self.cwnd > 16 * self.mss {
                        self.hystart_above += 1;
                        if self.hystart_above >= 4 {
                            self.ssthresh = self.cwnd;
                        }
                    } else {
                        self.hystart_above = 0;
                    }
                }
            }
        }
        if let Some(t) = self.in_recovery_until {
            if ack.now < t {
                return;
            }
            self.in_recovery_until = None;
        }
        if self.in_slow_start() {
            self.cwnd += ack.newly_acked.min(self.mss);
            if self.cwnd > self.ssthresh {
                self.cwnd = self.ssthresh;
            }
            return;
        }
        // Congestion avoidance: cubic window as a function of time since
        // the epoch started (RFC 8312 §4.1).
        let now = ack.now;
        if self.epoch_start.is_none() {
            self.epoch_start = Some(now);
            let w_max_segs = self.segs(self.w_max as u64);
            let cwnd_segs = self.segs(self.cwnd);
            self.k = if w_max_segs > cwnd_segs {
                ((w_max_segs - cwnd_segs) / C).cbrt()
            } else {
                0.0
            };
            self.w_est = self.cwnd as f64;
        }
        // A reordered ACK can carry a timestamp from before the epoch
        // started; clamp to t = 0 rather than underflowing.
        let t = now
            .saturating_sub(self.epoch_start.expect("epoch set above"))
            .as_secs_f64();
        let w_max_segs = self.segs(self.w_max as u64).max(self.segs(self.cwnd));
        let target_segs = C * (t - self.k).powi(3) + w_max_segs;
        let target = target_segs * self.mss as f64;

        // TCP-friendly region (RFC 8312 §4.2): the window Reno would have,
        // grown per-ack at alpha_cubic per cwnd of acked data.
        let alpha = 3.0 * (1.0 - BETA) / (1.0 + BETA);
        self.w_est += alpha * self.mss as f64 * ack.newly_acked as f64 / self.cwnd.max(1) as f64;
        let goal = target.max(self.w_est);

        if goal > self.cwnd as f64 {
            // Approach the target gradually: cwnd/(target-cwnd) acks per
            // MSS of growth, i.e. grow by (goal-cwnd)/cwnd per acked cwnd
            // (Linux's tcp_cubic update rule).
            let incr = (goal - self.cwnd as f64) * ack.newly_acked as f64 / self.cwnd.max(1) as f64;
            // Never grow faster than slow start would (safety clamp).
            self.cwnd += (incr.max(0.0) as u64).min(ack.newly_acked);
        }
    }

    fn on_loss(&mut self, now: Nanos, _inflight: u64) {
        if self.in_recovery_until.is_some_and(|t| now < t) {
            return;
        }
        netsim::tm_counter!("stack.cc.loss_events").inc();
        self.reduce(now);
    }

    fn on_rto(&mut self, now: Nanos) {
        netsim::tm_counter!("stack.cc.rto_events").inc();
        self.w_max = self.cwnd as f64;
        self.ssthresh = ((self.cwnd as f64 * BETA) as u64).max(2 * self.mss);
        self.cwnd = self.mss;
        self.epoch_start = None;
        self.in_recovery_until = None;
        let _ = now;
    }

    fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    fn pacing_rate_bps(&self, srtt: Option<Nanos>) -> Option<u64> {
        let srtt = srtt?;
        let gain = if self.in_slow_start() { 2.0 } else { 1.2 };
        Some(window_pacing_rate(self.cwnd, srtt, gain))
    }

    fn name(&self) -> &'static str {
        "cubic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u64 = 1448;

    fn ack_at(bytes: u64, now: Nanos) -> AckInfo {
        AckInfo {
            newly_acked: bytes,
            rtt: Some(Nanos::from_millis(20)),
            now,
            inflight: 0,
        }
    }

    #[test]
    fn starts_in_slow_start_and_grows() {
        let mut cc = Cubic::new(MSS as u32, 10);
        let w0 = cc.cwnd();
        for i in 0..10 {
            cc.on_ack(&ack_at(MSS, Nanos::from_millis(i)));
        }
        assert_eq!(cc.cwnd(), 2 * w0);
    }

    #[test]
    fn loss_multiplies_by_beta() {
        let mut cc = Cubic::new(MSS as u32, 100);
        let w = cc.cwnd();
        cc.on_loss(Nanos::from_millis(10), w);
        assert_eq!(cc.cwnd(), (w as f64 * BETA) as u64);
        assert!(!cc.in_slow_start());
    }

    #[test]
    fn cubic_regrows_toward_w_max() {
        let mut cc = Cubic::new(MSS as u32, 100);
        let w = cc.cwnd();
        cc.on_loss(Nanos::from_millis(10), w);
        let reduced = cc.cwnd();
        // Feed ACKs over simulated seconds; window should recover toward
        // (and eventually past) the pre-loss size.
        let mut now = Nanos::from_millis(50);
        for _ in 0..4000 {
            cc.on_ack(&ack_at(MSS, now));
            now += Nanos::from_millis(2);
        }
        assert!(
            cc.cwnd() > reduced + 10 * MSS,
            "cwnd did not regrow: {} vs {}",
            cc.cwnd(),
            reduced
        );
    }

    #[test]
    fn concave_then_convex_growth() {
        // W_max = 100 segs, beta = 0.7 => K = cbrt(30/0.4) ~ 4.2 s. The
        // curve is concave (decelerating) while approaching W_max around
        // t = K and convex (accelerating) afterwards.
        let mut cc = Cubic::new(MSS as u32, 100);
        cc.on_loss(Nanos::from_millis(10), cc.cwnd());
        let mut now = Nanos::from_millis(50);
        let mut deltas = Vec::new();
        let mut last = cc.cwnd();
        for _ in 0..60 {
            // One window of acked data per 0.2 s of simulated time.
            for _ in 0..100 {
                cc.on_ack(&ack_at(MSS, now));
                now += Nanos::from_millis(2);
            }
            deltas.push(cc.cwnd() as i64 - last as i64);
            last = cc.cwnd();
        }
        // Windows 19..22 straddle t ~ 4 s (the plateau at W_max);
        // windows 55..58 are deep in the convex region (~11 s).
        let plateau: i64 = deltas[19..22].iter().sum();
        let convex: i64 = deltas[55..58].iter().sum();
        assert!(
            convex > plateau * 2,
            "convex {convex} should dwarf plateau {plateau}"
        );
        // And the window did regrow past W_max by the end.
        assert!(
            cc.cwnd() > 100 * MSS,
            "cwnd {} never passed w_max",
            cc.cwnd()
        );
    }

    #[test]
    fn one_reduction_per_rtt() {
        let mut cc = Cubic::new(MSS as u32, 100);
        cc.on_loss(Nanos::from_millis(10), cc.cwnd());
        let w = cc.cwnd();
        cc.on_loss(Nanos::from_millis(11), w);
        assert_eq!(cc.cwnd(), w);
    }

    #[test]
    fn reordered_and_duplicated_acks_never_zero_or_wrap_cwnd() {
        // An ACK delivered late (carrying a timestamp before the current
        // congestion-avoidance epoch started) or processed twice must not
        // panic, zero the window, or wrap it. Regression: the cubic `t`
        // computation used a plain subtraction that underflowed when
        // `ack.now` predated `epoch_start`.
        let mut cc = Cubic::new(MSS as u32, 100);
        let initial = cc.cwnd();
        cc.on_loss(Nanos::from_millis(10), initial);
        // First post-recovery ACK starts the cubic epoch at t = 200 ms.
        cc.on_ack(&ack_at(MSS, Nanos::from_millis(200)));
        // A reordered ACK from before the epoch, then an exact duplicate,
        // then a duplicate loss signal from the same burst.
        cc.on_ack(&ack_at(MSS, Nanos::from_millis(150)));
        cc.on_ack(&ack_at(MSS, Nanos::from_millis(150)));
        cc.on_loss(Nanos::from_millis(150), cc.cwnd());
        for _ in 0..50 {
            cc.on_ack(&ack_at(MSS, Nanos::from_millis(150)));
        }
        assert!(cc.cwnd() >= 2 * MSS, "cwnd collapsed: {}", cc.cwnd());
        assert!(cc.cwnd() <= 4 * initial, "cwnd wrapped: {}", cc.cwnd());
    }

    #[test]
    fn rto_resets_to_one_mss() {
        let mut cc = Cubic::new(MSS as u32, 50);
        cc.on_rto(Nanos::from_millis(100));
        assert_eq!(cc.cwnd(), MSS);
    }
}
