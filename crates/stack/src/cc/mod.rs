//! Congestion control.
//!
//! The paper's Stob framework must coexist with the congestion controller:
//! obfuscation may reshape the packet sequence but must never make it
//! *more aggressive* than the CCA decided (§4.2), and §5.1 notes that some
//! CCAs (BBR, Copa) use pacing as a measurement instrument, so policies may
//! need to stand down in specific phases. To exercise those interactions we
//! implement three controllers behind one trait: Reno (the textbook
//! AIMD), CUBIC (the Linux default) and a BBR-lite (model-based, supplies
//! its own pacing rate).

pub mod bbr;
pub mod cubic;
pub mod reno;

use crate::config::CcKind;
use netsim::Nanos;

pub use bbr::Bbr;
pub use cubic::Cubic;
pub use reno::Reno;

/// Information handed to the CCA for each cumulative ACK processed.
#[derive(Debug, Clone, Copy)]
pub struct AckInfo {
    /// Bytes newly acknowledged by this ACK.
    pub newly_acked: u64,
    /// RTT sample, when the ACK timestamps an un-retransmitted segment.
    pub rtt: Option<Nanos>,
    pub now: Nanos,
    /// Bytes in flight after this ACK.
    pub inflight: u64,
}

/// A congestion-control algorithm. Window units are bytes.
pub trait CongestionControl {
    /// Current congestion window (bytes).
    fn cwnd(&self) -> u64;

    /// Process a cumulative ACK.
    fn on_ack(&mut self, ack: &AckInfo);

    /// Loss detected by duplicate ACKs (fast retransmit). `inflight` is
    /// bytes outstanding at detection time.
    fn on_loss(&mut self, now: Nanos, inflight: u64);

    /// Retransmission timeout fired.
    fn on_rto(&mut self, now: Nanos);

    /// Whether the algorithm is in its startup/slow-start phase.
    fn in_slow_start(&self) -> bool;

    /// Pacing rate in bits/s, if this CCA wants pacing. Window-based CCAs
    /// derive it from cwnd/SRTT scaled by a phase gain (as Linux's
    /// `sk_pacing_rate` does); rate-based CCAs (BBR) supply their model
    /// rate directly.
    fn pacing_rate_bps(&self, srtt: Option<Nanos>) -> Option<u64>;

    fn name(&self) -> &'static str;
}

/// Construct the configured CCA with the given MSS and initial window.
pub fn make_cc(kind: CcKind, mss: u32, init_cwnd_segs: u32) -> Box<dyn CongestionControl> {
    match kind {
        CcKind::Reno => Box::new(Reno::new(mss, init_cwnd_segs)),
        CcKind::Cubic => Box::new(Cubic::new(mss, init_cwnd_segs)),
        CcKind::Bbr => Box::new(Bbr::new(mss, init_cwnd_segs)),
    }
}

/// Window-based pacing rate: cwnd per SRTT, scaled by `gain`.
/// Returns bits/s.
pub(crate) fn window_pacing_rate(cwnd: u64, srtt: Nanos, gain: f64) -> u64 {
    if srtt.is_zero() {
        return u64::MAX;
    }
    let bytes_per_sec = cwnd as f64 / srtt.as_secs_f64();
    (bytes_per_sec * 8.0 * gain) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_each_kind() {
        for (kind, name) in [
            (CcKind::Reno, "reno"),
            (CcKind::Cubic, "cubic"),
            (CcKind::Bbr, "bbr"),
        ] {
            let cc = make_cc(kind, 1448, 10);
            assert_eq!(cc.name(), name);
            assert_eq!(cc.cwnd(), 10 * 1448);
            assert!(cc.in_slow_start());
        }
    }

    #[test]
    fn window_pacing_rate_math() {
        // 125000 bytes per 100 ms = 1.25 MB/s = 10 Mb/s, gain 1.0.
        let r = window_pacing_rate(125_000, Nanos::from_millis(100), 1.0);
        assert_eq!(r, 10_000_000);
        // Gain 2 doubles it.
        let r2 = window_pacing_rate(125_000, Nanos::from_millis(100), 2.0);
        assert_eq!(r2, 20_000_000);
        // Zero SRTT: unlimited.
        assert_eq!(window_pacing_rate(1, Nanos::ZERO, 1.0), u64::MAX);
    }
}
