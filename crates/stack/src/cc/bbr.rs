//! BBR-lite: a model-based controller with explicit pacing.
//!
//! BBR matters to this reproduction because §5.1 of the paper singles it
//! out: BBR *uses pacing as a sensing instrument* (ACK spacing reveals
//! bottleneck queueing), so a Stob policy that perturbs departure times
//! can corrupt its model. The `stob` crate's `CcaPhaseGuard` exists for
//! exactly this controller. We implement the structural skeleton of BBRv1:
//! startup/drain/probe-bandwidth/probe-RTT states, a windowed-max
//! bandwidth filter, a windowed-min RTT filter, and gain cycling.

use super::{AckInfo, CongestionControl};
use netsim::Nanos;

const STARTUP_GAIN: f64 = 2.885; // 2/ln(2)
const DRAIN_GAIN: f64 = 1.0 / 2.885;
const CWND_GAIN: f64 = 2.0;
/// ProbeBW gain cycle (8 phases of one min-RTT each).
const CYCLE: [f64; 8] = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
/// Bandwidth filter window, in gain-cycle phases.
const BW_WINDOW: usize = 10;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Startup,
    Drain,
    ProbeBw,
    ProbeRtt,
}

#[derive(Debug, Clone)]
pub struct Bbr {
    mss: u64,
    state: State,
    /// Windowed max of delivery-rate samples (bytes/sec) with insertion
    /// round tags.
    bw_samples: Vec<(u64, f64)>,
    round: u64,
    min_rtt: Option<Nanos>,
    min_rtt_stamp: Nanos,
    cycle_index: usize,
    cycle_stamp: Nanos,
    /// Bytes delivered in total (for rate samples).
    delivered: u64,
    last_sample_delivered: u64,
    last_sample_time: Nanos,
    full_bw: f64,
    full_bw_count: u32,
    probe_rtt_done: Option<Nanos>,
    init_cwnd: u64,
}

impl Bbr {
    pub fn new(mss: u32, init_cwnd_segs: u32) -> Self {
        Bbr {
            mss: mss as u64,
            state: State::Startup,
            bw_samples: Vec::new(),
            round: 0,
            min_rtt: None,
            min_rtt_stamp: Nanos::ZERO,
            cycle_index: 0,
            cycle_stamp: Nanos::ZERO,
            delivered: 0,
            last_sample_delivered: 0,
            last_sample_time: Nanos::ZERO,
            full_bw: 0.0,
            full_bw_count: 0,
            probe_rtt_done: None,
            init_cwnd: mss as u64 * init_cwnd_segs as u64,
        }
    }

    /// Max filtered bandwidth estimate, bytes/sec.
    pub fn btl_bw(&self) -> f64 {
        self.bw_samples.iter().map(|&(_, b)| b).fold(0.0, f64::max)
    }

    fn pacing_gain(&self) -> f64 {
        match self.state {
            State::Startup => STARTUP_GAIN,
            State::Drain => DRAIN_GAIN,
            State::ProbeBw => CYCLE[self.cycle_index],
            State::ProbeRtt => 1.0,
        }
    }

    fn push_bw_sample(&mut self, bw: f64) {
        self.bw_samples.push((self.round, bw));
        let min_round = self.round.saturating_sub(BW_WINDOW as u64);
        self.bw_samples.retain(|&(r, _)| r >= min_round);
    }

    fn bdp(&self) -> u64 {
        match self.min_rtt {
            Some(rtt) => (self.btl_bw() * rtt.as_secs_f64()) as u64,
            None => self.init_cwnd,
        }
    }

    fn check_full_pipe(&mut self) {
        let bw = self.btl_bw();
        if bw > self.full_bw * 1.25 {
            self.full_bw = bw;
            self.full_bw_count = 0;
        } else {
            self.full_bw_count += 1;
        }
    }
}

impl CongestionControl for Bbr {
    fn cwnd(&self) -> u64 {
        match self.state {
            State::ProbeRtt => (4 * self.mss).max(self.init_cwnd / 2),
            _ => {
                if self.min_rtt.is_none() || self.btl_bw() <= 0.0 {
                    return self.init_cwnd; // no model yet: RFC 6928 initial window
                }
                ((self.bdp() as f64 * CWND_GAIN) as u64).max(4 * self.mss)
            }
        }
    }

    fn on_ack(&mut self, ack: &AckInfo) {
        self.delivered += ack.newly_acked;
        // Delivery-rate sample over the interval since the previous ACK.
        if ack.now > self.last_sample_time {
            let dt = (ack.now - self.last_sample_time).as_secs_f64();
            let bytes = self.delivered - self.last_sample_delivered;
            if dt > 0.0 && bytes > 0 {
                self.push_bw_sample(bytes as f64 / dt);
            }
            self.last_sample_time = ack.now;
            self.last_sample_delivered = self.delivered;
            self.round += 1;
        }
        // Min-RTT filter with a 10 s window.
        if let Some(rtt) = ack.rtt {
            let expired = ack.now.saturating_sub(self.min_rtt_stamp) > Nanos::from_secs(10);
            if expired || self.min_rtt.is_none_or(|m| rtt <= m) {
                self.min_rtt = Some(rtt);
                self.min_rtt_stamp = ack.now;
            } else if expired && self.state != State::ProbeRtt {
                self.state = State::ProbeRtt;
                self.probe_rtt_done = Some(ack.now + Nanos::from_millis(200));
            }
        }
        match self.state {
            State::Startup => {
                self.check_full_pipe();
                if self.full_bw_count >= 3 {
                    self.state = State::Drain;
                }
            }
            State::Drain => {
                if ack.inflight <= self.bdp() {
                    self.state = State::ProbeBw;
                    self.cycle_stamp = ack.now;
                }
            }
            State::ProbeBw => {
                let phase_len = self.min_rtt.unwrap_or(Nanos::from_millis(10));
                if ack.now.saturating_sub(self.cycle_stamp) > phase_len {
                    self.cycle_index = (self.cycle_index + 1) % CYCLE.len();
                    self.cycle_stamp = ack.now;
                }
            }
            State::ProbeRtt => {
                if self.probe_rtt_done.is_some_and(|t| ack.now >= t) {
                    self.probe_rtt_done = None;
                    self.state = State::ProbeBw;
                    self.cycle_stamp = ack.now;
                }
            }
        }
    }

    fn on_loss(&mut self, _now: Nanos, _inflight: u64) {
        // BBRv1 famously ignores isolated loss; the model absorbs it.
        netsim::tm_counter!("stack.cc.loss_events").inc();
    }

    fn on_rto(&mut self, _now: Nanos) {
        // Severe signal: restart the model conservatively.
        netsim::tm_counter!("stack.cc.rto_events").inc();
        self.bw_samples.clear();
        self.full_bw = 0.0;
        self.full_bw_count = 0;
        self.state = State::Startup;
    }

    fn in_slow_start(&self) -> bool {
        self.state == State::Startup
    }

    fn pacing_rate_bps(&self, _srtt: Option<Nanos>) -> Option<u64> {
        let bw = self.btl_bw();
        if bw <= 0.0 {
            // No samples yet: pace the initial window over a guessed RTT.
            return Some(u64::MAX);
        }
        Some((bw * 8.0 * self.pacing_gain()) as u64)
    }

    fn name(&self) -> &'static str {
        "bbr"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u64 = 1448;

    fn feed(cc: &mut Bbr, n: usize, bytes: u64, dt: Nanos, rtt: Nanos, start: Nanos) -> Nanos {
        let mut now = start;
        for _ in 0..n {
            now += dt;
            cc.on_ack(&AckInfo {
                newly_acked: bytes,
                rtt: Some(rtt),
                now,
                inflight: 10 * MSS,
            });
        }
        now
    }

    #[test]
    fn startup_uses_high_gain() {
        let cc = Bbr::new(MSS as u32, 10);
        assert!(cc.in_slow_start());
        // No samples yet: unlimited pacing.
        assert_eq!(cc.pacing_rate_bps(None), Some(u64::MAX));
    }

    #[test]
    fn bandwidth_filter_tracks_delivery_rate() {
        let mut cc = Bbr::new(MSS as u32, 10);
        // 1448 bytes per 1 ms = 1.448 MB/s.
        feed(
            &mut cc,
            50,
            MSS,
            Nanos::from_millis(1),
            Nanos::from_millis(10),
            Nanos::ZERO,
        );
        let bw = cc.btl_bw();
        assert!((1.3e6..1.6e6).contains(&bw), "filtered bw {bw} bytes/s");
    }

    #[test]
    fn exits_startup_when_bandwidth_plateaus() {
        let mut cc = Bbr::new(MSS as u32, 10);
        let now = feed(
            &mut cc,
            200,
            MSS,
            Nanos::from_millis(1),
            Nanos::from_millis(10),
            Nanos::ZERO,
        );
        assert!(!cc.in_slow_start(), "still in startup after plateau");
        // And eventually cycles gains in ProbeBW.
        feed(
            &mut cc,
            100,
            MSS,
            Nanos::from_millis(1),
            Nanos::from_millis(10),
            now,
        );
        let r = cc.pacing_rate_bps(None).unwrap();
        assert!(r < u64::MAX);
    }

    #[test]
    fn cwnd_is_gain_times_bdp() {
        let mut cc = Bbr::new(MSS as u32, 10);
        feed(
            &mut cc,
            100,
            MSS,
            Nanos::from_millis(1),
            Nanos::from_millis(10),
            Nanos::ZERO,
        );
        let bdp = (cc.btl_bw() * 0.010) as u64;
        let cwnd = cc.cwnd();
        assert!(
            cwnd >= (bdp as f64 * 1.8) as u64 && cwnd <= (bdp as f64 * 2.3) as u64 + 4 * MSS,
            "cwnd {cwnd} vs bdp {bdp}"
        );
    }

    #[test]
    fn reordered_and_duplicated_acks_never_zero_or_wrap_cwnd() {
        // Duplicated ACKs (same timestamp replayed) and reordered ACKs
        // (timestamps moving backwards) must not corrupt the delivery-rate
        // model: cwnd stays at least the 4-MSS floor and never wraps.
        let mut cc = Bbr::new(MSS as u32, 10);
        let now = feed(
            &mut cc,
            100,
            MSS,
            Nanos::from_millis(1),
            Nanos::from_millis(10),
            Nanos::ZERO,
        );
        let modeled = cc.cwnd();
        let replay = |t: Nanos| AckInfo {
            newly_acked: MSS,
            rtt: Some(Nanos::from_millis(10)),
            now: t,
            inflight: 10 * MSS,
        };
        for _ in 0..20 {
            cc.on_ack(&replay(now)); // exact duplicates
            cc.on_ack(&replay(now.saturating_sub(Nanos::from_millis(5)))); // reordered
            cc.on_loss(now, 10 * MSS); // duplicate loss signals from one burst
        }
        let cwnd = cc.cwnd();
        assert!(cwnd >= 4 * MSS, "cwnd collapsed: {cwnd}");
        assert!(
            cwnd <= 4 * modeled.max(cc.init_cwnd),
            "cwnd wrapped: {cwnd}"
        );
    }

    #[test]
    fn loss_is_ignored_but_rto_resets() {
        let mut cc = Bbr::new(MSS as u32, 10);
        feed(
            &mut cc,
            100,
            MSS,
            Nanos::from_millis(1),
            Nanos::from_millis(10),
            Nanos::ZERO,
        );
        let before = cc.btl_bw();
        cc.on_loss(Nanos::from_millis(200), 5 * MSS);
        assert_eq!(cc.btl_bw(), before);
        cc.on_rto(Nanos::from_millis(300));
        assert_eq!(cc.btl_bw(), 0.0);
        assert!(cc.in_slow_start());
    }
}
