//! TCP Reno/NewReno congestion control (RFC 5681 style, byte-counting).

use super::{window_pacing_rate, AckInfo, CongestionControl};
use netsim::Nanos;

#[derive(Debug, Clone)]
pub struct Reno {
    mss: u64,
    cwnd: u64,
    ssthresh: u64,
    /// Accumulated acked bytes toward the next +1 MSS in CA.
    ca_acc: u64,
    in_recovery_until: Option<Nanos>,
}

impl Reno {
    pub fn new(mss: u32, init_cwnd_segs: u32) -> Self {
        Reno {
            mss: mss as u64,
            cwnd: mss as u64 * init_cwnd_segs as u64,
            ssthresh: u64::MAX,
            ca_acc: 0,
            in_recovery_until: None,
        }
    }
}

impl CongestionControl for Reno {
    fn cwnd(&self) -> u64 {
        self.cwnd
    }

    fn on_ack(&mut self, ack: &AckInfo) {
        if let Some(t) = self.in_recovery_until {
            if ack.now < t {
                return; // one window-reduction per RTT of loss
            }
            self.in_recovery_until = None;
        }
        if self.in_slow_start() {
            // Slow start: cwnd grows by bytes acked (ABC, L=1).
            self.cwnd += ack.newly_acked.min(self.mss);
            if self.cwnd > self.ssthresh {
                self.cwnd = self.ssthresh;
            }
        } else {
            // Congestion avoidance: +1 MSS per cwnd of acked bytes.
            self.ca_acc += ack.newly_acked;
            while self.ca_acc >= self.cwnd {
                self.ca_acc -= self.cwnd;
                self.cwnd += self.mss;
            }
        }
    }

    fn on_loss(&mut self, now: Nanos, inflight: u64) {
        if self.in_recovery_until.is_some_and(|t| now < t) {
            return;
        }
        netsim::tm_counter!("stack.cc.loss_events").inc();
        let base = inflight.max(self.cwnd / 2).max(2 * self.mss);
        self.ssthresh = (base / 2).max(2 * self.mss);
        self.cwnd = self.ssthresh;
        self.ca_acc = 0;
        // Suppress further reductions for roughly one RTT; we use a fixed
        // guard interval since Reno itself does not track SRTT.
        self.in_recovery_until = Some(now + Nanos::from_millis(10));
    }

    fn on_rto(&mut self, _now: Nanos) {
        netsim::tm_counter!("stack.cc.rto_events").inc();
        self.ssthresh = (self.cwnd / 2).max(2 * self.mss);
        self.cwnd = self.mss;
        self.ca_acc = 0;
        self.in_recovery_until = None;
    }

    fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    fn pacing_rate_bps(&self, srtt: Option<Nanos>) -> Option<u64> {
        let srtt = srtt?;
        let gain = if self.in_slow_start() { 2.0 } else { 1.2 };
        Some(window_pacing_rate(self.cwnd, srtt, gain))
    }

    fn name(&self) -> &'static str {
        "reno"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u64 = 1448;

    fn ack(bytes: u64, now_ms: u64) -> AckInfo {
        AckInfo {
            newly_acked: bytes,
            rtt: Some(Nanos::from_millis(20)),
            now: Nanos::from_millis(now_ms),
            inflight: 0,
        }
    }

    #[test]
    fn slow_start_doubles_per_window() {
        let mut cc = Reno::new(MSS as u32, 10);
        let start = cc.cwnd();
        // Ack a full window in MSS chunks: cwnd should double.
        for i in 0..10 {
            cc.on_ack(&ack(MSS, i));
        }
        assert_eq!(cc.cwnd(), 2 * start);
        assert!(cc.in_slow_start());
    }

    #[test]
    fn loss_halves_and_exits_slow_start() {
        let mut cc = Reno::new(MSS as u32, 10);
        let inflight = cc.cwnd();
        cc.on_loss(Nanos::from_millis(100), inflight);
        assert_eq!(cc.cwnd(), inflight / 2);
        assert!(!cc.in_slow_start());
    }

    #[test]
    fn congestion_avoidance_linear_growth() {
        let mut cc = Reno::new(MSS as u32, 10);
        cc.on_loss(Nanos::from_millis(0), 20 * MSS);
        let w = cc.cwnd();
        // Ack exactly one window after the recovery guard passed.
        let mut acked = 0;
        let mut t = 100;
        while acked < w {
            cc.on_ack(&ack(MSS, t));
            acked += MSS;
            t += 1;
        }
        assert_eq!(cc.cwnd(), w + MSS);
    }

    #[test]
    fn at_most_one_reduction_per_guard_interval() {
        let mut cc = Reno::new(MSS as u32, 100);
        cc.on_loss(Nanos::from_millis(50), 100 * MSS);
        let after_first = cc.cwnd();
        cc.on_loss(Nanos::from_millis(51), 100 * MSS);
        assert_eq!(cc.cwnd(), after_first);
        cc.on_loss(Nanos::from_millis(80), after_first);
        assert!(cc.cwnd() < after_first);
    }

    #[test]
    fn rto_collapses_to_one_mss() {
        let mut cc = Reno::new(MSS as u32, 10);
        cc.on_rto(Nanos::from_millis(500));
        assert_eq!(cc.cwnd(), MSS);
        assert!(cc.in_slow_start()); // cwnd < ssthresh
    }

    #[test]
    fn pacing_rate_needs_srtt() {
        let cc = Reno::new(MSS as u32, 10);
        assert!(cc.pacing_rate_bps(None).is_none());
        let r = cc.pacing_rate_bps(Some(Nanos::from_millis(10))).unwrap();
        // 14480 bytes / 10 ms * 8 * 2.0 (slow-start gain) ~ 23.2 Mb/s.
        assert!((23_000_000..24_000_000).contains(&r), "{r}");
    }

    #[test]
    fn floor_of_two_mss_after_loss() {
        let mut cc = Reno::new(MSS as u32, 2);
        cc.on_loss(Nanos::from_millis(1), MSS);
        assert_eq!(cc.cwnd(), 2 * MSS);
    }
}
