//! The transport-agnostic egress pipeline — one shaping substrate that
//! every transport plugs into.
//!
//! §4.2's thesis is that Stob's hooks — TSO sizing, packet sizing,
//! pacing delay, and the "never more aggressive than the CCA" safety
//! rule — are properties of the *stack*, not of any one transport.
//! [`EgressPipeline`] is that claim made concrete: it owns the shaper,
//! the pacing clock, the CPU-cost charge, and the tracer hookup, and it
//! applies the canonical stage order for every transport ([`TcpConn`](crate::tcp::TcpConn)
//! and [`QuicConn`](crate::quic::QuicConn) both delegate here; a third transport adds zero new
//! shaping code):
//!
//! ```text
//!  transport proposal (CC autosize / GSO batch)
//!        │
//!        ▼
//!  ① segment-size decision ──── EgressPipeline::tso_autosize
//!        │
//!        ▼
//!  ② TSO/GSO resegment ──────── EgressPipeline::segment_pkts
//!        │                      (shaper hook, clamped to [1, proposed])
//!        ▼
//!  ③ per-packet resize ──────── EgressPipeline::packet_ip_size
//!        │                      (shaper hook, clamped to [floor, ceil])
//!        ▼
//!  ④ pacing-delay gate ──────── EgressPipeline::pace_segment
//!        │                      (CPU charge → pacing clock → extra delay)
//!        ▼
//!  ⑤ safety clamp ───────────── departures only ever move *later*;
//!        │                      sizes never exceed the CC proposal
//!        ▼
//!  ⑥ telemetry / trace emission (legacy + `stack.egress.*` instruments)
//! ```
//!
//! The safety clamp (stage ⑤) is structural: `segment_pkts` clips to the
//! CC's proposed burst, `packet_ip_size` clips to the caller's bounds,
//! and `pace_segment` computes `eligible = max(pacing, now, cpu) +
//! extra`, so a shaper can only ever shrink or delay — never grow or
//! hasten — what the congestion controller granted. `Network::apply`
//! additionally audits each emitted batch against the CC grant (the
//! §4.2 runtime check in `netsim::audit`).
//!
//! # Example: a custom transport on the shared pipeline
//!
//! [`TransportCore`] is the full contract a transport owes the driver.
//! The minimal implementation below is a fire-and-forget datagram sender
//! that emits fixed-size 600-byte datagrams — no ACK clock, no timers —
//! yet still flows through the same pipeline (and therefore obeys any
//! installed shaper) and is driven end-to-end through [`Network`](crate::net::Network):
//!
//! ```
//! use netsim::{FlowId, Nanos, Packet, PacketKind};
//! use stack::egress::{EgressLabels, EgressPipeline, FlowStats, TransportCore};
//! use stack::qdisc::SegDesc;
//! use stack::shaper::ShapeCtx;
//! use stack::tcp::TcpAction;
//! use stack::{Api, App, Cpu, CpuModel, HostConfig, Network, PathConfig, CLIENT};
//!
//! /// Wire size of every datagram this sender emits (IP bytes).
//! const DGRAM_IP: u32 = 600;
//! /// Header share of each datagram (UDP 8 + IP 20 + app header 18).
//! const HDR: u32 = 46;
//!
//! struct FixedSender {
//!     flow: FlowId,
//!     egress: EgressPipeline,
//!     queued: u64,
//!     sent_pkts: u64,
//!     sent_bytes: u64,
//! }
//!
//! impl FixedSender {
//!     fn new(flow: FlowId) -> Self {
//!         FixedSender {
//!             flow,
//!             egress: EgressPipeline::new(EgressLabels::QUIC),
//!             queued: 0,
//!             sent_pkts: 0,
//!             sent_bytes: 0,
//!         }
//!     }
//!     fn ctx(&self, now: Nanos) -> ShapeCtx {
//!         ShapeCtx {
//!             flow: self.flow,
//!             now,
//!             cwnd: u64::MAX,          // no congestion controller
//!             pacing_rate_bps: None,   // and no pacing
//!             in_slow_start: false,
//!             bytes_sent: self.sent_bytes,
//!             pkts_sent: self.sent_pkts,
//!             segs_sent: self.sent_pkts,
//!             mtu_ip: DGRAM_IP,
//!             mss: DGRAM_IP - HDR,
//!         }
//!     }
//! }
//!
//! impl TransportCore for FixedSender {
//!     fn input(&mut self, _pkt: &Packet, _now: Nanos, _cpu: &mut Cpu) -> Vec<TcpAction> {
//!         Vec::new() // fire and forget: nothing comes back
//!     }
//!     fn output(&mut self, now: Nanos, cpu: &mut Cpu) -> Vec<TcpAction> {
//!         let mut acts = Vec::new();
//!         while self.queued >= u64::from(DGRAM_IP - HDR) {
//!             let ctx = self.ctx(now);
//!             // One datagram per segment; the shaper may still shrink it.
//!             let n = self.egress.segment_pkts(&ctx, 1);
//!             let mut pkts = Vec::new();
//!             for i in 0..n {
//!                 let ip = self.egress.packet_ip_size(&ctx, i, DGRAM_IP, HDR + 1, DGRAM_IP);
//!                 let payload = ip - HDR;
//!                 let mut p = Packet::tcp_data(self.flow, self.sent_bytes, 0, payload);
//!                 p.kind = PacketKind::QuicData;
//!                 p.wire_len = ip + 14; // + Ethernet
//!                 self.queued -= u64::from(payload);
//!                 self.sent_bytes += u64::from(payload);
//!                 self.sent_pkts += 1;
//!                 pkts.push(p);
//!             }
//!             let wire: u64 = pkts.iter().map(|p| u64::from(p.wire_len)).sum();
//!             let payload: u64 = pkts.iter().map(|p| u64::from(p.payload)).sum();
//!             let npkts = pkts.len() as u32;
//!             let paced = self.egress.pace_segment(&ctx, now, cpu, payload, npkts, wire, false);
//!             acts.push(TcpAction::SendSeg(SegDesc::new(self.flow, pkts, paced.eligible)));
//!         }
//!         acts
//!     }
//!     fn write(&mut self, len: u64) -> u64 {
//!         self.queued += len;
//!         len
//!     }
//!     fn set_shaper(&mut self, shaper: stack::shaper::BoxShaper) {
//!         self.egress.set_shaper(shaper);
//!     }
//!     fn set_tracer(&mut self, tracer: netsim::telemetry::Tracer) {
//!         self.egress.set_tracer(tracer);
//!     }
//!     fn cwnd(&self) -> u64 {
//!         u64::MAX
//!     }
//!     fn outstanding(&self) -> u64 {
//!         0
//!     }
//!     fn pacing_rate_bps(&self) -> Option<u64> {
//!         None
//!     }
//!     fn mtu_ip(&self) -> u32 {
//!         DGRAM_IP
//!     }
//!     fn flow_stats(&self) -> FlowStats {
//!         FlowStats {
//!             pkts_sent: self.sent_pkts,
//!             segs_sent: self.sent_pkts,
//!             shaped_segs: self.egress.shaped_segs(),
//!             ..FlowStats::default()
//!         }
//!     }
//! }
//!
//! struct SendOnce;
//! impl App for SendOnce {
//!     fn on_start(&mut self, api: &mut Api) {
//!         let flow = api.connect_custom(|flow| Box::new(FixedSender::new(flow)));
//!         api.send(flow, 5 * u64::from(DGRAM_IP - HDR));
//!     }
//! }
//!
//! let h = HostConfig { cpu: CpuModel::infinitely_fast(), ..HostConfig::default() };
//! let mut net = Network::new(
//!     h.clone(),
//!     h,
//!     PathConfig::internet(50, 10),
//!     Box::new(SendOnce),
//!     Box::new(stack::apps::NullApp),
//!     1,
//! );
//! net.run_to_idle();
//!
//! // Five fixed-size datagrams crossed the client vantage point...
//! let data: Vec<_> = net
//!     .client_capture
//!     .records
//!     .iter()
//!     .filter(|r| r.kind == PacketKind::QuicData)
//!     .collect();
//! assert_eq!(data.len(), 5);
//! assert!(data.iter().all(|r| r.wire_len == DGRAM_IP + 14));
//! // ...and the unified stats accessor sees the custom transport.
//! let fs = net.flow_stats(CLIENT, FlowId(1)).unwrap();
//! assert_eq!(fs.pkts_sent, 5);
//! ```
#![deny(missing_docs)]

use crate::cpu::Cpu;
use crate::shaper::{BoxShaper, NoopShaper, ShapeCtx};
use crate::tcp::{TcpAction, TimerKind};
use netsim::telemetry::{self, Counter, Histo, Tracer};
use netsim::{Nanos, Packet};

/// Per-transport instrument/trace naming for the shared pipeline.
///
/// The pipeline emits every decision twice: once under the transport's
/// legacy instrument name (so existing dashboards and docs keep working)
/// and once under the shared `stack.egress.*` family (so cross-transport
/// totals need no per-transport summation). Trace events carry `layer`
/// so a mixed TCP+QUIC trace stays attributable.
#[derive(Debug, Clone, Copy)]
pub struct EgressLabels {
    /// Trace `layer` tag ("tcp", "quic", ...).
    pub layer: &'static str,
    /// Trace event name for stage-② resegmenting ("tso-pkts"/"gso-pkts").
    pub reseg_event: &'static str,
    /// Legacy counter bumped when the shaper shrinks a segment.
    pub reseg_counter: &'static str,
    /// Legacy counter bumped when the shaper resizes a packet.
    pub resize_counter: &'static str,
    /// Legacy histogram of stage-④ extra delays (sim-ns).
    pub delay_histo: &'static str,
    /// Legacy counter bumped per sized retransmission, if the transport
    /// routes retransmissions through [`EgressPipeline::size_retransmit`].
    pub retransmit_counter: Option<&'static str>,
}

impl EgressLabels {
    /// Labels for the TCP transport.
    pub const TCP: EgressLabels = EgressLabels {
        layer: "tcp",
        reseg_event: "tso-pkts",
        reseg_counter: "stack.tcp.tso_resegmented",
        resize_counter: "stack.tcp.pkts_resized",
        delay_histo: "stack.tcp.shaper_extra_delay_ns",
        retransmit_counter: Some("stack.tcp.retransmits"),
    };

    /// Labels for the QUIC transport.
    pub const QUIC: EgressLabels = EgressLabels {
        layer: "quic",
        reseg_event: "gso-pkts",
        reseg_counter: "stack.quic.gso_resegmented",
        resize_counter: "stack.quic.pkts_resized",
        delay_histo: "stack.quic.shaper_extra_delay_ns",
        retransmit_counter: None,
    };

    /// Labels for trace replay: the stack-placement defense backend
    /// (`stob::defense::enforce_flow`) drives a pipeline over recorded
    /// packet timestamps instead of live transport state.
    pub const REPLAY: EgressLabels = EgressLabels {
        layer: "replay",
        reseg_event: "replay-pkts",
        reseg_counter: "stack.replay.resegmented",
        resize_counter: "stack.replay.pkts_resized",
        delay_histo: "stack.replay.extra_delay_ns",
        retransmit_counter: None,
    };

    /// Labels for the multipath transport (`stack::mux`): sequenced
    /// datagrams split across several provisioned pipes, each leg an
    /// independent path with its own fault schedule.
    pub const MUX: EgressLabels = EgressLabels {
        layer: "mux",
        reseg_event: "mux-pkts",
        reseg_counter: "stack.mux.resegmented",
        resize_counter: "stack.mux.pkts_resized",
        delay_histo: "stack.mux.extra_delay_ns",
        retransmit_counter: Some("stack.mux.retransmits"),
    };

    /// Labels for the fleet engine (`stob::fleet`): many concurrent
    /// defended flows each drive their own pipeline, interleaved on a
    /// per-shard timer wheel instead of live transport state.
    pub const FLEET: EgressLabels = EgressLabels {
        layer: "fleet",
        reseg_event: "fleet-pkts",
        reseg_counter: "stack.fleet.resegmented",
        resize_counter: "stack.fleet.pkts_resized",
        delay_histo: "stack.fleet.extra_delay_ns",
        retransmit_counter: None,
    };
}

/// A counter handle resolved from the registry on first use, so merely
/// constructing a pipeline registers nothing.
struct LazyCounter {
    name: &'static str,
    h: Option<&'static Counter>,
}

impl LazyCounter {
    fn new(name: &'static str) -> Self {
        LazyCounter { name, h: None }
    }
    fn get(&mut self) -> &'static Counter {
        let name = self.name;
        self.h.get_or_insert_with(|| telemetry::counter(name))
    }
}

/// Histogram twin of [`LazyCounter`].
struct LazyHisto {
    name: &'static str,
    h: Option<&'static Histo>,
}

impl LazyHisto {
    fn new(name: &'static str) -> Self {
        LazyHisto { name, h: None }
    }
    fn get(&mut self) -> &'static Histo {
        let name = self.name;
        self.h.get_or_insert_with(|| telemetry::histo(name))
    }
}

/// Outcome of the pacing-delay gate for one segment.
#[derive(Debug, Clone, Copy)]
pub struct PacedSegment {
    /// Earliest departure time: `max(pacing clock, now, CPU completion)`
    /// plus the shaper's extra delay.
    pub eligible: Nanos,
    /// Whether any pipeline stage altered this segment (resegment,
    /// resize, or a non-zero extra delay).
    pub shaped: bool,
}

/// The shared egress pipeline: shaper + pacing clock + CPU charge +
/// tracer, applied in the canonical stage order (see the module docs).
///
/// One pipeline instance belongs to one connection ([`TcpConn`](crate::tcp::TcpConn),
/// [`QuicConn`](crate::quic::QuicConn), or any custom [`TransportCore`]); the pacing clock it
/// owns is the per-flow clock Linux keeps in `sk_pacing_rate`-driven
/// FQ scheduling.
pub struct EgressPipeline {
    shaper: BoxShaper,
    /// Earliest time the pacing clock allows the next segment to leave.
    pacing_next: Nanos,
    tracer: Option<Tracer>,
    labels: EgressLabels,
    shaped_segs: u64,
    // Legacy (per-transport) instruments.
    reseg_counter: LazyCounter,
    resize_counter: LazyCounter,
    delay_histo: LazyHisto,
    retransmit_counter: Option<LazyCounter>,
    // Shared stack.egress.* family.
    eg_segments: LazyCounter,
    eg_reseg: LazyCounter,
    eg_resize: LazyCounter,
    eg_retransmits: LazyCounter,
    eg_delay: LazyHisto,
    eg_replayed: LazyCounter,
}

impl EgressPipeline {
    /// A pipeline with the identity shaper and a zeroed pacing clock.
    pub fn new(labels: EgressLabels) -> Self {
        EgressPipeline {
            shaper: Box::new(NoopShaper),
            pacing_next: Nanos::ZERO,
            tracer: None,
            shaped_segs: 0,
            reseg_counter: LazyCounter::new(labels.reseg_counter),
            resize_counter: LazyCounter::new(labels.resize_counter),
            delay_histo: LazyHisto::new(labels.delay_histo),
            retransmit_counter: labels.retransmit_counter.map(LazyCounter::new),
            eg_segments: LazyCounter::new("stack.egress.segments"),
            eg_reseg: LazyCounter::new("stack.egress.resegmented"),
            eg_resize: LazyCounter::new("stack.egress.pkts_resized"),
            eg_retransmits: LazyCounter::new("stack.egress.retransmits"),
            eg_delay: LazyHisto::new("stack.egress.shaper_extra_delay_ns"),
            eg_replayed: LazyCounter::new("stack.replay.pkts"),
            labels,
        }
    }

    /// Replace the shaper (the `setsockopt`-style control surface §5.3
    /// points at). The pacing clock is left untouched.
    pub fn set_shaper(&mut self, shaper: BoxShaper) {
        self.shaper = shaper;
    }

    /// Install a flow-trace sink: every subsequent sizing and pacing
    /// decision is recorded as a [`netsim::telemetry::FlowEvent`].
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(tracer);
    }

    /// Segments this pipeline altered in any way (resegment, resize, or
    /// extra delay).
    pub fn shaped_segs(&self) -> u64 {
        self.shaped_segs
    }

    /// The pacing clock: earliest time the next segment may depart.
    pub fn pacing_next(&self) -> Nanos {
        self.pacing_next
    }

    /// Stage ①, TCP flavour: Linux's `tcp_tso_autosize` — roughly 1 ms
    /// of the pacing rate, at least 2 packets, capped by the driver
    /// limit and the window budget. Transports with a fixed batch size
    /// (QUIC GSO) skip this and pass their constant to
    /// [`segment_pkts`](Self::segment_pkts) directly.
    pub fn tso_autosize(ctx: &ShapeCtx, tso: bool, tso_max_pkts: u32, budget: u64) -> u32 {
        if !tso {
            return 1;
        }
        let mss = u64::from(ctx.mss);
        let auto = match ctx.pacing_rate_bps {
            Some(rate) if rate < u64::MAX => {
                let bytes_per_ms = rate / 8 / 1000;
                ((bytes_per_ms / mss).max(2)) as u32
            }
            _ => tso_max_pkts,
        };
        auto.min(tso_max_pkts)
            .min(budget.div_ceil(mss).max(1) as u32)
    }

    /// Stage ②: offer the proposed burst size to the shaper, clamp the
    /// answer to `[1, proposed]` (growing a burst would be more
    /// aggressive than the CCA decided), and record the decision.
    pub fn segment_pkts(&mut self, ctx: &ShapeCtx, proposed: u32) -> u32 {
        let shaped = self
            .shaper
            .tso_segment_pkts(ctx, proposed)
            .clamp(1, proposed);
        if shaped != proposed {
            self.reseg_counter.get().inc();
            self.eg_reseg.get().inc();
            if let Some(tr) = &self.tracer {
                tr.rec(
                    ctx.now,
                    u64::from(ctx.flow.0),
                    self.labels.layer,
                    self.labels.reseg_event,
                    u64::from(proposed),
                    u64::from(shaped),
                    "shaper-resegment",
                );
            }
        }
        shaped
    }

    /// Stage ③: offer one packet's proposed IP size to the shaper and
    /// clamp the answer to `[floor, ceil]` (the transport's legal range:
    /// protocol minimum to `min(MTU, proposed)` — never larger than the
    /// stack wanted). Records the decision when it changed the size.
    pub fn packet_ip_size(
        &mut self,
        ctx: &ShapeCtx,
        pkt_index: u32,
        proposed_ip: u32,
        floor: u32,
        ceil: u32,
    ) -> u32 {
        let ip = self
            .shaper
            .packet_ip_size(ctx, pkt_index, proposed_ip)
            .clamp(floor, ceil);
        if ip != proposed_ip {
            self.resize_counter.get().inc();
            self.eg_resize.get().inc();
            if let Some(tr) = &self.tracer {
                tr.rec(
                    ctx.now,
                    u64::from(ctx.flow.0),
                    self.labels.layer,
                    "pkt-size",
                    u64::from(proposed_ip),
                    u64::from(ip),
                    "shaper-resize",
                );
            }
        }
        ip
    }

    /// Stage ③ for retransmissions: the shaper's packet-size decision
    /// applies to loss repair too (the eavesdropper sees retransmitted
    /// packets like any other), but the event is recorded under the
    /// transport's retransmit instrument, unconditionally.
    pub fn size_retransmit(
        &mut self,
        ctx: &ShapeCtx,
        proposed_ip: u32,
        floor: u32,
        ceil: u32,
    ) -> u32 {
        let ip = self
            .shaper
            .packet_ip_size(ctx, 0, proposed_ip)
            .clamp(floor, ceil);
        if let Some(c) = &mut self.retransmit_counter {
            c.get().inc();
        }
        self.eg_retransmits.get().inc();
        if let Some(tr) = &self.tracer {
            tr.rec(
                ctx.now,
                u64::from(ctx.flow.0),
                self.labels.layer,
                "retransmit",
                u64::from(proposed_ip),
                u64::from(ip),
                "loss-repair",
            );
        }
        ip
    }

    /// Stages ④–⑥ for one finished segment: charge the CPU cost of
    /// building it, gate its departure on `max(pacing clock, now, CPU
    /// completion)`, add the shaper's extra delay, advance the pacing
    /// clock, and emit telemetry.
    ///
    /// The extra delay advances the pacing clock too, so consecutive
    /// inter-departure gaps *stretch* (the §3 "delaying" semantics)
    /// rather than the whole schedule shifting once. Still CCA-safe:
    /// departures only ever move later.
    ///
    /// `shaped` carries whether stages ②/③ already altered the segment;
    /// the returned [`PacedSegment::shaped`] additionally reflects a
    /// non-zero extra delay, and shaped segments count toward
    /// [`shaped_segs`](Self::shaped_segs).
    #[allow(clippy::too_many_arguments)]
    pub fn pace_segment(
        &mut self,
        ctx: &ShapeCtx,
        now: Nanos,
        cpu: &mut Cpu,
        payload: u64,
        npkts: u32,
        wire_bytes: u64,
        shaped: bool,
    ) -> PacedSegment {
        let cpu_done = cpu.charge(now, cpu.model.segment_cost(payload, npkts));
        let base = self.pacing_next.max(now).max(cpu_done);
        let extra = self.shaper.extra_delay(ctx);
        let eligible = base + extra;
        if !extra.is_zero() {
            self.delay_histo.get().record(extra.as_nanos());
            self.eg_delay.get().record(extra.as_nanos());
            if let Some(tr) = &self.tracer {
                tr.rec(
                    now,
                    u64::from(ctx.flow.0),
                    self.labels.layer,
                    "pacing",
                    base.as_nanos(),
                    eligible.as_nanos(),
                    "shaper-delay",
                );
            }
        }
        if let Some(rate) = ctx.pacing_rate_bps {
            if rate > 0 && rate < u64::MAX {
                self.pacing_next = eligible + Nanos::for_bytes_at_rate(wire_bytes, rate);
            }
        }
        if !extra.is_zero() {
            self.pacing_next = self.pacing_next.max(eligible);
        }
        let shaped = shaped || !extra.is_zero();
        if shaped {
            self.shaped_segs += 1;
        }
        self.eg_segments.get().inc();
        PacedSegment { eligible, shaped }
    }

    /// Stage ④ for trace replay: gate one *recorded* packet through the
    /// pacing clock and the shaper's extra-delay hook, without charging
    /// CPU or advancing wire serialization time (a replayed trace has no
    /// live CPU model and already embeds serialization in its
    /// timestamps).
    ///
    /// `intended` is the packet's departure time as computed so far
    /// (recorded timestamp plus accumulated shift). The eligible time is
    /// `max(pacing clock, intended) + extra_delay`, the pacing clock
    /// advances to it, and the delay is recorded under this pipeline's
    /// delay instruments. The stack-placement defense backend
    /// (`stob::defense::enforce_flow`) is the intended caller, with
    /// [`EgressLabels::REPLAY`].
    pub fn pace_replay(&mut self, ctx: &ShapeCtx, intended: Nanos) -> Nanos {
        let base = self.pacing_next.max(intended);
        let extra = self.shaper.extra_delay(ctx);
        let eligible = base + extra;
        if !extra.is_zero() {
            self.delay_histo.get().record(extra.as_nanos());
            self.eg_delay.get().record(extra.as_nanos());
            if let Some(tr) = &self.tracer {
                tr.rec(
                    ctx.now,
                    u64::from(ctx.flow.0),
                    self.labels.layer,
                    "pacing",
                    base.as_nanos(),
                    eligible.as_nanos(),
                    "shaper-delay",
                );
            }
            self.shaped_segs += 1;
        }
        self.eg_replayed.get().inc();
        self.pacing_next = eligible;
        eligible
    }

    /// ACK passthrough: lets stateful shaping strategies observe flow
    /// progress without a separate feedback channel.
    pub fn on_ack(&mut self, ctx: &ShapeCtx) {
        self.shaper.on_ack(ctx);
    }
}

/// Summary stats shared by every transport — the fields common to
/// `ConnStats` (TCP) and `QuicStats`, under one vocabulary. Obtained via
/// `Network::flow_stats` / `Api::flow_stats` for any flow regardless of
/// transport.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowStats {
    /// In-order payload bytes handed to the application.
    pub bytes_delivered: u64,
    /// Transport segments (TCP) or GSO batches (QUIC) sent.
    pub segs_sent: u64,
    /// Wire data packets sent.
    pub pkts_sent: u64,
    /// Pure ACK packets sent.
    pub acks_sent: u64,
    /// Loss-repair transmissions (TCP fast retransmits / QUIC
    /// retransmitted datagrams).
    pub retransmits: u64,
    /// Timer-driven recoveries (TCP RTOs / QUIC PTOs).
    pub timeouts: u64,
    /// Segments altered by the egress pipeline (resegmented, resized,
    /// or delayed).
    pub shaped_segs: u64,
}

/// The contract a transport owes the network driver: produce eligible
/// segments, accept packets and timers, expose the congestion state the
/// §4.2 safety audit needs, and accept NIC release notifications.
///
/// [`TcpConn`](crate::tcp::TcpConn) and [`QuicConn`](crate::quic::QuicConn) implement this; `net::Network` drives
/// connections exclusively through it (plus a narrow escape hatch for
/// transport-specific stats). The module-level example shows a minimal
/// custom implementation.
///
/// [`TcpConn`](crate::tcp::TcpConn): crate::tcp::TcpConn
/// [`QuicConn`](crate::quic::QuicConn): crate::quic::QuicConn
pub trait TransportCore {
    /// Process one arriving packet; returns effects for the driver.
    fn input(&mut self, pkt: &Packet, now: Nanos, cpu: &mut Cpu) -> Vec<TcpAction>;

    /// Produce as many eligible segments as window/pacing permit.
    fn output(&mut self, now: Nanos, cpu: &mut Cpu) -> Vec<TcpAction>;

    /// A transport timer fired (`gen` disambiguates stale events).
    fn on_timer(&mut self, _kind: TimerKind, _gen: u64, _now: Nanos) -> Vec<TcpAction> {
        Vec::new()
    }

    /// Application write: accept up to `len` bytes into the send buffer;
    /// returns the bytes accepted.
    fn write(&mut self, len: u64) -> u64;

    /// The NIC finished serializing `wire_bytes` of this flow (TSQ
    /// release notification). Transports without small-queue
    /// back-pressure ignore it.
    fn on_nic_release(&mut self, _wire_bytes: u64) {}

    /// Install a shaper on this connection.
    fn set_shaper(&mut self, shaper: BoxShaper);

    /// Mid-flow path-MTU reduction (ICMP "fragmentation needed").
    fn set_mtu(&mut self, _mtu_ip: u32) {}

    /// Install a flow-trace sink.
    fn set_tracer(&mut self, tracer: Tracer);

    /// Current congestion-window grant, bytes (the §4.2 audit bound).
    fn cwnd(&self) -> u64;

    /// Bytes believed to be in the network (TCP `pipe`, QUIC inflight).
    fn outstanding(&self) -> u64;

    /// Current pacing rate, if pacing is active (bits/s).
    fn pacing_rate_bps(&self) -> Option<u64>;

    /// Current path MTU as an IP packet size.
    fn mtu_ip(&self) -> u32;

    /// Smoothed RTT, once measured.
    fn srtt(&self) -> Option<Nanos> {
        None
    }

    /// Transport-agnostic summary stats.
    fn flow_stats(&self) -> FlowStats;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuModel;
    use crate::shaper::Shaper;
    use netsim::FlowId;

    fn ctx(rate: Option<u64>) -> ShapeCtx {
        ShapeCtx {
            flow: FlowId(1),
            now: Nanos(0),
            cwnd: 10 * 1448,
            pacing_rate_bps: rate,
            in_slow_start: false,
            bytes_sent: 0,
            pkts_sent: 0,
            segs_sent: 0,
            mtu_ip: 1500,
            mss: 1448,
        }
    }

    fn cpu() -> Cpu {
        Cpu::new(CpuModel::infinitely_fast())
    }

    struct Delay(u64);
    impl Shaper for Delay {
        fn extra_delay(&mut self, _c: &ShapeCtx) -> Nanos {
            Nanos(self.0)
        }
    }

    #[test]
    fn pacing_clock_advances_by_wire_time_at_rate() {
        let mut p = EgressPipeline::new(EgressLabels::TCP);
        let c = ctx(Some(8_000_000_000)); // 1 byte/ns
        let out = p.pace_segment(&c, Nanos(100), &mut cpu(), 1000, 1, 1066, false);
        assert_eq!(out.eligible, Nanos(100));
        assert!(!out.shaped);
        // 1066 wire bytes at 1 byte/ns push the clock 1066 ns past the
        // departure.
        assert_eq!(p.pacing_next(), Nanos(100 + 1066));
    }

    #[test]
    fn zero_rate_never_advances_the_clock() {
        // A zero pacing rate would divide by zero / stall forever; the
        // gate must ignore it (as must a u64::MAX "unpaced" sentinel).
        for rate in [Some(0), Some(u64::MAX), None] {
            let mut p = EgressPipeline::new(EgressLabels::TCP);
            let c = ctx(rate);
            let out = p.pace_segment(&c, Nanos(5), &mut cpu(), 1000, 1, 1066, false);
            assert_eq!(out.eligible, Nanos(5));
            assert_eq!(p.pacing_next(), Nanos::ZERO, "rate {rate:?}");
        }
    }

    #[test]
    fn past_eligible_time_floors_at_now() {
        // The clock says "long ago"; departure still happens at `now`,
        // and the next advance builds on the real departure time.
        let mut p = EgressPipeline::new(EgressLabels::TCP);
        let c = ctx(Some(8_000_000_000));
        let _ = p.pace_segment(&c, Nanos(0), &mut cpu(), 100, 1, 166, false);
        assert_eq!(p.pacing_next(), Nanos(166));
        // Output re-entered much later: base = now, not the stale clock.
        let out = p.pace_segment(&c, Nanos(10_000), &mut cpu(), 100, 1, 166, false);
        assert_eq!(out.eligible, Nanos(10_000));
        assert_eq!(p.pacing_next(), Nanos(10_166));
    }

    #[test]
    fn extra_delay_stretches_gaps_and_marks_shaped() {
        // The shaper's delay moves the departure AND the clock: gaps
        // stretch (§3 semantics) instead of the schedule shifting once.
        let mut p = EgressPipeline::new(EgressLabels::TCP);
        p.set_shaper(Box::new(Delay(500)));
        let c = ctx(Some(8_000_000_000));
        let out = p.pace_segment(&c, Nanos(0), &mut cpu(), 1000, 1, 1066, false);
        assert_eq!(out.eligible, Nanos(500));
        assert!(out.shaped);
        assert_eq!(p.shaped_segs(), 1);
        assert_eq!(p.pacing_next(), Nanos(500 + 1066));
        // Second segment: delayed again from the advanced clock.
        let out = p.pace_segment(&c, Nanos(0), &mut cpu(), 1000, 1, 1066, false);
        assert_eq!(out.eligible, Nanos(1566 + 500));
    }

    #[test]
    fn extra_delay_clamps_clock_even_without_a_rate() {
        // No pacing rate: the clock cannot advance by wire time, but a
        // delayed departure must still drag it forward so the next
        // segment cannot leave earlier than this one.
        let mut p = EgressPipeline::new(EgressLabels::QUIC);
        p.set_shaper(Box::new(Delay(2_000)));
        let c = ctx(None);
        let out = p.pace_segment(&c, Nanos(100), &mut cpu(), 1000, 1, 1066, false);
        assert_eq!(out.eligible, Nanos(2_100));
        assert_eq!(p.pacing_next(), Nanos(2_100));
        let out = p.pace_segment(&c, Nanos(100), &mut cpu(), 1000, 1, 1066, false);
        assert_eq!(out.eligible, Nanos(4_100), "gap stretched, not shifted");
    }

    #[test]
    fn cpu_completion_gates_departure() {
        let model = CpuModel {
            per_segment: Nanos(3_000),
            ..CpuModel::infinitely_fast()
        };
        let mut cpu = Cpu::new(model);
        let mut p = EgressPipeline::new(EgressLabels::TCP);
        let out = p.pace_segment(&ctx(None), Nanos(0), &mut cpu, 1000, 1, 1066, false);
        assert_eq!(out.eligible, Nanos(3_000));
    }

    #[test]
    fn segment_pkts_clamps_to_cc_proposal() {
        struct Greedy;
        impl Shaper for Greedy {
            fn tso_segment_pkts(&mut self, _c: &ShapeCtx, p: u32) -> u32 {
                p * 10 // try to grow the burst
            }
        }
        let mut p = EgressPipeline::new(EgressLabels::TCP);
        p.set_shaper(Box::new(Greedy));
        assert_eq!(p.segment_pkts(&ctx(None), 4), 4, "growth clipped");
        struct Zero;
        impl Shaper for Zero {
            fn tso_segment_pkts(&mut self, _c: &ShapeCtx, _p: u32) -> u32 {
                0
            }
        }
        p.set_shaper(Box::new(Zero));
        assert_eq!(p.segment_pkts(&ctx(None), 4), 1, "floor of one packet");
    }

    #[test]
    fn packet_ip_size_respects_bounds() {
        struct Tiny;
        impl Shaper for Tiny {
            fn packet_ip_size(&mut self, _c: &ShapeCtx, _i: u32, _p: u32) -> u32 {
                1
            }
        }
        let mut p = EgressPipeline::new(EgressLabels::QUIC);
        p.set_shaper(Box::new(Tiny));
        assert_eq!(p.packet_ip_size(&ctx(None), 0, 1396, 47, 1396), 47);
        struct Huge;
        impl Shaper for Huge {
            fn packet_ip_size(&mut self, _c: &ShapeCtx, _i: u32, _p: u32) -> u32 {
                u32::MAX
            }
        }
        p.set_shaper(Box::new(Huge));
        assert_eq!(p.packet_ip_size(&ctx(None), 0, 1396, 47, 1396), 1396);
    }

    #[test]
    fn tso_autosize_matches_linux_heuristic() {
        // ~1 ms of the pacing rate, >= 2 MSS, capped by driver and budget.
        let c = ctx(Some(100_000_000_000)); // 12.5 MB/ms
        assert_eq!(EgressPipeline::tso_autosize(&c, true, 44, 1 << 30), 44);
        let c = ctx(Some(8_000_000)); // 1 kB/ms => min 2
        assert_eq!(EgressPipeline::tso_autosize(&c, true, 44, 1 << 30), 2);
        // Budget caps: 3 packets' worth of window.
        let c = ctx(Some(100_000_000_000));
        assert_eq!(EgressPipeline::tso_autosize(&c, true, 44, 3 * 1448), 3);
        // TSO off: always one packet per segment.
        assert_eq!(EgressPipeline::tso_autosize(&c, false, 44, 1 << 30), 1);
        // Unpaced (rate saturated/absent): driver limit.
        let c = ctx(None);
        assert_eq!(EgressPipeline::tso_autosize(&c, true, 44, 1 << 30), 44);
    }
}
