//! Host CPU cost model.
//!
//! The paper's Figure 3 exists because packetization decisions have CPU
//! consequences: smaller TSO segments mean more stack traversals per byte,
//! and smaller packets mean more per-packet NIC work. We model a host CPU
//! as a single core with a `busy_until` horizon and charge each stack
//! operation a calibrated cost. Work requested while the core is busy
//! executes when the core frees up — which is exactly how throughput
//! becomes CPU-bound.
//!
//! Calibration (see `EXPERIMENTS.md`): with the defaults below, a single
//! bulk TCP flow over a 100 Gb/s path achieves ~40 Gb/s with default
//! packetization (1500-byte packets, 44-packet TSO) and ~20 Gb/s at the
//! paper's maximum reduction degree — matching Figure 3's reported band
//! ("preserves 19.7 Gb/s or higher").

use netsim::Nanos;

/// Costs of the stack operations we account for.
#[derive(Debug, Clone, Copy)]
pub struct CpuModel {
    /// Fixed cost per transport segment built and pushed through the
    /// stack (syscall amortization, TCP/IP, qdisc, driver per-descriptor
    /// chain). Dominates when TSO segments shrink.
    pub per_segment: Nanos,
    /// Cost per wire packet (NIC descriptor, doorbell share, completion).
    pub per_packet: Nanos,
    /// Cost per payload byte (copy + checksum/crypto touch), in
    /// femtoseconds per byte to keep integer math exact.
    pub per_byte_fs: u64,
    /// Cost to process one incoming ACK at the sender.
    pub per_ack_rx: Nanos,
    /// Cost to process one incoming data packet at the receiver.
    pub per_data_rx: Nanos,
}

impl Default for CpuModel {
    fn default() -> Self {
        CpuModel {
            per_segment: Nanos::from_nanos(4_800),
            per_packet: Nanos::from_nanos(40),
            per_byte_fs: 50_000, // 0.05 ns/byte = 20 GB/s touch rate
            per_ack_rx: Nanos::from_nanos(100),
            per_data_rx: Nanos::from_nanos(200),
        }
    }
}

impl CpuModel {
    /// An effectively free CPU, for tests that want pure network dynamics.
    pub fn infinitely_fast() -> Self {
        CpuModel {
            per_segment: Nanos::ZERO,
            per_packet: Nanos::ZERO,
            per_byte_fs: 0,
            per_ack_rx: Nanos::ZERO,
            per_data_rx: Nanos::ZERO,
        }
    }

    /// Cost of building and sending one segment of `payload` bytes split
    /// into `pkts` wire packets.
    pub fn segment_cost(&self, payload: u64, pkts: u32) -> Nanos {
        self.per_segment
            + self.per_packet * pkts as u64
            + Nanos::from_nanos(payload * self.per_byte_fs / 1_000_000)
    }
}

/// A single-core CPU with a busy horizon.
#[derive(Debug, Clone)]
pub struct Cpu {
    pub model: CpuModel,
    busy_until: Nanos,
    /// Total busy time accumulated (for utilization reporting).
    pub busy_total: Nanos,
}

impl Cpu {
    pub fn new(model: CpuModel) -> Self {
        Cpu {
            model,
            busy_until: Nanos::ZERO,
            busy_total: Nanos::ZERO,
        }
    }

    /// Charge `cost` of work requested at `now`. Returns the completion
    /// time: `max(now, previous horizon) + cost`.
    pub fn charge(&mut self, now: Nanos, cost: Nanos) -> Nanos {
        let start = now.max(self.busy_until);
        self.busy_until = start + cost;
        self.busy_total += cost;
        self.busy_until
    }

    pub fn free_at(&self) -> Nanos {
        self.busy_until
    }

    /// Utilization over an interval of simulated time.
    pub fn utilization(&self, elapsed: Nanos) -> f64 {
        if elapsed.is_zero() {
            0.0
        } else {
            self.busy_total.as_nanos() as f64 / elapsed.as_nanos() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_serializes_work() {
        let mut cpu = Cpu::new(CpuModel::default());
        let a = cpu.charge(Nanos(0), Nanos(100));
        assert_eq!(a, Nanos(100));
        // Requested while busy: queues behind.
        let b = cpu.charge(Nanos(50), Nanos(100));
        assert_eq!(b, Nanos(200));
        // Requested after idle gap: starts at request time.
        let c = cpu.charge(Nanos(1_000), Nanos(10));
        assert_eq!(c, Nanos(1_010));
        assert_eq!(cpu.busy_total, Nanos(210));
    }

    #[test]
    fn segment_cost_components() {
        let m = CpuModel {
            per_segment: Nanos(1_000),
            per_packet: Nanos(100),
            per_byte_fs: 1_000_000, // 1 ns/byte
            per_ack_rx: Nanos::ZERO,
            per_data_rx: Nanos::ZERO,
        };
        // 1000 bytes over 2 packets: 1000 + 200 + 1000 ns.
        assert_eq!(m.segment_cost(1000, 2), Nanos(2_200));
    }

    #[test]
    fn default_costs_bound_throughput_plausibly() {
        // Full 44-packet TSO segment: ~44*1448 bytes payload.
        let m = CpuModel::default();
        let payload = 44u64 * 1448;
        let cost = m.segment_cost(payload, 44);
        // Implied CPU-bound goodput, ignoring ACK processing.
        let gbps = payload as f64 * 8.0 / cost.as_nanos() as f64;
        assert!(
            (40.0..70.0).contains(&gbps),
            "default segment cost implies {gbps:.1} Gb/s"
        );
        // One packet per segment (TSO off): far more expensive per byte.
        let cost1 = m.segment_cost(1448, 1);
        let gbps1 = 1448.0 * 8.0 / cost1.as_nanos() as f64;
        assert!(gbps1 < 3.0, "no-TSO goodput {gbps1:.1} Gb/s");
    }

    #[test]
    fn utilization() {
        let mut cpu = Cpu::new(CpuModel::infinitely_fast());
        cpu.charge(Nanos(0), Nanos(500));
        assert!((cpu.utilization(Nanos(1_000)) - 0.5).abs() < 1e-12);
        assert_eq!(cpu.utilization(Nanos::ZERO), 0.0);
    }
}
