//! # stack — a userspace model of the host network stack
//!
//! This crate implements the paper's Figure 1: the layers between the
//! transport protocol implementation and NIC I/O, inclusive. It provides
//!
//! * a socket layer with `send()` semantics (data is *copied to the socket
//!   buffer* and transmitted asynchronously when window opens — the first
//!   asynchrony §2.3 identifies),
//! * TCP with congestion control (Reno, CUBIC, BBR-lite), RTO and fast
//!   retransmit, delayed ACKs, Nagle, MSS/PMTU handling,
//! * an FQ pacing queuing discipline plus TCP-small-queues back-pressure
//!   (the second asynchrony: another "thread" dequeues later),
//! * a TSO-capable NIC model that splits a transport segment into MSS-sized
//!   line-rate packets (the *micro burst* of §4.2),
//! * a QUIC-lite transport over UDP mirroring the third column of Figure 1,
//! * a calibrated CPU cost model, so that packetization choices have the
//!   CPU-efficiency consequences Figure 3 measures, and
//! * the [`shaper::Shaper`] hook interface — the mechanism the `stob`
//!   crate's policies plug into (TSO sizing, per-packet sizing, departure
//!   delay), exactly the three decision points §4.2 names.
//!
//! The whole stack runs inside a deterministic discrete-event simulation
//! ([`net::Network`]) built on the `netsim` substrate.

pub mod apps;
pub mod cc;
pub mod config;
pub mod cpu;
pub mod egress;
pub mod mux;
pub mod net;
pub mod nic;
pub mod qdisc;
pub mod quic;
pub mod shaper;
pub mod tcp;
pub mod tls;

pub use config::{HostConfig, PathConfig, StackConfig};
pub use cpu::{Cpu, CpuModel};
pub use egress::{EgressLabels, EgressPipeline, FlowStats, TransportCore};
pub use mux::{Multiplex, MuxConfig, Pipe, SimPipe, Splitter, SplitterSpec};
pub use net::{Api, App, AppEvent, FlowTable, Network, CLIENT, SERVER};
pub use shaper::{NoopShaper, ShapeCtx, Shaper};
