//! # netsim — deterministic discrete-event network simulation substrate
//!
//! This crate provides the building blocks under the `stack` crate's host
//! network-stack model: a virtual clock, an event queue with deterministic
//! tie-breaking, seeded random number generation, packet and link models,
//! router queues, and a vantage-point capture facility that plays the role
//! of `tcpdump` in the paper's data-collection methodology.
//!
//! Each simulation shard is single-threaded and fully deterministic: two
//! runs with the same seed produce byte-identical traces. That property is
//! what makes the reproduction's experiments (Table 2, Figure 3)
//! repeatable. The [`par`] module fans independent shards and work items
//! out across threads without giving that property up: every item derives
//! its randomness from the root seed and its stable index, so thread
//! count never changes results.
//!
//! The [`telemetry`] module is the observability layer over all of it:
//! a global registry of deterministic counters/gauges/histograms, RAII
//! profiling spans, and bounded per-flow shaping-decision traces
//! (dumpable as JSONL via `STOB_TRACE_OUT`). See `OBSERVABILITY.md`.

pub mod audit;
pub mod capture;
pub mod env;
pub mod event;
pub mod fault;
pub mod json;
pub mod link;
pub mod multilink;
pub mod packet;
pub mod par;
pub mod pool;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod telemetry;
pub mod time;
pub mod wheel;

pub use audit::{AuditReport, Auditor, Invariant, Violation};
pub use capture::{Capture, CaptureRecord, Direction};
pub use event::EventQueue;
pub use fault::{FaultInjector, FaultKind, FaultSchedule, FaultStats};
pub use json::{Json, JsonError};
pub use link::Link;
pub use multilink::{provision, PathLedger, PipeProfile, ProvisionedPipe};
pub use packet::{FlowId, Packet, PacketKind, PacketMeta};
pub use par::{par_map, par_map_catch, par_map_n, par_run, Timings};
pub use pool::{Arena, ArenaHandle, VecPool};
pub use queue::{DropTailQueue, QueueStats};
pub use rng::SimRng;
pub use stats::{percentile, percentile_sorted, Histogram, RunningStats};
pub use telemetry::{FlowEvent, FlowTrace, Tracer};
pub use time::Nanos;
