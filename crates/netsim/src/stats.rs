//! Small statistics toolkit shared by the experiment harnesses.
//!
//! Welford running moments, exact percentiles over collected samples, and
//! a fixed-bin histogram (the compact distribution representation §4.1 of
//! the paper proposes for sharing obfuscation policies between the
//! application and the stack).

/// Numerically stable running mean/variance (Welford).
#[derive(Debug, Clone, Copy, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    pub fn count(&self) -> u64 {
        self.n
    }
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }
    /// Population variance.
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }
    /// Sample standard deviation (n-1 denominator), 0 for n < 2.
    pub fn std_dev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let d = other.mean - self.mean;
        let mean = self.mean + d * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + d * d * self.n as f64 * other.n as f64 / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Exact percentile by sorting a copy. `p` in [0, 100], linear
/// interpolation between ranks (the same convention as numpy's default).
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    let mut v: Vec<f64> = samples.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    percentile_sorted(&v, p)
}

/// [`percentile`] over samples the caller has already sorted ascending —
/// lets hot paths that need several percentiles of one buffer sort once.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = rank - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Fixed-width-bin histogram over [lo, hi). Out-of-range samples clamp to
/// the edge bins, so the histogram always accounts for every sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    pub lo: f64,
    pub hi: f64,
    pub counts: Vec<u64>,
    pub total: u64,
}

impl Histogram {
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo && bins > 0);
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    pub fn bin_of(&self, x: f64) -> usize {
        let bins = self.counts.len();
        if x <= self.lo {
            return 0;
        }
        if x >= self.hi {
            return bins - 1;
        }
        let idx = ((x - self.lo) / (self.hi - self.lo) * bins as f64) as usize;
        idx.min(bins - 1)
    }

    pub fn push(&mut self, x: f64) {
        let b = self.bin_of(x);
        self.counts[b] += 1;
        self.total += 1;
    }

    /// Midpoint value of bin `i`.
    pub fn bin_mid(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// Draw from the empirical distribution using uniforms `u1, u2` in
    /// [0,1): pick a bin by mass, then a uniform point inside it. This is
    /// the sampling operation Stob policies perform on the datapath.
    pub fn sample(&self, u1: f64, u2: f64) -> f64 {
        assert!(self.total > 0, "sampling an empty histogram");
        let target = (u1 * self.total as f64) as u64;
        let mut acc = 0u64;
        let mut bin = self.counts.len() - 1;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if target < acc {
                bin = i;
                break;
            }
        }
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + bin as f64 * w + u2 * w
    }

    /// JSON form `{lo, hi, counts, total}` (policy exports, §4.1).
    pub fn to_json(&self) -> crate::json::Json {
        crate::json::Json::obj()
            .set("lo", self.lo)
            .set("hi", self.hi)
            .set("counts", self.counts.clone())
            .set("total", self.total)
    }

    /// Parse the [`Histogram::to_json`] form back.
    pub fn from_json(v: &crate::json::Json) -> Result<Histogram, crate::json::JsonError> {
        let counts = v
            .req_arr("counts")?
            .iter()
            .map(|c| {
                c.as_u64().ok_or(crate::json::JsonError {
                    offset: 0,
                    message: "histogram count is not a u64".to_string(),
                })
            })
            .collect::<Result<Vec<u64>, _>>()?;
        Ok(Histogram {
            lo: v.req_f64("lo")?,
            hi: v.req_f64("hi")?,
            counts,
            total: v.req_u64("total")?,
        })
    }

    /// Normalized probability mass per bin.
    pub fn pmf(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_basic() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn running_stats_empty_and_single() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        let mut s1 = RunningStats::new();
        s1.push(3.0);
        assert_eq!(s1.mean(), 3.0);
        assert_eq!(s1.std_dev(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = RunningStats::new();
        xs.iter().for_each(|&x| all.push(x));
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        xs[..37].iter().for_each(|&x| a.push(x));
        xs[37..].iter().for_each(|&x| b.push(x));
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn percentiles() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
        assert!((percentile(&v, 50.0) - 50.5).abs() < 1e-9);
        assert!((percentile(&v, 25.0) - 25.75).abs() < 1e-9);
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile(&[42.0], 50.0), 42.0);
    }

    #[test]
    fn percentile_sorted_matches_percentile() {
        let v: Vec<f64> = (0..57).map(|i| ((i * 37) % 57) as f64).collect();
        let mut sorted = v.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for p in [0.0, 12.5, 25.0, 50.0, 75.0, 99.0, 100.0] {
            assert_eq!(
                percentile(&v, p).to_bits(),
                percentile_sorted(&sorted, p).to_bits()
            );
        }
    }

    #[test]
    fn histogram_binning_and_clamping() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.push(-5.0); // clamps to bin 0
        h.push(0.5);
        h.push(9.9);
        h.push(50.0); // clamps to last bin
        assert_eq!(h.counts[0], 2);
        assert_eq!(h.counts[9], 2);
        assert_eq!(h.total, 4);
        assert!((h.bin_mid(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_sampling_tracks_mass() {
        let mut h = Histogram::new(0.0, 100.0, 10);
        // All mass in bin 3 (30..40).
        for _ in 0..100 {
            h.push(35.0);
        }
        for i in 0..10 {
            let x = h.sample(i as f64 / 10.0, 0.5);
            assert!((30.0..40.0).contains(&x), "sample {x}");
        }
    }

    #[test]
    fn histogram_pmf_sums_to_one() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        for x in [0.1, 0.3, 0.6, 0.9, 0.95] {
            h.push(x);
        }
        let s: f64 = h.pmf().iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
    }
}
