//! Deterministic parallel execution for embarrassingly parallel stages.
//!
//! The evaluation pipeline's hot paths — per-tree forest training,
//! per-trace defense emulation, per-cell experiment fan-out — are all
//! independent work items. This module runs them on `std::thread::scope`
//! with *static chunked work-splitting*: the item list is cut into one
//! contiguous chunk per worker, each worker fills its own output slot,
//! and results are reassembled in item order.
//!
//! Determinism contract: the closure receives the item **index**, and
//! any randomness it needs must be derived from a root [`crate::SimRng`]
//! forked on that index (never from a shared, sequentially-consumed
//! stream). Under that discipline the output is bit-identical regardless
//! of thread count — `STOB_THREADS=1` equals `STOB_THREADS=8` — because
//! thread count only changes *where* an item runs, never *what* it
//! computes. The regression test `tests/determinism.rs` holds the
//! workspace to this.
//!
//! Thread-count resolution order:
//! 1. [`set_threads`] override (used by tests),
//! 2. the `STOB_THREADS` environment variable,
//! 3. `std::thread::available_parallelism()`.
//!
//! ```
//! use netsim::{par, SimRng};
//! let root = SimRng::new(7);
//! // Fork per item index: bit-identical at any thread count.
//! let out = par::par_map(&[10u64, 20, 30], |i, &x| {
//!     let mut rng = root.fork(i as u64 + 1);
//!     x + rng.next_below(5)
//! });
//! assert_eq!(out, par::par_map_n(3, &[10u64, 20, 30], |i, &x| {
//!     let mut rng = root.fork(i as u64 + 1);
//!     x + rng.next_below(5)
//! }));
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Force a thread count process-wide (0 restores automatic resolution).
/// Intended for tests and experiments that sweep thread counts; results
/// must not depend on it — that is the module's whole guarantee.
pub fn set_threads(n: usize) {
    OVERRIDE.store(n, Ordering::SeqCst);
}

/// The thread count parallel stages will use right now.
pub fn threads() -> usize {
    let o = OVERRIDE.load(Ordering::SeqCst);
    if o > 0 {
        return o;
    }
    match crate::env::parse::<usize>("STOB_THREADS") {
        Some(0) => {
            crate::env::warn_once(
                "STOB_THREADS=0",
                "STOB_THREADS=0 is not a valid thread count; using automatic resolution",
            );
        }
        Some(n) => return n,
        None => {}
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Map `f` over `items` in parallel, preserving order. `f` gets
/// `(index, &item)`; see the module docs for the determinism contract.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_n(threads(), items, f)
}

/// [`par_map`] with an explicit worker count.
pub fn par_map_n<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = workers.max(1).min(n.max(1));
    if workers <= 1 || n <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    // Static chunking: worker w takes the contiguous range of items
    // [w*chunk, ...); the last worker absorbs the remainder. Chunk
    // boundaries depend only on (n, workers), so the (index, item)
    // pairs each closure call sees are identical at any worker count.
    let chunk = n.div_ceil(workers);
    let f = &f;
    let mut out: Vec<Vec<R>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                // Both bounds clamp to n: with n = 5, workers = 4 the
                // last worker's nominal range [6, 8) starts past the
                // slice and must collapse to empty.
                let lo = (w * chunk).min(n);
                let hi = ((w + 1) * chunk).min(n);
                let slice = &items[lo..hi];
                scope.spawn(move || {
                    slice
                        .iter()
                        .enumerate()
                        .map(|(off, t)| f(lo + off, t))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        for h in handles {
            out.push(h.join().expect("parallel worker panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

/// Render a caught panic payload as a message string.
pub fn panic_message(e: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// [`par_map`] with per-item panic containment: a panicking item yields
/// `Err(message)` in its slot instead of tearing down the whole fan-out.
///
/// The worker threads themselves never die — each closure call is wrapped
/// in `catch_unwind` — so one poisoned item cannot take the rest of its
/// chunk (or the run) with it. The determinism contract is unchanged:
/// which items panic, and with what message, is a pure function of the
/// items. Note the default panic hook still prints to stderr; callers
/// soaking known-panicking inputs see the backtrace noise but keep their
/// results.
pub fn par_map_catch<T, R, F>(items: &[T], f: F) -> Vec<Result<R, String>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map(items, |i, t| {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i, t))).map_err(panic_message)
    })
}

/// Run `n` independent jobs in parallel, preserving order — the
/// fan-out form of [`par_map`] for when there is no input slice.
pub fn par_run<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let idx: Vec<usize> = (0..n).collect();
    par_map(&idx, |_, &i| f(i))
}

// ---------------------------------------------------------------------
// Wall-clock stage timing
// ---------------------------------------------------------------------

/// Lightweight per-stage wall-clock collection, rendered into the bench
/// JSON output so speedups are measurable run-to-run.
#[derive(Debug, Default)]
pub struct Timings {
    stages: Vec<(String, f64)>,
}

impl Timings {
    pub fn new() -> Self {
        Timings::default()
    }

    /// Time a closure and record it under `stage` (accumulating if the
    /// stage was already recorded).
    pub fn time<R>(&mut self, stage: &str, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let r = f();
        self.push(stage, start.elapsed().as_secs_f64());
        r
    }

    /// Record `secs` of wall-clock under `stage`.
    pub fn push(&mut self, stage: &str, secs: f64) {
        if let Some((_, acc)) = self.stages.iter_mut().find(|(s, _)| s == stage) {
            *acc += secs;
        } else {
            self.stages.push((stage.to_string(), secs));
        }
    }

    pub fn get(&self, stage: &str) -> Option<f64> {
        self.stages
            .iter()
            .find(|(s, _)| s == stage)
            .map(|&(_, t)| t)
    }

    pub fn total(&self) -> f64 {
        self.stages.iter().map(|&(_, t)| t).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// JSON object `{stage: seconds, ..., "total": seconds}` plus the
    /// thread count the run used.
    pub fn to_json(&self) -> crate::json::Json {
        let mut obj = crate::json::Json::obj().set("threads", threads() as u64);
        for (stage, secs) in &self.stages {
            obj = obj.set(stage, *secs);
        }
        obj.set("total_secs", self.total())
    }
}

impl std::fmt::Display for Timings {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[timings threads={}]", threads())?;
        for (stage, secs) in &self.stages {
            write!(f, " {stage}={secs:.3}s")?;
        }
        write!(f, " total={:.3}s", self.total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimRng;

    #[test]
    fn preserves_order_and_covers_all_items() {
        let items: Vec<u64> = (0..1000).collect();
        for workers in [1, 2, 3, 7, 16, 1000, 2000] {
            let out = par_map_n(workers, &items, |i, &x| {
                assert_eq!(i as u64, x);
                x * 2
            });
            assert_eq!(out.len(), items.len(), "workers={workers}");
            assert!(out.iter().enumerate().all(|(i, &y)| y == 2 * i as u64));
        }
    }

    #[test]
    fn empty_and_single_item_inputs() {
        let none: Vec<u32> = vec![];
        assert!(par_map_n(8, &none, |_, &x| x).is_empty());
        assert_eq!(par_map_n(8, &[41u32], |_, &x| x + 1), vec![42]);
    }

    #[test]
    fn worker_start_past_input_collapses_to_empty_chunk() {
        // n = 5, workers = 4 -> chunk = 2: the last worker's nominal
        // range starts at 6, past the slice. Regression test for the
        // out-of-range slice panic.
        let items: Vec<u32> = (0..5).collect();
        let out = par_map_n(4, &items, |_, &x| x * 3);
        assert_eq!(out, vec![0, 3, 6, 9, 12]);
    }

    #[test]
    fn thread_count_invariant_with_forked_rng() {
        // The canonical usage pattern: per-item rng forked on index.
        let root = SimRng::new(0xFEED);
        let items: Vec<usize> = (0..200).collect();
        let run = |workers: usize| {
            par_map_n(workers, &items, |i, _| {
                let mut rng = root.fork(i as u64 + 1);
                (0..50)
                    .map(|_| rng.next_u64())
                    .fold(0u64, u64::wrapping_add)
            })
        };
        let one = run(1);
        for workers in [2, 4, 8] {
            assert_eq!(run(workers), one, "workers={workers} diverged");
        }
    }

    #[test]
    fn par_map_catch_contains_poisoned_items() {
        let items: Vec<u32> = (0..20).collect();
        let results = par_map_catch(&items, |_, &x| {
            if x % 7 == 3 {
                panic!("poisoned item {x}");
            }
            x * 2
        });
        assert_eq!(results.len(), items.len());
        for (i, r) in results.iter().enumerate() {
            if i % 7 == 3 {
                let msg = r.as_ref().expect_err("item should have panicked");
                assert!(msg.contains(&format!("poisoned item {i}")), "{msg}");
            } else {
                assert_eq!(*r.as_ref().expect("healthy item"), 2 * i as u32);
            }
        }
    }

    #[test]
    fn par_run_matches_sequential() {
        let seq: Vec<usize> = (0..37).map(|i| i * i).collect();
        assert_eq!(par_run(37, |i| i * i), seq);
    }

    #[test]
    fn set_threads_overrides_env_and_auto() {
        set_threads(3);
        assert_eq!(threads(), 3);
        set_threads(0);
        assert!(threads() >= 1);
    }

    #[test]
    fn timings_accumulate_and_render() {
        let mut t = Timings::new();
        let x = t.time("fit", || 21 * 2);
        assert_eq!(x, 42);
        t.push("fit", 1.0);
        t.push("emulate", 0.5);
        assert!(t.get("fit").expect("fit stage") >= 1.0);
        assert!(t.total() >= 1.5);
        let json = t.to_json();
        assert!(json.get("fit").is_some());
        assert!(json.get("threads").is_some());
        assert!(format!("{t}").contains("emulate="));
    }
}
