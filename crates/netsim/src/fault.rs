//! Deterministic fault injection for the simulated path.
//!
//! The paper's safety rule (§4.2) — obfuscation must never be more
//! aggressive than the congestion controller decided — is only meaningful
//! if it holds under adverse network conditions, not just on the clean
//! 100 Gb/s lab path. This module supplies the adverse conditions as
//! *data*: a [`FaultSchedule`] lists fault items (burst loss, reordering,
//! duplication, link flaps, RTT spikes, mid-flow MTU reduction), and a
//! [`FaultInjector`] executes them against a running simulation.
//!
//! Determinism contract: every item owns its own [`SimRng`] forked from
//! the schedule seed and the item's stable index — the same index scheme
//! [`crate::par`] uses for work items — so two runs of the same schedule
//! consume independent, reproducible streams no matter how many other
//! items exist or in what order a sweep visits scenarios. Simulations are
//! single-threaded shards, so the injector itself needs no locking; the
//! fork scheme is what keeps a *sweep* of faulted simulations
//! bit-identical at any thread count.
//!
//! ```
//! use netsim::{FaultSchedule, Nanos};
//! // Every named scenario resolves to a concrete, seeded schedule.
//! let sched = FaultSchedule::scenario("ge-burst", 1, Nanos::from_secs(3))
//!     .expect("known scenario");
//! assert!(!sched.items.is_empty());
//! assert!(FaultSchedule::scenario("no-such-fault", 1, Nanos::from_secs(3)).is_none());
//! ```

use crate::rng::SimRng;
use crate::time::Nanos;
use crate::Json;

/// Direction filter for a fault item: `0`/`1` are the two path directions
/// (by source host convention), `None` applies to both.
pub type DirFilter = Option<usize>;

/// One fault model. Times are absolute simulation times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Gilbert–Elliott two-state burst loss: the channel moves between a
    /// Good and a Bad state per packet with the given transition
    /// probabilities, and drops with the state's loss rate.
    GilbertElliott {
        p_good_to_bad: f64,
        p_bad_to_good: f64,
        loss_good: f64,
        loss_bad: f64,
    },
    /// Bounded reordering: with probability `prob` a packet's propagation
    /// is stretched by a uniform extra delay in `[0, max_extra]`, letting
    /// later packets overtake it by at most that window.
    Reorder { prob: f64, max_extra: Nanos },
    /// Packet duplication: with probability `prob` a departing packet is
    /// delivered twice.
    Duplicate { prob: f64 },
    /// Link outage window `[down_at, up_at)`. While down, packets are
    /// either dropped (`drop = true`, a hard outage) or held and released
    /// in order when the link comes back (`drop = false`, a flap that
    /// buffers).
    LinkFlap {
        down_at: Nanos,
        up_at: Nanos,
        drop: bool,
    },
    /// Added propagation delay for every packet in `[at, at + duration)`.
    RttSpike {
        at: Nanos,
        duration: Nanos,
        extra: Nanos,
    },
    /// Mid-flow path-MTU reduction taking effect at `at`: all live
    /// connections are told to shrink their packetization to `new_mtu_ip`.
    MtuDrop { at: Nanos, new_mtu_ip: u32 },
}

/// A fault item: a model plus the path direction(s) it applies to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultItem {
    pub kind: FaultKind,
    pub dir: DirFilter,
}

/// A declarative list of faults driven by one root seed.
#[derive(Debug, Clone, Default)]
pub struct FaultSchedule {
    pub items: Vec<FaultItem>,
    pub seed: u64,
}

impl FaultSchedule {
    pub fn new(seed: u64) -> Self {
        FaultSchedule {
            items: Vec::new(),
            seed,
        }
    }

    /// Add a fault applying to both directions.
    pub fn push(mut self, kind: FaultKind) -> Self {
        self.items.push(FaultItem { kind, dir: None });
        self
    }

    /// Add a fault restricted to one path direction.
    pub fn push_dir(mut self, kind: FaultKind, dir: usize) -> Self {
        self.items.push(FaultItem {
            kind,
            dir: Some(dir),
        });
        self
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Named scenarios used by the fault sweep (`fault_matrix`) and the
    /// `STOB_FAULTS` environment knob. Event times are placed as
    /// fractions of `horizon` (the planned simulation length) so one
    /// scenario name works for any experiment duration. Returns `None`
    /// for an unknown name; `"none"` is the explicit empty schedule.
    pub fn scenario(name: &str, seed: u64, horizon: Nanos) -> Option<FaultSchedule> {
        let s = FaultSchedule::new(seed);
        Some(match name {
            "none" => s,
            "ge-burst" => s.push(FaultKind::GilbertElliott {
                p_good_to_bad: 0.02,
                p_bad_to_good: 0.25,
                loss_good: 0.0,
                loss_bad: 0.4,
            }),
            "reorder" => s.push(FaultKind::Reorder {
                prob: 0.08,
                max_extra: horizon.mul_f64(0.002).max(Nanos::from_micros(200)),
            }),
            "dup" => s.push(FaultKind::Duplicate { prob: 0.05 }),
            "flap" => s.push(FaultKind::LinkFlap {
                down_at: horizon.mul_f64(0.30),
                up_at: horizon.mul_f64(0.38),
                drop: false,
            }),
            "outage" => s.push(FaultKind::LinkFlap {
                down_at: horizon.mul_f64(0.30),
                up_at: horizon.mul_f64(0.36),
                drop: true,
            }),
            "rtt-spike" => s.push(FaultKind::RttSpike {
                at: horizon.mul_f64(0.40),
                duration: horizon.mul_f64(0.15),
                extra: horizon.mul_f64(0.01).max(Nanos::from_millis(1)),
            }),
            "mtu-drop" => s.push(FaultKind::MtuDrop {
                at: horizon.mul_f64(0.25),
                new_mtu_ip: 1200,
            }),
            // ---- outage-heavy scenarios for the chaos soak ----
            // A hard outage covering the connection-establishment phase and
            // most of the deadline. Without recovery, TCP's exponentially
            // backed-off SYN retransmits (1 s, 3 s, 7 s, 15 s, 31 s
            // cumulative) all land inside the window once it extends past
            // half the horizon, and the next attempt overshoots the
            // deadline entirely — the canonical "stack idles to the
            // deadline" failure this subsystem exists to fix.
            "blackout-early" => s.push(FaultKind::LinkFlap {
                down_at: Nanos::ZERO,
                up_at: horizon.mul_f64(0.54),
                drop: true,
            }),
            // Repeated hard outages separated by short good windows: each
            // window re-stalls in-flight transfers whose RTOs have already
            // backed off, compounding the recovery debt.
            "outage-storm" => s
                .push(FaultKind::LinkFlap {
                    down_at: Nanos::ZERO,
                    up_at: horizon.mul_f64(0.22),
                    drop: true,
                })
                .push(FaultKind::LinkFlap {
                    down_at: horizon.mul_f64(0.26),
                    up_at: horizon.mul_f64(0.48),
                    drop: true,
                })
                .push(FaultKind::LinkFlap {
                    down_at: horizon.mul_f64(0.52),
                    up_at: horizon.mul_f64(0.70),
                    drop: true,
                }),
            // Repeated buffering flaps (no loss): transfers survive without
            // recovery, so this scenario checks the recovery runtime does
            // no harm when the network heals on its own.
            "flap-storm" => s
                .push(FaultKind::LinkFlap {
                    down_at: horizon.mul_f64(0.05),
                    up_at: horizon.mul_f64(0.12),
                    drop: false,
                })
                .push(FaultKind::LinkFlap {
                    down_at: horizon.mul_f64(0.20),
                    up_at: horizon.mul_f64(0.28),
                    drop: false,
                })
                .push(FaultKind::LinkFlap {
                    down_at: horizon.mul_f64(0.40),
                    up_at: horizon.mul_f64(0.46),
                    drop: false,
                }),
            "chaos-mix" => return Some(FaultSchedule::chaos(seed, horizon)),
            _ => return None,
        })
    }

    /// A randomized outage-heavy schedule for soak testing: 2–4 link-down
    /// windows (hard drops or buffering flaps) at random offsets, plus
    /// burst loss and an RTT spike. Fully determined by `(seed, horizon)` —
    /// the window layout is drawn from a dedicated fork of the seed, so the
    /// same seed always soaks the same schedule regardless of what the
    /// per-item runtime streams consume later.
    pub fn chaos(seed: u64, horizon: Nanos) -> FaultSchedule {
        let mut layout = SimRng::new(seed).fork(0x000C_4A05);
        let mut s = FaultSchedule::new(seed);
        let windows = layout.range_u64(2, 4);
        for _ in 0..windows {
            let start = layout.range_f64(0.0, 0.55);
            let len = layout.range_f64(0.06, 0.22);
            s = s.push(FaultKind::LinkFlap {
                down_at: horizon.mul_f64(start),
                up_at: horizon.mul_f64((start + len).min(0.75)),
                drop: layout.chance(0.7),
            });
        }
        s = s.push(FaultKind::GilbertElliott {
            p_good_to_bad: 0.01,
            p_bad_to_good: 0.3,
            loss_good: 0.0,
            loss_bad: 0.3,
        });
        if layout.chance(0.5) {
            s = s.push(FaultKind::RttSpike {
                at: horizon.mul_f64(layout.range_f64(0.1, 0.6)),
                duration: horizon.mul_f64(0.1),
                extra: Nanos::from_millis(layout.range_u64(5, 40)),
            });
        }
        s
    }

    /// All scenario names [`FaultSchedule::scenario`] understands, in
    /// sweep order.
    pub const SCENARIOS: [&'static str; 7] = [
        "none",
        "ge-burst",
        "reorder",
        "dup",
        "flap",
        "outage",
        "rtt-spike",
    ];

    /// The outage-heavy scenarios the `chaos` soak sweeps, in sweep order.
    /// These are deliberately harsher than [`FaultSchedule::SCENARIOS`]:
    /// without recovery, page loads are expected to miss their deadline
    /// under the first two.
    pub const CHAOS_SCENARIOS: [&'static str; 4] =
        ["blackout-early", "outage-storm", "flap-storm", "chaos-mix"];

    /// Build the schedule named by the `STOB_FAULTS` environment variable,
    /// if set and recognised. An unknown scenario name warns once on
    /// stderr and runs un-faulted — previously it was silently ignored,
    /// which is indistinguishable from the faults not firing.
    pub fn from_env(seed: u64, horizon: Nanos) -> Option<FaultSchedule> {
        let name = crate::env::string("STOB_FAULTS")?;
        let sched = FaultSchedule::scenario(&name, seed, horizon);
        if sched.is_none() {
            crate::env::warn_once(
                "STOB_FAULTS",
                &format!(
                    "STOB_FAULTS={name:?} is not a known fault scenario; running without faults"
                ),
            );
        }
        sched
    }
}

/// Counters reported alongside experiment results so faulted runs are
/// auditable: how often each model actually fired.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    pub ge_drops: u64,
    pub duplicates: u64,
    pub reorder_delayed: u64,
    pub flap_drops: u64,
    pub flap_held: u64,
    pub rtt_spiked: u64,
    pub mtu_changes: u64,
}

impl FaultStats {
    pub fn total_drops(&self) -> u64 {
        self.ge_drops + self.flap_drops
    }

    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("ge_drops", self.ge_drops)
            .set("duplicates", self.duplicates)
            .set("reorder_delayed", self.reorder_delayed)
            .set("flap_drops", self.flap_drops)
            .set("flap_held", self.flap_held)
            .set("rtt_spiked", self.rtt_spiked)
            .set("mtu_changes", self.mtu_changes)
    }
}

/// What the injector decided for a departing packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Departure {
    Deliver,
    Drop,
    /// Deliver the packet twice.
    Duplicate,
}

/// A link-down verdict: the packet may not enter the path until `until`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkDown {
    pub until: Nanos,
    pub drop: bool,
}

#[derive(Debug)]
struct ItemState {
    item: FaultItem,
    rng: SimRng,
    /// Gilbert–Elliott channel state, per direction.
    ge_bad: [bool; 2],
}

/// Runtime executor for a [`FaultSchedule`]. Owned by one simulation; all
/// query methods take the path direction and current time and update the
/// per-item RNG streams deterministically.
#[derive(Debug)]
pub struct FaultInjector {
    items: Vec<ItemState>,
    pub stats: FaultStats,
}

impl FaultInjector {
    pub fn new(schedule: &FaultSchedule) -> Self {
        let root = SimRng::new(schedule.seed);
        FaultInjector {
            items: schedule
                .items
                .iter()
                .enumerate()
                .map(|(i, &item)| ItemState {
                    item,
                    // Per-item stream forked on the stable item index —
                    // the same scheme `netsim::par` prescribes.
                    rng: root.fork(i as u64 + 1),
                    ge_bad: [false; 2],
                })
                .collect(),
            stats: FaultStats::default(),
        }
    }

    fn applies(item: &FaultItem, dir: usize) -> bool {
        item.dir.is_none_or(|d| d == dir)
    }

    /// Decide the fate of a packet departing the NIC in direction `dir`.
    /// Loss models are consulted before duplication; at most one verdict
    /// wins (drop beats duplicate).
    pub fn on_departure(&mut self, dir: usize, _now: Nanos) -> Departure {
        let mut verdict = Departure::Deliver;
        for st in &mut self.items {
            if !Self::applies(&st.item, dir) {
                continue;
            }
            match st.item.kind {
                FaultKind::GilbertElliott {
                    p_good_to_bad,
                    p_bad_to_good,
                    loss_good,
                    loss_bad,
                } => {
                    // Advance the channel, then sample loss in the new
                    // state: bursts start on the transition packet.
                    let bad = &mut st.ge_bad[dir];
                    let flip = if *bad { p_bad_to_good } else { p_good_to_bad };
                    if st.rng.chance(flip) {
                        *bad = !*bad;
                    }
                    let p = if *bad { loss_bad } else { loss_good };
                    if st.rng.chance(p) {
                        self.stats.ge_drops += 1;
                        verdict = Departure::Drop;
                    }
                }
                FaultKind::Duplicate { prob } => {
                    // Always draw, so the stream does not depend on
                    // whether an earlier item already dropped the packet.
                    let dup = st.rng.chance(prob);
                    if dup && verdict == Departure::Deliver {
                        self.stats.duplicates += 1;
                        verdict = Departure::Duplicate;
                    }
                }
                _ => {}
            }
        }
        verdict
    }

    /// Extra propagation delay for a packet entering direction `dir`'s
    /// wire at `now` (reorder jitter plus any active RTT spike).
    pub fn extra_arrival_delay(&mut self, dir: usize, now: Nanos) -> Nanos {
        let mut extra = Nanos::ZERO;
        for st in &mut self.items {
            if !Self::applies(&st.item, dir) {
                continue;
            }
            match st.item.kind {
                FaultKind::Reorder { prob, max_extra } => {
                    let delay = st.rng.chance(prob);
                    if delay {
                        let jitter = Nanos(st.rng.range_u64(0, max_extra.0.max(1)));
                        if !jitter.is_zero() {
                            self.stats.reorder_delayed += 1;
                            extra += jitter;
                        }
                    }
                }
                FaultKind::RttSpike {
                    at,
                    duration,
                    extra: spike,
                } if now >= at && now < at + duration => {
                    self.stats.rtt_spiked += 1;
                    extra += spike;
                }
                _ => {}
            }
        }
        extra
    }

    /// Whether direction `dir`'s link is down at `now`. When several flap
    /// windows overlap, the latest recovery wins and `drop` is sticky.
    pub fn link_down(&self, dir: usize, now: Nanos) -> Option<LinkDown> {
        let mut down: Option<LinkDown> = None;
        for st in &self.items {
            if !Self::applies(&st.item, dir) {
                continue;
            }
            if let FaultKind::LinkFlap {
                down_at,
                up_at,
                drop,
            } = st.item.kind
            {
                if now >= down_at && now < up_at {
                    let until = down.map_or(up_at, |d| d.until.max(up_at));
                    let drop = drop || down.is_some_and(|d| d.drop);
                    down = Some(LinkDown { until, drop });
                }
            }
        }
        down
    }

    /// MTU reductions the simulation must schedule as events at setup:
    /// `(time, new_mtu_ip)` in schedule order.
    pub fn mtu_events(&self) -> Vec<(Nanos, u32)> {
        self.items
            .iter()
            .filter_map(|st| match st.item.kind {
                FaultKind::MtuDrop { at, new_mtu_ip } => Some((at, new_mtu_ip)),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ge_schedule(seed: u64) -> FaultSchedule {
        FaultSchedule::new(seed).push(FaultKind::GilbertElliott {
            p_good_to_bad: 0.05,
            p_bad_to_good: 0.3,
            loss_good: 0.0,
            loss_bad: 0.5,
        })
    }

    #[test]
    fn ge_losses_are_bursty_and_deterministic() {
        let run = |seed| {
            let mut inj = FaultInjector::new(&ge_schedule(seed));
            (0..5000)
                .map(|_| inj.on_departure(0, Nanos::ZERO) == Departure::Drop)
                .collect::<Vec<_>>()
        };
        let a = run(7);
        assert_eq!(a, run(7), "same seed must reproduce the loss pattern");
        assert_ne!(a, run(8), "different seeds must differ");
        let drops = a.iter().filter(|&&d| d).count();
        assert!(drops > 50, "bad state never dropped ({drops})");
        // Burstiness: drops cluster — the count of adjacent drop pairs
        // must far exceed the i.i.d. expectation p^2 * n.
        let p = drops as f64 / a.len() as f64;
        let pairs = a.windows(2).filter(|w| w[0] && w[1]).count() as f64;
        let iid_pairs = p * p * a.len() as f64;
        assert!(
            pairs > 2.0 * iid_pairs,
            "losses not bursty: {pairs} adjacent pairs vs iid {iid_pairs:.1}"
        );
    }

    #[test]
    fn direction_filter_restricts_faults() {
        let sched = FaultSchedule::new(1).push_dir(
            FaultKind::GilbertElliott {
                p_good_to_bad: 1.0,
                p_bad_to_good: 0.0,
                loss_good: 1.0,
                loss_bad: 1.0,
            },
            1,
        );
        let mut inj = FaultInjector::new(&sched);
        for _ in 0..100 {
            assert_eq!(inj.on_departure(0, Nanos::ZERO), Departure::Deliver);
            assert_eq!(inj.on_departure(1, Nanos::ZERO), Departure::Drop);
        }
    }

    #[test]
    fn duplicate_fires_at_roughly_its_probability() {
        let sched = FaultSchedule::new(3).push(FaultKind::Duplicate { prob: 0.2 });
        let mut inj = FaultInjector::new(&sched);
        let dups = (0..10_000)
            .filter(|_| inj.on_departure(0, Nanos::ZERO) == Departure::Duplicate)
            .count();
        assert!((1600..2400).contains(&dups), "dup count {dups}");
        assert_eq!(inj.stats.duplicates, dups as u64);
    }

    #[test]
    fn flap_window_blocks_then_recovers() {
        let sched = FaultSchedule::new(5).push(FaultKind::LinkFlap {
            down_at: Nanos::from_millis(10),
            up_at: Nanos::from_millis(20),
            drop: false,
        });
        let inj = FaultInjector::new(&sched);
        assert!(inj.link_down(0, Nanos::from_millis(9)).is_none());
        let d = inj.link_down(0, Nanos::from_millis(15)).expect("down");
        assert_eq!(d.until, Nanos::from_millis(20));
        assert!(!d.drop);
        assert!(inj.link_down(0, Nanos::from_millis(20)).is_none());
    }

    #[test]
    fn rtt_spike_adds_delay_only_inside_window() {
        let sched = FaultSchedule::new(6).push(FaultKind::RttSpike {
            at: Nanos::from_millis(100),
            duration: Nanos::from_millis(50),
            extra: Nanos::from_millis(30),
        });
        let mut inj = FaultInjector::new(&sched);
        assert!(inj.extra_arrival_delay(0, Nanos::from_millis(99)).is_zero());
        assert_eq!(
            inj.extra_arrival_delay(0, Nanos::from_millis(120)),
            Nanos::from_millis(30)
        );
        assert!(inj
            .extra_arrival_delay(0, Nanos::from_millis(151))
            .is_zero());
    }

    #[test]
    fn reorder_delay_is_bounded() {
        let max = Nanos::from_millis(2);
        let sched = FaultSchedule::new(9).push(FaultKind::Reorder {
            prob: 1.0,
            max_extra: max,
        });
        let mut inj = FaultInjector::new(&sched);
        for _ in 0..1000 {
            assert!(inj.extra_arrival_delay(0, Nanos::ZERO) <= max);
        }
        assert!(inj.stats.reorder_delayed > 0);
    }

    #[test]
    fn mtu_events_are_exposed_for_scheduling() {
        let sched = FaultSchedule::new(2).push(FaultKind::MtuDrop {
            at: Nanos::from_millis(40),
            new_mtu_ip: 1200,
        });
        let inj = FaultInjector::new(&sched);
        assert_eq!(inj.mtu_events(), vec![(Nanos::from_millis(40), 1200)]);
    }

    #[test]
    fn every_named_scenario_builds() {
        for name in FaultSchedule::SCENARIOS {
            let s = FaultSchedule::scenario(name, 1, Nanos::from_secs(1))
                .unwrap_or_else(|| panic!("scenario {name}"));
            assert_eq!(s.is_empty(), name == "none", "{name}");
        }
        assert!(FaultSchedule::scenario("mtu-drop", 1, Nanos::from_secs(1)).is_some());
        assert!(FaultSchedule::scenario("bogus", 1, Nanos::from_secs(1)).is_none());
    }

    #[test]
    fn chaos_scenarios_build_and_are_outage_heavy() {
        for name in FaultSchedule::CHAOS_SCENARIOS {
            let s = FaultSchedule::scenario(name, 3, Nanos::from_secs(30))
                .unwrap_or_else(|| panic!("scenario {name}"));
            assert!(!s.is_empty(), "{name}");
            let flaps = s
                .items
                .iter()
                .filter(|i| matches!(i.kind, FaultKind::LinkFlap { .. }))
                .count();
            assert!(flaps >= 1, "{name} has no link-down window");
        }
    }

    #[test]
    fn blackout_early_covers_the_connect_phase() {
        let s = FaultSchedule::scenario("blackout-early", 1, Nanos::from_secs(30)).expect("known");
        let FaultKind::LinkFlap {
            down_at,
            up_at,
            drop,
        } = s.items[0].kind
        else {
            panic!("blackout-early must be a link flap");
        };
        assert_eq!(down_at, Nanos::ZERO);
        assert!(drop, "blackout must drop, not buffer");
        // The window must swallow TCP's first four SYN retransmits
        // (cumulative backoff reaches 15 s) so an unrecovered connect
        // cannot succeed before 31 s.
        assert!(up_at > Nanos::from_secs(15), "window too short: {up_at}");
    }

    #[test]
    fn chaos_schedule_is_deterministic_per_seed() {
        let h = Nanos::from_secs(20);
        let a = FaultSchedule::chaos(11, h);
        let b = FaultSchedule::chaos(11, h);
        assert_eq!(a.items.len(), b.items.len());
        for (x, y) in a.items.iter().zip(&b.items) {
            assert_eq!(x.kind, y.kind);
        }
        let c = FaultSchedule::chaos(12, h);
        let same = a.items.len() == c.items.len()
            && a.items.iter().zip(&c.items).all(|(x, y)| x.kind == y.kind);
        assert!(!same, "different seeds must lay out different chaos");
        // Windows stay inside the horizon so they can actually bite.
        for it in &a.items {
            if let FaultKind::LinkFlap { down_at, up_at, .. } = it.kind {
                assert!(down_at < up_at);
                assert!(up_at <= h, "window past horizon: {up_at}");
            }
        }
    }

    #[test]
    fn injector_streams_do_not_interfere_across_items() {
        // Adding an unrelated item must not perturb the GE stream: each
        // item forks its RNG from its own index.
        let base = ge_schedule(11);
        let extended = ge_schedule(11).push(FaultKind::Duplicate { prob: 0.5 });
        let mut a = FaultInjector::new(&base);
        let mut b = FaultInjector::new(&extended);
        let drops_a: Vec<bool> = (0..2000)
            .map(|_| a.on_departure(0, Nanos::ZERO) == Departure::Drop)
            .collect();
        let drops_b: Vec<bool> = (0..2000)
            .map(|_| b.on_departure(0, Nanos::ZERO) == Departure::Drop)
            .collect();
        assert_eq!(drops_a, drops_b);
    }
}
