//! Unified parsing for the `STOB_*` environment knobs.
//!
//! Before this module each consumer of an environment knob rolled its own
//! parsing with its own failure behavior: `STOB_THREADS=abc` was silently
//! ignored by [`crate::par`], `STOB_AUDIT=yes` silently meant *off*, and an
//! unknown `STOB_FAULTS` scenario silently ran the experiment un-faulted —
//! the worst possible failure mode for a knob whose whole point is changing
//! what the experiment does. All knob reads now route through here: an
//! invalid value falls back to the documented default **and warns once per
//! knob on stderr**, so a typo surfaces in the log exactly once instead of
//! never (or ten thousand times).
//!
//! The parsing core is pure ([`parse_value`], [`flag_value`]) so tests can
//! exercise every malformed input without mutating process-global
//! environment state (which is unsafe under the parallel test harness).
//!
//! ```
//! use netsim::env::{flag_value, parse_value};
//! assert_eq!(parse_value::<usize>("STOB_DOC_EXAMPLE", Some("8")), Some(8));
//! // Invalid values warn on stderr (once) and fall back:
//! assert_eq!(parse_value::<usize>("STOB_DOC_EXAMPLE", Some("abc")), None);
//! assert_eq!(flag_value("STOB_DOC_EXAMPLE2", Some("on")), Some(true));
//! ```

use std::collections::BTreeSet;
use std::sync::Mutex;

/// Knob names that have already produced a warning, so each misconfigured
/// knob complains exactly once per process no matter how hot the call site.
static WARNED: Mutex<BTreeSet<String>> = Mutex::new(BTreeSet::new());

/// Emit `msg` for `name` on stderr unless `name` already warned.
/// Returns whether the warning was actually printed (used by tests).
pub fn warn_once(name: &str, msg: &str) -> bool {
    let mut warned = match WARNED.lock() {
        Ok(g) => g,
        // A panic while holding the guard only loses dedup state.
        Err(poisoned) => poisoned.into_inner(),
    };
    if warned.contains(name) {
        return false;
    }
    warned.insert(name.to_string());
    eprintln!("[stob] warning: {msg}");
    true
}

/// Parse `raw` as a `T` for knob `name`. `None` when unset, empty, or
/// invalid; invalid values warn once on stderr.
pub fn parse_value<T: std::str::FromStr>(name: &str, raw: Option<&str>) -> Option<T> {
    let v = raw?.trim();
    if v.is_empty() {
        return None;
    }
    match v.parse::<T>() {
        Ok(t) => Some(t),
        Err(_) => {
            warn_once(
                name,
                &format!("{name}={v:?} is not a valid value; using the default"),
            );
            None
        }
    }
}

/// Interpret `raw` as a boolean switch for knob `name`.
///
/// Accepted spellings (case-insensitive): `1/true/yes/on` → `Some(true)`,
/// `0/false/no/off` → `Some(false)`. Unset or empty → `None`. Anything
/// else warns once and returns `None` so the caller's default applies.
pub fn flag_value(name: &str, raw: Option<&str>) -> Option<bool> {
    let v = raw?.trim();
    if v.is_empty() {
        return None;
    }
    match v.to_ascii_lowercase().as_str() {
        "1" | "true" | "yes" | "on" => Some(true),
        "0" | "false" | "no" | "off" => Some(false),
        _ => {
            warn_once(
                name,
                &format!("{name}={v:?} is not a recognised boolean (1/0/true/false/yes/no/on/off); using the default"),
            );
            None
        }
    }
}

/// Read and parse the environment knob `name` as a `T`, warning once on
/// invalid values. `None` when unset, empty, or invalid.
pub fn parse<T: std::str::FromStr>(name: &str) -> Option<T> {
    let raw = std::env::var(name).ok();
    parse_value(name, raw.as_deref())
}

/// Read the environment knob `name` as a boolean switch; `default` applies
/// when the knob is unset, empty, or (after a one-time warning) invalid.
pub fn flag(name: &str, default: bool) -> bool {
    let raw = std::env::var(name).ok();
    flag_value(name, raw.as_deref()).unwrap_or(default)
}

/// Read the environment knob `name` as a non-empty trimmed string.
pub fn string(name: &str) -> Option<String> {
    let v = std::env::var(name).ok()?;
    let v = v.trim();
    if v.is_empty() {
        None
    } else {
        Some(v.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_value_accepts_valid_numbers() {
        assert_eq!(parse_value::<usize>("T_A", Some("4")), Some(4));
        assert_eq!(parse_value::<usize>("T_A", Some(" 12 ")), Some(12));
        assert_eq!(parse_value::<u64>("T_A", Some("0")), Some(0));
        assert_eq!(parse_value::<f64>("T_A", Some("0.5")), Some(0.5));
    }

    #[test]
    fn parse_value_rejects_garbage_with_fallback() {
        assert_eq!(parse_value::<usize>("T_B", Some("abc")), None);
        assert_eq!(parse_value::<usize>("T_B2", Some("-3")), None);
        assert_eq!(parse_value::<usize>("T_B3", Some("4 threads")), None);
    }

    #[test]
    fn parse_value_unset_or_empty_is_silent_none() {
        assert_eq!(parse_value::<usize>("T_C", None), None);
        assert_eq!(parse_value::<usize>("T_C", Some("")), None);
        assert_eq!(parse_value::<usize>("T_C", Some("   ")), None);
    }

    #[test]
    fn flag_value_spellings() {
        for yes in ["1", "true", "YES", "On", " on "] {
            assert_eq!(flag_value("T_D", Some(yes)), Some(true), "{yes:?}");
        }
        for no in ["0", "false", "NO", "Off"] {
            assert_eq!(flag_value("T_D", Some(no)), Some(false), "{no:?}");
        }
        assert_eq!(flag_value("T_D", None), None);
        assert_eq!(flag_value("T_D", Some("")), None);
        assert_eq!(flag_value("T_D_BAD", Some("maybe")), None);
    }

    #[test]
    fn warn_once_is_once_per_name() {
        assert!(warn_once("T_E_UNIQUE", "first"));
        assert!(!warn_once("T_E_UNIQUE", "second"));
        assert!(warn_once("T_E_OTHER", "different name still warns"));
    }

    #[test]
    fn invalid_parse_warns_once_then_stays_quiet() {
        // First bad parse warns; the second for the same knob does not
        // (observable through the warn_once dedup set).
        assert_eq!(parse_value::<usize>("T_F_UNIQUE", Some("x")), None);
        assert!(!warn_once("T_F_UNIQUE", "already warned by parse_value"));
        assert_eq!(parse_value::<usize>("T_F_UNIQUE", Some("y")), None);
    }
}
