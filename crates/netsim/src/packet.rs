//! Packet representation.
//!
//! The simulator models packets as metadata only — no payload bytes are
//! carried, because every consumer in this reproduction (congestion
//! control, queues, the WF attacker) operates on sizes, directions and
//! times. Transport correctness (exact byte-stream delivery) is checked at
//! the TCP layer with sequence-number accounting instead of real buffers.

use crate::time::Nanos;

/// Identifies one transport flow (5-tuple stand-in).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct FlowId(pub u32);

/// What kind of transport PDU this wire packet carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// TCP data segment carrying `payload` bytes of the stream
    /// starting at `seq`.
    TcpData,
    /// Pure TCP ACK (no payload).
    TcpAck,
    /// TCP connection setup (SYN / SYN-ACK).
    TcpSyn,
    TcpSynAck,
    /// TCP connection teardown.
    TcpFin,
    /// QUIC handshake datagram (Initial/Handshake flights).
    QuicInit,
    /// QUIC/UDP datagram carrying stream payload.
    QuicData,
    /// QUIC ACK-only datagram.
    QuicAck,
    /// Padding (dummy) packet injected by a defense; carries no
    /// application payload.
    Padding,
    /// Multipath session setup datagram (client→server hello and the
    /// server's echo back).
    MuxInit,
    /// Multipath datagram carrying sequenced stream payload over one
    /// pipe (`meta.pipe` selects the leg).
    MuxData,
    /// XOR-parity repair datagram covering one FEC group of `MuxData`
    /// packets; carries no forward application payload itself.
    MuxParity,
    /// Multipath ACK-only datagram (cumulative ack + per-pipe receipt
    /// count for liveness scoring).
    MuxAck,
}

impl PacketKind {
    /// Does this packet carry forward application payload?
    pub fn carries_payload(self) -> bool {
        matches!(
            self,
            PacketKind::TcpData | PacketKind::QuicData | PacketKind::MuxData
        )
    }
    pub fn is_ack(self) -> bool {
        matches!(
            self,
            PacketKind::TcpAck | PacketKind::QuicAck | PacketKind::MuxAck
        )
    }
}

/// Metadata attached by the stack for observability and for Stob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PacketMeta {
    /// 1-based index of the TSO segment this packet was split from
    /// (0 = not produced by TSO).
    pub tso_burst: u64,
    /// True if this wire packet is a retransmission.
    pub retransmit: bool,
    /// True if a Stob/defense decision altered this packet's size or
    /// departure time.
    pub shaped: bool,
    /// One SACK block carried by this ACK: `[lo, hi)` in the peer's
    /// sequence space (a single-block stand-in for RFC 2018).
    pub sack: Option<(u64, u64)>,
    /// Multipath leg this packet is routed over (`None` = the default
    /// single path). Set by a multipath transport; the delivery layer
    /// routes tagged packets through the matching provisioned pipe.
    pub pipe: Option<u8>,
}

/// One wire packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Globally unique id (monotone in creation order).
    pub id: u64,
    pub flow: FlowId,
    pub kind: PacketKind,
    /// Transport sequence number of the first payload byte (TCP) or
    /// packet number (QUIC).
    pub seq: u64,
    /// Cumulative ACK number carried (TCP) / largest acked (QUIC).
    pub ack: u64,
    /// Application payload bytes in this packet.
    pub payload: u32,
    /// Total on-wire size including all headers, in bytes.
    pub wire_len: u32,
    /// Receive-window advertisement carried by this packet (bytes).
    pub rwnd: u64,
    /// Time the packet left the sender NIC.
    pub sent_at: Nanos,
    pub meta: PacketMeta,
}

/// Fixed header overhead we charge per packet: Ethernet (14) + IPv4 (20) +
/// TCP (20 + 12 timestamp option) = 66 bytes. QUIC uses Ethernet + IPv4 +
/// UDP (8) + QUIC short header (~18) = 60.
pub const TCP_OVERHEAD: u32 = 66;
pub const QUIC_OVERHEAD: u32 = 60;

impl Packet {
    /// Build a TCP data segment wire packet.
    pub fn tcp_data(flow: FlowId, seq: u64, ack: u64, payload: u32) -> Packet {
        Packet {
            id: 0,
            flow,
            kind: PacketKind::TcpData,
            seq,
            ack,
            payload,
            wire_len: payload + TCP_OVERHEAD,
            rwnd: 0,
            sent_at: Nanos::ZERO,
            meta: PacketMeta::default(),
        }
    }

    /// Build a pure TCP ACK.
    pub fn tcp_ack(flow: FlowId, seq: u64, ack: u64) -> Packet {
        Packet {
            id: 0,
            flow,
            kind: PacketKind::TcpAck,
            seq,
            ack,
            payload: 0,
            wire_len: TCP_OVERHEAD,
            rwnd: 0,
            sent_at: Nanos::ZERO,
            meta: PacketMeta::default(),
        }
    }

    /// End of the payload byte range.
    pub fn seq_end(&self) -> u64 {
        self.seq + self.payload as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcp_data_wire_len_includes_headers() {
        let p = Packet::tcp_data(FlowId(1), 0, 0, 1448);
        assert_eq!(p.wire_len, 1448 + TCP_OVERHEAD);
        assert_eq!(p.seq_end(), 1448);
        assert!(p.kind.carries_payload());
        assert!(!p.kind.is_ack());
    }

    #[test]
    fn ack_has_no_payload() {
        let p = Packet::tcp_ack(FlowId(1), 5, 1000);
        assert_eq!(p.payload, 0);
        assert_eq!(p.wire_len, TCP_OVERHEAD);
        assert!(p.kind.is_ack());
        assert!(!p.kind.carries_payload());
    }

    #[test]
    fn padding_is_not_payload() {
        assert!(!PacketKind::Padding.carries_payload());
        assert!(!PacketKind::Padding.is_ack());
    }
}
