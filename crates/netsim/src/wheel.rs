//! A hierarchical timer wheel — the many-event backbone of the
//! discrete-event queue.
//!
//! The original [`crate::EventQueue`] sat on a binary heap: `O(log n)`
//! per operation with a constant that grows with queue depth. At fleet
//! scale (one shard interleaving tens of thousands of flows, millions of
//! timer events per simulated second) the heap's comparison-and-swap
//! churn dominates the event loop. A timer wheel makes both `push` and
//! `pop` amortized `O(1)`: an event at time `t` lands in the slot
//! `t >> (SLOT_BITS · level)` of the shallowest level whose span covers
//! its distance from the cursor *and* whose slot is unambiguous from the
//! cursor's rotation (an event almost a full rotation ahead can hash
//! into the cursor's own slot — it goes one level coarser), and expiry
//! walks occupancy bitmaps instead of rebalancing a heap.
//!
//! Layout: [`LEVELS`] levels of [`SLOTS`] slots each. Level 0 resolves
//! single nanosecond ticks; each higher level is `SLOTS`× coarser. The
//! whole wheel spans `SLOTS^LEVELS` ns (≈ 68.7 simulated seconds) ahead
//! of the cursor; timers beyond that go to a *sorted overflow level*
//! (a `Vec` ordered by `(time, seq)`) and migrate into the wheel when
//! the cursor approaches them. Coarse slots *cascade*: when the cursor
//! reaches a level-`k` slot, its entries redistribute into lower levels,
//! so every event is ultimately delivered from level 0 at exact-tick
//! resolution.
//!
//! # Determinism
//!
//! Delivery order is `(time, seq)` — identical to the heap it replaced.
//! Same-instant events pop in scheduling order (FIFO) regardless of the
//! path they took through the wheel: a level-0 slot holds exactly one
//! tick's worth of entries and is sorted by sequence number at drain
//! time, so entries that arrived by cascade, by overflow migration, or
//! by direct scheduling interleave correctly. The simulator's committed
//! goldens byte-depend on this property.
//!
//! ```
//! use netsim::wheel::TimerWheel;
//! use netsim::Nanos;
//!
//! let mut w = TimerWheel::new();
//! // Two events at the same instant — on a level-0/level-1 boundary
//! // tick (64 = SLOTS), where cascade order could plausibly leak.
//! w.push(Nanos(64), "first");
//! w.push(Nanos(64), "second");
//! w.push(Nanos(10), "earliest");
//! assert_eq!(w.pop(), Some((Nanos(10), "earliest")));
//! // FIFO tie-break: scheduling order survives the wheel.
//! assert_eq!(w.pop(), Some((Nanos(64), "first")));
//! assert_eq!(w.pop(), Some((Nanos(64), "second")));
//! assert_eq!(w.pop(), None);
//! ```
#![deny(missing_docs)]

use crate::time::Nanos;
use std::collections::VecDeque;

/// log2 of the slot count per level.
const SLOT_BITS: u32 = 6;
/// Slots per level (64 — one occupancy bit per `u64` word bit).
pub const SLOTS: usize = 1 << SLOT_BITS;
/// Number of wheel levels; deeper timers spill into the overflow list.
pub const LEVELS: usize = 6;
/// Ticks (ns) the wheel proper spans ahead of the cursor: `64^6`.
pub const SPAN: u64 = 1 << (SLOT_BITS * LEVELS as u32);

struct Entry<E> {
    at: u64,
    seq: u64,
    ev: E,
}

/// Hierarchical timer wheel with deterministic `(time, seq)` delivery.
///
/// The wheel assigns sequence numbers internally on [`push`](Self::push);
/// [`crate::EventQueue`] wraps it with the clock bookkeeping
/// (`now`, past-scheduling clamps) the simulator API exposes.
pub struct TimerWheel<E> {
    /// `LEVELS × SLOTS` buckets, indexed `level * SLOTS + slot`.
    slots: Vec<Vec<Entry<E>>>,
    /// One occupancy bitmap per level (bit `s` = slot `s` non-empty).
    occ: [u64; LEVELS],
    /// Far-future timers (beyond [`SPAN`]), sorted by `(at, seq)`.
    overflow: Vec<Entry<E>>,
    /// Settled entries ready for delivery, sorted by `(at, seq)`. Also
    /// absorbs entries scheduled behind the cursor (the cursor may run
    /// ahead of the caller's clock after a peek).
    near: VecDeque<Entry<E>>,
    /// Wheel position: every entry in `slots`/`overflow` is `>= cursor`.
    cursor: u64,
    next_seq: u64,
    len: usize,
}

impl<E> Default for TimerWheel<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> TimerWheel<E> {
    /// An empty wheel with its cursor at t = 0.
    pub fn new() -> Self {
        TimerWheel {
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occ: [0; LEVELS],
            overflow: Vec::new(),
            near: VecDeque::new(),
            cursor: 0,
            next_seq: 0,
            len: 0,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedule `ev` at absolute time `at`, assigning the next sequence
    /// number (FIFO among same-instant events).
    pub fn push(&mut self, at: Nanos, ev: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        let e = Entry {
            at: at.as_nanos(),
            seq,
            ev,
        };
        if e.at < self.cursor {
            // Behind the settled cursor (legal when the caller's clock
            // lags a peek): keep it in the sorted near list.
            let pos = self.near.partition_point(|n| (n.at, n.seq) < (e.at, e.seq));
            self.near.insert(pos, e);
        } else {
            self.place(e);
        }
    }

    /// Timestamp of the next event, settling the wheel (cascades and
    /// overflow migration) so the answer is exact.
    pub fn peek_time(&mut self) -> Option<Nanos> {
        self.settle().map(Nanos)
    }

    /// Pop the earliest event in `(time, seq)` order.
    pub fn pop(&mut self) -> Option<(Nanos, E)> {
        self.settle()?;
        let e = self.near.pop_front()?;
        self.len -= 1;
        Some((Nanos(e.at), e.ev))
    }

    /// Insert an entry at or ahead of the cursor into the wheel proper
    /// or the overflow list.
    fn place(&mut self, e: Entry<E>) {
        debug_assert!(e.at >= self.cursor);
        let d = e.at - self.cursor;
        if d >= SPAN {
            let pos = self
                .overflow
                .partition_point(|o| (o.at, o.seq) < (e.at, e.seq));
            self.overflow.insert(pos, e);
            return;
        }
        let mut level = level_for(d);
        loop {
            if level >= LEVELS {
                // Rotation-ambiguous even at the top level (distance just
                // under SPAN landing in the cursor's own slot): park it in
                // the sorted overflow list instead.
                let pos = self
                    .overflow
                    .partition_point(|o| (o.at, o.seq) < (e.at, e.seq));
                self.overflow.insert(pos, e);
                return;
            }
            let shift = SLOT_BITS * level as u32;
            let slot = ((e.at >> shift) & (SLOTS as u64 - 1)) as usize;
            let cur_slot = ((self.cursor >> shift) & (SLOTS as u64 - 1)) as usize;
            let ent_rot = e.at >> (shift + SLOT_BITS);
            let cur_rot = self.cursor >> (shift + SLOT_BITS);
            // The occupancy bitmap cannot distinguish rotations, so an
            // entry may only occupy a slot `next_candidate` will read at
            // the entry's true time: either the cursor's own rotation, or
            // the next rotation in a slot the cursor has already passed
            // (the `wrapped` branch). Anything else — most notably an
            // entry almost a full rotation ahead that hashes into the
            // cursor's *current* slot — would read a rotation early and
            // livelock the cascade; push it one level coarser instead.
            if ent_rot == cur_rot || (ent_rot == cur_rot + 1 && slot < cur_slot) {
                self.slots[level * SLOTS + slot].push(e);
                self.occ[level] |= 1 << slot;
                return;
            }
            level += 1;
        }
    }

    /// Earliest occupied wheel position as `(slot_start_time, level,
    /// slot)`. Slot starts under-estimate their entries' times at coarse
    /// levels; `settle` refines by cascading. Ties prefer the coarser
    /// level so same-time entries merge before delivery.
    fn next_candidate(&self) -> Option<(u64, usize, usize)> {
        let mut best: Option<(u64, usize, usize)> = None;
        for level in 0..LEVELS {
            let occ = self.occ[level];
            if occ == 0 {
                continue;
            }
            let shift = SLOT_BITS * level as u32;
            let cur_slot = ((self.cursor >> shift) & (SLOTS as u64 - 1)) as u32;
            // First occupied slot at/after the cursor's slot in this
            // rotation, else the first occupied slot of the next one.
            let ahead = occ & (u64::MAX << cur_slot);
            let (slot, wrapped) = if ahead != 0 {
                (ahead.trailing_zeros(), false)
            } else {
                (occ.trailing_zeros(), true)
            };
            let rotation = 1u64 << (shift + SLOT_BITS);
            let base = self.cursor & !(rotation - 1);
            let mut time = base + ((slot as u64) << shift);
            if wrapped {
                time += rotation;
            }
            // The slot containing the cursor starts at or before it.
            let time = time.max(self.cursor);
            match best {
                // `>=`: on equal times the coarser (later-visited) level
                // wins, so cascades run before level-0 delivery.
                Some((t, _, _)) if t >= time => best = Some((time, level, slot as usize)),
                None => best = Some((time, level, slot as usize)),
                _ => {}
            }
        }
        best
    }

    /// Drive cascades and overflow migration until the earliest pending
    /// event sits at the front of `near`; returns its timestamp.
    fn settle(&mut self) -> Option<u64> {
        loop {
            let near_t = self.near.front().map(|e| e.at);
            let wheel = self.next_candidate();
            let over_t = self.overflow.first().map(|e| e.at);

            // Near wins only strictly: a wheel slot or overflow entry
            // due at the same instant may hold lower sequence numbers
            // and must merge in first.
            if let Some(nt) = near_t {
                let wheel_due = wheel.is_some_and(|(t, _, _)| t <= nt);
                let over_due = over_t.is_some_and(|t| t <= nt);
                if !wheel_due && !over_due {
                    return Some(nt);
                }
            } else if wheel.is_none() && over_t.is_none() {
                return None;
            }

            // Overflow head due before (or at) the wheel's earliest
            // slot: advance the cursor to it — safe, nothing in the
            // wheel is earlier — and migrate everything now in span.
            let over_first = match (over_t, wheel) {
                (Some(o), Some((w, _, _))) => o <= w,
                (Some(_), None) => true,
                _ => false,
            };
            if over_first {
                crate::tm_counter!("netsim.wheel.overflow_migrations").inc();
                self.cursor = self.cursor.max(self.overflow[0].at);
                let n = self.overflow.partition_point(|o| o.at - self.cursor < SPAN);
                let moved: Vec<Entry<E>> = self.overflow.drain(..n).collect();
                for e in moved {
                    self.place(e);
                }
                continue;
            }

            let (time, level, slot) = wheel.expect("candidate exists past the guards");
            self.cursor = self.cursor.max(time);
            let batch = std::mem::take(&mut self.slots[level * SLOTS + slot]);
            self.occ[level] &= !(1 << slot);
            if level == 0 {
                // One exact tick: sort by seq and merge into `near`.
                self.merge_near(batch);
            } else {
                // Cascade: with the cursor at the slot start, every
                // entry re-maps strictly below `level`.
                crate::tm_counter!("netsim.wheel.cascades").inc();
                for e in batch {
                    self.place(e);
                }
            }
        }
    }

    /// Merge a drained batch into the sorted near list by `(at, seq)`.
    fn merge_near(&mut self, mut batch: Vec<Entry<E>>) {
        batch.sort_by_key(|e| e.seq);
        if self.near.is_empty() {
            self.near.extend(batch);
            return;
        }
        let old = std::mem::take(&mut self.near);
        let mut a = old.into_iter().peekable();
        let mut b = batch.into_iter().peekable();
        while let (Some(x), Some(y)) = (a.peek(), b.peek()) {
            if (x.at, x.seq) <= (y.at, y.seq) {
                self.near.push_back(a.next().expect("peeked"));
            } else {
                self.near.push_back(b.next().expect("peeked"));
            }
        }
        self.near.extend(a);
        self.near.extend(b);
    }
}

/// Level whose span covers a distance of `d` ticks from the cursor.
fn level_for(d: u64) -> usize {
    if d < SLOTS as u64 {
        0
    } else {
        ((63 - d.leading_zeros()) / SLOT_BITS) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_mapping_covers_the_span() {
        assert_eq!(level_for(0), 0);
        assert_eq!(level_for(63), 0);
        assert_eq!(level_for(64), 1);
        assert_eq!(level_for((1 << 12) - 1), 1);
        assert_eq!(level_for(1 << 12), 2);
        assert_eq!(level_for(SPAN - 1), LEVELS - 1);
    }

    #[test]
    fn delivers_in_time_then_seq_order() {
        let mut w = TimerWheel::new();
        // A spread that hits every level plus the overflow list.
        let times: Vec<u64> = vec![
            5,
            63,
            64,
            65,
            4095,
            4096,
            1 << 18,
            (1 << 18) + 1,
            SPAN - 1,
            SPAN,
            SPAN + 12345,
            3 * SPAN,
        ];
        for (i, &t) in times.iter().enumerate() {
            w.push(Nanos(t), i);
        }
        let mut sorted = times.clone();
        sorted.sort_unstable();
        let mut got = Vec::new();
        while let Some((at, _)) = w.pop() {
            got.push(at.as_nanos());
        }
        assert_eq!(got, sorted);
        assert!(w.is_empty());
    }

    #[test]
    fn fifo_across_cascade_and_direct_insert() {
        // An entry cascading down from level 1 must still deliver before
        // a later-scheduled entry at the same instant that was inserted
        // directly into level 0.
        let mut w = TimerWheel::new();
        w.push(Nanos(100), "early-seq-far-insert"); // level 1 at cursor 0
        w.push(Nanos(99), "advance");
        assert_eq!(w.pop().unwrap().1, "advance"); // cursor near 100
        w.push(Nanos(100), "late-seq-near-insert"); // level 0 directly
        assert_eq!(w.pop().unwrap().1, "early-seq-far-insert");
        assert_eq!(w.pop().unwrap().1, "late-seq-near-insert");
    }

    #[test]
    fn fifo_across_overflow_and_wheel() {
        // Overflow migration must not reorder same-instant entries: the
        // overflow entry has the older sequence number and pops first.
        let t = SPAN + 500;
        let mut w = TimerWheel::new();
        w.push(Nanos(t), "from-overflow");
        w.push(Nanos(t - 10), "mover");
        assert_eq!(w.pop().unwrap().1, "mover"); // cursor now in range
        w.push(Nanos(t), "from-wheel");
        assert_eq!(w.pop().unwrap().1, "from-overflow");
        assert_eq!(w.pop().unwrap().1, "from-wheel");
        assert!(w.pop().is_none());
    }

    #[test]
    fn schedule_behind_cursor_after_peek() {
        let mut w = TimerWheel::new();
        w.push(Nanos(1_000_000), 1u32);
        // Peek settles the cursor forward to the event.
        assert_eq!(w.peek_time(), Some(Nanos(1_000_000)));
        // Scheduling before the settled cursor must still deliver in
        // time order.
        w.push(Nanos(500), 2);
        w.push(Nanos(400), 3);
        assert_eq!(w.pop(), Some((Nanos(400), 3)));
        assert_eq!(w.pop(), Some((Nanos(500), 2)));
        assert_eq!(w.pop(), Some((Nanos(1_000_000), 1)));
    }

    #[test]
    fn dense_same_instant_burst_is_fifo() {
        let mut w = TimerWheel::new();
        for i in 0..500u64 {
            w.push(Nanos(4096), i); // exactly a level-1→2 boundary tick
        }
        for i in 0..500u64 {
            assert_eq!(w.pop().unwrap().1, i);
        }
    }

    #[test]
    fn randomized_against_reference_sort() {
        let mut rng = crate::SimRng::new(0x77EE1);
        let mut w = TimerWheel::new();
        let mut reference: Vec<(u64, u64)> = Vec::new(); // (at, seq)
        let mut cursor_floor = 0u64;
        let mut popped = Vec::new();
        for (seq, round) in (0..2_000u64).enumerate() {
            let seq = seq as u64;
            // Mixed horizon: same-tick, near, far, beyond-span.
            let spread = match round % 4 {
                0 => rng.range_u64(0, 64),
                1 => rng.range_u64(0, 5_000),
                2 => rng.range_u64(0, SPAN / 2),
                _ => rng.range_u64(0, 2 * SPAN),
            };
            let at = cursor_floor + spread;
            w.push(Nanos(at), seq);
            reference.push((at, seq));
            if round % 3 == 0 {
                if let Some((t, s)) = w.pop() {
                    popped.push((t.as_nanos(), s));
                    cursor_floor = t.as_nanos();
                }
            }
        }
        while let Some((t, s)) = w.pop() {
            popped.push((t.as_nanos(), s));
        }
        // Every event delivered exactly once, in (time, seq) order
        // among the still-pending set at each step; the end-to-end
        // check: the popped multiset equals the scheduled multiset and
        // times never decrease.
        let mut sched = reference.clone();
        sched.sort_unstable();
        let mut got = popped.clone();
        got.sort_unstable();
        assert_eq!(got, sched);
        for pair in popped.windows(2) {
            assert!(pair[0].0 <= pair[1].0, "time went backwards: {pair:?}");
        }
    }
}
