//! Deterministic random number generation.
//!
//! The simulator cannot depend on ambient entropy: every experiment must be
//! exactly repeatable from a seed printed in its output. We implement
//! xoshiro256** seeded through SplitMix64 (the reference seeding procedure)
//! rather than pulling in `rand` here, so the substrate crate stays
//! dependency-light and the stream is stable across `rand` version bumps.
//!
//! `SimRng` also supports *forking*: deriving independent child streams for
//! subsystems (per-flow jitter, per-site noise) so that adding randomness
//! consumption in one subsystem does not perturb another — the classic
//! trick for variance reduction in network simulators.

/// xoshiro256** PRNG with SplitMix64 seeding.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derive an independent child stream labelled by `stream`.
    ///
    /// Children with distinct labels (or from distinct parents) produce
    /// statistically independent sequences.
    pub fn fork(&self, stream: u64) -> SimRng {
        // Mix the label into the current state through SplitMix64 so that
        // fork(0) != self and fork(a) != fork(b) for a != b.
        let mut sm = self
            .s
            .iter()
            .fold(stream ^ 0xA076_1D64_78BD_642F, |acc, &w| {
                acc.rotate_left(17) ^ w
            });
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform float in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits -> [0,1) with full double precision.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in [0, bound). Panics if bound == 0.
    ///
    /// Uses Lemire's multiply-shift rejection method for unbiased results.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below(0)");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in [lo, hi] inclusive.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_u64: lo > hi");
        lo + self.next_below(hi - lo + 1)
    }

    /// Uniform integer in [lo, hi] inclusive.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// Uniform float in [lo, hi).
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + self.next_f64() * (hi - lo)
    }

    /// Bernoulli trial with probability `p` of returning true.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Standard normal via Box-Muller (one value per call; simple and
    /// deterministic — throughput is irrelevant here).
    pub fn normal(&mut self) -> f64 {
        // Avoid ln(0).
        let u1 = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal with given mean and standard deviation.
    pub fn normal_ms(&mut self, mean: f64, std: f64) -> f64 {
        mean + std * self.normal()
    }

    /// Log-normal: exp(Normal(mu, sigma)).
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.normal()).exp()
    }

    /// Exponential with given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        -mean * u.ln()
    }

    /// Pareto (Lomax-shifted) with scale `xm` and shape `alpha` — heavy
    /// tails for web object sizes.
    pub fn pareto(&mut self, xm: f64, alpha: f64) -> f64 {
        let u = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        xm / u.powf(1.0 / alpha)
    }

    /// Rayleigh with scale sigma (used by the FRONT defense's padding
    /// schedule).
    pub fn rayleigh(&mut self, sigma: f64) -> f64 {
        let u = loop {
            let u = self.next_f64();
            if u < 1.0 {
                break u;
            }
        };
        sigma * (-2.0 * (1.0 - u).ln()).sqrt()
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Sample an index according to non-negative weights.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weighted_index: all weights zero");
        let mut x = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn fork_streams_are_independent_and_stable() {
        let root = SimRng::new(7);
        let mut c1 = root.fork(1);
        let mut c2 = root.fork(2);
        let mut c1b = root.fork(1);
        assert_eq!(c1.next_u64(), c1b.next_u64());
        // Child 2's first draw differs from child 1's.
        assert_ne!(c1.next_u64(), c2.next_u64());
        // Forking does not consume parent state.
        let mut r1 = SimRng::new(7);
        let mut r2 = SimRng::new(7);
        let _ = r2.fork(99);
        assert_eq!(r1.next_u64(), r2.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_unbiased_bounds() {
        let mut r = SimRng::new(9);
        let mut seen = [false; 7];
        for _ in 0..10_000 {
            let v = r.next_below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn range_inclusive() {
        let mut r = SimRng::new(11);
        for _ in 0..1000 {
            let v = r.range_u64(5, 7);
            assert!((5..=7).contains(&v));
        }
        assert_eq!(r.range_u64(4, 4), 4);
    }

    #[test]
    fn normal_moments() {
        let mut r = SimRng::new(13);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = SimRng::new(17);
        let n = 50_000;
        let mean = (0..n).map(|_| r.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn rayleigh_positive_and_mean() {
        let mut r = SimRng::new(19);
        let n = 50_000;
        let sigma = 2.0;
        let xs: Vec<f64> = (0..n).map(|_| r.rayleigh(sigma)).collect();
        assert!(xs.iter().all(|&x| x >= 0.0));
        let mean = xs.iter().sum::<f64>() / n as f64;
        let expect = sigma * (std::f64::consts::PI / 2.0).sqrt();
        assert!((mean - expect).abs() < 0.05, "mean {mean} expect {expect}");
    }

    #[test]
    fn pareto_at_least_scale() {
        let mut r = SimRng::new(23);
        for _ in 0..1000 {
            assert!(r.pareto(100.0, 1.5) >= 100.0);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(29);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = SimRng::new(31);
        let w = [0.0, 1.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[r.weighted_index(&w)] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[2] as f64 / counts[1] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(37);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }
}
