//! Minimal JSON support for the workspace.
//!
//! The build must be hermetic: the CI environment resolves no external
//! registry, so the workspace carries its own small JSON value type,
//! parser and printer instead of depending on `serde`/`serde_json`.
//! Object keys keep insertion order, which makes every export
//! byte-deterministic for a given input — the same property the rest of
//! the simulator guarantees for traces.
//!
//! The dialect is full JSON minus two deliberate omissions: no `\uXXXX`
//! surrogate-pair validation beyond basic decoding, and numbers are
//! `f64` (every quantity we persist — timestamps in nanoseconds, counts,
//! accuracies — fits in 53 bits of mantissa).

use std::fmt;

/// A JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

/// Error produced by [`Json::parse`]: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    // -- constructors ------------------------------------------------

    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append a key to an object (panics on non-objects — construction
    /// is always static code, never data-driven).
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(entries) => entries.push((key.to_string(), value.into())),
            _ => panic!("Json::set on non-object"),
        }
        self
    }

    // -- accessors ---------------------------------------------------

    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// `get` that reports which key was missing — for deserializers.
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key).ok_or_else(|| JsonError {
            offset: 0,
            message: format!("missing field `{key}`"),
        })
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 => Some(*x as u64),
            _ => None,
        }
    }

    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|x| x as usize)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Typed field extraction helpers used by the manual deserializers.
    pub fn req_u64(&self, key: &str) -> Result<u64, JsonError> {
        self.field(key)?
            .as_u64()
            .ok_or_else(|| type_err(key, "u64"))
    }

    pub fn req_f64(&self, key: &str) -> Result<f64, JsonError> {
        self.field(key)?
            .as_f64()
            .ok_or_else(|| type_err(key, "number"))
    }

    pub fn req_bool(&self, key: &str) -> Result<bool, JsonError> {
        self.field(key)?
            .as_bool()
            .ok_or_else(|| type_err(key, "bool"))
    }

    pub fn req_str(&self, key: &str) -> Result<&str, JsonError> {
        self.field(key)?
            .as_str()
            .ok_or_else(|| type_err(key, "string"))
    }

    pub fn req_arr(&self, key: &str) -> Result<&[Json], JsonError> {
        self.field(key)?
            .as_arr()
            .ok_or_else(|| type_err(key, "array"))
    }

    // -- printing ----------------------------------------------------

    /// Compact single-line rendering.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with 2-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(x) => write_num(out, *x),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                if !items.is_empty() {
                    newline(out, indent, depth);
                }
                out.push(']');
            }
            Json::Obj(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                if !entries.is_empty() {
                    newline(out, indent, depth);
                }
                out.push('}');
            }
        }
    }

    // -- parsing -----------------------------------------------------

    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }
}

fn type_err(key: &str, expected: &str) -> JsonError {
    JsonError {
        offset: 0,
        message: format!("field `{key}` is not a {expected}"),
    }
}

fn newline(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_num(out: &mut String, x: f64) {
    if x.fract() == 0.0 && x.abs() < 9.0e15 {
        // Integers print without a trailing `.0`, like serde_json.
        out.push_str(&format!("{}", x as i64));
    } else {
        out.push_str(&format!("{x}"));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: msg.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                s.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

// -- conversions -----------------------------------------------------

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}
impl From<u32> for Json {
    fn from(x: u32) -> Json {
        Json::Num(x as f64)
    }
}
impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::Num(x as f64)
    }
}
impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::Num(x as f64)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for text in ["null", "true", "false", "0", "-17", "3.25", "\"hi\""] {
            let v = Json::parse(text).expect(text);
            assert_eq!(v.to_string_compact(), text, "round trip {text}");
        }
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#" {"a": [1, 2, {"b": null}], "c": "x\ny"} "#).expect("parse");
        assert_eq!(
            v.get("a").and_then(|a| a.as_arr()).map(|a| a.len()),
            Some(3)
        );
        assert_eq!(v.get("c").and_then(|c| c.as_str()), Some("x\ny"));
    }

    #[test]
    fn object_order_is_preserved() {
        let v = Json::obj().set("z", 1u64).set("a", 2u64).set("m", 3u64);
        assert_eq!(v.to_string_compact(), r#"{"z":1,"a":2,"m":3}"#);
    }

    #[test]
    fn pretty_print_round_trips() {
        let v = Json::obj()
            .set("xs", vec![1u64, 2, 3])
            .set("name", "trace \"q\"")
            .set("ok", true);
        let pretty = v.to_string_pretty();
        assert!(pretty.contains('\n'));
        assert_eq!(Json::parse(&pretty).expect("reparse"), v);
    }

    #[test]
    fn rejects_garbage() {
        for text in ["", "[1,", "{\"a\"}", "nul", "1 2", "\"unterminated"] {
            assert!(Json::parse(text).is_err(), "accepted {text:?}");
        }
    }

    #[test]
    fn escapes_round_trip() {
        let s = "tab\there \"quotes\" back\\slash\nnewline \u{1}ctl";
        let v = Json::Str(s.to_string());
        let back = Json::parse(&v.to_string_compact()).expect("parse");
        assert_eq!(back.as_str(), Some(s));
    }

    #[test]
    fn unicode_escape_decodes() {
        let v = Json::parse(r#""éA""#).expect("parse");
        assert_eq!(v.as_str(), Some("éA"));
    }

    #[test]
    fn numbers_with_exponents() {
        let v = Json::parse("[1e3, -2.5E-2, 0.125]").expect("parse");
        let xs: Vec<f64> = v
            .as_arr()
            .unwrap()
            .iter()
            .map(|x| x.as_f64().unwrap())
            .collect();
        assert_eq!(xs, vec![1000.0, -0.025, 0.125]);
    }

    #[test]
    fn u64_accessor_rejects_fractions_and_negatives() {
        assert_eq!(Json::Num(5.0).as_u64(), Some(5));
        assert_eq!(Json::Num(5.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }
}
