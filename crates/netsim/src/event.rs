//! The discrete-event queue.
//!
//! A classic calendar queue over a binary heap. Determinism matters more
//! than raw speed here: events scheduled for the same instant are delivered
//! in scheduling order (FIFO tie-break via a monotone sequence number), so
//! a simulation never depends on heap-internal ordering.

use crate::time::Nanos;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: Nanos,
    seq: u64,
    ev: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Time-ordered event queue with deterministic FIFO tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: Nanos,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: Nanos::ZERO,
        }
    }

    /// Current simulated time — the timestamp of the last popped event.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Schedule `ev` at absolute time `at`. Scheduling in the past (before
    /// `now`) is a logic error and panics in debug builds; in release it is
    /// clamped to `now` to keep time monotone.
    pub fn schedule_at(&mut self, at: Nanos, ev: E) {
        debug_assert!(at >= self.now, "event scheduled in the past");
        let at = at.max(self.now);
        self.heap.push(Entry {
            at,
            seq: self.seq,
            ev,
        });
        self.seq += 1;
    }

    /// Schedule `ev` after a delay relative to `now`.
    pub fn schedule_in(&mut self, delay: Nanos, ev: E) {
        self.schedule_at(self.now + delay, ev);
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Nanos, E)> {
        self.heap.pop().map(|e| {
            debug_assert!(
                e.at >= self.now,
                "pop time went backwards: {} after {}",
                e.at,
                self.now
            );
            self.now = e.at;
            (e.at, e.ev)
        })
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<Nanos> {
        self.heap.peek().map(|e| e.at)
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(Nanos(30), "c");
        q.schedule_at(Nanos(10), "a");
        q.schedule_at(Nanos(20), "b");
        assert_eq!(q.pop(), Some((Nanos(10), "a")));
        assert_eq!(q.pop(), Some((Nanos(20), "b")));
        assert_eq!(q.pop(), Some((Nanos(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_tie_break_at_same_instant() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(Nanos(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule_at(Nanos(100), ());
        assert_eq!(q.now(), Nanos::ZERO);
        q.pop();
        assert_eq!(q.now(), Nanos(100));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule_at(Nanos(100), 1);
        q.pop();
        q.schedule_in(Nanos(50), 2);
        assert_eq!(q.pop(), Some((Nanos(150), 2)));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule_at(Nanos(7), ());
        assert_eq!(q.peek_time(), Some(Nanos(7)));
        assert_eq!(q.now(), Nanos::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn past_scheduling_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule_at(Nanos(100), 1);
        q.pop();
        q.schedule_at(Nanos(50), 2);
    }

    #[test]
    fn pop_times_are_monotone_non_decreasing() {
        // Interleave scheduling with popping — including events scheduled
        // for the current instant mid-drain — and verify the popped
        // timestamp sequence never decreases.
        let mut q = EventQueue::new();
        let mut rng = crate::SimRng::new(0xE7E27);
        for _ in 0..200 {
            q.schedule_at(Nanos(rng.range_u64(0, 1_000)), 0u32);
        }
        let mut last = Nanos::ZERO;
        let mut popped = 0;
        while let Some((at, _)) = q.pop() {
            assert!(at >= last, "pop at {at} after {last}");
            last = at;
            popped += 1;
            // Occasionally schedule more work at or after `now`.
            if popped % 7 == 0 {
                q.schedule_at(at + Nanos(rng.range_u64(0, 50)), 1);
            }
            if popped % 11 == 0 {
                q.schedule_in(Nanos::ZERO, 2); // same-instant event
            }
        }
        assert!(popped > 200);
    }

    #[test]
    fn fifo_order_is_stable_under_the_parallel_driver() {
        // The simulator's sharding model: every parallel work item owns
        // its own EventQueue; queues are never shared across workers.
        // Within a shard, two interleaved producers schedule bursts of
        // same-instant events — the drain order must equal scheduling
        // order on every shard, and be identical at every worker count.
        let shards: Vec<u64> = (0..64).collect();
        let drain = |workers: usize| -> Vec<Vec<u64>> {
            crate::par::par_map_n(workers, &shards, |_, &s| {
                let mut q = EventQueue::new();
                for k in 0..50u64 {
                    q.schedule_at(Nanos(100), s * 1000 + 2 * k); // producer A
                    q.schedule_at(Nanos(100), s * 1000 + 2 * k + 1); // producer B
                }
                // An earlier event scheduled last: time order still wins.
                q.schedule_at(Nanos(50), s);
                let mut order = Vec::new();
                while let Some((_, e)) = q.pop() {
                    order.push(e);
                }
                order
            })
        };
        let sequential = drain(1);
        for workers in [2usize, 3, 8, 64] {
            assert_eq!(sequential, drain(workers), "at {workers} workers");
        }
        for (&s, order) in shards.iter().zip(&sequential) {
            assert_eq!(order[0], s, "shard {s}: earliest event first");
            let expected: Vec<u64> = (0..100).map(|k| s * 1000 + k).collect();
            assert_eq!(order[1..], expected, "shard {s}: FIFO interleaving");
        }
    }
}
