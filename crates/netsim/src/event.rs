//! The discrete-event queue.
//!
//! Determinism matters more than raw speed here: events scheduled for
//! the same instant are delivered in scheduling order (FIFO tie-break
//! via a monotone sequence number), so a simulation never depends on
//! container-internal ordering. Since the fleet-scale rework the queue
//! is backed by the hierarchical timer wheel in [`crate::wheel`] —
//! amortized O(1) schedule/pop instead of the original binary heap's
//! O(log n) — but the contract is unchanged and this module's tests
//! predate the swap.

use crate::time::Nanos;
use crate::wheel::TimerWheel;

/// Time-ordered event queue with deterministic FIFO tie-breaking.
///
/// A thin clock-keeping wrapper over [`TimerWheel`]: it tracks `now`
/// (the timestamp of the last popped event), clamps past-scheduling,
/// and asserts pop monotonicity. All ordering logic lives in the wheel.
pub struct EventQueue<E> {
    wheel: TimerWheel<E>,
    now: Nanos,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            wheel: TimerWheel::new(),
            now: Nanos::ZERO,
        }
    }

    /// Current simulated time — the timestamp of the last popped event.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Schedule `ev` at absolute time `at`. Scheduling in the past (before
    /// `now`) is a logic error and panics in debug builds; in release it is
    /// clamped to `now` to keep time monotone.
    pub fn schedule_at(&mut self, at: Nanos, ev: E) {
        debug_assert!(at >= self.now, "event scheduled in the past");
        let at = at.max(self.now);
        self.wheel.push(at, ev);
    }

    /// Schedule `ev` after a delay relative to `now`.
    pub fn schedule_in(&mut self, delay: Nanos, ev: E) {
        self.schedule_at(self.now + delay, ev);
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Nanos, E)> {
        self.wheel.pop().map(|(at, ev)| {
            debug_assert!(
                at >= self.now,
                "pop time went backwards: {} after {}",
                at,
                self.now
            );
            self.now = at;
            (at, ev)
        })
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&mut self) -> Option<Nanos> {
        self.wheel.peek_time()
    }

    pub fn is_empty(&self) -> bool {
        self.wheel.is_empty()
    }

    pub fn len(&self) -> usize {
        self.wheel.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(Nanos(30), "c");
        q.schedule_at(Nanos(10), "a");
        q.schedule_at(Nanos(20), "b");
        assert_eq!(q.pop(), Some((Nanos(10), "a")));
        assert_eq!(q.pop(), Some((Nanos(20), "b")));
        assert_eq!(q.pop(), Some((Nanos(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_tie_break_at_same_instant() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(Nanos(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule_at(Nanos(100), ());
        assert_eq!(q.now(), Nanos::ZERO);
        q.pop();
        assert_eq!(q.now(), Nanos(100));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule_at(Nanos(100), 1);
        q.pop();
        q.schedule_in(Nanos(50), 2);
        assert_eq!(q.pop(), Some((Nanos(150), 2)));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule_at(Nanos(7), ());
        assert_eq!(q.peek_time(), Some(Nanos(7)));
        assert_eq!(q.now(), Nanos::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn past_scheduling_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule_at(Nanos(100), 1);
        q.pop();
        q.schedule_at(Nanos(50), 2);
    }

    #[test]
    fn pop_times_are_monotone_non_decreasing() {
        // Interleave scheduling with popping — including events scheduled
        // for the current instant mid-drain — and verify the popped
        // timestamp sequence never decreases.
        let mut q = EventQueue::new();
        let mut rng = crate::SimRng::new(0xE7E27);
        for _ in 0..200 {
            q.schedule_at(Nanos(rng.range_u64(0, 1_000)), 0u32);
        }
        let mut last = Nanos::ZERO;
        let mut popped = 0;
        while let Some((at, _)) = q.pop() {
            assert!(at >= last, "pop at {at} after {last}");
            last = at;
            popped += 1;
            // Occasionally schedule more work at or after `now`.
            if popped % 7 == 0 {
                q.schedule_at(at + Nanos(rng.range_u64(0, 50)), 1);
            }
            if popped % 11 == 0 {
                q.schedule_in(Nanos::ZERO, 2); // same-instant event
            }
        }
        assert!(popped > 200);
    }

    #[test]
    fn fifo_order_is_stable_under_the_parallel_driver() {
        // The simulator's sharding model: every parallel work item owns
        // its own EventQueue; queues are never shared across workers.
        // Within a shard, two interleaved producers schedule bursts of
        // same-instant events — the drain order must equal scheduling
        // order on every shard, and be identical at every worker count.
        let shards: Vec<u64> = (0..64).collect();
        let drain = |workers: usize| -> Vec<Vec<u64>> {
            crate::par::par_map_n(workers, &shards, |_, &s| {
                let mut q = EventQueue::new();
                for k in 0..50u64 {
                    q.schedule_at(Nanos(100), s * 1000 + 2 * k); // producer A
                    q.schedule_at(Nanos(100), s * 1000 + 2 * k + 1); // producer B
                }
                // An earlier event scheduled last: time order still wins.
                q.schedule_at(Nanos(50), s);
                let mut order = Vec::new();
                while let Some((_, e)) = q.pop() {
                    order.push(e);
                }
                order
            })
        };
        let sequential = drain(1);
        for workers in [2usize, 3, 8, 64] {
            assert_eq!(sequential, drain(workers), "at {workers} workers");
        }
        for (&s, order) in shards.iter().zip(&sequential) {
            assert_eq!(order[0], s, "shard {s}: earliest event first");
            let expected: Vec<u64> = (0..100).map(|k| s * 1000 + k).collect();
            assert_eq!(order[1..], expected, "shard {s}: FIFO interleaving");
        }
    }

    // ----- wheel-backing regression tests (ISSUE 8 satellite) -----

    #[test]
    fn fifo_tie_break_at_wheel_granularity_boundaries() {
        // Same-instant bursts scheduled exactly at level-boundary ticks
        // of the backing wheel (64 = level 0→1, 4096 = level 1→2, …)
        // must still pop in scheduling order: boundary entries live one
        // level up from their neighbours and reach level 0 by cascade,
        // a path that could plausibly lose the sequence ordering.
        let boundaries = [64u64, 4096, 1 << 18, 1 << 24, 1 << 30];
        for &b in &boundaries {
            let mut q = EventQueue::new();
            // Straddle the boundary: events just before, exactly on,
            // and just after, with interleaved scheduling order.
            for i in 0..20u64 {
                q.schedule_at(Nanos(b), 3 * i); // on the boundary
                q.schedule_at(Nanos(b - 1), 3 * i + 1);
                q.schedule_at(Nanos(b + 1), 3 * i + 2);
            }
            let mut before = Vec::new();
            let mut on = Vec::new();
            let mut after = Vec::new();
            while let Some((at, e)) = q.pop() {
                match at.as_nanos() {
                    t if t == b - 1 => before.push(e),
                    t if t == b => on.push(e),
                    _ => after.push(e),
                }
            }
            let expect = |r: u64| -> Vec<u64> { (0..20).map(|i| 3 * i + r).collect() };
            assert_eq!(before, expect(1), "boundary {b}: t-1 FIFO");
            assert_eq!(on, expect(0), "boundary {b}: on-tick FIFO");
            assert_eq!(after, expect(2), "boundary {b}: t+1 FIFO");
        }
    }

    #[test]
    fn timer_on_exact_rollover_tick_is_not_lost_or_early() {
        // Timers scheduled exactly on a wheel-level rollover tick (the
        // first tick of a new level-k rotation, relative to a non-zero
        // clock) are the classic off-by-one spot for wheel cursors.
        let mut q = EventQueue::new();
        // Advance the clock to just before a level-1 rotation boundary.
        q.schedule_at(Nanos(4095), "pre");
        assert_eq!(q.pop(), Some((Nanos(4095), "pre")));
        // Now schedule exactly on the rollover tick and beyond it.
        q.schedule_at(Nanos(4096), "rollover");
        q.schedule_at(Nanos(4096), "rollover-2");
        q.schedule_at(Nanos(8192), "next-rotation");
        assert_eq!(q.pop(), Some((Nanos(4096), "rollover")));
        assert_eq!(q.pop(), Some((Nanos(4096), "rollover-2")));
        assert_eq!(q.pop(), Some((Nanos(8192), "next-rotation")));
        assert_eq!(q.pop(), None);
        assert_eq!(q.now(), Nanos(8192));
    }

    #[test]
    fn far_future_timers_take_the_overflow_level_and_return() {
        // Beyond the wheel span (~68.7 simulated seconds) timers live in
        // the sorted overflow level; they must deliver at the exact tick
        // with FIFO ordering intact, interleaved with near timers.
        let span = 1u64 << 36;
        let mut q = EventQueue::new();
        q.schedule_at(Nanos(2 * span + 7), "far-a");
        q.schedule_at(Nanos(2 * span + 7), "far-b");
        q.schedule_at(Nanos(10), "near");
        assert_eq!(q.pop(), Some((Nanos(10), "near")));
        assert_eq!(q.pop(), Some((Nanos(2 * span + 7), "far-a")));
        assert_eq!(q.pop(), Some((Nanos(2 * span + 7), "far-b")));
        assert_eq!(q.pop(), None);
    }
}
