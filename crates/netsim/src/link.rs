//! Point-to-point link model.
//!
//! A link has a transmission rate and a propagation delay. It serializes
//! packets one at a time: a packet handed to a busy link waits until the
//! previous transmission finishes (this is what turns a TSO segment handed
//! to the NIC into a *micro burst* of back-to-back, line-rate packets —
//! the behaviour §2.3 of the paper centres on).

use crate::time::Nanos;

/// A unidirectional link.
#[derive(Debug, Clone)]
pub struct Link {
    /// Transmission rate in bits per second.
    pub rate_bps: u64,
    /// One-way propagation delay.
    pub delay: Nanos,
    /// Time until which the transmitter is busy.
    busy_until: Nanos,
    /// Cumulative bytes serialized.
    pub bytes_sent: u64,
    /// Cumulative packets serialized.
    pub pkts_sent: u64,
}

impl Link {
    pub fn new(rate_bps: u64, delay: Nanos) -> Self {
        assert!(rate_bps > 0);
        Link {
            rate_bps,
            delay,
            busy_until: Nanos::ZERO,
            bytes_sent: 0,
            pkts_sent: 0,
        }
    }

    /// Serialization time for a packet of `bytes`.
    pub fn tx_time(&self, bytes: u64) -> Nanos {
        Nanos::for_bytes_at_rate(bytes, self.rate_bps)
    }

    /// Hand a packet of `bytes` to the link at time `now`.
    ///
    /// Returns `(tx_done, arrival)`: the time serialization completes at
    /// the sender, and the time the packet arrives at the far end.
    pub fn transmit(&mut self, now: Nanos, bytes: u64) -> (Nanos, Nanos) {
        let start = now.max(self.busy_until);
        let tx_done = start + self.tx_time(bytes);
        debug_assert!(
            tx_done >= now,
            "tx_done {tx_done} earlier than handoff time {now}"
        );
        self.busy_until = tx_done;
        self.bytes_sent += bytes;
        self.pkts_sent += 1;
        (tx_done, tx_done + self.delay)
    }

    /// When will the transmitter next be free?
    pub fn free_at(&self) -> Nanos {
        self.busy_until
    }

    /// Is the transmitter idle at `now`?
    pub fn idle_at(&self, now: Nanos) -> bool {
        self.busy_until <= now
    }

    /// The bandwidth-delay product in bytes (useful for sizing queues and
    /// receive windows in experiment setups).
    pub fn bdp_bytes(&self, rtt: Nanos) -> u64 {
        ((self.rate_bps as u128 * rtt.as_nanos() as u128) / 8 / 1_000_000_000) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_packet_timing() {
        let mut l = Link::new(1_000_000_000, Nanos::from_micros(50)); // 1 Gb/s
        let (done, arrive) = l.transmit(Nanos::ZERO, 1250); // 10 us serialization
        assert_eq!(done, Nanos::from_micros(10));
        assert_eq!(arrive, Nanos::from_micros(60));
    }

    #[test]
    fn back_to_back_packets_queue_on_transmitter() {
        let mut l = Link::new(1_000_000_000, Nanos::ZERO);
        let (d1, _) = l.transmit(Nanos::ZERO, 1250);
        let (d2, _) = l.transmit(Nanos::ZERO, 1250); // handed while busy
        assert_eq!(d1, Nanos::from_micros(10));
        assert_eq!(d2, Nanos::from_micros(20));
        assert_eq!(l.free_at(), d2);
        assert_eq!(l.bytes_sent, 2500);
        assert_eq!(l.pkts_sent, 2);
    }

    #[test]
    fn idle_gap_is_not_accumulated() {
        let mut l = Link::new(1_000_000_000, Nanos::ZERO);
        l.transmit(Nanos::ZERO, 1250);
        // Next packet arrives long after the link went idle.
        let (done, _) = l.transmit(Nanos::from_millis(1), 1250);
        assert_eq!(done, Nanos::from_millis(1) + Nanos::from_micros(10));
    }

    #[test]
    fn micro_burst_at_line_rate() {
        // A 44-packet TSO burst at 100 Gb/s: packets leave 120 ns apart.
        let mut l = Link::new(100_000_000_000, Nanos::ZERO);
        let mut last = Nanos::ZERO;
        for i in 0..44 {
            let (done, _) = l.transmit(Nanos::ZERO, 1500);
            if i > 0 {
                assert_eq!(done - last, Nanos(120));
            }
            last = done;
        }
    }

    #[test]
    fn bdp() {
        let l = Link::new(100_000_000_000, Nanos::from_micros(50));
        // 100 Gb/s * 100 us RTT = 1.25 MB
        assert_eq!(l.bdp_bytes(Nanos::from_micros(100)), 1_250_000);
    }

    #[test]
    fn tx_done_never_precedes_handoff() {
        // Even a zero-byte packet on a very fast link completes no
        // earlier than the instant it was handed over, busy or idle.
        let mut l = Link::new(100_000_000_000, Nanos::from_micros(50));
        for (now, bytes) in [
            (Nanos::ZERO, 0u64),
            (Nanos::ZERO, 1),
            (Nanos::from_micros(3), 1500),
            (Nanos::from_millis(1), 0),
        ] {
            let (done, arrive) = l.transmit(now, bytes);
            assert!(done >= now, "tx_done {done} < now {now}");
            assert!(arrive >= done);
        }
    }

    #[test]
    fn idle_probe() {
        let mut l = Link::new(1_000_000_000, Nanos::ZERO);
        assert!(l.idle_at(Nanos::ZERO));
        l.transmit(Nanos::ZERO, 1250);
        assert!(!l.idle_at(Nanos(5_000)));
        assert!(l.idle_at(Nanos(10_000)));
    }
}
