//! Runtime invariant checking for simulation runs.
//!
//! Fault injection ([`crate::fault`]) is only half the robustness story:
//! the other half is noticing when a fault pushes the stack or a defense
//! into violating one of the properties the reproduction rests on. The
//! [`Auditor`] collects those checks behind one switch:
//!
//! * **event-time monotonicity** — the simulation clock never runs
//!   backwards across popped events;
//! * **pacing-release ordering** — no segment departs the qdisc before
//!   the release time its shaper/pacer assigned;
//! * **the paper's §4.2 safety rule** — obfuscated departures never
//!   exceed what the congestion controller allowed at that instant;
//! * **byte/packet conservation** — everything injected into the path is
//!   eventually delivered, dropped (and counted), or still in transit.
//!
//! Violations are recorded as structured [`Violation`]s in an
//! [`AuditReport`] instead of panicking, so a faulted sweep can report
//! "0 violations across N checks" as a first-class experimental result —
//! and a deliberately broken run can prove the auditor actually fires.
//!
//! The auditor is on by default in debug builds; release builds enable it
//! with the `STOB_AUDIT=1` environment variable or
//! [`Auditor::set_enabled`]. When disabled every check is a cheap
//! early-return.
//!
//! ```
//! use netsim::{Auditor, Nanos};
//! let mut a = Auditor::new();
//! a.set_enabled(true);
//! a.check_monotonic(Nanos(5));
//! a.check_monotonic(Nanos(3)); // clock ran backwards
//! let report = a.report();
//! assert_eq!(report.checks, 2);
//! assert_eq!(report.violations.len(), 1);
//! ```

use crate::time::Nanos;
use crate::Json;

/// The invariant classes the auditor knows about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Invariant {
    TimeMonotonic,
    PacingRelease,
    SafetyRule,
    Conservation,
    /// A watched flow must be re-examined within a bounded multiple of its
    /// idle timeout: a stall watchdog that fires far past its deadline
    /// means the recovery runtime lost track of the flow.
    ForwardProgress,
    /// Multi-link conservation: every per-pipe ledger must balance on
    /// its own, and the per-pipe ledgers must sum to the flow's
    /// end-to-end ledger — a pipe silently losing FEC-unrecoverable
    /// bytes shows up here.
    MultipathConservation,
}

impl Invariant {
    pub fn name(self) -> &'static str {
        match self {
            Invariant::TimeMonotonic => "time-monotonic",
            Invariant::PacingRelease => "pacing-release",
            Invariant::SafetyRule => "safety-rule",
            Invariant::Conservation => "conservation",
            Invariant::ForwardProgress => "forward-progress",
            Invariant::MultipathConservation => "multipath-conservation",
        }
    }
}

/// One recorded invariant violation.
#[derive(Debug, Clone)]
pub struct Violation {
    pub invariant: Invariant,
    /// Simulation time at which the violation was observed.
    pub at: Nanos,
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{} @ {}] {}",
            self.invariant.name(),
            self.at,
            self.detail
        )
    }
}

/// Summary of an audited run.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// Number of individual checks evaluated.
    pub checks: u64,
    pub violations: Vec<Violation>,
}

impl AuditReport {
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("checks", self.checks)
            .set("violations", self.violations.len() as u64)
            .set(
                "details",
                Json::Arr(
                    self.violations
                        .iter()
                        .map(|v| {
                            Json::obj()
                                .set("invariant", v.invariant.name())
                                .set("at_ns", v.at.as_nanos())
                                .set("detail", v.detail.as_str())
                        })
                        .collect(),
                ),
            )
    }
}

/// Reads the opt-in environment switch for release builds.
fn env_enabled() -> bool {
    crate::env::flag("STOB_AUDIT", false)
}

/// The invariant checker. One per simulation; checks are O(1) and the
/// caller supplies plain numbers, so `netsim` stays independent of the
/// stack crate's types.
#[derive(Debug)]
pub struct Auditor {
    enabled: bool,
    last_pop: Nanos,
    checks: u64,
    violations: Vec<Violation>,
    /// Cap so a systematically broken run cannot balloon memory.
    max_recorded: usize,
    dropped: u64,
}

impl Default for Auditor {
    fn default() -> Self {
        Auditor::new()
    }
}

impl Auditor {
    /// Debug builds audit by default; release builds only when
    /// `STOB_AUDIT=1` (or after [`Auditor::set_enabled`]).
    pub fn new() -> Self {
        Auditor {
            enabled: cfg!(debug_assertions) || env_enabled(),
            last_pop: Nanos::ZERO,
            checks: 0,
            violations: Vec::new(),
            max_recorded: 256,
            dropped: 0,
        }
    }

    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    pub fn enabled(&self) -> bool {
        self.enabled
    }

    fn record(&mut self, invariant: Invariant, at: Nanos, detail: String) {
        crate::tm_counter!("netsim.audit.violations").inc();
        if self.violations.len() < self.max_recorded {
            self.violations.push(Violation {
                invariant,
                at,
                detail,
            });
        } else {
            self.dropped += 1;
        }
    }

    /// Event-pop times must be non-decreasing.
    pub fn check_monotonic(&mut self, now: Nanos) {
        if !self.enabled {
            return;
        }
        self.checks += 1;
        crate::tm_counter!("netsim.audit.checks").inc();
        if now < self.last_pop {
            let last = self.last_pop;
            self.record(
                Invariant::TimeMonotonic,
                now,
                format!("event popped at {now} after clock reached {last}"),
            );
        }
        self.last_pop = now;
    }

    /// A segment must not depart before its pacer/shaper release time.
    pub fn check_release(&mut self, now: Nanos, eligible_at: Nanos, flow: u64) {
        if !self.enabled {
            return;
        }
        self.checks += 1;
        crate::tm_counter!("netsim.audit.checks").inc();
        if eligible_at > now {
            self.record(
                Invariant::PacingRelease,
                now,
                format!(
                    "flow {flow}: segment departed at {now} before its release time {eligible_at}"
                ),
            );
        }
    }

    /// §4.2 safety rule: bytes the flow has outstanding after a departure
    /// must not exceed the congestion-control grant (`allowed`).
    pub fn check_safety(&mut self, now: Nanos, flow: u64, outstanding: u64, allowed: u64) {
        if !self.enabled {
            return;
        }
        self.checks += 1;
        crate::tm_counter!("netsim.audit.checks").inc();
        if outstanding > allowed {
            self.record(
                Invariant::SafetyRule,
                now,
                format!(
                    "flow {flow}: {outstanding} bytes outstanding exceeds the CCA grant of {allowed}"
                ),
            );
        }
    }

    /// Forward progress: when a stall watchdog examines a watched flow it
    /// must do so within `bound` of the flow's last observed progress
    /// (`idle` is `now - last_progress`). A larger gap means watchdog
    /// events were lost or scheduled wrong — the recovery runtime itself
    /// stalled, which would silently disable every retry above it.
    pub fn check_progress(&mut self, now: Nanos, flow: u64, idle: Nanos, bound: Nanos) {
        if !self.enabled {
            return;
        }
        self.checks += 1;
        crate::tm_counter!("netsim.audit.checks").inc();
        if idle > bound {
            self.record(
                Invariant::ForwardProgress,
                now,
                format!(
                    "flow {flow}: watchdog examined the flow {idle} after its last \
                     progress, past the {bound} forward-progress bound"
                ),
            );
        }
    }

    /// Path conservation: packets injected must equal delivered plus
    /// dropped plus still-in-transit. Checked whenever the caller's
    /// ledgers are supposed to balance (typically every delivery and at
    /// finalize).
    pub fn check_conservation(
        &mut self,
        now: Nanos,
        injected: u64,
        delivered: u64,
        dropped: u64,
        in_transit: u64,
    ) {
        if !self.enabled {
            return;
        }
        self.checks += 1;
        crate::tm_counter!("netsim.audit.checks").inc();
        if injected != delivered + dropped + in_transit {
            self.record(
                Invariant::Conservation,
                now,
                format!(
                    "ledger off: injected {injected} != delivered {delivered} \
                     + dropped {dropped} + in transit {in_transit}"
                ),
            );
        }
    }

    /// Per-pipe conservation for a multi-link flow: one pipe's ledger
    /// must balance exactly like the end-to-end path ledger does. A
    /// lossy pipe that drops packets without counting them (e.g. an FEC
    /// group losing more packets than parity can repair, silently
    /// discarded) fails here.
    pub fn check_pipe_conservation(
        &mut self,
        now: Nanos,
        pipe: usize,
        injected: u64,
        delivered: u64,
        dropped: u64,
        in_transit: u64,
    ) {
        if !self.enabled {
            return;
        }
        self.checks += 1;
        crate::tm_counter!("netsim.audit.checks").inc();
        if injected != delivered + dropped + in_transit {
            self.record(
                Invariant::MultipathConservation,
                now,
                format!(
                    "pipe {pipe} ledger off: injected {injected} != delivered {delivered} \
                     + dropped {dropped} + in transit {in_transit}"
                ),
            );
        }
    }

    /// Multi-link sum rule: the per-pipe ledgers of a flow, plus its
    /// default-path ledger, must sum to the flow's end-to-end ledger.
    /// `field` names the summed quantity ("injected", "delivered", ...)
    /// for the violation detail.
    pub fn check_multipath_sum(&mut self, now: Nanos, field: &str, pipe_sum: u64, flow_total: u64) {
        if !self.enabled {
            return;
        }
        self.checks += 1;
        crate::tm_counter!("netsim.audit.checks").inc();
        if pipe_sum != flow_total {
            self.record(
                Invariant::MultipathConservation,
                now,
                format!(
                    "multipath sum off: per-pipe {field} sums to {pipe_sum} \
                     but the flow ledger counts {flow_total}"
                ),
            );
        }
    }

    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    pub fn report(&self) -> AuditReport {
        let mut r = AuditReport {
            checks: self.checks,
            violations: self.violations.clone(),
        };
        if self.dropped > 0 {
            let n = self.dropped;
            r.violations.push(Violation {
                invariant: Invariant::Conservation,
                at: self.last_pop,
                detail: format!("...and {n} further violations not recorded"),
            });
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn on() -> Auditor {
        let mut a = Auditor::new();
        a.set_enabled(true);
        a
    }

    #[test]
    fn clean_run_reports_no_violations() {
        let mut a = on();
        for ms in [0u64, 1, 1, 2, 5] {
            a.check_monotonic(Nanos::from_millis(ms));
        }
        a.check_release(Nanos::from_millis(5), Nanos::from_millis(5), 1);
        a.check_safety(Nanos::from_millis(5), 1, 10_000, 20_000);
        a.check_conservation(Nanos::from_millis(5), 10, 7, 2, 1);
        let r = a.report();
        assert!(r.clean());
        assert_eq!(r.checks, 8);
    }

    #[test]
    fn backwards_clock_is_reported() {
        let mut a = on();
        a.check_monotonic(Nanos::from_millis(10));
        a.check_monotonic(Nanos::from_millis(9));
        let r = a.report();
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].invariant, Invariant::TimeMonotonic);
    }

    #[test]
    fn early_departure_is_reported() {
        let mut a = on();
        a.check_release(Nanos::from_millis(3), Nanos::from_millis(4), 7);
        let v = &a.report().violations[0];
        assert_eq!(v.invariant, Invariant::PacingRelease);
        assert!(v.detail.contains("flow 7"), "{}", v.detail);
    }

    #[test]
    fn safety_rule_breach_is_reported() {
        let mut a = on();
        a.check_safety(Nanos::from_millis(1), 3, 30_000, 20_000);
        let r = a.report();
        assert_eq!(r.violations[0].invariant, Invariant::SafetyRule);
        assert!(!r.clean());
    }

    #[test]
    fn progress_within_bound_is_clean() {
        let mut a = on();
        a.check_progress(
            Nanos::from_millis(100),
            4,
            Nanos::from_millis(50),
            Nanos::from_millis(100),
        );
        assert!(a.report().clean());
        assert_eq!(a.report().checks, 1);
    }

    #[test]
    fn late_watchdog_is_reported_as_forward_progress_violation() {
        let mut a = on();
        a.check_progress(
            Nanos::from_millis(500),
            4,
            Nanos::from_millis(450),
            Nanos::from_millis(100),
        );
        let r = a.report();
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].invariant, Invariant::ForwardProgress);
        assert!(
            r.violations[0].detail.contains("flow 4"),
            "{}",
            r.violations[0].detail
        );
    }

    #[test]
    fn balanced_pipes_summing_to_flow_are_clean() {
        let mut a = on();
        let now = Nanos::from_millis(2);
        // Two pipes: 6 + 4 injected = 10 flow-wide, everything accounted.
        a.check_pipe_conservation(now, 0, 6, 5, 1, 0);
        a.check_pipe_conservation(now, 1, 4, 3, 0, 1);
        a.check_multipath_sum(now, "injected", 10, 10);
        a.check_multipath_sum(now, "delivered", 8, 8);
        assert!(a.report().clean());
    }

    #[test]
    fn silently_lossy_pipe_fires_multipath_conservation() {
        // The negative case the multi-link extension exists for: a pipe
        // dropped FEC-unrecoverable packets without counting them, so
        // its own ledger no longer balances.
        let mut a = on();
        let now = Nanos::from_millis(3);
        a.check_pipe_conservation(now, 1, 10, 7, 0, 1); // 2 packets vanished
        let r = a.report();
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].invariant, Invariant::MultipathConservation);
        assert!(r.violations[0].detail.contains("pipe 1"), "{r:?}");
    }

    #[test]
    fn pipe_sum_mismatch_fires_multipath_conservation() {
        let mut a = on();
        a.check_multipath_sum(Nanos::from_millis(1), "delivered", 7, 9);
        let r = a.report();
        assert_eq!(r.violations[0].invariant, Invariant::MultipathConservation);
        assert!(r.violations[0].detail.contains("delivered"), "{r:?}");
    }

    #[test]
    fn conservation_mismatch_is_reported() {
        let mut a = on();
        a.check_conservation(Nanos::from_millis(1), 10, 5, 2, 1);
        assert_eq!(a.report().violations[0].invariant, Invariant::Conservation);
    }

    #[test]
    fn disabled_auditor_checks_nothing() {
        let mut a = Auditor::new();
        a.set_enabled(false);
        a.check_monotonic(Nanos::from_millis(10));
        a.check_monotonic(Nanos::from_millis(1));
        a.check_safety(Nanos::ZERO, 1, u64::MAX, 0);
        let r = a.report();
        assert_eq!(r.checks, 0);
        assert!(r.clean());
    }

    #[test]
    fn report_serialises_to_json() {
        let mut a = on();
        a.check_safety(Nanos::from_millis(1), 3, 30_000, 20_000);
        let j = a.report().to_json();
        let s = j.to_string_compact();
        assert!(s.contains("safety-rule"), "{s}");
        assert!(s.contains("\"violations\":1"), "{s}");
    }

    #[test]
    fn recording_is_capped() {
        let mut a = on();
        for i in 0..1000 {
            a.check_monotonic(Nanos::from_millis(1000 - i));
        }
        let r = a.report();
        assert!(r.violations.len() <= 257);
        assert!(r
            .violations
            .last()
            .expect("capped marker")
            .detail
            .contains("not recorded"));
    }
}
