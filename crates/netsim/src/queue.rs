//! Router/bottleneck queues.
//!
//! The simulator's network has a single bottleneck with a tail-drop FIFO —
//! the standard dumbbell used in congestion-control evaluation. Loss
//! produced here is what exercises the retransmission and dup-ACK paths in
//! the `stack` crate's TCP.

use crate::packet::Packet;
use crate::time::Nanos;
use std::collections::VecDeque;

/// Statistics a queue keeps about itself.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    pub enqueued: u64,
    pub dropped: u64,
    pub dequeued: u64,
    pub max_bytes: u64,
    pub max_pkts: usize,
}

/// Tail-drop FIFO bounded in bytes.
#[derive(Debug)]
pub struct DropTailQueue {
    items: VecDeque<Packet>,
    bytes: u64,
    /// Capacity in bytes; a packet that would exceed it is dropped.
    pub capacity_bytes: u64,
    pub stats: QueueStats,
}

impl DropTailQueue {
    pub fn new(capacity_bytes: u64) -> Self {
        assert!(capacity_bytes > 0);
        DropTailQueue {
            items: VecDeque::new(),
            bytes: 0,
            capacity_bytes,
            stats: QueueStats::default(),
        }
    }

    /// Try to enqueue; returns false (and drops) when full.
    pub fn enqueue(&mut self, pkt: Packet) -> bool {
        let len = pkt.wire_len as u64;
        if self.bytes + len > self.capacity_bytes {
            self.stats.dropped += 1;
            return false;
        }
        self.bytes += len;
        self.items.push_back(pkt);
        self.stats.enqueued += 1;
        self.stats.max_bytes = self.stats.max_bytes.max(self.bytes);
        self.stats.max_pkts = self.stats.max_pkts.max(self.items.len());
        true
    }

    pub fn dequeue(&mut self) -> Option<Packet> {
        let pkt = self.items.pop_front()?;
        self.bytes -= pkt.wire_len as u64;
        self.stats.dequeued += 1;
        Some(pkt)
    }

    pub fn peek(&self) -> Option<&Packet> {
        self.items.front()
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Queuing delay a newly arriving packet would see at drain rate
    /// `rate_bps` (used by AQM-style instrumentation and by tests).
    pub fn drain_time(&self, rate_bps: u64) -> Nanos {
        Nanos::for_bytes_at_rate(self.bytes, rate_bps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::FlowId;

    fn pkt(payload: u32) -> Packet {
        Packet::tcp_data(FlowId(1), 0, 0, payload)
    }

    #[test]
    fn fifo_order() {
        let mut q = DropTailQueue::new(1 << 20);
        for i in 0..10 {
            let mut p = pkt(100);
            p.seq = i;
            assert!(q.enqueue(p));
        }
        for i in 0..10 {
            assert_eq!(q.dequeue().unwrap().seq, i);
        }
        assert!(q.dequeue().is_none());
    }

    #[test]
    fn byte_accounting() {
        let mut q = DropTailQueue::new(1 << 20);
        q.enqueue(pkt(1000));
        q.enqueue(pkt(500));
        let expected = (1000 + 66) + (500 + 66);
        assert_eq!(q.bytes(), expected);
        q.dequeue();
        assert_eq!(q.bytes(), 566);
        q.dequeue();
        assert_eq!(q.bytes(), 0);
    }

    #[test]
    fn tail_drop_when_full() {
        // Capacity fits exactly two 1066-byte packets.
        let mut q = DropTailQueue::new(2132);
        assert!(q.enqueue(pkt(1000)));
        assert!(q.enqueue(pkt(1000)));
        assert!(!q.enqueue(pkt(1000)));
        assert_eq!(q.stats.dropped, 1);
        assert_eq!(q.stats.enqueued, 2);
        assert_eq!(q.len(), 2);
        // Draining frees space again.
        q.dequeue();
        assert!(q.enqueue(pkt(1000)));
    }

    #[test]
    fn stats_track_high_water_mark() {
        let mut q = DropTailQueue::new(1 << 20);
        q.enqueue(pkt(1000));
        q.enqueue(pkt(1000));
        q.dequeue();
        q.enqueue(pkt(100));
        assert_eq!(q.stats.max_pkts, 2);
        assert_eq!(q.stats.max_bytes, 2 * 1066);
        assert_eq!(q.stats.dequeued, 1);
    }

    #[test]
    fn drain_time_matches_rate() {
        let mut q = DropTailQueue::new(1 << 20);
        q.enqueue(pkt(1184)); // 1250 wire bytes
        assert_eq!(q.drain_time(1_000_000_000), Nanos::from_micros(10));
    }
}
