//! Structured telemetry: metric registry, spans, and per-flow event traces.
//!
//! The paper's whole argument is that the *stack* decides the wire packet
//! sequence (§2.3, §4.2) — so when a throughput point or a fault scenario
//! regresses, the question is always "which layer made the decision that
//! changed the wire sequence?". This module makes every such decision
//! observable without giving up the workspace's two core properties:
//!
//! * **zero dependencies** — counters are `AtomicU64`, histograms are
//!   power-of-two atomic buckets, output is [`crate::json::Json`];
//! * **determinism** — every value in [`metrics_json`] is an
//!   order-independent integer aggregate (sums, counts, maxima over
//!   *simulated* quantities), so the metrics snapshot is bit-identical
//!   at any `STOB_THREADS` setting. Wall-clock self-profiling is kept in
//!   a separate [`wall_profile_json`] export that deliberately never
//!   mixes into the deterministic snapshot.
//!
//! Three instruments:
//!
//! 1. **Metrics** — a process-wide registry of named [`Counter`]s,
//!    [`Gauge`]s and [`Histo`]s. Instrumentation sites use the cached
//!    macros so the steady-state cost is one atomic op:
//!
//!    ```
//!    netsim::tm_counter!("doc.example.packets").add(3);
//!    netsim::tm_histo!("doc.example.release_delay_ns").record(125);
//!    let snap = netsim::telemetry::metrics_json();
//!    assert!(snap.to_string_compact().contains("doc.example.packets"));
//!    ```
//!
//!    Names follow `crate.layer.metric` (see `OBSERVABILITY.md` for the
//!    full catalogue): `stack.tcp.tso_resegmented`,
//!    `stack.qdisc.release_delay_ns`, `defense.app.split_pkts`, …
//!
//! 2. **Spans** — RAII wall-clock + sim-clock timers for the hot paths
//!    (`Forest::fit`, `predict_batch`, `emulate::apply_all`, the event
//!    loop). They accumulate into a per-path profile that extends the
//!    per-stage [`crate::par::Timings`] story:
//!
//!    ```
//!    {
//!        let mut s = netsim::telemetry::span("doc.example.stage");
//!        s.sim_window(netsim::Nanos(0), netsim::Nanos(1_000));
//!    } // dropped: wall + sim elapsed recorded under "doc.example.stage"
//!    ```
//!
//! 3. **Flow traces** — a bounded ring ([`FlowTrace`], shared as a
//!    [`Tracer`]) of [`FlowEvent`]s, one per shaping decision: which
//!    layer, at what sim-time, turned `before` into `after`, and why.
//!    When full it drops the *oldest* event and counts the drop, so
//!    memory stays bounded on arbitrarily long runs. Bench binaries dump
//!    it as JSONL via `STOB_TRACE_OUT=<path>`.
//!
//! Environment knobs: `STOB_TRACE_OUT=<path>` routes flow traces to a
//! JSONL file; `STOB_TELEMETRY=1` makes the bench binaries print the
//! metrics summary (equivalent to their `--telemetry` flag).

use crate::json::Json;
use crate::time::Nanos;
use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------
// Global enable switch
// ---------------------------------------------------------------------

/// Process-wide metric switch. Recording is on by default; perf-critical
/// callers (the `perf` bench bin measuring instrumentation overhead, or
/// an operator who wants the last few ns/packet back) can turn every
/// counter/gauge/histogram write into a single relaxed load + branch.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Is metric recording currently enabled? One relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Enable or disable all metric recording. Handles stay valid and
/// readable either way; only the write paths ([`Counter::add`],
/// [`Gauge::set_max`], [`Histo::record`]) become no-ops while disabled.
/// Spans and flow traces are opt-in at the call site and unaffected.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

// ---------------------------------------------------------------------
// Metric primitives
// ---------------------------------------------------------------------

/// A monotonically increasing event count. Sums are order-independent,
/// so a counter incremented from any number of worker threads reads the
/// same at snapshot time regardless of interleaving.
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }
    pub fn add(&self, n: u64) {
        if !enabled() {
            return;
        }
        self.v.fetch_add(n, Ordering::Relaxed);
    }
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
    fn reset(&self) {
        self.v.store(0, Ordering::Relaxed);
    }
}

/// A high-water-mark gauge. Only `set_max` is offered — a last-writer-wins
/// `set` would depend on thread interleaving and break the determinism
/// contract, while a maximum over simulated quantities does not.
#[derive(Debug, Default)]
pub struct Gauge {
    v: AtomicU64,
}

impl Gauge {
    pub fn set_max(&self, n: u64) {
        if !enabled() {
            return;
        }
        self.v.fetch_max(n, Ordering::Relaxed);
    }
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
    fn reset(&self) {
        self.v.store(0, Ordering::Relaxed);
    }
}

/// Number of power-of-two buckets: bucket 0 holds zeros, bucket `i`
/// holds values in `[2^(i-1), 2^i)`, bucket 64 holds `[2^63, u64::MAX]`.
const HISTO_BUCKETS: usize = 65;

/// A histogram over `u64` samples (sizes in bytes, delays in sim-ns)
/// with power-of-two buckets. Every field is an order-independent
/// aggregate (per-bucket counts, sum, count, min, max), so like
/// [`Counter`] it is safe to populate from any number of threads without
/// losing bit-identical snapshots.
#[derive(Debug)]
pub struct Histo {
    buckets: [AtomicU64; HISTO_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histo {
    fn default() -> Self {
        Histo {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive `(lo, hi)` range of bucket `i` (see [`Histo`]).
fn bucket_bounds(i: usize) -> (u64, u64) {
    match i {
        0 => (0, 0),
        64 => (1 << 63, u64::MAX),
        _ => (1 << (i - 1), (1 << i) - 1),
    }
}

impl Histo {
    pub fn record(&self, v: u64) {
        if !enabled() {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }
    pub fn min(&self) -> Option<u64> {
        (self.count() > 0).then(|| self.min.load(Ordering::Relaxed))
    }
    pub fn max(&self) -> Option<u64> {
        (self.count() > 0).then(|| self.max.load(Ordering::Relaxed))
    }

    /// Mean of the recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// Non-empty buckets as `[lo, hi, count]` triples plus aggregates.
    pub fn to_json(&self) -> Json {
        let buckets: Vec<Json> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then(|| {
                    let (lo, hi) = bucket_bounds(i);
                    Json::Arr(vec![Json::from(lo), Json::from(hi), Json::from(n)])
                })
            })
            .collect();
        Json::obj()
            .set("count", self.count())
            .set("sum", self.sum())
            .set("min", self.min().unwrap_or(0))
            .set("max", self.max().unwrap_or(0))
            .set("buckets", Json::Arr(buckets))
    }
}

// ---------------------------------------------------------------------
// Global registry
// ---------------------------------------------------------------------

#[derive(Default)]
struct Registry {
    counters: Mutex<BTreeMap<&'static str, &'static Counter>>,
    gauges: Mutex<BTreeMap<&'static str, &'static Gauge>>,
    histos: Mutex<BTreeMap<&'static str, &'static Histo>>,
    profile: Mutex<BTreeMap<String, ProfEntry>>,
}

fn registry() -> &'static Registry {
    static REG: OnceLock<Registry> = OnceLock::new();
    REG.get_or_init(Registry::default)
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Look up (creating on first use) the counter registered under `name`.
/// Returns a `'static` handle; hot paths should cache it via
/// [`tm_counter!`](crate::tm_counter) rather than re-resolving.
pub fn counter(name: &'static str) -> &'static Counter {
    lock(&registry().counters)
        .entry(name)
        .or_insert_with(|| Box::leak(Box::default()))
}

/// Look up (creating on first use) the gauge registered under `name`.
pub fn gauge(name: &'static str) -> &'static Gauge {
    lock(&registry().gauges)
        .entry(name)
        .or_insert_with(|| Box::leak(Box::default()))
}

/// Look up (creating on first use) the histogram registered under `name`.
pub fn histo(name: &'static str) -> &'static Histo {
    lock(&registry().histos)
        .entry(name)
        .or_insert_with(|| Box::leak(Box::default()))
}

/// Cached counter handle: resolves the registry entry once per call
/// site, then costs a single atomic load + add.
#[macro_export]
macro_rules! tm_counter {
    ($name:expr) => {{
        static __C: std::sync::OnceLock<&'static $crate::telemetry::Counter> =
            std::sync::OnceLock::new();
        *__C.get_or_init(|| $crate::telemetry::counter($name))
    }};
}

/// Cached gauge handle (see [`tm_counter!`](crate::tm_counter)).
#[macro_export]
macro_rules! tm_gauge {
    ($name:expr) => {{
        static __G: std::sync::OnceLock<&'static $crate::telemetry::Gauge> =
            std::sync::OnceLock::new();
        *__G.get_or_init(|| $crate::telemetry::gauge($name))
    }};
}

/// Cached histogram handle (see [`tm_counter!`](crate::tm_counter)).
#[macro_export]
macro_rules! tm_histo {
    ($name:expr) => {{
        static __H: std::sync::OnceLock<&'static $crate::telemetry::Histo> =
            std::sync::OnceLock::new();
        *__H.get_or_init(|| $crate::telemetry::histo($name))
    }};
}

/// Zero every registered metric and clear the span profile. Handles
/// stay valid (they are `'static`); only the values reset. Used by the
/// determinism test to compare fresh runs at different thread counts.
pub fn reset() {
    for c in lock(&registry().counters).values() {
        c.reset();
    }
    for g in lock(&registry().gauges).values() {
        g.reset();
    }
    for h in lock(&registry().histos).values() {
        h.reset();
    }
    lock(&registry().profile).clear();
}

/// The deterministic metrics snapshot: counters, gauges and histograms,
/// sorted by name, integer-valued. Contains **no wall-clock data**, so
/// two runs of the same workload produce byte-identical snapshots at any
/// `STOB_THREADS` setting (enforced by `tests/determinism.rs`).
pub fn metrics_json() -> Json {
    let mut counters = Json::obj();
    for (name, c) in lock(&registry().counters).iter() {
        counters = counters.set(name, c.get());
    }
    let mut gauges = Json::obj();
    for (name, g) in lock(&registry().gauges).iter() {
        gauges = gauges.set(name, g.get());
    }
    let mut histos = Json::obj();
    for (name, h) in lock(&registry().histos).iter() {
        histos = histos.set(name, h.to_json());
    }
    Json::obj()
        .set("counters", counters)
        .set("gauges", gauges)
        .set("histograms", histos)
}

/// Human-readable rendering of [`metrics_json`] for the bench binaries'
/// `--telemetry` section. Deterministic for the same reason the JSON is.
pub fn metrics_summary() -> String {
    let mut s = String::from("telemetry metrics (deterministic)\n");
    let counters = lock(&registry().counters);
    if !counters.is_empty() {
        s.push_str("  counters:\n");
        for (name, c) in counters.iter() {
            s.push_str(&format!("    {:<44} {}\n", name, c.get()));
        }
    }
    drop(counters);
    let gauges = lock(&registry().gauges);
    if !gauges.is_empty() {
        s.push_str("  gauges (high-water marks):\n");
        for (name, g) in gauges.iter() {
            s.push_str(&format!("    {:<44} {}\n", name, g.get()));
        }
    }
    drop(gauges);
    let histos = lock(&registry().histos);
    if !histos.is_empty() {
        s.push_str("  histograms:\n");
        for (name, h) in histos.iter() {
            s.push_str(&format!(
                "    {:<44} n={} sum={} min={} max={} mean={:.1}\n",
                name,
                h.count(),
                h.sum(),
                h.min().unwrap_or(0),
                h.max().unwrap_or(0),
                h.mean()
            ));
        }
    }
    s
}

// ---------------------------------------------------------------------
// Spans & self-profiling
// ---------------------------------------------------------------------

/// Accumulated profile for one span path.
#[derive(Debug, Default, Clone, Copy)]
struct ProfEntry {
    calls: u64,
    wall_secs: f64,
    sim_ns: u64,
}

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// An RAII profiling span. Carries both clocks: wall time (measured
/// between construction and drop) and sim time (reported by the caller
/// via [`Span::sim_window`], since only the caller knows the simulated
/// interval the work covered). Nested spans on the same thread form a
/// `/`-joined hierarchical path (`table2/emulate/…`).
pub struct Span {
    path: String,
    wall_start: Instant,
    sim_ns: u64,
}

/// Open a span named `name`, nested under any span already open on this
/// thread. Dropping the guard records the elapsed wall time (and any
/// sim window) into the global profile, readable via
/// [`wall_profile_json`].
pub fn span(name: &'static str) -> Span {
    let path = SPAN_STACK.with(|s| {
        let mut s = s.borrow_mut();
        s.push(name);
        s.join("/")
    });
    Span {
        path,
        wall_start: Instant::now(),
        sim_ns: 0,
    }
}

impl Span {
    /// Attribute a simulated time window to this span (e.g. the interval
    /// an event-loop drive covered). Accumulates across multiple calls.
    pub fn sim_window(&mut self, start: Nanos, end: Nanos) {
        self.sim_ns += end.saturating_sub(start).as_nanos();
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let wall = self.wall_start.elapsed().as_secs_f64();
        SPAN_STACK.with(|s| {
            s.borrow_mut().pop();
        });
        let mut profile = lock(&registry().profile);
        let e = profile.entry(std::mem::take(&mut self.path)).or_default();
        e.calls += 1;
        e.wall_secs += wall;
        e.sim_ns += self.sim_ns;
    }
}

/// The span profile: per-path call counts, wall seconds, and attributed
/// sim-nanoseconds. **Not deterministic** (it contains wall time) — keep
/// it out of anything byte-compared across runs; the bench binaries
/// print it to stderr only, extending the `par::Timings` per-stage view.
pub fn wall_profile_json() -> Json {
    let mut out = Json::obj();
    for (path, e) in lock(&registry().profile).iter() {
        out = out.set(
            path.as_str(),
            Json::obj()
                .set("calls", e.calls)
                .set("wall_secs", e.wall_secs)
                .set("sim_ns", e.sim_ns),
        );
    }
    out
}

/// Human-readable rendering of [`wall_profile_json`] (stderr-only).
pub fn wall_profile_summary() -> String {
    let profile = lock(&registry().profile);
    let mut s = String::from("telemetry self-profile (wall clock; NOT deterministic)\n");
    for (path, e) in profile.iter() {
        s.push_str(&format!(
            "    {:<44} calls={} wall={:.3}s sim={}\n",
            path,
            e.calls,
            e.wall_secs,
            Nanos(e.sim_ns)
        ));
    }
    s
}

// ---------------------------------------------------------------------
// Flow traces
// ---------------------------------------------------------------------

/// One shaping decision: at sim-time `sim_ns`, `layer` turned `before`
/// into `after` for `flow`, because `reason`. The unit meaning of
/// `before`/`after` depends on `event` (packet bytes for size events,
/// sim-ns for timing events, packet counts for TSO events).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowEvent {
    pub sim_ns: u64,
    pub flow: u64,
    /// Which layer decided: `tcp`, `quic`, `qdisc`, `nic`, `net`,
    /// `emulate`, `registry`.
    pub layer: &'static str,
    /// What kind of decision: `tso-pkts`, `pkt-size`, `pacing`,
    /// `release`, `tx`, `split`, `delay`, …
    pub event: &'static str,
    pub before: u64,
    pub after: u64,
    pub reason: &'static str,
}

impl FlowEvent {
    /// One JSONL record (compact object, stable key order).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("t_ns", self.sim_ns)
            .set("flow", self.flow)
            .set("layer", self.layer)
            .set("event", self.event)
            .set("before", self.before)
            .set("after", self.after)
            .set("reason", self.reason)
    }
}

/// Default per-run flow-trace capacity (events, not bytes).
pub const DEFAULT_TRACE_CAP: usize = 65_536;

/// A bounded ring of [`FlowEvent`]s. When full, recording drops the
/// *oldest* event and increments [`FlowTrace::dropped`] — memory stays
/// bounded on arbitrarily long runs while the tail (usually the
/// interesting part of a regression) is preserved.
#[derive(Debug)]
pub struct FlowTrace {
    cap: usize,
    events: VecDeque<FlowEvent>,
    dropped: u64,
}

impl FlowTrace {
    pub fn new(cap: usize) -> Self {
        FlowTrace {
            cap: cap.max(1),
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    pub fn record(&mut self, ev: FlowEvent) {
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
    pub fn capacity(&self) -> usize {
        self.cap
    }
    /// Events evicted so far to stay within capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    pub fn events(&self) -> impl Iterator<Item = &FlowEvent> {
        self.events.iter()
    }

    pub fn into_events(self) -> Vec<FlowEvent> {
        self.events.into()
    }

    /// Render every retained event as JSON Lines (one compact object per
    /// line), the `STOB_TRACE_OUT` file format.
    pub fn to_jsonl(&self) -> String {
        let mut s = String::new();
        for ev in &self.events {
            s.push_str(&ev.to_json().to_string_compact());
            s.push('\n');
        }
        s
    }
}

/// A cheaply clonable handle to a shared [`FlowTrace`]; this is what
/// gets threaded into the stack layers (one per `stack::net::Network`,
/// into each connection and the event loop). `None` tracing costs one
/// branch.
#[derive(Debug, Clone)]
pub struct Tracer {
    inner: Arc<Mutex<FlowTrace>>,
}

impl Tracer {
    pub fn new(cap: usize) -> Self {
        Tracer {
            inner: Arc::new(Mutex::new(FlowTrace::new(cap))),
        }
    }

    pub fn record(&self, ev: FlowEvent) {
        lock(&self.inner).record(ev);
    }

    /// Convenience constructor-and-record.
    #[allow(clippy::too_many_arguments)]
    pub fn rec(
        &self,
        now: Nanos,
        flow: u64,
        layer: &'static str,
        event: &'static str,
        before: u64,
        after: u64,
        reason: &'static str,
    ) {
        self.record(FlowEvent {
            sim_ns: now.as_nanos(),
            flow,
            layer,
            event,
            before,
            after,
            reason,
        });
    }

    /// Take the accumulated trace out, leaving an empty ring with the
    /// same capacity behind.
    pub fn take(&self) -> FlowTrace {
        let mut g = lock(&self.inner);
        let cap = g.cap;
        std::mem::replace(&mut g, FlowTrace::new(cap))
    }

    pub fn len(&self) -> usize {
        lock(&self.inner).len()
    }
    pub fn is_empty(&self) -> bool {
        lock(&self.inner).is_empty()
    }
    pub fn dropped(&self) -> u64 {
        lock(&self.inner).dropped()
    }
}

// ---------------------------------------------------------------------
// Environment knobs
// ---------------------------------------------------------------------

/// `STOB_TRACE_OUT=<path>`: where the bench binaries should write the
/// JSONL flow trace (`None` when unset or empty).
pub fn trace_out() -> Option<String> {
    crate::env::string("STOB_TRACE_OUT")
}

/// `STOB_TELEMETRY=1`: ask the bench binaries for their telemetry
/// summary section without passing `--telemetry` explicitly.
/// Unrecognised values warn once on stderr and leave the summary off.
pub fn summary_enabled() -> bool {
    crate::env::flag("STOB_TELEMETRY", false)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests that record metrics and assert exact values must not overlap
    /// with the test that flips the global enable switch — serialize them
    /// on one mutex (poisoning is irrelevant, recover the guard).
    fn recording_guard() -> MutexGuard<'static, ()> {
        static M: Mutex<()> = Mutex::new(());
        M.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_fast_path_drops_writes_and_restores() {
        let _g = recording_guard();
        let c = counter("telemetry.test.switch_counter");
        let h = histo("telemetry.test.switch_histo");
        let g = gauge("telemetry.test.switch_gauge");
        c.add(2);
        assert!(enabled(), "recording is on by default");
        set_enabled(false);
        c.add(40);
        c.inc();
        h.record(9);
        g.set_max(77);
        assert_eq!(c.get(), 2, "disabled counter writes are dropped");
        assert_eq!(h.count(), 0);
        assert_eq!(g.get(), 0);
        set_enabled(true);
        c.inc();
        h.record(9);
        g.set_max(77);
        assert_eq!(c.get(), 3, "re-enabling restores recording");
        assert_eq!(h.count(), 1);
        assert_eq!(g.get(), 77);
    }

    #[test]
    fn ring_bounds_memory_drops_oldest_and_counts() {
        let mut ring = FlowTrace::new(4);
        for i in 0..10u64 {
            ring.record(FlowEvent {
                sim_ns: i,
                flow: 1,
                layer: "tcp",
                event: "pkt-size",
                before: 1500,
                after: 1400,
                reason: "test",
            });
        }
        // Never exceeds capacity; drops are oldest-first and counted.
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.capacity(), 4);
        assert_eq!(ring.dropped(), 6);
        let kept: Vec<u64> = ring.events().map(|e| e.sim_ns).collect();
        assert_eq!(kept, vec![6, 7, 8, 9], "tail retained, head evicted");
        // The JSONL render matches the retained events, one per line.
        assert_eq!(ring.to_jsonl().lines().count(), 4);
    }

    #[test]
    fn tracer_is_shared_across_clones() {
        let t = Tracer::new(8);
        let t2 = t.clone();
        t.rec(Nanos(5), 3, "qdisc", "release", 5, 7, "nic-busy");
        assert_eq!(t2.len(), 1);
        let trace = t2.take();
        assert!(t.is_empty(), "take drains the shared ring");
        let evs = trace.into_events();
        assert_eq!(evs[0].flow, 3);
        assert_eq!(evs[0].layer, "qdisc");
    }

    #[test]
    fn flow_event_jsonl_round_trips() {
        let ev = FlowEvent {
            sim_ns: 42,
            flow: 7,
            layer: "nic",
            event: "tx",
            before: 3,
            after: 3,
            reason: "tso-burst",
        };
        let line = ev.to_json().to_string_compact();
        let parsed = Json::parse(&line).expect("jsonl line parses");
        assert_eq!(parsed.get("t_ns").and_then(|v| v.as_u64()), Some(42));
        assert_eq!(
            parsed
                .get("layer")
                .and_then(|v| v.as_str().map(String::from)),
            Some("nic".to_string())
        );
    }

    #[test]
    fn histo_buckets_cover_u64() {
        let _g = recording_guard();
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_bounds(0), (0, 0));
        assert_eq!(bucket_bounds(2), (2, 3));
        assert_eq!(bucket_bounds(64).1, u64::MAX);
        let h = Histo::default();
        h.record(0);
        h.record(3);
        h.record(1024);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 1027);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1024));
        let j = h.to_json();
        assert_eq!(j.get("count").and_then(|v| v.as_u64()), Some(3));
    }

    #[test]
    fn registry_handles_are_stable_and_resettable() {
        let _g = recording_guard();
        let c = counter("telemetry.test.stable_counter");
        c.add(5);
        // Same name resolves to the same leaked handle.
        assert!(std::ptr::eq(c, counter("telemetry.test.stable_counter")));
        assert_eq!(counter("telemetry.test.stable_counter").get(), 5);
        let g = gauge("telemetry.test.stable_gauge");
        g.set_max(9);
        g.set_max(4);
        assert_eq!(g.get(), 9, "gauge keeps the high-water mark");
        let snap = metrics_json().to_string_compact();
        assert!(snap.contains("telemetry.test.stable_counter"));
        assert!(!snap.contains("wall"), "metrics snapshot has no wall time");
    }

    #[test]
    fn spans_accumulate_hierarchical_profile() {
        {
            let mut outer = span("telemetry.test.outer");
            outer.sim_window(Nanos(100), Nanos(600));
            let _inner = span("inner");
        }
        let prof = wall_profile_json();
        let outer = prof.get("telemetry.test.outer").expect("outer span");
        assert_eq!(outer.get("calls").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(outer.get("sim_ns").and_then(|v| v.as_u64()), Some(500));
        assert!(
            prof.get("telemetry.test.outer/inner").is_some(),
            "nested span path is /-joined: {}",
            prof.to_string_compact()
        );
    }

    #[test]
    fn macros_cache_the_same_handle() {
        let _g = recording_guard();
        let a = tm_counter!("telemetry.test.macro_counter");
        let b = tm_counter!("telemetry.test.macro_counter");
        a.inc();
        b.inc();
        assert_eq!(counter("telemetry.test.macro_counter").get(), 2);
        tm_histo!("telemetry.test.macro_histo").record(7);
        assert_eq!(histo("telemetry.test.macro_histo").count(), 1);
        tm_gauge!("telemetry.test.macro_gauge").set_max(3);
        assert_eq!(gauge("telemetry.test.macro_gauge").get(), 3);
    }
}
