//! Vantage-point packet capture — the simulator's `tcpdump`.
//!
//! The paper's §3 methodology captures traffic at the client access link
//! and keeps only *timestamps and directions* (plus sizes, which we retain
//! for the size-aware experiments). `Capture` records exactly the view a
//! passive on-path eavesdropper gets: wire sizes after all stack
//! processing, at the instant packets cross the observation point.

use crate::packet::{FlowId, Packet, PacketKind};
use crate::time::Nanos;

/// Direction relative to the monitored client: `Out` = client→server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    Out,
    In,
}

impl Direction {
    /// +1 for outgoing, -1 for incoming — the signed convention used by
    /// the WF feature literature.
    pub fn sign(self) -> i8 {
        match self {
            Direction::Out => 1,
            Direction::In => -1,
        }
    }
    pub fn flip(self) -> Direction {
        match self {
            Direction::Out => Direction::In,
            Direction::In => Direction::Out,
        }
    }

    /// Stable one-letter wire form used by the JSON trace format.
    pub fn as_str(self) -> &'static str {
        match self {
            Direction::Out => "o",
            Direction::In => "i",
        }
    }

    /// Parse [`Direction::as_str`]'s form back.
    pub fn from_str_code(s: &str) -> Option<Direction> {
        match s {
            "o" => Some(Direction::Out),
            "i" => Some(Direction::In),
            _ => None,
        }
    }
}

/// One captured packet, as the eavesdropper sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaptureRecord {
    pub ts: Nanos,
    pub dir: Direction,
    /// On-wire bytes (headers included) — what a pcap records.
    pub wire_len: u32,
    pub flow: FlowId,
    pub kind: PacketKind,
    /// Multipath leg the packet was tagged for, if any — lets a single
    /// vantage point be sliced into per-leg observer views.
    pub pipe: Option<u8>,
}

/// An append-only capture buffer at one observation point.
#[derive(Debug, Clone, Default)]
pub struct Capture {
    pub records: Vec<CaptureRecord>,
}

impl Capture {
    pub fn new() -> Self {
        Capture::default()
    }

    /// Observe a packet crossing the vantage point at time `ts`.
    pub fn observe(&mut self, ts: Nanos, dir: Direction, pkt: &Packet) {
        self.records.push(CaptureRecord {
            ts,
            dir,
            wire_len: pkt.wire_len,
            flow: pkt.flow,
            kind: pkt.kind,
            pipe: pkt.meta.pipe,
        });
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total bytes seen in a given direction.
    pub fn bytes(&self, dir: Direction) -> u64 {
        self.records
            .iter()
            .filter(|r| r.dir == dir)
            .map(|r| r.wire_len as u64)
            .sum()
    }

    /// Duration between first and last record.
    pub fn duration(&self) -> Nanos {
        match (self.records.first(), self.records.last()) {
            (Some(a), Some(b)) => b.ts - a.ts,
            _ => Nanos::ZERO,
        }
    }

    /// Keep only data-bearing packets (drop pure ACKs), the common
    /// preprocessing for WF datasets captured at the client side.
    pub fn without_acks(&self) -> Capture {
        Capture {
            records: self
                .records
                .iter()
                .copied()
                .filter(|r| !r.kind.is_ack())
                .collect(),
        }
    }

    /// The sub-capture an observer tapping only multipath leg `pipe`
    /// would have recorded: packets tagged for that leg, untagged
    /// (single-path) packets excluded. Timestamps are kept as observed
    /// at this vantage point.
    pub fn for_pipe(&self, pipe: u8) -> Capture {
        Capture {
            records: self
                .records
                .iter()
                .copied()
                .filter(|r| r.pipe == Some(pipe))
                .collect(),
        }
    }

    /// Check the invariant every capture must satisfy: timestamps
    /// non-decreasing.
    pub fn is_time_ordered(&self) -> bool {
        self.records.windows(2).all(|w| w[0].ts <= w[1].ts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Packet;

    #[test]
    fn observe_records_wire_view() {
        let mut c = Capture::new();
        let p = Packet::tcp_data(FlowId(3), 0, 0, 1448);
        c.observe(Nanos(100), Direction::In, &p);
        assert_eq!(c.len(), 1);
        let r = c.records[0];
        assert_eq!(r.ts, Nanos(100));
        assert_eq!(r.dir, Direction::In);
        assert_eq!(r.wire_len, 1514);
        assert_eq!(r.flow, FlowId(3));
    }

    #[test]
    fn direction_signs() {
        assert_eq!(Direction::Out.sign(), 1);
        assert_eq!(Direction::In.sign(), -1);
        assert_eq!(Direction::Out.flip(), Direction::In);
    }

    #[test]
    fn byte_totals_per_direction() {
        let mut c = Capture::new();
        c.observe(
            Nanos(0),
            Direction::Out,
            &Packet::tcp_data(FlowId(1), 0, 0, 100),
        );
        c.observe(
            Nanos(1),
            Direction::In,
            &Packet::tcp_data(FlowId(1), 0, 0, 1000),
        );
        c.observe(Nanos(2), Direction::In, &Packet::tcp_ack(FlowId(1), 0, 0));
        assert_eq!(c.bytes(Direction::Out), 166);
        assert_eq!(c.bytes(Direction::In), 1066 + 66);
    }

    #[test]
    fn ack_filtering() {
        let mut c = Capture::new();
        c.observe(
            Nanos(0),
            Direction::Out,
            &Packet::tcp_data(FlowId(1), 0, 0, 10),
        );
        c.observe(Nanos(1), Direction::In, &Packet::tcp_ack(FlowId(1), 0, 10));
        let d = c.without_acks();
        assert_eq!(d.len(), 1);
        assert_eq!(d.records[0].dir, Direction::Out);
    }

    #[test]
    fn duration_and_ordering() {
        let mut c = Capture::new();
        assert_eq!(c.duration(), Nanos::ZERO);
        c.observe(Nanos(10), Direction::Out, &Packet::tcp_ack(FlowId(1), 0, 0));
        c.observe(Nanos(250), Direction::In, &Packet::tcp_ack(FlowId(1), 0, 0));
        assert_eq!(c.duration(), Nanos(240));
        assert!(c.is_time_ordered());
    }
}
