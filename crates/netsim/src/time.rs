//! Simulated time.
//!
//! Time is a monotonically increasing count of nanoseconds since the start
//! of the simulation. A newtype (rather than `std::time::Duration`) keeps
//! arithmetic explicit and `Copy`-cheap, and allows the same type to stand
//! for both instants and durations, mirroring how the Linux pacing layer
//! treats `ktime_t`.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A simulated time instant or duration, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nanos(pub u64);

impl Nanos {
    pub const ZERO: Nanos = Nanos(0);
    pub const MAX: Nanos = Nanos(u64::MAX);

    pub const fn from_nanos(ns: u64) -> Self {
        Nanos(ns)
    }
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us * 1_000)
    }
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }
    pub const fn from_secs(s: u64) -> Self {
        Nanos(s * 1_000_000_000)
    }
    /// Construct from a floating-point number of seconds (saturating at 0).
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            Nanos(0)
        } else {
            Nanos((s * 1e9).round() as u64)
        }
    }

    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    pub fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }
    pub fn saturating_add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_add(rhs.0))
    }
    pub fn min(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.min(rhs.0))
    }
    pub fn max(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.max(rhs.0))
    }
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scale a duration by a floating point factor, rounding to nearest.
    pub fn mul_f64(self, f: f64) -> Nanos {
        debug_assert!(f >= 0.0, "negative time scaling");
        Nanos((self.0 as f64 * f).round() as u64)
    }

    /// Time to serialize `bytes` at `rate_bps` bits per second.
    ///
    /// This is the canonical wire-time computation used by [`crate::Link`]
    /// and by pacing-rate arithmetic in the stack.
    pub fn for_bytes_at_rate(bytes: u64, rate_bps: u64) -> Nanos {
        assert!(rate_bps > 0, "link rate must be positive");
        // bits * 1e9 / rate, computed in u128 to avoid overflow at 100 Gb/s.
        let bits = (bytes as u128) * 8;
        Nanos(((bits * 1_000_000_000) / rate_bps as u128) as u64)
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}
impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}
impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}
impl SubAssign for Nanos {
    fn sub_assign(&mut self, rhs: Nanos) {
        self.0 -= rhs.0;
    }
}
impl Mul<u64> for Nanos {
    type Output = Nanos;
    fn mul(self, rhs: u64) -> Nanos {
        Nanos(self.0 * rhs)
    }
}
impl Div<u64> for Nanos {
    type Output = Nanos;
    fn div(self, rhs: u64) -> Nanos {
        Nanos(self.0 / rhs)
    }
}
impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        iter.fold(Nanos::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Nanos::from_micros(1), Nanos(1_000));
        assert_eq!(Nanos::from_millis(1), Nanos(1_000_000));
        assert_eq!(Nanos::from_secs(1), Nanos(1_000_000_000));
        assert_eq!(Nanos::from_secs_f64(1.5), Nanos(1_500_000_000));
        assert_eq!(Nanos::from_secs_f64(-1.0), Nanos::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Nanos(100);
        let b = Nanos(40);
        assert_eq!(a + b, Nanos(140));
        assert_eq!(a - b, Nanos(60));
        assert_eq!(a * 3, Nanos(300));
        assert_eq!(a / 4, Nanos(25));
        assert_eq!(b.saturating_sub(a), Nanos::ZERO);
        assert_eq!(a.mul_f64(0.5), Nanos(50));
    }

    #[test]
    fn serialization_time_at_line_rates() {
        // 1500 B at 100 Gb/s = 120 ns.
        assert_eq!(Nanos::for_bytes_at_rate(1500, 100_000_000_000), Nanos(120));
        // 1500 B at 1 Gb/s = 12 us.
        assert_eq!(Nanos::for_bytes_at_rate(1500, 1_000_000_000), Nanos(12_000));
        // 64 KB TSO segment at 100 Gb/s ~ 5.24 us.
        assert_eq!(
            Nanos::for_bytes_at_rate(65536, 100_000_000_000),
            Nanos(5242)
        );
    }

    #[test]
    fn no_overflow_at_large_sizes_and_rates() {
        // 1 GiB at 400 Gb/s must not overflow.
        let t = Nanos::for_bytes_at_rate(1 << 30, 400_000_000_000);
        assert!(t > Nanos::ZERO);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", Nanos(5)), "5ns");
        assert_eq!(format!("{}", Nanos(5_000)), "5.000us");
        assert_eq!(format!("{}", Nanos(5_000_000)), "5.000ms");
        assert_eq!(format!("{}", Nanos(5_000_000_000)), "5.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: Nanos = [Nanos(1), Nanos(2), Nanos(3)].into_iter().sum();
        assert_eq!(total, Nanos(6));
    }
}
