//! Arena and buffer pooling for the many-flow hot path.
//!
//! At fleet scale the simulator keeps tens of thousands of in-flight
//! packet descriptors and padding buffers alive per shard. Allocating
//! each as its own heap object makes the allocator the bottleneck and
//! scatters the working set; this module provides two deterministic,
//! single-shard-owned recyclers instead:
//!
//! * [`Arena<T>`] — slot-addressed storage with *generation-checked*
//!   handles. Freed slots are recycled in LIFO order, and every free
//!   bumps the slot's generation so a stale [`ArenaHandle`] held by a
//!   forgotten timer can never alias the slot's next occupant: lookups
//!   through an outdated handle return `None` rather than someone
//!   else's live packet. `tests/determinism.rs` pins this property.
//! * [`VecPool<T>`] — recycles `Vec` capacity across checkouts, so a
//!   flow that buffers and flushes padding bursts reuses one heap
//!   allocation for its whole lifetime instead of one per burst.
//!
//! Both are plain single-threaded values: at fleet scale each shard
//! owns its own arena/pool (shared-nothing, like the shard's
//! [`crate::EventQueue`]), so recycling order is a pure function of the
//! shard's event sequence and results stay bit-identical at any
//! `STOB_THREADS`. Telemetry: `netsim.pool.*` counters (allocations,
//! reuses, stale lookups) — order-independent sums, see
//! OBSERVABILITY.md.
//!
//! ```
//! use netsim::pool::Arena;
//!
//! let mut arena: Arena<&str> = Arena::new();
//! let h = arena.alloc("payload-a");
//! assert_eq!(arena.get(h), Some(&"payload-a"));
//! assert_eq!(arena.take(h), Some("payload-a"));
//! // The slot is recycled for the next packet...
//! let h2 = arena.alloc("payload-b");
//! assert_eq!(h2.index(), h.index());
//! // ...but the stale handle cannot alias the new occupant.
//! assert_eq!(arena.get(h), None);
//! assert_eq!(arena.get(h2), Some(&"payload-b"));
//! ```
#![deny(missing_docs)]

/// Generation-checked reference to an [`Arena`] slot.
///
/// Copyable and cheap (eight bytes); safe to stash inside timer events.
/// A handle is only valid for the allocation it was returned for — once
/// that allocation is [`Arena::take`]n, the handle goes stale and every
/// lookup through it yields `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArenaHandle {
    idx: u32,
    gen: u32,
}

impl ArenaHandle {
    /// Slot index (stable across the allocation's lifetime; reused —
    /// with a new generation — after the slot is freed).
    pub fn index(&self) -> u32 {
        self.idx
    }

    /// Generation the handle was issued under.
    pub fn generation(&self) -> u32 {
        self.gen
    }
}

struct Slot<T> {
    gen: u32,
    val: Option<T>,
}

/// Slot-addressed object arena with generation-checked handles and a
/// LIFO free list. See the [module docs](self) for the aliasing story.
pub struct Arena<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    live: usize,
    high_water: usize,
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Arena<T> {
    /// An empty arena.
    pub fn new() -> Self {
        Arena {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            high_water: 0,
        }
    }

    /// An empty arena with room for `cap` objects before regrowing.
    pub fn with_capacity(cap: usize) -> Self {
        Arena {
            slots: Vec::with_capacity(cap),
            free: Vec::new(),
            live: 0,
            high_water: 0,
        }
    }

    /// Store `val`, recycling a freed slot when one is available.
    pub fn alloc(&mut self, val: T) -> ArenaHandle {
        self.live += 1;
        self.high_water = self.high_water.max(self.live);
        if let Some(idx) = self.free.pop() {
            crate::tm_counter!("netsim.pool.arena_reuses").inc();
            let slot = &mut self.slots[idx as usize];
            debug_assert!(slot.val.is_none(), "free list pointed at a live slot");
            slot.val = Some(val);
            return ArenaHandle { idx, gen: slot.gen };
        }
        crate::tm_counter!("netsim.pool.arena_allocs").inc();
        let idx = u32::try_from(self.slots.len()).expect("arena exceeds u32 slots");
        self.slots.push(Slot {
            gen: 0,
            val: Some(val),
        });
        ArenaHandle { idx, gen: 0 }
    }

    /// The object behind `h`, or `None` if `h` is stale (its allocation
    /// was already taken) or out of range.
    pub fn get(&self, h: ArenaHandle) -> Option<&T> {
        match self.slots.get(h.idx as usize) {
            Some(slot) if slot.gen == h.gen => slot.val.as_ref(),
            _ => {
                crate::tm_counter!("netsim.pool.stale_lookups").inc();
                None
            }
        }
    }

    /// Mutable access to the object behind `h`; `None` when stale.
    pub fn get_mut(&mut self, h: ArenaHandle) -> Option<&mut T> {
        match self.slots.get_mut(h.idx as usize) {
            Some(slot) if slot.gen == h.gen => slot.val.as_mut(),
            _ => {
                crate::tm_counter!("netsim.pool.stale_lookups").inc();
                None
            }
        }
    }

    /// Remove and return the object behind `h`, freeing its slot for
    /// reuse (under a new generation). `None` when `h` is stale —
    /// double-free through an old handle is a no-op, not a corruption.
    pub fn take(&mut self, h: ArenaHandle) -> Option<T> {
        let slot = self.slots.get_mut(h.idx as usize)?;
        if slot.gen != h.gen || slot.val.is_none() {
            crate::tm_counter!("netsim.pool.stale_lookups").inc();
            return None;
        }
        let val = slot.val.take();
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(h.idx);
        self.live -= 1;
        crate::tm_counter!("netsim.pool.arena_frees").inc();
        val
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no objects are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Peak simultaneous live objects over the arena's lifetime.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Total slots ever created (live + recyclable).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

/// A recycler for `Vec<T>` buffers: checkouts reuse the capacity of
/// previously returned buffers instead of allocating fresh ones.
///
/// Buffers come back cleared ([`take`](Self::take) always returns an
/// empty `Vec`), so no data leaks between users — only capacity is
/// shared. Like [`Arena`], a `VecPool` is owned by one shard; recycling
/// order is deterministic.
pub struct VecPool<T> {
    free: Vec<Vec<T>>,
}

impl<T> Default for VecPool<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> VecPool<T> {
    /// An empty pool.
    pub fn new() -> Self {
        VecPool { free: Vec::new() }
    }

    /// Check out an empty buffer, reusing pooled capacity when present.
    pub fn take(&mut self) -> Vec<T> {
        match self.free.pop() {
            Some(v) => {
                debug_assert!(v.is_empty());
                crate::tm_counter!("netsim.pool.vec_reuses").inc();
                v
            }
            None => {
                crate::tm_counter!("netsim.pool.vec_allocs").inc();
                Vec::new()
            }
        }
    }

    /// Return a buffer to the pool. Its contents are dropped here; its
    /// capacity survives for the next [`take`](Self::take).
    pub fn put(&mut self, mut v: Vec<T>) {
        v.clear();
        self.free.push(v);
    }

    /// Number of idle buffers held.
    pub fn idle(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_get_take_roundtrip() {
        let mut a = Arena::new();
        let h1 = a.alloc(10u32);
        let h2 = a.alloc(20u32);
        assert_eq!(a.len(), 2);
        assert_eq!(a.get(h1), Some(&10));
        *a.get_mut(h2).unwrap() += 1;
        assert_eq!(a.take(h2), Some(21));
        assert_eq!(a.len(), 1);
        assert!(a.get(h2).is_none());
    }

    #[test]
    fn stale_handle_never_aliases_recycled_slot() {
        let mut a = Arena::new();
        let old = a.alloc("first");
        assert_eq!(a.take(old), Some("first"));
        let new = a.alloc("second");
        // Same physical slot, different generation.
        assert_eq!(new.index(), old.index());
        assert_ne!(new.generation(), old.generation());
        assert_eq!(a.get(old), None);
        assert_eq!(a.get_mut(old), None);
        assert_eq!(a.take(old), None); // double-free is a no-op
        assert_eq!(a.get(new), Some(&"second"));
    }

    #[test]
    fn free_list_is_lifo_and_deterministic() {
        let mut a = Arena::new();
        let hs: Vec<_> = (0..4u32).map(|i| a.alloc(i)).collect();
        a.take(hs[1]);
        a.take(hs[3]);
        // LIFO: slot 3 recycles first, then slot 1, then fresh slots.
        assert_eq!(a.alloc(100).index(), 3);
        assert_eq!(a.alloc(101).index(), 1);
        assert_eq!(a.alloc(102).index(), 4);
        assert_eq!(a.capacity(), 5);
    }

    #[test]
    fn high_water_tracks_peak_not_current() {
        let mut a = Arena::new();
        let hs: Vec<_> = (0..10u32).map(|i| a.alloc(i)).collect();
        for h in &hs {
            a.take(*h);
        }
        assert!(a.is_empty());
        assert_eq!(a.high_water(), 10);
        a.alloc(0);
        assert_eq!(a.high_water(), 10);
    }

    #[test]
    fn vec_pool_recycles_capacity_and_clears_contents() {
        let mut p: VecPool<u64> = VecPool::new();
        let mut v = p.take();
        v.extend(0..100);
        let cap = v.capacity();
        p.put(v);
        assert_eq!(p.idle(), 1);
        let v2 = p.take();
        assert!(v2.is_empty(), "recycled buffer must come back cleared");
        assert_eq!(v2.capacity(), cap, "capacity survives the round trip");
        assert_eq!(p.idle(), 0);
    }
}
