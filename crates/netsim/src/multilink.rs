//! Multi-link provisioning: several independent path legs ("pipes")
//! for one flow.
//!
//! The multipath transport (`stack::mux`) splits a flow across k
//! unreliable datagram legs so no single on-path vantage point observes
//! the full packet sequence. Each leg is an independent path: its own
//! rate, propagation delay, random loss, and — crucially for the fault
//! experiments — its own *independently seeded* [`FaultSchedule`], so an
//! outage on one pipe says nothing about the others.
//!
//! This module owns the path-level vocabulary:
//!
//! * [`PipeProfile`] — the static description of one leg;
//! * [`provision`] — turn a profile list into per-pipe fault schedules,
//!   forking one sub-seed per pipe from the flow seed;
//! * [`PathLedger`] — the packet-conservation ledger kept per pipe *and*
//!   for the end-to-end flow, consumed by
//!   [`Auditor::check_pipe_conservation`](crate::Auditor::check_pipe_conservation)
//!   and [`Auditor::check_multipath_sum`](crate::Auditor::check_multipath_sum).
//!
//! The simulation of a leg itself (serialization on a [`Link`](crate::Link),
//! loss, arrival scheduling) lives in the network driver; this module is
//! deliberately type-only so `netsim` stays independent of the stack.

use crate::fault::FaultSchedule;
use crate::rng::SimRng;
use crate::time::Nanos;

/// Static description of one provisioned path leg.
#[derive(Debug, Clone, PartialEq)]
pub struct PipeProfile {
    /// Serialization rate of the leg's bottleneck, bits per second.
    pub rate_bps: u64,
    /// One-way propagation delay of the leg.
    pub one_way_delay: Nanos,
    /// Random loss probability per packet (0.0 = lossless).
    pub loss: f64,
    /// Named fault scenario (see [`FaultSchedule::scenario`]) applied to
    /// this leg only, with a seed forked per pipe. `None` = no faults.
    pub fault_scenario: Option<String>,
}

impl PipeProfile {
    /// A clean leg with the given rate and delay.
    pub fn new(rate_bps: u64, one_way_delay: Nanos) -> Self {
        assert!(rate_bps > 0, "pipe rate must be positive");
        PipeProfile {
            rate_bps,
            one_way_delay,
            loss: 0.0,
            fault_scenario: None,
        }
    }

    /// `k` equal legs that together carry the given aggregate rate, with
    /// slightly staggered delays (pipe i adds `i * delay_step`) so the
    /// legs are distinguishable paths rather than clones.
    pub fn fan(
        k: usize,
        aggregate_bps: u64,
        base_delay: Nanos,
        delay_step: Nanos,
    ) -> Vec<PipeProfile> {
        assert!(k > 0, "need at least one pipe");
        let per = (aggregate_bps / k as u64).max(1);
        (0..k)
            .map(|i| PipeProfile::new(per, base_delay + delay_step * i as u64))
            .collect()
    }
}

/// One provisioned leg: the profile plus its forked fault schedule.
#[derive(Debug, Clone)]
pub struct ProvisionedPipe {
    pub profile: PipeProfile,
    /// This leg's fault schedule, seeded independently of every other
    /// leg (`None` when the profile names no scenario).
    pub schedule: Option<FaultSchedule>,
}

/// Provision a set of pipes for one flow: fork one sub-seed per pipe
/// from `seed` (stable in the pipe index, so adding a pipe never
/// reshuffles the others) and instantiate each profile's fault scenario
/// with it over `horizon`.
pub fn provision(profiles: &[PipeProfile], seed: u64, horizon: Nanos) -> Vec<ProvisionedPipe> {
    let root = SimRng::new(seed);
    profiles
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let pipe_seed = root.fork(i as u64 + 1).next_u64();
            let schedule = p
                .fault_scenario
                .as_deref()
                .and_then(|name| FaultSchedule::scenario(name, pipe_seed, horizon));
            ProvisionedPipe {
                profile: p.clone(),
                schedule,
            }
        })
        .collect()
}

/// Packet-conservation ledger for one path (a pipe or the end-to-end
/// flow): everything injected must end up delivered, dropped (and
/// counted), or still in transit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PathLedger {
    /// Packets handed to the path (after NIC departure).
    pub injected: u64,
    /// Packets that completed arrival at the far host.
    pub delivered: u64,
    /// Packets the path dropped (random loss, faults, queue overflow).
    pub dropped: u64,
    /// Arrival events scheduled but not yet handled.
    pub arrivals_pending: u64,
}

impl PathLedger {
    /// Does the ledger balance, given `extra_in_transit` packets the
    /// caller knows to be queued outside the arrival schedule?
    pub fn balances(&self, extra_in_transit: u64) -> bool {
        self.injected == self.delivered + self.dropped + self.arrivals_pending + extra_in_transit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fan_splits_rate_and_staggers_delay() {
        let pipes = PipeProfile::fan(
            4,
            100_000_000,
            Nanos::from_millis(10),
            Nanos::from_millis(2),
        );
        assert_eq!(pipes.len(), 4);
        assert!(pipes.iter().all(|p| p.rate_bps == 25_000_000));
        assert_eq!(pipes[0].one_way_delay, Nanos::from_millis(10));
        assert_eq!(pipes[3].one_way_delay, Nanos::from_millis(16));
    }

    #[test]
    fn provision_forks_independent_schedules() {
        let mut profiles = PipeProfile::fan(2, 10_000_000, Nanos::from_millis(5), Nanos::ZERO);
        for p in &mut profiles {
            // chaos-mix draws its window layout from the seed, so
            // per-pipe seed independence is visible in the items.
            p.fault_scenario = Some("chaos-mix".to_string());
        }
        let a = provision(&profiles, 7, Nanos::from_millis(500));
        let b = provision(&profiles, 7, Nanos::from_millis(500));
        // Deterministic in the seed...
        assert_eq!(a.len(), 2);
        assert!(a[0].schedule.is_some() && a[1].schedule.is_some());
        let items = |p: &ProvisionedPipe| p.schedule.as_ref().unwrap().items.clone();
        assert_eq!(items(&a[0]), items(&b[0]));
        // ...and independent across pipes (different forked seeds give
        // a different window layout and different runtime streams).
        assert_ne!(items(&a[0]), items(&a[1]));
        assert_ne!(
            a[0].schedule.as_ref().unwrap().seed,
            a[1].schedule.as_ref().unwrap().seed
        );
    }

    #[test]
    fn provision_without_scenario_yields_no_schedule() {
        let profiles = PipeProfile::fan(3, 30_000_000, Nanos::from_millis(5), Nanos::ZERO);
        let pipes = provision(&profiles, 1, Nanos::from_millis(100));
        assert!(pipes.iter().all(|p| p.schedule.is_none()));
    }

    #[test]
    fn ledger_balance_accounts_all_outcomes() {
        let l = PathLedger {
            injected: 10,
            delivered: 6,
            dropped: 2,
            arrivals_pending: 1,
        };
        assert!(!l.balances(0));
        assert!(l.balances(1)); // one packet still queued at a bottleneck
    }
}
