//! Defenses as data: a maybenot-style probabilistic state-machine
//! runtime.
//!
//! Every other defense in this repo is a compiled Rust adapter; shipping
//! a new one to a fleet means a rebuild. This module makes the defense
//! itself *data*: a [`MachineSpec`] is a serializable set of probabilistic
//! state machines (in the spirit of the maybenot framework) that an
//! operator pushes through the registry/sockopt control plane at runtime
//! — [`crate::registry::PolicyRegistry::bind_machine`] /
//! [`crate::sockopt::publish_machine_json`] — with no recompile.
//!
//! **Model.** Each machine is a list of [`State`]s. [`MachineEvent`]s
//! (real packets, the machine's own padding, blocking windows, timers,
//! limit exhaustion) drive transitions over each state's transition rows;
//! a row maps an event to a probability distribution over [`Target`]s.
//! Each state carries an [`Action`] (inject padding, arm a timer, open a
//! blocking window) whose parameters — padding size, inter-packet timing,
//! blocking duration — are drawn from [`DistSpec`] distributions
//! (uniform / normal / log-normal / pareto / geometric / rayleigh / an
//! empirical [`Histogram`]), and an optional per-visit action limit.
//!
//! **Placement.** A [`MachineDefense`] implements the existing
//! [`Defense`] trait, so one spec runs through *both* backends —
//! [`crate::defense::emulate_flow`] (app layer) and
//! [`crate::defense::enforce_flow`] (lowered into the egress pipeline
//! under the §4.2 safety clamp) — and through [`crate::fleet::run_fleet`]
//! unchanged. The machine runtime itself is a pure [`PadderCore`]: per
//! §4.2 the stack's authority covers sizing and departure timing of
//! *real* data only, so machines inject dummy traffic and never move real
//! packets. A spec may additionally carry an [`ObfuscationPolicy`] whose
//! size/delay rules lower into the stack exactly like any registry
//! policy. Blocking windows therefore model maybenot's blocking for the
//! machine's *own relative padding schedule* only: while a window is
//! open, relative-mode padding is deferred to the window's end;
//! absolute-mode schedules (FRONT-style draws offset from the flow
//! start) and real packets are unaffected.
//!
//! **Determinism.** A machine draws all randomness from the per-flow RNG
//! both backends already thread through the padding schedule (forked by
//! stable flow index), so runs are byte-identical at any `STOB_THREADS`.
//! Draw order is part of the spec's contract: on state entry the limit is
//! sampled first, then the timing distribution's entry scale, then the
//! size/duration distribution's entry scale (a [`DistSpec::Rayleigh`]
//! samples its sigma uniformly once per state entry); each scheduled
//! action then draws its timing, and a padding action draws its size when
//! it fires. A transition row with a single target at probability 1
//! transitions without consuming randomness. With those rules the
//! machine-generated FRONT (see the `defenses` crate's machine
//! generators) replays the native `front.rs` draw sequence bit for bit.
//!
//! **Safety.** Hostile or malformed specs can never panic the datapath:
//! [`MachineSpec::validate`] bounds machines, states, probabilities and
//! distribution parameters, and an invalid spec degrades the flow to
//! pass-through (counted in `stob.registry.degraded` and
//! `defense.machine.degraded`). At runtime every draw is clamped (sizes
//! to the wire MTU, per-draw delays to [`MAX_DRAW_SECS`]) and two global
//! caps bound any machine — [`MachineSpec::max_padding_pkts`] dummy
//! packets and [`MachineSpec::max_blocking`] total blocking time — with
//! an action budget catching pathological-but-valid event loops.
//!
//! # Example: a 2-state padding machine from JSON
//!
//! ```
//! use netsim::{Direction, Nanos, SimRng};
//! use stob::defense::{emulate_flow, DefenseCtx, FlowPkt, Placement};
//! use stob::registry::{PolicyKey, PolicyRegistry};
//!
//! // State 0 idles until a packet is received, then state 1 injects
//! // three 1514-byte dummies at 1 ms spacing and ends.
//! let text = r#"{
//!   "name": "doc-pad",
//!   "machines": [ { "states": [
//!     { "action": "Nop",
//!       "transitions": [ { "on": "PacketReceived",
//!                          "to": [[ {"State": 1}, 1.0 ]] } ] },
//!     { "action": { "Pad": { "dir": "In",
//!                            "size":   { "Fixed": { "v": 1514 } },
//!                            "timing": { "Fixed": { "v": 0.001 } },
//!                            "absolute": false } },
//!       "limit": { "Fixed": { "v": 3 } },
//!       "transitions": [ { "on": "PaddingSent", "to": [[ {"State": 1}, 1.0 ]] },
//!                        { "on": "LimitReached", "to": [[ "End", 1.0 ]] } ] }
//!   ] } ],
//!   "max_padding_pkts": 16,
//!   "max_blocking_ns": 0
//! }"#;
//!
//! // Pushed through the control plane at runtime, like any policy.
//! let reg = PolicyRegistry::new();
//! stob::sockopt::publish_machine_json(&reg, PolicyKey::Default, text, Placement::App)
//!     .expect("valid machine");
//! let binding = reg.resolve_defense(1, 1).expect("machine resolves");
//! let flow = [
//!     FlowPkt { ts: Nanos::ZERO, dir: Direction::Out, size: 120 },
//!     FlowPkt { ts: Nanos::from_millis(2), dir: Direction::In, size: 1400 },
//! ];
//! let mut rng = SimRng::new(7);
//! let out = emulate_flow(binding.defense.as_ref(), &flow, &DefenseCtx::default(), &mut rng);
//! assert_eq!(out.dummy_pkts, 3);
//! ```
#![deny(missing_docs)]

use crate::defense::{CloseOut, Defense, DefenseCtx, Emit, FlowDefense, FlowPkt, PadderCore};
use crate::policy::{bad, histogram_ok, tagged, variant, ObfuscationPolicy};
use netsim::json::{Json, JsonError};
use netsim::{Direction, Histogram, Nanos, SimRng};
use std::sync::Arc;

/// Most machines one spec may carry.
pub const MAX_MACHINES: usize = 8;
/// Most states one machine may carry.
pub const MAX_STATES: usize = 64;
/// Upper bound on [`MachineSpec::max_padding_pkts`].
pub const MAX_PADDING_CAP: u64 = 100_000;
/// Upper bound on [`MachineSpec::max_blocking`] (60 s).
pub const MAX_BLOCKING_CAP: Nanos = Nanos(60_000_000_000);
/// Per-draw clamp on any sampled delay/offset, in seconds. A single
/// timing draw beyond this is hostile or broken, not a schedule.
pub const MAX_DRAW_SECS: f64 = 600.0;

/// Wire MTU padding sizes are clamped to.
const MTU_WIRE: u32 = 1514;
/// Probability-mass slack accepted when validating a transition row.
const PROB_EPS: f64 = 1e-9;

// ---------------------------------------------------------------------
// Spec data model
// ---------------------------------------------------------------------

/// A sampling distribution for machine parameters (padding sizes,
/// inter-packet timings, blocking durations, action limits).
///
/// Timing draws are in **seconds**; size draws in bytes; count draws are
/// rounded to integers. All draws are clamped at the point of use —
/// validation bounds the parameters, clamping bounds the samples.
#[derive(Debug, Clone, PartialEq)]
pub enum DistSpec {
    /// The constant `v` (consumes no randomness).
    Fixed {
        /// The constant value.
        v: f64,
    },
    /// Uniform over `[lo, hi)` (count draws use the inclusive integer
    /// range `[lo, hi]`, matching the native adapters' budget draws).
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Normal with the given mean and standard deviation (negative
    /// samples clamp to the draw's floor).
    Normal {
        /// Mean.
        mean: f64,
        /// Standard deviation.
        std: f64,
    },
    /// Log-normal: `exp(Normal(mu, sigma))`.
    LogNormal {
        /// Location of the underlying normal.
        mu: f64,
        /// Scale of the underlying normal.
        sigma: f64,
    },
    /// Pareto with the given scale and shape — heavy tails.
    Pareto {
        /// Scale (minimum value).
        scale: f64,
        /// Shape (tail index).
        shape: f64,
    },
    /// Geometric: number of Bernoulli(p) trials until the first success
    /// (support `1, 2, ...`).
    Geometric {
        /// Success probability, in `(0, 1]`.
        p: f64,
    },
    /// Rayleigh whose sigma is itself sampled uniformly from
    /// `[w_min, w_max]` **once per state entry** — the FRONT padding
    /// schedule's shape. Draws outside a state entry use `w_min`.
    Rayleigh {
        /// Lower bound of the sigma window.
        w_min: f64,
        /// Upper bound of the sigma window.
        w_max: f64,
    },
    /// Draw from an empirical histogram (uniform within the sampled
    /// bin), reusing the §4.1 policy-layer form.
    FromHistogram(Histogram),
}

impl DistSpec {
    /// Check parameter sanity. `what` names the dist in error messages.
    pub fn validate(&self, what: &str) -> Result<(), String> {
        fn fin(what: &str, name: &str, x: f64) -> Result<(), String> {
            if x.is_finite() {
                Ok(())
            } else {
                Err(format!("{what}: {name} must be finite"))
            }
        }
        match self {
            DistSpec::Fixed { v } => {
                fin(what, "v", *v)?;
                if *v < 0.0 {
                    return Err(format!("{what}: Fixed value must be >= 0"));
                }
            }
            DistSpec::Uniform { lo, hi } => {
                fin(what, "lo", *lo)?;
                fin(what, "hi", *hi)?;
                if *lo < 0.0 || hi < lo {
                    return Err(format!("{what}: Uniform needs 0 <= lo <= hi"));
                }
            }
            DistSpec::Normal { mean, std } => {
                fin(what, "mean", *mean)?;
                fin(what, "std", *std)?;
                if *mean < 0.0 || *std < 0.0 {
                    return Err(format!("{what}: Normal needs mean, std >= 0"));
                }
            }
            DistSpec::LogNormal { mu, sigma } => {
                fin(what, "mu", *mu)?;
                fin(what, "sigma", *sigma)?;
                if *sigma < 0.0 {
                    return Err(format!("{what}: LogNormal needs sigma >= 0"));
                }
            }
            DistSpec::Pareto { scale, shape } => {
                fin(what, "scale", *scale)?;
                fin(what, "shape", *shape)?;
                if *scale <= 0.0 || *shape <= 0.0 {
                    return Err(format!("{what}: Pareto needs scale, shape > 0"));
                }
            }
            DistSpec::Geometric { p } => {
                fin(what, "p", *p)?;
                if !(*p > 0.0 && *p <= 1.0) {
                    return Err(format!("{what}: Geometric needs p in (0, 1]"));
                }
            }
            DistSpec::Rayleigh { w_min, w_max } => {
                fin(what, "w_min", *w_min)?;
                fin(what, "w_max", *w_max)?;
                if *w_min < 0.0 || w_max < w_min {
                    return Err(format!("{what}: Rayleigh needs 0 <= w_min <= w_max"));
                }
            }
            DistSpec::FromHistogram(h) => histogram_ok(h, what)?,
        }
        Ok(())
    }

    /// Sample the per-state-entry scale, if this distribution has one
    /// (only [`DistSpec::Rayleigh`] does).
    fn entry_scale(&self, rng: &mut SimRng) -> Option<f64> {
        match self {
            DistSpec::Rayleigh { w_min, w_max } => Some(rng.range_f64(*w_min, *w_max)),
            _ => None,
        }
    }

    /// Raw draw (no clamping).
    fn sample_f64(&self, scale: Option<f64>, rng: &mut SimRng) -> f64 {
        match self {
            DistSpec::Fixed { v } => *v,
            DistSpec::Uniform { lo, hi } => rng.range_f64(*lo, *hi),
            DistSpec::Normal { mean, std } => rng.normal_ms(*mean, *std),
            DistSpec::LogNormal { mu, sigma } => rng.lognormal(*mu, *sigma),
            DistSpec::Pareto { scale, shape } => rng.pareto(*scale, *shape),
            DistSpec::Geometric { p } => {
                let u = rng.next_f64();
                if *p >= 1.0 {
                    1.0
                } else {
                    ((1.0 - u).ln() / (1.0 - p).ln()).floor() + 1.0
                }
            }
            DistSpec::Rayleigh { w_min, .. } => rng.rayleigh(scale.unwrap_or(*w_min)),
            DistSpec::FromHistogram(h) => h.sample(rng.next_f64(), rng.next_f64()),
        }
    }

    /// Draw a delay/offset in seconds, clamped to `[0, MAX_DRAW_SECS]`.
    fn sample_time(&self, scale: Option<f64>, rng: &mut SimRng) -> Nanos {
        let s = self.sample_f64(scale, rng);
        let s = if s.is_finite() {
            s.clamp(0.0, MAX_DRAW_SECS)
        } else {
            0.0
        };
        Nanos::from_secs_f64(s)
    }

    /// Draw a padding size in bytes, clamped to `[1, MTU]`.
    fn sample_size(&self, scale: Option<f64>, rng: &mut SimRng) -> u32 {
        let s = self.sample_f64(scale, rng);
        if !s.is_finite() {
            return 1;
        }
        (s.round().clamp(1.0, f64::from(MTU_WIRE))) as u32
    }

    /// Draw an action count, clamped to `[0, cap]`. A
    /// [`DistSpec::Uniform`] count uses the inclusive integer range —
    /// bit-identical to the native adapters' `range_usize` budget draws.
    fn sample_count(&self, cap: u64, rng: &mut SimRng) -> u64 {
        if let DistSpec::Uniform { lo, hi } = self {
            let lo = lo.max(0.0) as u64;
            let hi = (hi.max(0.0) as u64).max(lo);
            return rng.range_u64(lo, hi).min(cap);
        }
        let s = self.sample_f64(None, rng);
        if !s.is_finite() || s < 0.0 {
            return 0;
        }
        (s.round() as u64).min(cap)
    }
}

/// The events that drive machine transitions.
///
/// Real-packet events and blocking-window events are delivered to every
/// machine of the spec; `PaddingSent`, `TimerExpired` and `LimitReached`
/// are delivered only to the machine that originated them (a deliberate
/// narrowing of maybenot's global event bus: it keeps multi-machine
/// specs free of padding cross-talk and keeps draw order predictable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineEvent {
    /// A real outbound packet passed the machine.
    PacketSent,
    /// A real inbound packet passed the machine.
    PacketReceived,
    /// This machine injected a dummy packet.
    PaddingSent,
    /// A blocking window opened (delivered to all machines).
    BlockingBegin,
    /// A blocking window closed (delivered to all machines).
    BlockingEnd,
    /// This machine's timer fired.
    TimerExpired,
    /// This machine's state limit was exhausted. A state with no
    /// `LimitReached` row ends its machine when the limit runs out.
    LimitReached,
}

impl MachineEvent {
    /// All events, in declaration order.
    pub const ALL: [MachineEvent; 7] = [
        MachineEvent::PacketSent,
        MachineEvent::PacketReceived,
        MachineEvent::PaddingSent,
        MachineEvent::BlockingBegin,
        MachineEvent::BlockingEnd,
        MachineEvent::TimerExpired,
        MachineEvent::LimitReached,
    ];

    /// Stable JSON tag.
    pub fn as_str(self) -> &'static str {
        match self {
            MachineEvent::PacketSent => "PacketSent",
            MachineEvent::PacketReceived => "PacketReceived",
            MachineEvent::PaddingSent => "PaddingSent",
            MachineEvent::BlockingBegin => "BlockingBegin",
            MachineEvent::BlockingEnd => "BlockingEnd",
            MachineEvent::TimerExpired => "TimerExpired",
            MachineEvent::LimitReached => "LimitReached",
        }
    }
}

/// Where a transition lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// Enter the given state (an index into the machine's state list).
    /// Re-entering the current state continues its action schedule
    /// without resampling limit or entry scales — except on
    /// [`MachineEvent::LimitReached`], which always re-enters fully.
    State(u32),
    /// End this machine for the rest of the flow.
    End,
}

/// One transition row: on `on`, move to a target drawn from `to`.
/// Probabilities may sum to less than 1; the remainder means "stay in
/// the current state with no new action". A row with a single target at
/// probability 1 transitions without consuming randomness.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// The triggering event.
    pub on: MachineEvent,
    /// Candidate targets with probabilities (sum <= 1).
    pub to: Vec<(Target, f64)>,
}

/// What a state does while it is current.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Do nothing; wait for events.
    Nop,
    /// Inject dummy packets.
    Pad {
        /// Direction the dummies travel.
        dir: Direction,
        /// Dummy size distribution (bytes).
        size: DistSpec,
        /// Timing distribution (seconds). Relative mode: delay from the
        /// previous action. Absolute mode: offset from the flow start.
        timing: DistSpec,
        /// Absolute mode stamps each dummy at `flow_start + draw`
        /// (FRONT-style schedules); such pads ignore blocking windows
        /// and may be emitted out of order (both backends re-sort).
        absolute: bool,
    },
    /// Arm a timer; [`MachineEvent::TimerExpired`] fires after the draw.
    Timer {
        /// Delay distribution (seconds).
        timing: DistSpec,
    },
    /// Open a blocking window: after `timing`, the machine's relative
    /// padding is deferred for `duration` (capped by
    /// [`MachineSpec::max_blocking`] across the whole flow). Real
    /// packets are never blocked — §4.2 keeps real-data timing with the
    /// policy layer.
    Block {
        /// Delay before the window opens (seconds).
        timing: DistSpec,
        /// Window length (seconds).
        duration: DistSpec,
    },
    /// Re-emit the flow's `dir` packets on RegulaTor's decaying surge
    /// schedule (Holland & Hopper, PETS 2022), filling empty slots with
    /// fixed-size dummies up to a budget. The machine *owns* that
    /// direction: the backend drops the original packets and keeps the
    /// re-emitted schedule. Fully deterministic — a regulate state draws
    /// no randomness, so it composes with other machines without
    /// perturbing their streams. Must be the only state of its machine.
    Regulate {
        /// Direction whose real packets are re-emitted (normally `In`).
        dir: Direction,
        /// Fixed wire size of every re-emitted/dummy packet (bytes).
        size: u32,
        /// Initial surge rate, packets/second.
        rate: f64,
        /// Geometric rate decay per second of schedule age, in (0, 1].
        decay: f64,
        /// A backlog above this many queued real packets restarts the
        /// surge schedule at full rate.
        surge_threshold: u64,
        /// Dummy budget as a fraction of real packets in `dir`.
        budget_frac: f64,
    },
}

impl Action {
    /// The action's timing distribution, if any.
    fn timing(&self) -> Option<&DistSpec> {
        match self {
            Action::Nop | Action::Regulate { .. } => None,
            Action::Pad { timing, .. }
            | Action::Timer { timing }
            | Action::Block { timing, .. } => Some(timing),
        }
    }

    /// The action's secondary distribution (pad size / block duration).
    fn aux(&self) -> Option<&DistSpec> {
        match self {
            Action::Pad { size, .. } => Some(size),
            Action::Block { duration, .. } => Some(duration),
            _ => None,
        }
    }
}

/// One machine state: an action, an optional per-entry action limit,
/// and the transition rows.
#[derive(Debug, Clone, PartialEq)]
pub struct State {
    /// What the state does.
    pub action: Action,
    /// Cap on this state's action firings per (re-)entry; exhausting it
    /// raises [`MachineEvent::LimitReached`]. `None` = unlimited (the
    /// global caps still apply).
    pub limit: Option<DistSpec>,
    /// Transition rows (at most one per event).
    pub transitions: Vec<Transition>,
}

/// One probabilistic state machine; execution starts in state 0.
#[derive(Debug, Clone, PartialEq)]
pub struct Machine {
    /// The states; index 0 is the start state.
    pub states: Vec<State>,
}

/// A complete machine defense, as published to the registry: one or more
/// machines plus an optional stack policy, under global safety caps.
///
/// This is the serializable artifact operators ship — see the module
/// docs and [`crate::sockopt::publish_machine_json`].
#[derive(Debug, Clone, PartialEq)]
pub struct MachineSpec {
    /// Registry/display name.
    pub name: String,
    /// The machines, run concurrently over the flow.
    pub machines: Vec<Machine>,
    /// Optional size/delay policy lowered into the stack (or the
    /// app-layer interpreter) alongside the padding machines.
    pub policy: Option<ObfuscationPolicy>,
    /// Global cap on dummy packets across all machines of the flow.
    pub max_padding_pkts: u64,
    /// Global cap on total blocking time across the flow.
    pub max_blocking: Nanos,
}

impl MachineSpec {
    /// A padding-only spec with the given machines and padding cap.
    pub fn padding_only(name: &str, machines: Vec<Machine>, max_padding_pkts: u64) -> Self {
        MachineSpec {
            name: name.to_string(),
            machines,
            policy: None,
            max_padding_pkts,
            max_blocking: Nanos::ZERO,
        }
    }

    /// Check the spec is safe to run. Bounds machine/state counts,
    /// probabilities, distribution parameters and the global caps; an
    /// invalid spec must never reach the runtime —
    /// [`MachineDefense::build`] degrades it to pass-through instead.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("machine spec has an empty name".into());
        }
        if self.machines.len() > MAX_MACHINES {
            return Err(format!(
                "{} machines exceeds the cap of {MAX_MACHINES}",
                self.machines.len()
            ));
        }
        if self.max_padding_pkts > MAX_PADDING_CAP {
            return Err(format!(
                "max_padding_pkts {} exceeds the cap of {MAX_PADDING_CAP}",
                self.max_padding_pkts
            ));
        }
        if self.max_blocking > MAX_BLOCKING_CAP {
            return Err(format!(
                "max_blocking {} exceeds the cap of {MAX_BLOCKING_CAP}",
                self.max_blocking
            ));
        }
        let mut regulated_dirs: Vec<Direction> = Vec::new();
        for (mi, m) in self.machines.iter().enumerate() {
            if m.states.is_empty() {
                return Err(format!("machine {mi} has no states"));
            }
            if m.states.len() > MAX_STATES {
                return Err(format!(
                    "machine {mi} has {} states (cap {MAX_STATES})",
                    m.states.len()
                ));
            }
            for (si, st) in m.states.iter().enumerate() {
                let what = format!("machine {mi} state {si}");
                if let Action::Regulate {
                    size,
                    rate,
                    decay,
                    budget_frac,
                    dir,
                    ..
                } = &st.action
                {
                    if m.states.len() != 1 || !st.transitions.is_empty() || st.limit.is_some() {
                        return Err(format!(
                            "{what}: a regulate state must be its machine's only state,                              with no limit and no transitions"
                        ));
                    }
                    if *size == 0 || *size > 65_535 {
                        return Err(format!("{what}: regulate size {size} out of range"));
                    }
                    if !rate.is_finite() || *rate <= 0.0 {
                        return Err(format!("{what}: regulate rate must be positive"));
                    }
                    if !decay.is_finite() || *decay <= 0.0 || *decay > 1.0 {
                        return Err(format!("{what}: regulate decay must be in (0, 1]"));
                    }
                    if !budget_frac.is_finite() || *budget_frac < 0.0 || *budget_frac > 100.0 {
                        return Err(format!("{what}: regulate budget_frac out of range"));
                    }
                    if regulated_dirs.contains(dir) {
                        return Err(format!(
                            "{what}: direction already owned by another regulate machine"
                        ));
                    }
                    regulated_dirs.push(*dir);
                }
                if let Some(d) = st.action.timing() {
                    d.validate(&format!("{what} timing"))?;
                }
                if let Some(d) = st.action.aux() {
                    d.validate(&format!("{what} size/duration"))?;
                }
                if let Some(d) = &st.limit {
                    d.validate(&format!("{what} limit"))?;
                }
                let mut seen: Vec<MachineEvent> = Vec::new();
                for tr in &st.transitions {
                    if seen.contains(&tr.on) {
                        return Err(format!("{what}: duplicate row for {}", tr.on.as_str()));
                    }
                    seen.push(tr.on);
                    if tr.to.is_empty() {
                        return Err(format!("{what}: empty target list for {}", tr.on.as_str()));
                    }
                    let mut sum = 0.0;
                    for (t, p) in &tr.to {
                        if !p.is_finite() || *p < 0.0 || *p > 1.0 {
                            return Err(format!("{what}: probability out of [0, 1]"));
                        }
                        sum += p;
                        if let Target::State(j) = t {
                            if *j as usize >= m.states.len() {
                                return Err(format!("{what}: target state {j} out of range"));
                            }
                        }
                    }
                    if sum > 1.0 + PROB_EPS {
                        return Err(format!("{what}: probabilities sum to {sum} > 1"));
                    }
                }
            }
        }
        if let Some(p) = &self.policy {
            p.validate()?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// JSON codec (policy-layer style: externally tagged variants)
// ---------------------------------------------------------------------

fn dir_to_json(d: Direction) -> Json {
    Json::from(match d {
        Direction::Out => "Out",
        Direction::In => "In",
    })
}

fn dir_from_json(v: &Json) -> Result<Direction, JsonError> {
    match v.as_str() {
        Some("Out") => Ok(Direction::Out),
        Some("In") => Ok(Direction::In),
        _ => Err(bad("expected a Direction (\"Out\" or \"In\")")),
    }
}

impl DistSpec {
    /// Encode as externally-tagged JSON.
    pub fn to_json(&self) -> Json {
        match self {
            DistSpec::Fixed { v } => tagged("Fixed", Json::obj().set("v", *v)),
            DistSpec::Uniform { lo, hi } => {
                tagged("Uniform", Json::obj().set("lo", *lo).set("hi", *hi))
            }
            DistSpec::Normal { mean, std } => {
                tagged("Normal", Json::obj().set("mean", *mean).set("std", *std))
            }
            DistSpec::LogNormal { mu, sigma } => {
                tagged("LogNormal", Json::obj().set("mu", *mu).set("sigma", *sigma))
            }
            DistSpec::Pareto { scale, shape } => tagged(
                "Pareto",
                Json::obj().set("scale", *scale).set("shape", *shape),
            ),
            DistSpec::Geometric { p } => tagged("Geometric", Json::obj().set("p", *p)),
            DistSpec::Rayleigh { w_min, w_max } => tagged(
                "Rayleigh",
                Json::obj().set("w_min", *w_min).set("w_max", *w_max),
            ),
            DistSpec::FromHistogram(h) => tagged("FromHistogram", h.to_json()),
        }
    }

    /// Decode from [`DistSpec::to_json`]'s encoding.
    pub fn from_json(v: &Json) -> Result<DistSpec, JsonError> {
        match variant(v, "DistSpec")? {
            ("Fixed", Some(b)) => Ok(DistSpec::Fixed { v: b.req_f64("v")? }),
            ("Uniform", Some(b)) => Ok(DistSpec::Uniform {
                lo: b.req_f64("lo")?,
                hi: b.req_f64("hi")?,
            }),
            ("Normal", Some(b)) => Ok(DistSpec::Normal {
                mean: b.req_f64("mean")?,
                std: b.req_f64("std")?,
            }),
            ("LogNormal", Some(b)) => Ok(DistSpec::LogNormal {
                mu: b.req_f64("mu")?,
                sigma: b.req_f64("sigma")?,
            }),
            ("Pareto", Some(b)) => Ok(DistSpec::Pareto {
                scale: b.req_f64("scale")?,
                shape: b.req_f64("shape")?,
            }),
            ("Geometric", Some(b)) => Ok(DistSpec::Geometric { p: b.req_f64("p")? }),
            ("Rayleigh", Some(b)) => Ok(DistSpec::Rayleigh {
                w_min: b.req_f64("w_min")?,
                w_max: b.req_f64("w_max")?,
            }),
            ("FromHistogram", Some(b)) => Ok(DistSpec::FromHistogram(Histogram::from_json(b)?)),
            (tag, _) => Err(bad(format!("unknown DistSpec variant `{tag}`"))),
        }
    }
}

impl MachineEvent {
    /// Encode as a plain tag string.
    pub fn to_json(self) -> Json {
        Json::from(self.as_str())
    }

    /// Decode from a tag string.
    pub fn from_json(v: &Json) -> Result<MachineEvent, JsonError> {
        let s = v
            .as_str()
            .ok_or_else(|| bad("expected a MachineEvent tag"))?;
        MachineEvent::ALL
            .into_iter()
            .find(|e| e.as_str() == s)
            .ok_or_else(|| bad(format!("unknown MachineEvent `{s}`")))
    }
}

impl Target {
    /// Encode: `"End"` or `{"State": i}`.
    pub fn to_json(self) -> Json {
        match self {
            Target::End => Json::from("End"),
            Target::State(i) => Json::obj().set("State", i),
        }
    }

    /// Decode from [`Target::to_json`]'s encoding.
    pub fn from_json(v: &Json) -> Result<Target, JsonError> {
        match variant(v, "Target")? {
            ("End", None) => Ok(Target::End),
            ("State", Some(b)) => Ok(Target::State(
                b.as_u64()
                    .and_then(|i| u32::try_from(i).ok())
                    .ok_or_else(|| bad("State index is not a u32"))?,
            )),
            (tag, _) => Err(bad(format!("unknown Target variant `{tag}`"))),
        }
    }
}

impl Transition {
    /// Encode as `{"on": ..., "to": [[target, prob], ...]}`.
    pub fn to_json(&self) -> Json {
        Json::obj().set("on", self.on.to_json()).set(
            "to",
            Json::Arr(
                self.to
                    .iter()
                    .map(|(t, p)| Json::Arr(vec![t.to_json(), Json::from(*p)]))
                    .collect(),
            ),
        )
    }

    /// Decode from [`Transition::to_json`]'s encoding.
    pub fn from_json(v: &Json) -> Result<Transition, JsonError> {
        let mut to = Vec::new();
        for pair in v.req_arr("to")? {
            let pair = pair
                .as_arr()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| bad("transition target is not a [target, prob] pair"))?;
            let p = pair[1]
                .as_f64()
                .ok_or_else(|| bad("transition probability is not a number"))?;
            to.push((Target::from_json(&pair[0])?, p));
        }
        Ok(Transition {
            on: MachineEvent::from_json(v.field("on")?)?,
            to,
        })
    }
}

impl Action {
    /// Encode as externally-tagged JSON.
    pub fn to_json(&self) -> Json {
        match self {
            Action::Nop => Json::from("Nop"),
            Action::Pad {
                dir,
                size,
                timing,
                absolute,
            } => tagged(
                "Pad",
                Json::obj()
                    .set("dir", dir_to_json(*dir))
                    .set("size", size.to_json())
                    .set("timing", timing.to_json())
                    .set("absolute", *absolute),
            ),
            Action::Timer { timing } => {
                tagged("Timer", Json::obj().set("timing", timing.to_json()))
            }
            Action::Block { timing, duration } => tagged(
                "Block",
                Json::obj()
                    .set("timing", timing.to_json())
                    .set("duration", duration.to_json()),
            ),
            Action::Regulate {
                dir,
                size,
                rate,
                decay,
                surge_threshold,
                budget_frac,
            } => tagged(
                "Regulate",
                Json::obj()
                    .set("dir", dir_to_json(*dir))
                    .set("size", *size)
                    .set("rate", *rate)
                    .set("decay", *decay)
                    .set("surge_threshold", *surge_threshold)
                    .set("budget_frac", *budget_frac),
            ),
        }
    }

    /// Decode from [`Action::to_json`]'s encoding.
    pub fn from_json(v: &Json) -> Result<Action, JsonError> {
        match variant(v, "Action")? {
            ("Nop", None) => Ok(Action::Nop),
            ("Pad", Some(b)) => Ok(Action::Pad {
                dir: dir_from_json(b.field("dir")?)?,
                size: DistSpec::from_json(b.field("size")?)?,
                timing: DistSpec::from_json(b.field("timing")?)?,
                absolute: b.req_bool("absolute")?,
            }),
            ("Timer", Some(b)) => Ok(Action::Timer {
                timing: DistSpec::from_json(b.field("timing")?)?,
            }),
            ("Block", Some(b)) => Ok(Action::Block {
                timing: DistSpec::from_json(b.field("timing")?)?,
                duration: DistSpec::from_json(b.field("duration")?)?,
            }),
            ("Regulate", Some(b)) => Ok(Action::Regulate {
                dir: dir_from_json(b.field("dir")?)?,
                size: b.req_u64("size")? as u32,
                rate: b.req_f64("rate")?,
                decay: b.req_f64("decay")?,
                surge_threshold: b.req_u64("surge_threshold")?,
                budget_frac: b.req_f64("budget_frac")?,
            }),
            (tag, _) => Err(bad(format!("unknown Action variant `{tag}`"))),
        }
    }
}

impl State {
    /// Encode; `limit` is omitted when `None`.
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj().set("action", self.action.to_json());
        if let Some(l) = &self.limit {
            o = o.set("limit", l.to_json());
        }
        o.set(
            "transitions",
            Json::Arr(self.transitions.iter().map(Transition::to_json).collect()),
        )
    }

    /// Decode from [`State::to_json`]'s encoding.
    pub fn from_json(v: &Json) -> Result<State, JsonError> {
        Ok(State {
            action: Action::from_json(v.field("action")?)?,
            limit: match v.get("limit") {
                Some(l) => Some(DistSpec::from_json(l)?),
                None => None,
            },
            transitions: v
                .req_arr("transitions")?
                .iter()
                .map(Transition::from_json)
                .collect::<Result<_, _>>()?,
        })
    }
}

impl Machine {
    /// Encode as `{"states": [...]}`.
    pub fn to_json(&self) -> Json {
        Json::obj().set(
            "states",
            Json::Arr(self.states.iter().map(State::to_json).collect()),
        )
    }

    /// Decode from [`Machine::to_json`]'s encoding.
    pub fn from_json(v: &Json) -> Result<Machine, JsonError> {
        Ok(Machine {
            states: v
                .req_arr("states")?
                .iter()
                .map(State::from_json)
                .collect::<Result<_, _>>()?,
        })
    }
}

impl MachineSpec {
    /// Encode the whole spec; `policy` is omitted when `None`.
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj().set("name", self.name.as_str()).set(
            "machines",
            Json::Arr(self.machines.iter().map(Machine::to_json).collect()),
        );
        if let Some(p) = &self.policy {
            o = o.set("policy", p.to_json());
        }
        o.set("max_padding_pkts", self.max_padding_pkts)
            .set("max_blocking_ns", self.max_blocking.0)
    }

    /// Decode from [`MachineSpec::to_json`]'s encoding. Decoding checks
    /// shape only; call [`MachineSpec::validate`] before running.
    pub fn from_json(v: &Json) -> Result<MachineSpec, JsonError> {
        Ok(MachineSpec {
            name: v.req_str("name")?.to_string(),
            machines: v
                .req_arr("machines")?
                .iter()
                .map(Machine::from_json)
                .collect::<Result<_, _>>()?,
            policy: match v.get("policy") {
                Some(p) => Some(ObfuscationPolicy::from_json(p)?),
                None => None,
            },
            max_padding_pkts: v.req_u64("max_padding_pkts")?,
            max_blocking: Nanos(v.req_u64("max_blocking_ns")?),
        })
    }
}

// ---------------------------------------------------------------------
// Runtime
// ---------------------------------------------------------------------

/// Per-state-entry scales (see the draw-order contract in the module
/// docs: limit, then timing scale, then aux scale).
#[derive(Default, Clone, Copy)]
struct EntryScales {
    timing: Option<f64>,
    aux: Option<f64>,
}

enum PendingKind {
    Pad,
    Timer,
    Block,
}

/// One armed action: when it fires, and (for pads) the emission stamp —
/// equal to `fire` in relative mode, `flow_start + draw` in absolute
/// mode (absolute pads process back-to-back but stamp out of order;
/// both backends re-sort emissions).
struct PendingAction {
    fire: Nanos,
    stamp: Nanos,
    kind: PendingKind,
}

/// Live state of one machine within a core.
struct MachineRt {
    /// Current state index; `None` once the machine has ended.
    state: Option<usize>,
    /// Remaining action firings for the current entry (`None` =
    /// unlimited).
    limit: Option<u64>,
    scales: EntryScales,
    pending: Option<PendingAction>,
}

/// The machine runtime: a [`PadderCore`] interpreting a validated
/// [`MachineSpec`] over one flow. Construct via [`MachineCore::new`]
/// (normally indirectly, through [`MachineDefense::build`]).
pub struct MachineCore {
    spec: Arc<MachineSpec>,
    rts: Vec<MachineRt>,
    out: Vec<Emit>,
    now: Nanos,
    blocked_until: Option<Nanos>,
    total_blocking: Nanos,
    padded: u64,
    actions: u64,
    budget: u64,
    started: bool,
    /// Directions owned by regulate machines (the backend drops their
    /// original packets; the surge schedule re-emits them at close).
    owned: &'static [Direction],
    /// Buffered arrival times for regulated directions.
    reg_in: Vec<Nanos>,
    reg_out: Vec<Nanos>,
}

/// Pick a target from a transition row. A single certain target
/// transitions without consuming randomness (part of the draw-order
/// contract); `None` means "stay in the current state".
fn pick_target(row: &Transition, rng: &mut SimRng) -> Option<Target> {
    if row.to.len() == 1 && row.to[0].1 >= 1.0 - PROB_EPS {
        return Some(row.to[0].0);
    }
    let u = rng.next_f64();
    let mut acc = 0.0;
    for (t, p) in &row.to {
        acc += p;
        if u < acc {
            return Some(*t);
        }
    }
    None
}

impl MachineCore {
    /// Build the runtime for one flow. The spec must have passed
    /// [`MachineSpec::validate`]; [`MachineDefense`] guarantees that.
    pub fn new(spec: Arc<MachineSpec>) -> Self {
        netsim::tm_counter!("defense.machine.flows").inc();
        let n = spec.machines.len();
        // Budget: every pad consumes one action, and any useful machine
        // does bounded bookkeeping around each pad; 4x + slack catches
        // valid-but-pathological event loops (timer ping-pong etc.).
        let budget = spec.max_padding_pkts.saturating_mul(4).saturating_add(4096);
        let mut has_in = false;
        let mut has_out = false;
        for m in &spec.machines {
            for st in &m.states {
                if let Action::Regulate { dir, .. } = st.action {
                    match dir {
                        Direction::In => has_in = true,
                        Direction::Out => has_out = true,
                    }
                }
            }
        }
        const NONE: &[Direction] = &[];
        const IN: &[Direction] = &[Direction::In];
        const OUT: &[Direction] = &[Direction::Out];
        const BOTH: &[Direction] = &[Direction::In, Direction::Out];
        let owned = match (has_in, has_out) {
            (false, false) => NONE,
            (true, false) => IN,
            (false, true) => OUT,
            (true, true) => BOTH,
        };
        MachineCore {
            spec,
            rts: (0..n)
                .map(|_| MachineRt {
                    state: None,
                    limit: None,
                    scales: EntryScales::default(),
                    pending: None,
                })
                .collect(),
            out: Vec::new(),
            now: Nanos::ZERO,
            blocked_until: None,
            total_blocking: Nanos::ZERO,
            padded: 0,
            actions: 0,
            budget,
            started: false,
            owned,
            reg_in: Vec::new(),
            reg_out: Vec::new(),
        }
    }

    /// Run every regulate machine's surge schedule over its buffered
    /// arrivals, appending emissions; returns when the last re-emitted
    /// real packet lands (`None` without regulate machines). The loop is
    /// a faithful transcription of RegulaTor-lite (same float ops in the
    /// same order), so a single-machine regulate spec reproduces the
    /// native defense bit for bit. Dummy slots count against the spec's
    /// global padding cap but not the action budget — a regulate run is
    /// already bounded by `reals + budget_frac * reals` emissions.
    fn run_regulate(&mut self) -> Option<Nanos> {
        let spec = Arc::clone(&self.spec);
        let mut done: Option<Nanos> = None;
        for m in &spec.machines {
            let Action::Regulate {
                dir,
                size,
                rate,
                decay,
                surge_threshold,
                budget_frac,
            } = m.states[0].action
            else {
                continue;
            };
            let incoming: &[Nanos] = match dir {
                Direction::In => &self.reg_in,
                Direction::Out => &self.reg_out,
            };
            let mut dummy_pkts = 0u64;
            let native_budget = (incoming.len() as f64 * budget_frac) as u64;
            let dummy_budget = native_budget.min(spec.max_padding_pkts.saturating_sub(self.padded));
            let mut next_real = 0usize;
            let mut schedule_start = incoming.first().copied().unwrap_or(Nanos::ZERO);
            let mut t = schedule_start;
            let mut real_done = Nanos::ZERO;
            let mut emits = Vec::new();
            while next_real < incoming.len() {
                let age = (t.saturating_sub(schedule_start)).as_secs_f64();
                let cur_rate = (rate * decay.powf(age)).max(10.0);
                let slot = Nanos::from_secs_f64(1.0 / cur_rate);
                let backlog = incoming[next_real..]
                    .iter()
                    .take_while(|&&ts| ts <= t)
                    .count();
                if backlog as u64 > surge_threshold {
                    schedule_start = t;
                }
                let emit_real = backlog > 0;
                if emit_real {
                    real_done = t;
                    next_real += 1;
                } else if dummy_pkts < dummy_budget {
                    dummy_pkts += 1;
                } else {
                    t += slot;
                    continue;
                }
                emits.push(Emit {
                    pkt: FlowPkt { ts: t, dir, size },
                    dummy: !emit_real,
                });
                t += slot;
            }
            self.padded += dummy_pkts;
            netsim::tm_counter!("defense.machine.pads").add(dummy_pkts);
            self.out.extend(emits);
            done = Some(done.map_or(real_done, |d: Nanos| d.max(real_done)));
        }
        done
    }

    fn state_of(&self, m: usize) -> Option<&State> {
        let s = self.rts[m].state?;
        Some(&self.spec.machines[m].states[s])
    }

    fn end_machine(&mut self, m: usize) {
        self.rts[m].state = None;
        self.rts[m].pending = None;
    }

    /// Hard stop: the global padding cap or the action budget tripped.
    fn kill_all(&mut self) {
        netsim::tm_counter!("defense.machine.capped").inc();
        for m in 0..self.rts.len() {
            self.end_machine(m);
        }
        self.blocked_until = None;
    }

    /// Enter `s` on machine `m`, sampling limit and entry scales (in
    /// that order), then arm the state's action.
    ///
    /// A limit that samples to 0 raises [`MachineEvent::LimitReached`]
    /// before any action fires. That path is resolved iteratively *here*
    /// — never by recursing through `deliver` back into `enter_state`,
    /// which a hostile `Fixed {v: 0}` limit with a `LimitReached ->
    /// State(..)` row would otherwise turn into a stack overflow — and
    /// each such re-entry is charged against the action budget, so
    /// zero-limit transition cycles terminate via [`Self::kill_all`].
    fn enter_state(&mut self, m: usize, s: usize, rng: &mut SimRng) {
        let mut s = s;
        loop {
            self.rts[m].state = Some(s);
            self.rts[m].pending = None;
            let st = &self.spec.machines[m].states[s];
            let limit = st
                .limit
                .as_ref()
                .map(|d| d.sample_count(MAX_PADDING_CAP, rng));
            let scales = EntryScales {
                timing: st.action.timing().and_then(|d| d.entry_scale(rng)),
                aux: st.action.aux().and_then(|d| d.entry_scale(rng)),
            };
            self.rts[m].limit = limit;
            self.rts[m].scales = scales;
            if limit != Some(0) {
                self.arm(m, rng);
                return;
            }
            netsim::tm_counter!("defense.machine.limit_hits").inc();
            self.actions += 1;
            if self.actions > self.budget {
                self.kill_all();
                return;
            }
            let st = &self.spec.machines[m].states[s];
            let Some(row) = st
                .transitions
                .iter()
                .find(|t| t.on == MachineEvent::LimitReached)
            else {
                // No row: the machine ends (it can take no further
                // action).
                self.end_machine(m);
                return;
            };
            match pick_target(row, rng) {
                // Stayed by probability. An exhausted limit cannot stay.
                None => {
                    self.end_machine(m);
                    return;
                }
                Some(Target::End) => {
                    netsim::tm_counter!("defense.machine.transitions").inc();
                    self.end_machine(m);
                    return;
                }
                Some(Target::State(j)) => {
                    netsim::tm_counter!("defense.machine.transitions").inc();
                    s = j as usize;
                }
            }
        }
    }

    /// Arm the current state's action (draws its timing).
    fn arm(&mut self, m: usize, rng: &mut SimRng) {
        let Some(st) = self.state_of(m) else { return };
        let scales = self.rts[m].scales;
        let pending = match &st.action {
            Action::Nop | Action::Regulate { .. } => None,
            Action::Pad {
                timing, absolute, ..
            } => {
                let d = timing.sample_time(scales.timing, rng);
                if *absolute {
                    // Offset from the flow start (machines start at the
                    // flow-relative origin); processed immediately.
                    Some(PendingAction {
                        fire: self.now,
                        stamp: d,
                        kind: PendingKind::Pad,
                    })
                } else {
                    let f = self.now + d;
                    Some(PendingAction {
                        fire: f,
                        stamp: f,
                        kind: PendingKind::Pad,
                    })
                }
            }
            Action::Timer { timing } => Some(PendingAction {
                fire: self.now + timing.sample_time(scales.timing, rng),
                stamp: Nanos::ZERO,
                kind: PendingKind::Timer,
            }),
            Action::Block { timing, .. } => Some(PendingAction {
                fire: self.now + timing.sample_time(scales.timing, rng),
                stamp: Nanos::ZERO,
                kind: PendingKind::Block,
            }),
        };
        self.rts[m].pending = pending;
    }

    fn limit_reached(&mut self, m: usize, rng: &mut SimRng) {
        netsim::tm_counter!("defense.machine.limit_hits").inc();
        self.deliver(m, MachineEvent::LimitReached, rng);
    }

    /// Deliver `ev` to machine `m` and apply its transition row.
    fn deliver(&mut self, m: usize, ev: MachineEvent, rng: &mut SimRng) {
        let Some(st) = self.state_of(m) else { return };
        let cur = self.rts[m].state;
        let Some(row) = st.transitions.iter().find(|t| t.on == ev) else {
            // No row: stay put — except an unhandled exhausted limit,
            // which ends the machine (it can take no further action).
            if ev == MachineEvent::LimitReached {
                self.end_machine(m);
            }
            return;
        };
        let target = pick_target(row, rng);
        match target {
            None => {
                // Stayed by probability. An exhausted limit cannot stay.
                if ev == MachineEvent::LimitReached {
                    self.end_machine(m);
                }
            }
            Some(Target::End) => {
                netsim::tm_counter!("defense.machine.transitions").inc();
                self.end_machine(m);
            }
            Some(Target::State(j)) => {
                netsim::tm_counter!("defense.machine.transitions").inc();
                let j = j as usize;
                if cur == Some(j) && ev != MachineEvent::LimitReached {
                    // Self-transition: continue the schedule without
                    // resampling limit or entry scales.
                    self.arm(m, rng);
                } else {
                    self.enter_state(m, j, rng);
                }
            }
        }
    }

    fn deliver_all(&mut self, ev: MachineEvent, rng: &mut SimRng) {
        for m in 0..self.rts.len() {
            self.deliver(m, ev, rng);
        }
    }

    /// Fire machine `m`'s armed action.
    fn fire(&mut self, m: usize, rng: &mut SimRng) {
        let Some(p) = self.rts[m].pending.take() else {
            return;
        };
        self.actions += 1;
        if self.actions > self.budget {
            self.kill_all();
            return;
        }
        match p.kind {
            PendingKind::Pad => {
                if self.padded >= self.spec.max_padding_pkts {
                    self.kill_all();
                    return;
                }
                let Some(st) = self.state_of(m) else { return };
                let Action::Pad {
                    dir,
                    size,
                    absolute,
                    ..
                } = &st.action
                else {
                    return;
                };
                // Blocking defers relative padding to the window's end;
                // absolute schedules are zero-delay by construction.
                if !absolute {
                    if let Some(bu) = self.blocked_until {
                        if p.fire < bu {
                            self.rts[m].pending = Some(PendingAction {
                                fire: bu,
                                stamp: bu,
                                kind: PendingKind::Pad,
                            });
                            return;
                        }
                    }
                }
                let dir = *dir;
                let sz = size.sample_size(self.rts[m].scales.aux, rng);
                self.out.push(Emit {
                    pkt: FlowPkt {
                        ts: p.stamp,
                        dir,
                        size: sz,
                    },
                    dummy: true,
                });
                self.padded += 1;
                netsim::tm_counter!("defense.machine.pad_pkts").inc();
                netsim::tm_counter!("defense.machine.pad_bytes").add(u64::from(sz));
                if let Some(l) = &mut self.rts[m].limit {
                    *l -= 1;
                    if *l == 0 {
                        // An exhausted limit pre-empts PaddingSent so a
                        // self-looping pad state cannot overdraw.
                        self.limit_reached(m, rng);
                        return;
                    }
                }
                self.deliver(m, MachineEvent::PaddingSent, rng);
            }
            PendingKind::Timer => {
                self.deliver(m, MachineEvent::TimerExpired, rng);
            }
            PendingKind::Block => {
                let Some(st) = self.state_of(m) else { return };
                let Action::Block { duration, .. } = &st.action else {
                    return;
                };
                let d = duration.sample_time(self.rts[m].scales.aux, rng);
                let room = self.spec.max_blocking.saturating_sub(self.total_blocking);
                let d = d.min(room);
                if !d.is_zero() {
                    let end = self.now + d;
                    self.blocked_until = Some(self.blocked_until.map_or(end, |b| b.max(end)));
                    self.total_blocking += d;
                    netsim::tm_counter!("defense.machine.blocking_windows").inc();
                    netsim::tm_counter!("defense.machine.blocking_ns").add(d.as_nanos());
                    self.deliver_all(MachineEvent::BlockingBegin, rng);
                }
            }
        }
    }

    /// Process armed actions (and blocking-window ends) up to `horizon`
    /// (`None` = drain everything). Ties process the window end first,
    /// then machines in index order.
    fn pump(&mut self, horizon: Option<Nanos>, rng: &mut SimRng) {
        loop {
            // Candidate priority 0 is the blocking-window end; machine
            // `i` is priority `i + 1`.
            let mut best: Option<(Nanos, usize)> = None;
            if let Some(bu) = self.blocked_until {
                best = Some((bu, 0));
            }
            for (i, rt) in self.rts.iter().enumerate() {
                if let Some(p) = &rt.pending {
                    let cand = (p.fire, i + 1);
                    if best.is_none_or(|b| cand < b) {
                        best = Some(cand);
                    }
                }
            }
            let Some((fire, who)) = best else { break };
            if let Some(h) = horizon {
                if fire > h {
                    break;
                }
            }
            self.now = self.now.max(fire);
            if who == 0 {
                self.blocked_until = None;
                self.deliver_all(MachineEvent::BlockingEnd, rng);
            } else {
                self.fire(who - 1, rng);
            }
        }
    }

    fn ensure_started(&mut self, rng: &mut SimRng) {
        if self.started {
            return;
        }
        self.started = true;
        for m in 0..self.rts.len() {
            self.enter_state(m, 0, rng);
        }
    }
}

impl PadderCore for MachineCore {
    fn owned_dirs(&self) -> &'static [Direction] {
        self.owned
    }

    fn on_data(&mut self, pkt: FlowPkt, rng: &mut SimRng) {
        self.ensure_started(rng);
        if self.owned.contains(&pkt.dir) {
            match pkt.dir {
                Direction::In => self.reg_in.push(pkt.ts),
                Direction::Out => self.reg_out.push(pkt.ts),
            }
        }
        self.pump(Some(pkt.ts), rng);
        self.now = self.now.max(pkt.ts);
        let ev = match pkt.dir {
            Direction::Out => MachineEvent::PacketSent,
            Direction::In => MachineEvent::PacketReceived,
        };
        self.deliver_all(ev, rng);
    }

    fn on_close(&mut self, rng: &mut SimRng) -> CloseOut {
        self.ensure_started(rng);
        self.pump(None, rng);
        let real_done = self.run_regulate();
        CloseOut {
            emits: std::mem::take(&mut self.out),
            real_done,
        }
    }
}

// ---------------------------------------------------------------------
// Defense adapter
// ---------------------------------------------------------------------

/// A [`MachineSpec`] as a placement-agnostic [`Defense`]. Validation
/// happens once at construction; an invalid spec builds pass-through
/// flows (each counted in `stob.registry.degraded` and
/// `defense.machine.degraded`) — malformed data must never panic or
/// shape wrongly.
pub struct MachineDefense {
    spec: Arc<MachineSpec>,
    valid: bool,
}

impl MachineDefense {
    /// Wrap a spec, recording its validity.
    pub fn new(spec: MachineSpec) -> Self {
        let valid = spec.validate().is_ok();
        MachineDefense {
            spec: Arc::new(spec),
            valid,
        }
    }

    /// The wrapped spec.
    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// Whether the spec passed validation at construction.
    pub fn is_valid(&self) -> bool {
        self.valid
    }
}

impl Defense for MachineDefense {
    fn name(&self) -> &str {
        &self.spec.name
    }

    fn build(&self, _ctx: &DefenseCtx, _rng: &mut SimRng) -> FlowDefense {
        if !self.valid {
            netsim::tm_counter!("defense.machine.degraded").inc();
            netsim::tm_counter!("stob.registry.degraded").inc();
            return FlowDefense::passthrough(&self.spec.name);
        }
        let policy = self
            .spec
            .policy
            .clone()
            .unwrap_or_else(|| ObfuscationPolicy::passthrough(&self.spec.name));
        let padding: Option<Box<dyn PadderCore>> = if self.spec.machines.is_empty() {
            None
        } else {
            Some(Box::new(MachineCore::new(Arc::clone(&self.spec))))
        };
        FlowDefense {
            policy,
            padding,
            apply_dir: None,
            split_link_mbps: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defense::{emulate_flow, enforce_flow, StackParams};

    fn pkt(ts_us: u64, dir: Direction, size: u32) -> FlowPkt {
        FlowPkt {
            ts: Nanos::from_micros(ts_us),
            dir,
            size,
        }
    }

    fn flow() -> Vec<FlowPkt> {
        vec![
            pkt(0, Direction::Out, 200),
            pkt(1_000, Direction::In, 1514),
            pkt(2_500, Direction::In, 900),
            pkt(4_000, Direction::Out, 100),
            pkt(9_000, Direction::In, 1400),
        ]
    }

    /// A 1-state constant-rate pad machine on `dir`, with a dummy size
    /// distinct from every real size in [`flow`].
    fn sized_machine(dir: Direction, n: u64, gap_s: f64, size: f64) -> Machine {
        let mut m = const_machine(dir, n, gap_s);
        let Action::Pad { size: s, .. } = &mut m.states[0].action else {
            unreachable!()
        };
        *s = DistSpec::Fixed { v: size };
        m
    }

    /// A 1-state constant-rate pad machine on `dir`.
    fn const_machine(dir: Direction, n: u64, gap_s: f64) -> Machine {
        Machine {
            states: vec![State {
                action: Action::Pad {
                    dir,
                    size: DistSpec::Fixed { v: 1514.0 },
                    timing: DistSpec::Fixed { v: gap_s },
                    absolute: false,
                },
                limit: Some(DistSpec::Fixed { v: n as f64 }),
                transitions: vec![
                    Transition {
                        on: MachineEvent::PaddingSent,
                        to: vec![(Target::State(0), 1.0)],
                    },
                    Transition {
                        on: MachineEvent::LimitReached,
                        to: vec![(Target::End, 1.0)],
                    },
                ],
            }],
        }
    }

    #[test]
    fn constant_machine_emits_on_grid() {
        let spec =
            MachineSpec::padding_only("const", vec![const_machine(Direction::In, 4, 0.001)], 64);
        assert!(spec.validate().is_ok());
        let d = MachineDefense::new(spec);
        let mut rng = SimRng::new(1);
        let out = emulate_flow(&d, &flow(), &DefenseCtx::default(), &mut rng);
        assert_eq!(out.dummy_pkts, 4);
        assert_eq!(out.dummy_bytes, 4 * 1514);
        // Dummies at 1, 2, 3, 4 ms (Fixed gaps, no randomness).
        let dummies: Vec<Nanos> = out
            .pkts
            .iter()
            .filter(|p| p.size == 1514 && p.dir == Direction::In)
            .map(|p| p.ts)
            .collect();
        assert!(dummies.contains(&Nanos::from_millis(1)));
        assert!(dummies.contains(&Nanos::from_millis(4)));
        // Real packets untouched (pure padding defense).
        assert_eq!(out.real_done, Nanos::from_micros(9_000));
    }

    #[test]
    fn machine_defense_is_placement_invariant() {
        let spec = MachineSpec::padding_only(
            "pi",
            vec![
                const_machine(Direction::In, 5, 0.0007),
                const_machine(Direction::Out, 3, 0.0011),
            ],
            64,
        );
        let d = MachineDefense::new(spec);
        let mut rng = SimRng::new(42);
        let app = emulate_flow(&d, &flow(), &DefenseCtx::default(), &mut rng);
        let mut rng = SimRng::new(42);
        let stack = enforce_flow(
            &d,
            &flow(),
            &DefenseCtx::default(),
            &mut rng,
            &StackParams::with_seed(42),
        );
        assert_eq!(app.pkts, stack.pkts);
        assert_eq!(app.dummy_pkts, 8);
    }

    #[test]
    fn event_driven_transition_reacts_to_received_packets() {
        // Idle until an inbound packet, then burst 2 dummies and return.
        let spec = MachineSpec::padding_only(
            "react",
            vec![Machine {
                states: vec![
                    State {
                        action: Action::Nop,
                        limit: None,
                        transitions: vec![Transition {
                            on: MachineEvent::PacketReceived,
                            to: vec![(Target::State(1), 1.0)],
                        }],
                    },
                    State {
                        action: Action::Pad {
                            dir: Direction::In,
                            size: DistSpec::Fixed { v: 900.0 },
                            timing: DistSpec::Fixed { v: 0.0001 },
                            absolute: false,
                        },
                        limit: Some(DistSpec::Fixed { v: 2.0 }),
                        transitions: vec![
                            Transition {
                                on: MachineEvent::PaddingSent,
                                to: vec![(Target::State(1), 1.0)],
                            },
                            Transition {
                                on: MachineEvent::LimitReached,
                                to: vec![(Target::State(0), 1.0)],
                            },
                        ],
                    },
                ],
            }],
            64,
        );
        let d = MachineDefense::new(spec);
        let mut rng = SimRng::new(3);
        let out = emulate_flow(&d, &flow(), &DefenseCtx::default(), &mut rng);
        // Three inbound packets, two dummies per burst.
        assert_eq!(out.dummy_pkts, 6);
    }

    #[test]
    fn global_padding_cap_stops_runaway_machines() {
        // Unlimited self-looping pad state; only the global cap stops it.
        let mut m = const_machine(Direction::In, 0, 0.0001);
        m.states[0].limit = None;
        let spec = MachineSpec::padding_only("runaway", vec![m], 25);
        let d = MachineDefense::new(spec);
        let before = netsim::tm_counter!("defense.machine.capped").get();
        let mut rng = SimRng::new(4);
        let out = emulate_flow(&d, &flow(), &DefenseCtx::default(), &mut rng);
        assert_eq!(out.dummy_pkts, 25);
        assert!(netsim::tm_counter!("defense.machine.capped").get() > before);
    }

    #[test]
    fn timer_ping_pong_is_stopped_by_the_action_budget() {
        // Two states arming zero-delay timers at each other, forever.
        let timer_state = |next: u32| State {
            action: Action::Timer {
                timing: DistSpec::Fixed { v: 0.0 },
            },
            limit: None,
            transitions: vec![Transition {
                on: MachineEvent::TimerExpired,
                to: vec![(Target::State(next), 1.0)],
            }],
        };
        let spec = MachineSpec::padding_only(
            "pingpong",
            vec![Machine {
                states: vec![timer_state(1), timer_state(0)],
            }],
            8,
        );
        assert!(spec.validate().is_ok(), "valid but pathological");
        let d = MachineDefense::new(spec);
        let mut rng = SimRng::new(5);
        let out = emulate_flow(&d, &flow(), &DefenseCtx::default(), &mut rng);
        // Terminates (budget) and pads nothing.
        assert_eq!(out.dummy_pkts, 0);
    }

    #[test]
    fn zero_limit_transition_cycle_terminates() {
        // A limit that samples to 0 with a LimitReached row pointing
        // back at a state used to recurse enter_state -> limit_reached
        // -> deliver -> enter_state without bound (stack overflow from
        // hostile JSON). It must trip the action budget instead.
        let zero_state = |next: u32| State {
            action: Action::Nop,
            limit: Some(DistSpec::Fixed { v: 0.0 }),
            transitions: vec![Transition {
                on: MachineEvent::LimitReached,
                to: vec![(Target::State(next), 1.0)],
            }],
        };
        for machine in [
            // Self-loop (the reviewer's repro) and a 2-state cycle.
            Machine {
                states: vec![zero_state(0)],
            },
            Machine {
                states: vec![zero_state(1), zero_state(0)],
            },
        ] {
            let spec = MachineSpec::padding_only("zero-limit", vec![machine], 8);
            assert!(spec.validate().is_ok(), "valid but hostile");
            let d = MachineDefense::new(spec);
            let before = netsim::tm_counter!("defense.machine.capped").get();
            let mut rng = SimRng::new(9);
            let input = flow();
            let out = emulate_flow(&d, &input, &DefenseCtx::default(), &mut rng);
            assert_eq!(out.pkts, input);
            assert_eq!(out.dummy_pkts, 0);
            assert!(netsim::tm_counter!("defense.machine.capped").get() > before);
        }
    }

    #[test]
    fn target_decode_rejects_out_of_range_state_index() {
        let v = Json::parse(r#"{"State": 4294967296}"#).expect("parse");
        assert!(Target::from_json(&v).is_err(), "u32 overflow must reject");
        let v = Json::parse(r#"{"State": 4294967295}"#).expect("parse");
        assert_eq!(
            Target::from_json(&v).expect("u32::MAX decodes"),
            Target::State(u32::MAX)
        );
    }

    #[test]
    fn blocking_window_defers_relative_padding() {
        // Machine 0 pads every 1 ms; machine 1 opens a 5 ms blocking
        // window at t = 0.5 ms. Pads inside the window land at its end.
        let blocker = Machine {
            states: vec![State {
                action: Action::Block {
                    timing: DistSpec::Fixed { v: 0.0005 },
                    duration: DistSpec::Fixed { v: 0.005 },
                },
                limit: Some(DistSpec::Fixed { v: 1.0 }),
                transitions: vec![],
            }],
        };
        let mut spec = MachineSpec::padding_only(
            "blocked",
            vec![sized_machine(Direction::In, 3, 0.001, 1200.0), blocker],
            64,
        );
        spec.max_blocking = Nanos::from_millis(50);
        let before_w = netsim::tm_counter!("defense.machine.blocking_windows").get();
        let d = MachineDefense::new(spec);
        let mut rng = SimRng::new(6);
        let out = emulate_flow(&d, &flow(), &DefenseCtx::default(), &mut rng);
        assert_eq!(out.dummy_pkts, 3);
        // Window [0.5 ms, 5.5 ms]: the pad armed for 1 ms defers to
        // 5.5 ms; the rest follow at 6.5 and 7.5 ms.
        let dummies: Vec<Nanos> = out
            .pkts
            .iter()
            .filter(|p| p.size == 1200)
            .map(|p| p.ts)
            .collect();
        assert_eq!(
            dummies,
            vec![
                Nanos::from_micros(5_500),
                Nanos::from_micros(6_500),
                Nanos::from_micros(7_500)
            ]
        );
        assert!(netsim::tm_counter!("defense.machine.blocking_windows").get() > before_w);
    }

    #[test]
    fn total_blocking_cap_truncates_windows() {
        let blocker = Machine {
            states: vec![State {
                action: Action::Block {
                    timing: DistSpec::Fixed { v: 0.001 },
                    duration: DistSpec::Fixed { v: 10.0 },
                },
                limit: Some(DistSpec::Fixed { v: 1.0 }),
                transitions: vec![],
            }],
        };
        let mut spec = MachineSpec::padding_only(
            "trunc",
            vec![sized_machine(Direction::In, 1, 0.002, 1200.0), blocker],
            64,
        );
        spec.max_blocking = Nanos::from_millis(3);
        let d = MachineDefense::new(spec);
        let mut rng = SimRng::new(7);
        let out = emulate_flow(&d, &flow(), &DefenseCtx::default(), &mut rng);
        // 10 s window truncated to 3 ms: pad defers to 1 ms + 3 ms.
        let dummy = out.pkts.iter().find(|p| p.size == 1200).expect("dummy");
        assert_eq!(dummy.ts, Nanos::from_millis(4));
    }

    #[test]
    fn invalid_spec_degrades_to_passthrough_and_counts() {
        let mut m = const_machine(Direction::In, 4, 0.001);
        m.states[0].transitions[0].to = vec![(Target::State(9), 1.0)]; // out of range
        let spec = MachineSpec::padding_only("bad", vec![m], 64);
        assert!(spec.validate().is_err());
        let d = MachineDefense::new(spec);
        assert!(!d.is_valid());
        let before = netsim::tm_counter!("stob.registry.degraded").get();
        let mut rng = SimRng::new(8);
        let input = flow();
        let out = emulate_flow(&d, &input, &DefenseCtx::default(), &mut rng);
        assert_eq!(out.pkts, input);
        assert_eq!(out.dummy_pkts, 0);
        assert_eq!(
            netsim::tm_counter!("stob.registry.degraded").get(),
            before + 1
        );
    }

    #[test]
    fn validate_rejects_hostile_shapes() {
        let base = || const_machine(Direction::In, 4, 0.001);
        let ok = MachineSpec::padding_only("ok", vec![base()], 64);
        assert!(ok.validate().is_ok());

        let mut s = ok.clone();
        s.name.clear();
        assert!(s.validate().is_err(), "empty name");

        let mut s = ok.clone();
        s.machines = (0..MAX_MACHINES + 1).map(|_| base()).collect();
        assert!(s.validate().is_err(), "too many machines");

        let mut s = ok.clone();
        s.machines[0].states.clear();
        assert!(s.validate().is_err(), "no states");

        let mut s = ok.clone();
        s.max_padding_pkts = MAX_PADDING_CAP + 1;
        assert!(s.validate().is_err(), "padding cap");

        let mut s = ok.clone();
        s.max_blocking = MAX_BLOCKING_CAP + Nanos(1);
        assert!(s.validate().is_err(), "blocking cap");

        let mut s = ok.clone();
        s.machines[0].states[0].transitions[0].to =
            vec![(Target::End, 0.7), (Target::State(0), 0.7)];
        assert!(s.validate().is_err(), "probability mass > 1");

        let mut s = ok.clone();
        s.machines[0].states[0].transitions[0].to = vec![(Target::End, f64::NAN)];
        assert!(s.validate().is_err(), "NaN probability");

        let mut s = ok.clone();
        s.machines[0].states[0].transitions.push(Transition {
            on: MachineEvent::PaddingSent,
            to: vec![(Target::End, 1.0)],
        });
        assert!(s.validate().is_err(), "duplicate row");

        let mut s = ok.clone();
        s.machines[0].states[0].action = Action::Pad {
            dir: Direction::In,
            size: DistSpec::Fixed { v: f64::INFINITY },
            timing: DistSpec::Fixed { v: 0.001 },
            absolute: false,
        };
        assert!(s.validate().is_err(), "infinite size");

        let mut s = ok.clone();
        s.machines[0].states[0].limit = Some(DistSpec::Geometric { p: 0.0 });
        assert!(s.validate().is_err(), "geometric p = 0");

        let mut s = ok;
        s.machines[0].states[0].limit = Some(DistSpec::Rayleigh {
            w_min: 5.0,
            w_max: 1.0,
        });
        assert!(s.validate().is_err(), "inverted rayleigh window");
    }

    #[test]
    fn spec_round_trips_through_json() {
        let mut h = Histogram::new(0.0, 1500.0, 5);
        h.push(700.0);
        h.push(1400.0);
        let spec = MachineSpec {
            name: "rt".into(),
            machines: vec![Machine {
                states: vec![
                    State {
                        action: Action::Pad {
                            dir: Direction::Out,
                            size: DistSpec::FromHistogram(h),
                            timing: DistSpec::Rayleigh {
                                w_min: 1.0,
                                w_max: 7.0,
                            },
                            absolute: true,
                        },
                        limit: Some(DistSpec::Uniform { lo: 1.0, hi: 120.0 }),
                        transitions: vec![
                            Transition {
                                on: MachineEvent::PaddingSent,
                                to: vec![(Target::State(0), 1.0)],
                            },
                            Transition {
                                on: MachineEvent::LimitReached,
                                to: vec![(Target::State(1), 0.5), (Target::End, 0.5)],
                            },
                        ],
                    },
                    State {
                        action: Action::Block {
                            timing: DistSpec::Fixed { v: 0.25 },
                            duration: DistSpec::LogNormal {
                                mu: -3.0,
                                sigma: 0.5,
                            },
                        },
                        limit: None,
                        transitions: vec![Transition {
                            on: MachineEvent::BlockingEnd,
                            to: vec![(Target::End, 1.0)],
                        }],
                    },
                ],
            }],
            policy: Some(ObfuscationPolicy::split_and_delay("inner")),
            max_padding_pkts: 500,
            max_blocking: Nanos::from_millis(250),
        };
        assert!(spec.validate().is_ok());
        let text = spec.to_json().to_string_compact();
        let back = MachineSpec::from_json(&Json::parse(&text).expect("parse")).expect("decode");
        assert_eq!(back, spec);
    }

    #[test]
    fn geometric_and_histogram_draws_are_sane() {
        let mut rng = SimRng::new(11);
        let g = DistSpec::Geometric { p: 0.5 };
        for _ in 0..500 {
            let k = g.sample_count(1_000, &mut rng);
            assert!(k >= 1, "geometric support starts at 1");
        }
        let sizes = DistSpec::Normal {
            mean: 700.0,
            std: 5_000.0,
        };
        for _ in 0..500 {
            let s = sizes.sample_size(None, &mut rng);
            assert!((1..=MTU_WIRE).contains(&s));
        }
        let t = DistSpec::Pareto {
            scale: 1e9,
            shape: 0.1,
        };
        for _ in 0..100 {
            // Hostile heavy tail clamps at the per-draw ceiling.
            assert!(t.sample_time(None, &mut rng) <= Nanos::from_secs_f64(MAX_DRAW_SECS));
        }
    }
}
