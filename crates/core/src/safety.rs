//! The safety envelope: "Stob must ensure that it does not generate more
//! aggressive traffic to the network (e.g., higher pacing rate than what
//! CCA desired)" — §4.2.
//!
//! [`SafetyCap`] wraps any inner strategy and clamps every decision into
//! the CCA-conformant region: segment sizes and packet sizes can only
//! shrink relative to the stack's proposal, and departure delays can only
//! be non-negative (the type system already forbids negative delays; the
//! cap additionally bounds pathological delays that would stall the
//! connection). Every clamped decision is counted in a [`SafetyAudit`]
//! so misbehaving policies are observable.

use netsim::Nanos;
use stack::{ShapeCtx, Shaper};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counters of clamped (would-have-been-unsafe) decisions.
#[derive(Debug, Default)]
pub struct SafetyAudit {
    /// Inner strategy tried to grow the TSO segment past the proposal.
    pub tso_grow_clamped: AtomicU64,
    /// Inner strategy tried to grow a packet past the proposal.
    pub pkt_grow_clamped: AtomicU64,
    /// Inner strategy produced a delay above the configured ceiling.
    pub delay_clamped: AtomicU64,
    /// Total decisions audited.
    pub decisions: AtomicU64,
}

impl SafetyAudit {
    pub fn total_clamped(&self) -> u64 {
        self.tso_grow_clamped.load(Ordering::Relaxed)
            + self.pkt_grow_clamped.load(Ordering::Relaxed)
            + self.delay_clamped.load(Ordering::Relaxed)
    }
}

/// Wraps an inner shaper and enforces the §4.2 invariant.
pub struct SafetyCap<S> {
    inner: S,
    /// Upper bound on a single extra delay (default 1 s): a policy must
    /// obfuscate, not stall.
    pub max_delay: Nanos,
    pub audit: Arc<SafetyAudit>,
}

impl<S: Shaper> SafetyCap<S> {
    pub fn new(inner: S) -> Self {
        SafetyCap {
            inner,
            max_delay: Nanos::from_secs(1),
            audit: Arc::new(SafetyAudit::default()),
        }
    }

    pub fn with_max_delay(mut self, max_delay: Nanos) -> Self {
        self.max_delay = max_delay;
        self
    }

    pub fn audit_handle(&self) -> Arc<SafetyAudit> {
        Arc::clone(&self.audit)
    }
}

impl<S: Shaper> Shaper for SafetyCap<S> {
    fn tso_segment_pkts(&mut self, ctx: &ShapeCtx, proposed: u32) -> u32 {
        self.audit.decisions.fetch_add(1, Ordering::Relaxed);
        let want = self.inner.tso_segment_pkts(ctx, proposed);
        if want > proposed {
            self.audit.tso_grow_clamped.fetch_add(1, Ordering::Relaxed);
            proposed
        } else {
            want.max(1)
        }
    }

    fn packet_ip_size(&mut self, ctx: &ShapeCtx, pkt_index: u32, proposed: u32) -> u32 {
        self.audit.decisions.fetch_add(1, Ordering::Relaxed);
        let want = self.inner.packet_ip_size(ctx, pkt_index, proposed);
        if want > proposed {
            self.audit.pkt_grow_clamped.fetch_add(1, Ordering::Relaxed);
            proposed
        } else {
            want.max(1)
        }
    }

    fn extra_delay(&mut self, ctx: &ShapeCtx) -> Nanos {
        self.audit.decisions.fetch_add(1, Ordering::Relaxed);
        let want = self.inner.extra_delay(ctx);
        if want > self.max_delay {
            self.audit.delay_clamped.fetch_add(1, Ordering::Relaxed);
            self.max_delay
        } else {
            want
        }
    }

    fn on_ack(&mut self, ctx: &ShapeCtx) {
        self.inner.on_ack(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{FlowId, SimRng};

    fn ctx() -> ShapeCtx {
        ShapeCtx {
            flow: FlowId(1),
            now: Nanos(0),
            cwnd: 14480,
            pacing_rate_bps: None,
            in_slow_start: false,
            bytes_sent: 0,
            pkts_sent: 0,
            segs_sent: 0,
            mtu_ip: 1500,
            mss: 1448,
        }
    }

    /// A hostile strategy that tries to be more aggressive everywhere.
    struct Hostile;
    impl Shaper for Hostile {
        fn tso_segment_pkts(&mut self, _c: &ShapeCtx, p: u32) -> u32 {
            p.saturating_mul(4)
        }
        fn packet_ip_size(&mut self, _c: &ShapeCtx, _i: u32, p: u32) -> u32 {
            p.saturating_add(9000)
        }
        fn extra_delay(&mut self, _c: &ShapeCtx) -> Nanos {
            Nanos::from_secs(3600)
        }
    }

    #[test]
    fn hostile_strategy_is_fully_clamped() {
        let mut cap = SafetyCap::new(Hostile);
        let c = ctx();
        assert_eq!(cap.tso_segment_pkts(&c, 44), 44);
        assert_eq!(cap.packet_ip_size(&c, 0, 1500), 1500);
        assert_eq!(cap.extra_delay(&c), Nanos::from_secs(1));
        assert_eq!(cap.audit.total_clamped(), 3);
        assert_eq!(cap.audit.decisions.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn benign_strategy_passes_unclamped() {
        struct Benign;
        impl Shaper for Benign {
            fn tso_segment_pkts(&mut self, _c: &ShapeCtx, p: u32) -> u32 {
                p / 2
            }
            fn packet_ip_size(&mut self, _c: &ShapeCtx, _i: u32, p: u32) -> u32 {
                p - 100
            }
            fn extra_delay(&mut self, _c: &ShapeCtx) -> Nanos {
                Nanos::from_micros(50)
            }
        }
        let mut cap = SafetyCap::new(Benign);
        let c = ctx();
        assert_eq!(cap.tso_segment_pkts(&c, 44), 22);
        assert_eq!(cap.packet_ip_size(&c, 0, 1500), 1400);
        assert_eq!(cap.extra_delay(&c), Nanos::from_micros(50));
        assert_eq!(cap.audit.total_clamped(), 0);
    }

    #[test]
    fn zero_floor_on_sizes() {
        struct Zeroer;
        impl Shaper for Zeroer {
            fn tso_segment_pkts(&mut self, _c: &ShapeCtx, _p: u32) -> u32 {
                0
            }
            fn packet_ip_size(&mut self, _c: &ShapeCtx, _i: u32, _p: u32) -> u32 {
                0
            }
        }
        let mut cap = SafetyCap::new(Zeroer);
        let c = ctx();
        assert_eq!(cap.tso_segment_pkts(&c, 44), 1, "segments need >=1 pkt");
        assert_eq!(cap.packet_ip_size(&c, 0, 1500), 1);
    }

    #[test]
    fn custom_delay_ceiling() {
        let mut cap = SafetyCap::new(Hostile).with_max_delay(Nanos::from_millis(5));
        let c = ctx();
        assert_eq!(cap.extra_delay(&c), Nanos::from_millis(5));
    }

    /// A strategy parameterized by arbitrary (possibly absurd) outputs.
    struct Arb {
        tso: u32,
        size: u32,
        delay: u64,
    }
    impl Shaper for Arb {
        fn tso_segment_pkts(&mut self, _c: &ShapeCtx, _p: u32) -> u32 {
            self.tso
        }
        fn packet_ip_size(&mut self, _c: &ShapeCtx, _i: u32, _p: u32) -> u32 {
            self.size
        }
        fn extra_delay(&mut self, _c: &ShapeCtx) -> Nanos {
            Nanos(self.delay)
        }
    }

    /// The §4.2 invariant, randomized: for ANY inner strategy output and
    /// ANY proposal, the capped decision never exceeds the CCA's proposal
    /// and never stalls beyond the ceiling. Seeded `SimRng` sweep instead
    /// of proptest so the workspace stays dependency-free; edge values
    /// are pinned explicitly below the loop.
    #[test]
    fn cap_never_exceeds_proposal() {
        let mut rng = SimRng::new(0x5AFE);
        let mut cases: Vec<(u32, u32, u64, u32, u32)> = vec![
            (0, 0, 0, 1, 64),
            (9_999, 65_534, u64::MAX / 2 - 1, 1, 64),
            (0, 0, 0, 63, 8_999),
            (9_999, 65_534, u64::MAX / 2 - 1, 63, 8_999),
        ];
        for _ in 0..2_000 {
            cases.push((
                rng.next_below(10_000) as u32,
                rng.next_below(65_535) as u32,
                rng.next_below(u64::MAX / 2),
                rng.range_u64(1, 63) as u32,
                rng.range_u64(64, 8_999) as u32,
            ));
        }
        for (tso, size, delay, proposed_tso, proposed_size) in cases {
            let mut cap = SafetyCap::new(Arb { tso, size, delay });
            let c = ctx();
            let got_tso = cap.tso_segment_pkts(&c, proposed_tso);
            assert!(
                got_tso >= 1 && got_tso <= proposed_tso,
                "tso {got_tso} outside [1, {proposed_tso}] for inner {tso}"
            );
            let got_size = cap.packet_ip_size(&c, 0, proposed_size);
            assert!(
                got_size >= 1 && got_size <= proposed_size,
                "size {got_size} outside [1, {proposed_size}] for inner {size}"
            );
            let got_delay = cap.extra_delay(&c);
            assert!(
                got_delay <= Nanos::from_secs(1),
                "delay {got_delay} above ceiling for inner {delay}"
            );
        }
    }
}
