//! Live shaping strategies: [`stack::Shaper`] implementations that
//! enforce a policy on the datapath.

use crate::policy::{sample_delay, DelaySpec, ObfuscationPolicy, SizeSpec, TsoSpec};
use netsim::{Histogram, Nanos, SimRng};
use stack::{ShapeCtx, Shaper};

/// Figure 3's strategy: incrementally reduce the packet size and the TSO
/// size over successive transmissions, resetting to the defaults once the
/// maximum reduction is reached.
///
/// With aggressiveness `alpha`: packet IP size walks 1500, 1500-α, ...,
/// 1500-10α (then resets); TSO size walks 44, 44-α/4, ..., 44-8·(α/4)
/// clamped to at least 1 packet (then resets).
#[derive(Debug, Clone)]
pub struct IncrementalReduce {
    pub pkt_step: u32,
    pub pkt_steps: u32,
    pub tso_step: u32,
    pub tso_steps: u32,
    pkt_idx: u32,
    seg_idx: u32,
}

impl IncrementalReduce {
    /// Construct from the paper's single aggressiveness knob α.
    pub fn with_alpha(alpha: u32) -> Self {
        IncrementalReduce {
            pkt_step: alpha,
            pkt_steps: 10,
            tso_step: alpha / 4,
            tso_steps: 8,
            pkt_idx: 0,
            seg_idx: 0,
        }
    }

    pub fn new(pkt_step: u32, pkt_steps: u32, tso_step: u32, tso_steps: u32) -> Self {
        IncrementalReduce {
            pkt_step,
            pkt_steps,
            tso_step,
            tso_steps,
            pkt_idx: 0,
            seg_idx: 0,
        }
    }
}

impl Shaper for IncrementalReduce {
    fn tso_segment_pkts(&mut self, _ctx: &ShapeCtx, proposed: u32) -> u32 {
        if self.tso_step == 0 {
            return proposed;
        }
        let reduction = self.seg_idx * self.tso_step;
        self.seg_idx += 1;
        if self.seg_idx > self.tso_steps {
            self.seg_idx = 0; // reset to default and repeat
        }
        proposed.saturating_sub(reduction).max(1)
    }

    fn packet_ip_size(&mut self, ctx: &ShapeCtx, _pkt_index: u32, proposed: u32) -> u32 {
        if self.pkt_step == 0 {
            return proposed;
        }
        let reduction = self.pkt_idx * self.pkt_step;
        self.pkt_idx += 1;
        if self.pkt_idx > self.pkt_steps {
            self.pkt_idx = 0;
        }
        // Reduce from the MTU, not from `proposed`: the final short
        // packet of a segment is already below the target.
        let target = ctx.mtu_ip.saturating_sub(reduction);
        proposed.min(target).max(1)
    }
}

/// The §3 splitting countermeasure, enforced in-stack: any packet that
/// would exceed `threshold_ip` bytes is emitted as two halves. Enforced
/// by halving the per-packet size decision, which doubles the packet
/// count of the byte stream without copying or padding.
#[derive(Debug, Clone)]
pub struct SplitThreshold {
    pub threshold_ip: u32,
}

impl SplitThreshold {
    pub fn new(threshold_ip: u32) -> Self {
        SplitThreshold { threshold_ip }
    }
}

impl Shaper for SplitThreshold {
    fn tso_segment_pkts(&mut self, ctx: &ShapeCtx, proposed: u32) -> u32 {
        // Splitting doubles packet count; keep the burst's *byte* length
        // by keeping the packet budget unchanged (the stack will fit
        // half as many bytes per segment, preserving CC conformance).
        let _ = ctx;
        proposed
    }

    fn packet_ip_size(&mut self, _ctx: &ShapeCtx, _pkt_index: u32, proposed: u32) -> u32 {
        if proposed > self.threshold_ip {
            // Halve the payload so the two halves are equal-sized, as in
            // the paper's trace emulation.
            proposed / 2 + proposed % 2
        } else {
            proposed
        }
    }
}

/// The §3 delaying countermeasure, enforced in-stack: every segment's
/// departure is pushed back by a uniformly drawn fraction of its nominal
/// serialization interval (the in-stack analogue of stretching
/// inter-arrival times by 10-30%).
#[derive(Debug)]
pub struct DelayJitter {
    pub spec: DelaySpec,
    rng: SimRng,
}

impl DelayJitter {
    pub fn new(spec: DelaySpec, seed: u64) -> Self {
        DelayJitter {
            spec,
            rng: SimRng::new(seed),
        }
    }

    /// The paper's 10-30% uniform stretch.
    pub fn section3(seed: u64) -> Self {
        Self::new(
            DelaySpec::UniformFraction {
                lo_frac: 0.10,
                hi_frac: 0.30,
            },
            seed,
        )
    }
}

impl Shaper for DelayJitter {
    fn extra_delay(&mut self, ctx: &ShapeCtx) -> Nanos {
        // Nominal gap: the wire time of one full segment at the pacing
        // rate (or at 1 Gb/s if unpaced, a conservative stand-in).
        let rate = ctx.pacing_rate_bps.unwrap_or(1_000_000_000).max(1);
        let seg_bytes = (ctx.mss as u64).max(1) * 2;
        let nominal = if rate == u64::MAX {
            Nanos::from_micros(10)
        } else {
            Nanos::for_bytes_at_rate(seg_bytes, rate)
        };
        sample_delay(&self.spec, nominal, &mut self.rng)
    }
}

/// Sample packet sizes from an empirical histogram (the §4.1 policy
/// representation). Sizes are clamped by the stack to the CC-safe range.
///
/// A histogram with no mass (or a forged `total` its bins don't back up)
/// cannot be sampled; constructing a sampler from one degrades to
/// pass-through and bumps the registry's degraded counter rather than
/// panicking on the datapath.
#[derive(Debug)]
pub struct HistogramSampler {
    pub sizes: Histogram,
    rng: SimRng,
    degraded: bool,
}

impl HistogramSampler {
    pub fn new(sizes: Histogram, seed: u64) -> Self {
        let degraded = sizes.total == 0 || sizes.counts.iter().sum::<u64>() != sizes.total;
        if degraded {
            netsim::tm_counter!("stob.registry.degraded").inc();
        }
        HistogramSampler {
            sizes,
            rng: SimRng::new(seed),
            degraded,
        }
    }

    /// True when the histogram was unsampleable and the shaper is a
    /// pass-through.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }
}

impl Shaper for HistogramSampler {
    fn packet_ip_size(&mut self, _ctx: &ShapeCtx, _pkt_index: u32, proposed: u32) -> u32 {
        if self.degraded {
            return proposed;
        }
        let s = self.sizes.sample(self.rng.next_f64(), self.rng.next_f64());
        (s.max(1.0) as u32).min(proposed)
    }
}

/// Compose strategies: each hook threads the previous stage's output into
/// the next, so reductions compose and delays add.
pub struct Chain {
    pub stages: Vec<Box<dyn Shaper>>,
}

impl Chain {
    pub fn new(stages: Vec<Box<dyn Shaper>>) -> Self {
        Chain { stages }
    }
}

impl Shaper for Chain {
    fn tso_segment_pkts(&mut self, ctx: &ShapeCtx, proposed: u32) -> u32 {
        self.stages
            .iter_mut()
            .fold(proposed, |p, s| s.tso_segment_pkts(ctx, p))
    }
    fn packet_ip_size(&mut self, ctx: &ShapeCtx, pkt_index: u32, proposed: u32) -> u32 {
        self.stages
            .iter_mut()
            .fold(proposed, |p, s| s.packet_ip_size(ctx, pkt_index, p))
    }
    fn extra_delay(&mut self, ctx: &ShapeCtx) -> Nanos {
        self.stages.iter_mut().map(|s| s.extra_delay(ctx)).sum()
    }
    fn on_ack(&mut self, ctx: &ShapeCtx) {
        for s in &mut self.stages {
            s.on_ack(ctx);
        }
    }
}

/// Build the live shaper a policy describes. `seed` feeds the stochastic
/// strategies; `flow_salt` decorrelates flows sharing one policy.
pub fn build_shaper(policy: &ObfuscationPolicy, seed: u64, flow_salt: u64) -> Box<dyn Shaper> {
    let rng_seed = seed ^ flow_salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut stages: Vec<Box<dyn Shaper>> = Vec::new();
    match &policy.tso {
        TsoSpec::Unchanged => {}
        TsoSpec::IncrementalReduce { step, steps } => {
            stages.push(Box::new(IncrementalReduce::new(0, 0, *step, *steps)));
        }
        TsoSpec::Cap { pkts } => {
            struct Cap(u32);
            impl Shaper for Cap {
                fn tso_segment_pkts(&mut self, _c: &ShapeCtx, p: u32) -> u32 {
                    p.min(self.0)
                }
            }
            stages.push(Box::new(Cap(*pkts)));
        }
    }
    match &policy.size {
        SizeSpec::Unchanged => {}
        SizeSpec::SplitAbove { threshold } => {
            stages.push(Box::new(SplitThreshold::new(*threshold)));
        }
        SizeSpec::IncrementalReduce { step, steps } => {
            stages.push(Box::new(IncrementalReduce::new(*step, *steps, 0, 0)));
        }
        SizeSpec::FromHistogram(h) => {
            stages.push(Box::new(HistogramSampler::new(h.clone(), rng_seed)));
        }
        SizeSpec::Fixed { ip_size } => {
            struct Fixed(u32);
            impl Shaper for Fixed {
                fn packet_ip_size(&mut self, _c: &ShapeCtx, _i: u32, p: u32) -> u32 {
                    p.min(self.0)
                }
            }
            stages.push(Box::new(Fixed(*ip_size)));
        }
    }
    match &policy.delay {
        DelaySpec::Unchanged => {}
        spec => stages.push(Box::new(DelayJitter::new(spec.clone(), rng_seed))),
    }
    Box::new(Chain::new(stages))
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::FlowId;

    fn ctx() -> ShapeCtx {
        ShapeCtx {
            flow: FlowId(1),
            now: Nanos(0),
            cwnd: 100 * 1448,
            pacing_rate_bps: Some(1_000_000_000),
            in_slow_start: false,
            bytes_sent: 0,
            pkts_sent: 0,
            segs_sent: 0,
            mtu_ip: 1500,
            mss: 1448,
        }
    }

    #[test]
    fn incremental_reduce_walks_and_resets_packet_sizes() {
        let mut s = IncrementalReduce::with_alpha(20);
        let c = ctx();
        let sizes: Vec<u32> = (0..12).map(|_| s.packet_ip_size(&c, 0, 1500)).collect();
        // 1500, 1480, ..., 1300 then reset to 1500.
        let expect: Vec<u32> = (0..=10).map(|k| 1500 - 20 * k).chain([1500]).collect();
        assert_eq!(sizes, expect);
    }

    #[test]
    fn incremental_reduce_walks_and_resets_tso() {
        let mut s = IncrementalReduce::with_alpha(40); // tso step 10
        let c = ctx();
        let sizes: Vec<u32> = (0..10).map(|_| s.tso_segment_pkts(&c, 44)).collect();
        // 44, 34, 24, 14, 4, then clamped to 1, then reset.
        assert_eq!(sizes, vec![44, 34, 24, 14, 4, 1, 1, 1, 1, 44]);
    }

    #[test]
    fn incremental_reduce_never_exceeds_proposed() {
        let mut s = IncrementalReduce::with_alpha(4);
        let c = ctx();
        for _ in 0..100 {
            assert!(s.tso_segment_pkts(&c, 7) <= 7);
            assert!(s.packet_ip_size(&c, 0, 900) <= 900);
        }
    }

    #[test]
    fn alpha_zero_is_identity() {
        let mut s = IncrementalReduce::with_alpha(0);
        let c = ctx();
        for _ in 0..20 {
            assert_eq!(s.tso_segment_pkts(&c, 44), 44);
            assert_eq!(s.packet_ip_size(&c, 0, 1500), 1500);
        }
    }

    #[test]
    fn split_threshold_halves_large_packets_only() {
        let mut s = SplitThreshold::new(1200);
        let c = ctx();
        assert_eq!(s.packet_ip_size(&c, 0, 1500), 750);
        assert_eq!(s.packet_ip_size(&c, 0, 1201), 601); // odd: round up
        assert_eq!(s.packet_ip_size(&c, 0, 1200), 1200);
        assert_eq!(s.packet_ip_size(&c, 0, 600), 600);
    }

    #[test]
    fn split_halves_stay_above_min_mss_for_default_mtu() {
        // §3: the 1200-byte threshold is chosen so halves never fall
        // below the minimum TCP MSS of 536 payload bytes.
        let mut s = SplitThreshold::new(1200);
        let c = ctx();
        for ip in 1201..=1500 {
            let half = s.packet_ip_size(&c, 0, ip);
            assert!(half - 52 >= 536, "half {half} too small for ip {ip}");
        }
    }

    #[test]
    fn delay_jitter_within_fraction_band() {
        let mut s = DelayJitter::section3(7);
        let c = ctx();
        // Nominal: 2*1448 bytes at 1 Gb/s = 23168 ns.
        for _ in 0..500 {
            let d = s.extra_delay(&c);
            assert!(
                (2_316..=6_951).contains(&d.0),
                "delay {} outside 10-30% of nominal",
                d.0
            );
        }
    }

    #[test]
    fn histogram_sampler_respects_proposed_cap() {
        let mut h = Histogram::new(0.0, 3000.0, 30);
        for _ in 0..100 {
            h.push(2_500.0); // wants jumbo sizes
        }
        let mut s = HistogramSampler::new(h, 1);
        let c = ctx();
        for _ in 0..100 {
            assert!(s.packet_ip_size(&c, 0, 1500) <= 1500);
        }
    }

    #[test]
    fn histogram_sampler_empty_histogram_degrades_to_passthrough() {
        // Regression: an all-zero histogram used to reach
        // `Histogram::sample` and panic. It must degrade instead.
        let before = netsim::tm_counter!("stob.registry.degraded").get();
        let mut s = HistogramSampler::new(Histogram::new(0.0, 1500.0, 10), 1);
        assert!(s.is_degraded());
        assert_eq!(
            netsim::tm_counter!("stob.registry.degraded").get(),
            before + 1,
            "degradation must be observable"
        );
        let c = ctx();
        for proposed in [1500, 900, 64] {
            assert_eq!(s.packet_ip_size(&c, 0, proposed), proposed);
        }
    }

    #[test]
    fn histogram_sampler_forged_mass_degrades_to_passthrough() {
        let mut h = Histogram::new(0.0, 1500.0, 10);
        h.push(700.0);
        h.total = 99; // bins hold one sample; the claimed mass lies
        let mut s = HistogramSampler::new(h, 1);
        assert!(s.is_degraded());
        let c = ctx();
        assert_eq!(s.packet_ip_size(&c, 0, 1200), 1200);
    }

    #[test]
    fn chain_composes_reductions_and_adds_delays() {
        let mut chain = Chain::new(vec![
            Box::new(SplitThreshold::new(1200)),
            Box::new(DelayJitter::new(
                DelaySpec::UniformAbsolute {
                    lo: Nanos(100),
                    hi: Nanos(100),
                },
                1,
            )),
            Box::new(DelayJitter::new(
                DelaySpec::UniformAbsolute {
                    lo: Nanos(50),
                    hi: Nanos(50),
                },
                2,
            )),
        ]);
        let c = ctx();
        assert_eq!(chain.packet_ip_size(&c, 0, 1500), 750);
        assert_eq!(chain.extra_delay(&c), Nanos(150));
    }

    #[test]
    fn build_shaper_from_policy_spec() {
        let p = ObfuscationPolicy::split_and_delay("x");
        let mut s = build_shaper(&p, 1, 2);
        let c = ctx();
        assert_eq!(s.packet_ip_size(&c, 0, 1500), 750);
        assert!(s.extra_delay(&c) > Nanos::ZERO);
        // TSO untouched for this policy.
        assert_eq!(s.tso_segment_pkts(&c, 44), 44);
    }

    #[test]
    fn build_shaper_passthrough_is_identity() {
        let p = ObfuscationPolicy::passthrough("id");
        let mut s = build_shaper(&p, 1, 2);
        let c = ctx();
        assert_eq!(s.packet_ip_size(&c, 0, 1500), 1500);
        assert_eq!(s.tso_segment_pkts(&c, 44), 44);
        assert_eq!(s.extra_delay(&c), Nanos::ZERO);
    }

    #[test]
    fn flows_sharing_policy_are_decorrelated() {
        let p = ObfuscationPolicy::split_and_delay("shared");
        let mut a = build_shaper(&p, 1, 1);
        let mut b = build_shaper(&p, 1, 2);
        let c = ctx();
        let da: Vec<u64> = (0..8).map(|_| a.extra_delay(&c).0).collect();
        let db: Vec<u64> = (0..8).map(|_| b.extra_delay(&c).0).collect();
        assert_ne!(da, db, "flow salt must decorrelate jitter streams");
    }
}
