//! # stob — **s**tack-level **t**raffic **ob**fuscation
//!
//! The paper's contribution (§4): a framework that lets website-
//! fingerprinting defenses operate on the *final* packet sequence by
//! plugging into the three stack decision points where that sequence is
//! actually made — TSO sizing, per-packet sizing, and departure timing —
//! instead of hoping the application's intended sequence survives the
//! asynchronous send path (§2.3 shows it does not).
//!
//! Architecture (Figure 2):
//!
//! * **Policies** ([`policy`]) are compact, serializable descriptions of
//!   the obfuscation distributions — histograms for sizes and delays —
//!   cheap enough to share between application and stack and between
//!   flows with the same destination (§4.1).
//! * **The registry** ([`registry`]) is that shared table: applications
//!   (or an administrator) publish policies, the stack looks them up per
//!   flow/destination. It stands in for the shared memory region of the
//!   paper's design.
//! * **Strategies** ([`strategies`]) turn a policy into a live
//!   [`stack::Shaper`]: the Figure 3 `IncrementalReduce`, in-stack
//!   split/delay equivalents (`SplitThreshold`, `DelayJitter`), a
//!   histogram sampler, and combinators.
//! * **The safety envelope** ([`safety::SafetyCap`]) enforces the §4.2
//!   invariant: obfuscation may only *reduce* segment/packet sizes and
//!   *delay* departures — never send more aggressively than the CCA
//!   decided. [`guard::CcaPhaseGuard`] additionally stands the policy
//!   down in CCA phases where pacing is load-bearing (§5.1, BBR).
//! * **The control surface** ([`sockopt`]) is the `setsockopt`-style API
//!   (§5.3) apps use to attach a policy to a connection.
//!
//! Padding is deliberately *not* a Stob primitive: §4.2 leaves padding to
//! the application (TLS record padding and app-specific schemes), because
//! padding without application knowledge is both costly and ineffective.

pub mod fit;
pub mod guard;
pub mod policy;
pub mod registry;
pub mod safety;
pub mod sockopt;
pub mod strategies;

pub use fit::{fit_delay_policy, fit_morphing_policy, fit_size_policy};
pub use guard::CcaPhaseGuard;
pub use policy::{DelaySpec, ObfuscationPolicy, SizeSpec};
pub use registry::{PolicyKey, PolicyRegistry};
pub use safety::{SafetyAudit, SafetyCap};
pub use sockopt::{attach_policy, attach_policy_checked, AttachResolution};
pub use strategies::{Chain, DelayJitter, HistogramSampler, IncrementalReduce, SplitThreshold};
