//! # stob — **s**tack-level **t**raffic **ob**fuscation
//!
//! The paper's contribution (§4): a framework that lets website-
//! fingerprinting defenses operate on the *final* packet sequence by
//! plugging into the three stack decision points where that sequence is
//! actually made — TSO sizing, per-packet sizing, and departure timing —
//! instead of hoping the application's intended sequence survives the
//! asynchronous send path (§2.3 shows it does not).
//!
//! Architecture (Figure 2):
//!
//! * **Policies** ([`policy`]) are compact, serializable descriptions of
//!   the obfuscation distributions — histograms for sizes and delays —
//!   cheap enough to share between application and stack and between
//!   flows with the same destination (§4.1).
//! * **The registry** ([`registry`]) is that shared table: applications
//!   (or an administrator) publish policies, the stack looks them up per
//!   flow/destination. It stands in for the shared memory region of the
//!   paper's design.
//! * **Strategies** ([`strategies`]) turn a policy into a live
//!   [`stack::Shaper`]: the Figure 3 `IncrementalReduce`, in-stack
//!   split/delay equivalents (`SplitThreshold`, `DelayJitter`), a
//!   histogram sampler, and combinators.
//! * **The safety envelope** ([`safety::SafetyCap`]) enforces the §4.2
//!   invariant: obfuscation may only *reduce* segment/packet sizes and
//!   *delay* departures — never send more aggressively than the CCA
//!   decided. [`guard::CcaPhaseGuard`] additionally stands the policy
//!   down in CCA phases where pacing is load-bearing (§5.1, BBR).
//! * **The control surface** ([`sockopt`]) is the `setsockopt`-style API
//!   (§5.3) apps use to attach a policy to a connection. An optional
//!   [`breaker::CircuitBreaker`] guards its checked path: a policy key
//!   that keeps failing validation is shed to pass-through for a
//!   deterministic cooldown instead of being re-validated per flow.
//!
//! Padding is deliberately *not* a Stob primitive: §4.2 leaves padding to
//! the application (TLS record padding and app-specific schemes), because
//! padding without application knowledge is both costly and ineffective.
//! The [`defense`] layer honors that split: its padding schedules run at
//! the application layer under either placement, while size/delay rules
//! lower into the stack.
//!
//! On top of these sits the **defense layer** ([`defense`]): a
//! placement-agnostic [`defense::Defense`] trait — one spec per defense —
//! with an app-layer backend ([`defense::emulate_flow`]) and a stack
//! backend ([`defense::enforce_flow`]) so the *same* decision logic can be
//! evaluated at either placement, which is the paper's central comparison.
//! The [`machine`] layer takes the last step: defenses themselves become
//! *data* — serializable probabilistic state machines pushed through the
//! registry/sockopt control plane at runtime, no rebuild required.

pub mod breaker;
pub mod defense;
pub mod fit;
pub mod fleet;
pub mod guard;
pub mod machine;
pub mod policy;
pub mod registry;
pub mod safety;
pub mod sockopt;
pub mod splitter;
pub mod strategies;

pub use breaker::{Admission, BreakerConfig, BreakerStats, CircuitBreaker};
pub use defense::{
    emulate_flow, enforce_flow, DefendedFlow, Defense, DefenseCtx, FlowDefense, FlowPkt,
    PadderCore, Placement, ReferenceBank, StackParams,
};
pub use fit::{fit_delay_policy, fit_morphing_policy, fit_size_policy};
pub use fleet::{run_fleet, FleetConfig, FleetReport};
pub use guard::CcaPhaseGuard;
pub use machine::{
    Action, DistSpec, Machine, MachineCore, MachineDefense, MachineEvent, MachineSpec, State,
    Target, Transition,
};
pub use policy::{DelaySpec, ObfuscationPolicy, SizeSpec};
pub use registry::{DefenseBinding, PolicyKey, PolicyRegistry};
pub use safety::{SafetyAudit, SafetyCap};
pub use sockopt::{
    assemble_policy_shaper, attach_defense, attach_policy, attach_policy_checked,
    publish_machine_json, AttachResolution, DefenseAttachment,
};
pub use splitter::{splitter_from_json, splitter_to_json, validate_splitter, SplitterSpec};
pub use strategies::{Chain, DelayJitter, HistogramSampler, IncrementalReduce, SplitThreshold};
