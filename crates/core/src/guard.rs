//! CCA-phase and flow-position guards (§5.1, §3).
//!
//! §5.1: packet sequence control can conflict with the congestion
//! controller — BBR in particular uses pacing as a measurement
//! instrument during startup. Until CCA/obfuscation co-design matures,
//! the pragmatic interface the paper suggests is "do not perform any
//! action in certain phases". [`CcaPhaseGuard`] implements that: it
//! passes decisions through unchanged while the guard condition holds.
//!
//! The same mechanism implements §3's observation that the censorship
//! battle is decided in the first tens of packets: [`FirstNGuard`]
//! *limits* obfuscation to the first N data packets, bounding its cost.

use netsim::Nanos;
use stack::{ShapeCtx, Shaper};

/// Suspend the inner strategy while the CCA is in slow start / startup.
pub struct CcaPhaseGuard<S> {
    inner: S,
    /// Count of decisions suppressed by the guard (observability).
    pub suppressed: u64,
}

impl<S: Shaper> CcaPhaseGuard<S> {
    pub fn new(inner: S) -> Self {
        CcaPhaseGuard {
            inner,
            suppressed: 0,
        }
    }

    fn active(&self, ctx: &ShapeCtx) -> bool {
        !ctx.in_slow_start
    }
}

impl<S: Shaper> Shaper for CcaPhaseGuard<S> {
    fn tso_segment_pkts(&mut self, ctx: &ShapeCtx, proposed: u32) -> u32 {
        if self.active(ctx) {
            self.inner.tso_segment_pkts(ctx, proposed)
        } else {
            self.suppressed += 1;
            proposed
        }
    }
    fn packet_ip_size(&mut self, ctx: &ShapeCtx, pkt_index: u32, proposed: u32) -> u32 {
        if self.active(ctx) {
            self.inner.packet_ip_size(ctx, pkt_index, proposed)
        } else {
            self.suppressed += 1;
            proposed
        }
    }
    fn extra_delay(&mut self, ctx: &ShapeCtx) -> Nanos {
        if self.active(ctx) {
            self.inner.extra_delay(ctx)
        } else {
            self.suppressed += 1;
            Nanos::ZERO
        }
    }
    fn on_ack(&mut self, ctx: &ShapeCtx) {
        self.inner.on_ack(ctx);
    }
}

/// Apply the inner strategy only to the first `n` data packets of the
/// flow (0 = always apply).
pub struct FirstNGuard<S> {
    inner: S,
    pub n: u64,
}

impl<S: Shaper> FirstNGuard<S> {
    pub fn new(inner: S, n: u64) -> Self {
        FirstNGuard { inner, n }
    }

    fn active(&self, ctx: &ShapeCtx) -> bool {
        self.n == 0 || ctx.pkts_sent < self.n
    }
}

impl<S: Shaper> Shaper for FirstNGuard<S> {
    fn tso_segment_pkts(&mut self, ctx: &ShapeCtx, proposed: u32) -> u32 {
        if self.active(ctx) {
            self.inner.tso_segment_pkts(ctx, proposed)
        } else {
            proposed
        }
    }
    fn packet_ip_size(&mut self, ctx: &ShapeCtx, pkt_index: u32, proposed: u32) -> u32 {
        if self.active(ctx) {
            self.inner.packet_ip_size(ctx, pkt_index, proposed)
        } else {
            proposed
        }
    }
    fn extra_delay(&mut self, ctx: &ShapeCtx) -> Nanos {
        if self.active(ctx) {
            self.inner.extra_delay(ctx)
        } else {
            Nanos::ZERO
        }
    }
    fn on_ack(&mut self, ctx: &ShapeCtx) {
        self.inner.on_ack(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::SplitThreshold;
    use netsim::FlowId;

    fn ctx(in_ss: bool, pkts_sent: u64) -> ShapeCtx {
        ShapeCtx {
            flow: FlowId(1),
            now: Nanos(0),
            cwnd: 14480,
            pacing_rate_bps: None,
            in_slow_start: in_ss,
            bytes_sent: 0,
            pkts_sent,
            segs_sent: 0,
            mtu_ip: 1500,
            mss: 1448,
        }
    }

    #[test]
    fn guard_suppresses_in_slow_start() {
        let mut g = CcaPhaseGuard::new(SplitThreshold::new(1200));
        let ss = ctx(true, 0);
        assert_eq!(g.packet_ip_size(&ss, 0, 1500), 1500, "untouched in SS");
        assert_eq!(g.extra_delay(&ss), Nanos::ZERO);
        assert_eq!(g.suppressed, 2);
        let ca = ctx(false, 0);
        assert_eq!(g.packet_ip_size(&ca, 0, 1500), 750, "active in CA");
    }

    #[test]
    fn first_n_guard_limits_scope() {
        let mut g = FirstNGuard::new(SplitThreshold::new(1200), 15);
        assert_eq!(g.packet_ip_size(&ctx(false, 0), 0, 1500), 750);
        assert_eq!(g.packet_ip_size(&ctx(false, 14), 0, 1500), 750);
        assert_eq!(g.packet_ip_size(&ctx(false, 15), 0, 1500), 1500);
        assert_eq!(g.packet_ip_size(&ctx(false, 1000), 0, 1500), 1500);
    }

    #[test]
    fn first_n_zero_means_whole_flow() {
        let mut g = FirstNGuard::new(SplitThreshold::new(1200), 0);
        assert_eq!(g.packet_ip_size(&ctx(false, 1 << 40), 0, 1500), 750);
    }

    #[test]
    fn guards_compose() {
        // Slow-start guard around a first-N guard around the splitter.
        let mut g = CcaPhaseGuard::new(FirstNGuard::new(SplitThreshold::new(1200), 10));
        assert_eq!(g.packet_ip_size(&ctx(true, 5), 0, 1500), 1500);
        assert_eq!(g.packet_ip_size(&ctx(false, 5), 0, 1500), 750);
        assert_eq!(g.packet_ip_size(&ctx(false, 50), 0, 1500), 1500);
    }
}
