//! Obfuscation policies: the compact, shareable description of *what*
//! the obfuscation should look like, decoupled from the stack hooks that
//! enforce it.
//!
//! §4.1: "the packet departure time and size applied to data units can be
//! represented as relatively compact distribution functions like
//! histograms, and their instances can be shared between flows in some
//! cases (e.g., same destination)". A policy therefore carries a
//! [`SizeSpec`] and a [`DelaySpec`], each either a simple parametric rule
//! or an empirical histogram.
//!
//! Policies validate and round-trip through the workspace's own JSON:
//!
//! ```
//! use stob::policy::ObfuscationPolicy;
//! let p = ObfuscationPolicy::incremental("fig3", 20);
//! assert!(p.validate().is_ok());
//! let back = ObfuscationPolicy::from_json(&p.to_json()).unwrap();
//! assert_eq!(back.name, p.name);
//! ```

use netsim::json::{Json, JsonError};
use netsim::{Histogram, Nanos, SimRng};

/// How packet sizes should be obfuscated.
#[derive(Debug, Clone, PartialEq)]
pub enum SizeSpec {
    /// Leave sizes alone.
    Unchanged,
    /// Split packets whose IP size exceeds `threshold` into halves
    /// (the §3 countermeasure).
    SplitAbove { threshold: u32 },
    /// Cycle packet sizes downward: start at the MTU, shrink by `step`
    /// per packet for `steps` packets, then reset (Figure 3's rule).
    IncrementalReduce { step: u32, steps: u32 },
    /// Draw each packet's IP size from an empirical histogram.
    FromHistogram(Histogram),
    /// Force a fixed IP packet size (clamped to the MTU by the stack).
    Fixed { ip_size: u32 },
}

/// How departure times should be obfuscated.
#[derive(Debug, Clone, PartialEq)]
pub enum DelaySpec {
    /// Leave timing alone.
    Unchanged,
    /// Add a uniform extra delay of `lo_frac..hi_frac` of the segment's
    /// own serialization time at the current pacing rate — the in-stack
    /// analogue of §3's "increment the inter-arrival time by 10-30%".
    UniformFraction { lo_frac: f64, hi_frac: f64 },
    /// Add an absolute uniform delay in nanoseconds.
    UniformAbsolute { lo: Nanos, hi: Nanos },
    /// Draw extra delay (in microseconds) from an empirical histogram.
    FromHistogramMicros(Histogram),
}

/// How TSO/GSO segment sizes should be obfuscated.
#[derive(Debug, Clone, PartialEq)]
pub enum TsoSpec {
    Unchanged,
    /// Cycle the segment size downward by `step` packets for `steps`
    /// segments, then reset (Figure 3's rule: step = alpha/4, 8 steps).
    IncrementalReduce {
        step: u32,
        steps: u32,
    },
    /// Cap segments at a fixed number of packets.
    Cap {
        pkts: u32,
    },
}

/// A complete obfuscation policy, as published to the registry.
#[derive(Debug, Clone, PartialEq)]
pub struct ObfuscationPolicy {
    /// Human-readable identifier, unique within a registry.
    pub name: String,
    pub size: SizeSpec,
    pub delay: DelaySpec,
    pub tso: TsoSpec,
    /// Apply only to the first `first_n_pkts` data packets of the flow
    /// (0 = whole flow). §3 shows the censorship fight happens in the
    /// first tens of packets, so front-loading protection bounds cost.
    pub first_n_pkts: u64,
    /// Hold off while the CCA is in slow start (§5.1: don't disturb
    /// phases where pacing is a measurement instrument).
    pub respect_slow_start: bool,
}

impl ObfuscationPolicy {
    /// A policy that changes nothing (useful as a registry default).
    pub fn passthrough(name: &str) -> Self {
        ObfuscationPolicy {
            name: name.to_string(),
            size: SizeSpec::Unchanged,
            delay: DelaySpec::Unchanged,
            tso: TsoSpec::Unchanged,
            first_n_pkts: 0,
            respect_slow_start: false,
        }
    }

    /// The paper's §3 server-side countermeasure pair, expressed as a
    /// stack policy: split above 1200 bytes, delay by 10-30%.
    pub fn split_and_delay(name: &str) -> Self {
        ObfuscationPolicy {
            name: name.to_string(),
            size: SizeSpec::SplitAbove { threshold: 1200 },
            delay: DelaySpec::UniformFraction {
                lo_frac: 0.10,
                hi_frac: 0.30,
            },
            tso: TsoSpec::Unchanged,
            first_n_pkts: 0,
            respect_slow_start: false,
        }
    }

    /// Check internal consistency before the policy reaches the
    /// datapath. An inconsistent policy (an empty histogram, an inverted
    /// delay range, a zero split threshold) must not drive a live shaper:
    /// [`crate::sockopt::attach_policy_checked`] consults this and falls
    /// back to pass-through — shaping wrongly is worse than not shaping,
    /// and crashing the stack is worse than both.
    pub fn validate(&self) -> Result<(), String> {
        match &self.size {
            SizeSpec::Unchanged => {}
            SizeSpec::SplitAbove { threshold } => {
                if *threshold == 0 {
                    return Err("SplitAbove: threshold must be positive".into());
                }
            }
            SizeSpec::IncrementalReduce { steps, .. } => {
                if *steps == 0 {
                    return Err("size IncrementalReduce: steps must be positive".into());
                }
            }
            SizeSpec::FromHistogram(h) => histogram_ok(h, "size")?,
            SizeSpec::Fixed { ip_size } => {
                if *ip_size == 0 {
                    return Err("Fixed: ip_size must be positive".into());
                }
            }
        }
        match &self.delay {
            DelaySpec::Unchanged => {}
            DelaySpec::UniformFraction { lo_frac, hi_frac } => {
                if !lo_frac.is_finite() || !hi_frac.is_finite() || *lo_frac < 0.0 {
                    return Err("UniformFraction: fractions must be finite and >= 0".into());
                }
                if hi_frac < lo_frac {
                    return Err("UniformFraction: hi_frac below lo_frac".into());
                }
            }
            DelaySpec::UniformAbsolute { lo, hi } => {
                if hi < lo {
                    return Err("UniformAbsolute: hi below lo".into());
                }
            }
            DelaySpec::FromHistogramMicros(h) => histogram_ok(h, "delay")?,
        }
        match &self.tso {
            TsoSpec::Unchanged => {}
            TsoSpec::IncrementalReduce { steps, .. } => {
                if *steps == 0 {
                    return Err("tso IncrementalReduce: steps must be positive".into());
                }
            }
            TsoSpec::Cap { pkts } => {
                if *pkts == 0 {
                    return Err("tso Cap: pkts must be positive".into());
                }
            }
        }
        Ok(())
    }

    /// Figure 3's incremental-reduce policy at aggressiveness `alpha`.
    pub fn incremental(name: &str, alpha: u32) -> Self {
        ObfuscationPolicy {
            name: name.to_string(),
            size: SizeSpec::IncrementalReduce {
                step: alpha,
                steps: 10,
            },
            delay: DelaySpec::Unchanged,
            tso: TsoSpec::IncrementalReduce {
                step: alpha / 4,
                steps: 8,
            },
            first_n_pkts: 0,
            respect_slow_start: false,
        }
    }
}

/// A histogram deserialized from an external source can claim a mass
/// (`total`) its bins don't back up; sampling such a histogram silently
/// skews toward the edge bins. Shared with the machine-spec codec.
pub(crate) fn histogram_ok(h: &netsim::Histogram, what: &str) -> Result<(), String> {
    if h.total == 0 {
        return Err(format!("{what} histogram has no samples"));
    }
    let binned: u64 = h.counts.iter().sum();
    if binned != h.total {
        return Err(format!(
            "{what} histogram mass {} disagrees with binned count {binned}",
            h.total
        ));
    }
    Ok(())
}

pub(crate) fn bad(msg: impl Into<String>) -> JsonError {
    JsonError {
        offset: 0,
        message: msg.into(),
    }
}

/// Externally-tagged enum encoding: unit variants are plain strings,
/// struct variants are `{"Variant": {fields...}}` — the same shape a
/// serde derive would have produced, so exports stay familiar.
pub(crate) fn variant<'a>(
    v: &'a Json,
    what: &str,
) -> Result<(&'a str, Option<&'a Json>), JsonError> {
    match v {
        Json::Str(tag) => Ok((tag.as_str(), None)),
        Json::Obj(entries) if entries.len() == 1 => {
            Ok((entries[0].0.as_str(), Some(&entries[0].1)))
        }
        _ => Err(bad(format!("{what}: expected a variant tag"))),
    }
}

pub(crate) fn tagged(tag: &str, body: Json) -> Json {
    Json::obj().set(tag, body)
}

impl SizeSpec {
    pub fn to_json(&self) -> Json {
        match self {
            SizeSpec::Unchanged => Json::from("Unchanged"),
            SizeSpec::SplitAbove { threshold } => {
                tagged("SplitAbove", Json::obj().set("threshold", *threshold))
            }
            SizeSpec::IncrementalReduce { step, steps } => tagged(
                "IncrementalReduce",
                Json::obj().set("step", *step).set("steps", *steps),
            ),
            SizeSpec::FromHistogram(h) => tagged("FromHistogram", h.to_json()),
            SizeSpec::Fixed { ip_size } => tagged("Fixed", Json::obj().set("ip_size", *ip_size)),
        }
    }

    pub fn from_json(v: &Json) -> Result<SizeSpec, JsonError> {
        match variant(v, "SizeSpec")? {
            ("Unchanged", None) => Ok(SizeSpec::Unchanged),
            ("SplitAbove", Some(b)) => Ok(SizeSpec::SplitAbove {
                threshold: b.req_u64("threshold")? as u32,
            }),
            ("IncrementalReduce", Some(b)) => Ok(SizeSpec::IncrementalReduce {
                step: b.req_u64("step")? as u32,
                steps: b.req_u64("steps")? as u32,
            }),
            ("FromHistogram", Some(b)) => Ok(SizeSpec::FromHistogram(Histogram::from_json(b)?)),
            ("Fixed", Some(b)) => Ok(SizeSpec::Fixed {
                ip_size: b.req_u64("ip_size")? as u32,
            }),
            (tag, _) => Err(bad(format!("unknown SizeSpec variant `{tag}`"))),
        }
    }
}

impl DelaySpec {
    pub fn to_json(&self) -> Json {
        match self {
            DelaySpec::Unchanged => Json::from("Unchanged"),
            DelaySpec::UniformFraction { lo_frac, hi_frac } => tagged(
                "UniformFraction",
                Json::obj()
                    .set("lo_frac", *lo_frac)
                    .set("hi_frac", *hi_frac),
            ),
            DelaySpec::UniformAbsolute { lo, hi } => tagged(
                "UniformAbsolute",
                Json::obj().set("lo", lo.0).set("hi", hi.0),
            ),
            DelaySpec::FromHistogramMicros(h) => tagged("FromHistogramMicros", h.to_json()),
        }
    }

    pub fn from_json(v: &Json) -> Result<DelaySpec, JsonError> {
        match variant(v, "DelaySpec")? {
            ("Unchanged", None) => Ok(DelaySpec::Unchanged),
            ("UniformFraction", Some(b)) => Ok(DelaySpec::UniformFraction {
                lo_frac: b.req_f64("lo_frac")?,
                hi_frac: b.req_f64("hi_frac")?,
            }),
            ("UniformAbsolute", Some(b)) => Ok(DelaySpec::UniformAbsolute {
                lo: Nanos(b.req_u64("lo")?),
                hi: Nanos(b.req_u64("hi")?),
            }),
            ("FromHistogramMicros", Some(b)) => {
                Ok(DelaySpec::FromHistogramMicros(Histogram::from_json(b)?))
            }
            (tag, _) => Err(bad(format!("unknown DelaySpec variant `{tag}`"))),
        }
    }
}

impl TsoSpec {
    pub fn to_json(&self) -> Json {
        match self {
            TsoSpec::Unchanged => Json::from("Unchanged"),
            TsoSpec::IncrementalReduce { step, steps } => tagged(
                "IncrementalReduce",
                Json::obj().set("step", *step).set("steps", *steps),
            ),
            TsoSpec::Cap { pkts } => tagged("Cap", Json::obj().set("pkts", *pkts)),
        }
    }

    pub fn from_json(v: &Json) -> Result<TsoSpec, JsonError> {
        match variant(v, "TsoSpec")? {
            ("Unchanged", None) => Ok(TsoSpec::Unchanged),
            ("IncrementalReduce", Some(b)) => Ok(TsoSpec::IncrementalReduce {
                step: b.req_u64("step")? as u32,
                steps: b.req_u64("steps")? as u32,
            }),
            ("Cap", Some(b)) => Ok(TsoSpec::Cap {
                pkts: b.req_u64("pkts")? as u32,
            }),
            (tag, _) => Err(bad(format!("unknown TsoSpec variant `{tag}`"))),
        }
    }
}

impl ObfuscationPolicy {
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("name", self.name.as_str())
            .set("size", self.size.to_json())
            .set("delay", self.delay.to_json())
            .set("tso", self.tso.to_json())
            .set("first_n_pkts", self.first_n_pkts)
            .set("respect_slow_start", self.respect_slow_start)
    }

    pub fn from_json(v: &Json) -> Result<ObfuscationPolicy, JsonError> {
        Ok(ObfuscationPolicy {
            name: v.req_str("name")?.to_string(),
            size: SizeSpec::from_json(v.field("size")?)?,
            delay: DelaySpec::from_json(v.field("delay")?)?,
            tso: TsoSpec::from_json(v.field("tso")?)?,
            first_n_pkts: v.req_u64("first_n_pkts")?,
            respect_slow_start: v.req_bool("respect_slow_start")?,
        })
    }
}

/// Sample a [`DelaySpec`] given the segment's nominal serialization time.
pub(crate) fn sample_delay(spec: &DelaySpec, nominal: Nanos, rng: &mut SimRng) -> Nanos {
    match spec {
        DelaySpec::Unchanged => Nanos::ZERO,
        DelaySpec::UniformFraction { lo_frac, hi_frac } => {
            let f = rng.range_f64(*lo_frac, *hi_frac);
            nominal.mul_f64(f)
        }
        DelaySpec::UniformAbsolute { lo, hi } => Nanos(rng.range_u64(lo.0, hi.0)),
        DelaySpec::FromHistogramMicros(h) => {
            let us = h.sample(rng.next_f64(), rng.next_f64()).max(0.0);
            Nanos::from_secs_f64(us * 1e-6)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passthrough_is_inert() {
        let p = ObfuscationPolicy::passthrough("none");
        assert!(matches!(p.size, SizeSpec::Unchanged));
        assert!(matches!(p.delay, DelaySpec::Unchanged));
        assert!(matches!(p.tso, TsoSpec::Unchanged));
        assert_eq!(p.first_n_pkts, 0);
    }

    #[test]
    fn split_and_delay_matches_section3_parameters() {
        let p = ObfuscationPolicy::split_and_delay("s3");
        match p.size {
            SizeSpec::SplitAbove { threshold } => assert_eq!(threshold, 1200),
            _ => panic!("wrong size spec"),
        }
        match p.delay {
            DelaySpec::UniformFraction { lo_frac, hi_frac } => {
                assert_eq!(lo_frac, 0.10);
                assert_eq!(hi_frac, 0.30);
            }
            _ => panic!("wrong delay spec"),
        }
    }

    #[test]
    fn incremental_matches_figure3_parameters() {
        let p = ObfuscationPolicy::incremental("fig3", 20);
        match p.size {
            SizeSpec::IncrementalReduce { step, steps } => {
                assert_eq!(step, 20);
                assert_eq!(steps, 10);
            }
            _ => panic!("wrong size spec"),
        }
        match p.tso {
            TsoSpec::IncrementalReduce { step, steps } => {
                assert_eq!(step, 5);
                assert_eq!(steps, 8);
            }
            _ => panic!("wrong tso spec"),
        }
    }

    #[test]
    fn delay_sampling_fraction_in_range() {
        let mut rng = SimRng::new(1);
        let spec = DelaySpec::UniformFraction {
            lo_frac: 0.10,
            hi_frac: 0.30,
        };
        let nominal = Nanos::from_micros(100);
        for _ in 0..1000 {
            let d = sample_delay(&spec, nominal, &mut rng);
            assert!(
                (Nanos::from_micros(10)..=Nanos::from_micros(30)).contains(&d),
                "delay {d} out of 10-30% band"
            );
        }
    }

    #[test]
    fn delay_sampling_absolute_in_range() {
        let mut rng = SimRng::new(2);
        let spec = DelaySpec::UniformAbsolute {
            lo: Nanos(100),
            hi: Nanos(200),
        };
        for _ in 0..1000 {
            let d = sample_delay(&spec, Nanos::ZERO, &mut rng);
            assert!((100..=200).contains(&d.0));
        }
    }

    #[test]
    fn delay_sampling_histogram() {
        let mut h = Histogram::new(0.0, 1000.0, 10);
        for _ in 0..50 {
            h.push(550.0); // all mass in 500-600 us
        }
        let mut rng = SimRng::new(3);
        let spec = DelaySpec::FromHistogramMicros(h);
        for _ in 0..100 {
            let d = sample_delay(&spec, Nanos::ZERO, &mut rng);
            assert!(
                (Nanos::from_micros(500)..Nanos::from_micros(600)).contains(&d),
                "{d}"
            );
        }
    }

    #[test]
    fn validate_accepts_the_stock_policies() {
        assert!(ObfuscationPolicy::passthrough("p").validate().is_ok());
        assert!(ObfuscationPolicy::split_and_delay("s").validate().is_ok());
        assert!(ObfuscationPolicy::incremental("i", 20).validate().is_ok());
    }

    #[test]
    fn validate_rejects_inconsistent_policies() {
        let mut p = ObfuscationPolicy::passthrough("bad");
        p.size = SizeSpec::SplitAbove { threshold: 0 };
        assert!(p.validate().is_err());

        p.size = SizeSpec::FromHistogram(Histogram::new(0.0, 1500.0, 10));
        assert!(p.validate().is_err(), "empty histogram must not sample");

        p.size = SizeSpec::Unchanged;
        p.delay = DelaySpec::UniformFraction {
            lo_frac: 0.30,
            hi_frac: 0.10,
        };
        assert!(p.validate().is_err(), "inverted fraction range");

        p.delay = DelaySpec::UniformFraction {
            lo_frac: f64::NAN,
            hi_frac: 0.1,
        };
        assert!(p.validate().is_err(), "NaN fraction");

        p.delay = DelaySpec::UniformAbsolute {
            lo: Nanos(200),
            hi: Nanos(100),
        };
        assert!(p.validate().is_err(), "inverted absolute range");

        p.delay = DelaySpec::Unchanged;
        p.tso = TsoSpec::Cap { pkts: 0 };
        assert!(p.validate().is_err(), "zero TSO cap");
    }

    #[test]
    fn validate_rejects_forged_histogram_mass() {
        // A histogram whose claimed total disagrees with its bins (only
        // constructible by hand or via JSON) must not reach a sampler.
        let mut h = Histogram::new(0.0, 1500.0, 10);
        h.push(700.0);
        h.total = 5;
        let mut p = ObfuscationPolicy::passthrough("forged");
        p.size = SizeSpec::FromHistogram(h.clone());
        let err = p.validate().expect_err("forged mass must fail");
        assert!(err.contains("disagrees"), "{err}");

        p.size = SizeSpec::Unchanged;
        p.delay = DelaySpec::FromHistogramMicros(h);
        assert!(p.validate().is_err());
    }

    #[test]
    fn policies_serialize_round_trip() {
        let p = ObfuscationPolicy::split_and_delay("rt");
        let json = p.to_json().to_string_compact();
        let back =
            ObfuscationPolicy::from_json(&Json::parse(&json).expect("parse")).expect("deserialize");
        assert_eq!(back.name, "rt");
        assert!(matches!(
            back.size,
            SizeSpec::SplitAbove { threshold: 1200 }
        ));
    }

    #[test]
    fn histogram_specs_round_trip_through_json() {
        let mut h = Histogram::new(0.0, 100.0, 5);
        h.push(12.0);
        h.push(88.0);
        let p = ObfuscationPolicy {
            name: "hist".to_string(),
            size: SizeSpec::FromHistogram(h.clone()),
            delay: DelaySpec::FromHistogramMicros(h),
            tso: TsoSpec::Cap { pkts: 4 },
            first_n_pkts: 30,
            respect_slow_start: true,
        };
        let back = ObfuscationPolicy::from_json(
            &Json::parse(&p.to_json().to_string_compact()).expect("parse"),
        )
        .expect("de");
        match back.size {
            SizeSpec::FromHistogram(bh) => {
                assert_eq!(bh.counts, vec![1, 0, 0, 0, 1]);
                assert_eq!(bh.total, 2);
            }
            _ => panic!("wrong size spec"),
        }
        assert!(back.respect_slow_start);
        assert_eq!(back.first_n_pkts, 30);
    }
}
