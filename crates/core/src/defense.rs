//! The placement-agnostic defense layer: one spec, two backends.
//!
//! The paper's thesis (§2.3, §4) is that the *same* defense behaves
//! differently depending on whether it runs at the application layer or
//! inside the network stack. This module makes that axis a first-class
//! parameter instead of two disjoint code paths:
//!
//! - a [`Defense`] is a pure decision spec: given per-flow context and a
//!   deterministic RNG it `build`s a [`FlowDefense`] — an
//!   [`ObfuscationPolicy`] (size/delay/TSO rules) plus an optional
//!   [`PadderCore`] (dummy-packet schedule);
//! - [`emulate_flow`] is the **app-layer backend**: it interprets the
//!   spec directly over a recorded packet sequence, reproducing the
//!   trace-level emulation the `defenses` crate has always done;
//! - [`enforce_flow`] is the **stack backend**: it lowers the same spec
//!   through [`crate::strategies::build_shaper`] into a live
//!   [`Shaper`](stack::Shaper) (inside the §4.2
//!   [`SafetyCap`](crate::safety::SafetyCap) and the policy's guards)
//!   and drives it with a replay [`EgressPipeline`] — the decisions the
//!   stack would have made, applied to the recorded flow.
//!
//! Padding schedules are executed identically by both backends: §4.2
//! scopes the stack's authority to sizing and departure timing of real
//! data, so dummy-packet injection remains an application-layer concern
//! at either placement. A defense that only pads (FRONT, WTF-PAD) is
//! therefore placement-invariant by construction, while size/delay
//! defenses inherit the stack's pacing clock, safety clamp, and guard
//! semantics when placed in-stack — exactly the difference the paper
//! argues about.

use crate::policy::{sample_delay, DelaySpec, ObfuscationPolicy, SizeSpec};
use netsim::{Direction, FlowId, Nanos, SimRng};
use stack::egress::{EgressLabels, EgressPipeline};
use stack::ShapeCtx;

/// Where a defense is enforced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Placement {
    /// Application layer: trace emulation via [`emulate_flow`].
    App,
    /// Inside the stack: shaper enforcement via [`enforce_flow`].
    Stack,
}

impl Placement {
    /// Both placements, in canonical (app, stack) order.
    pub const ALL: [Placement; 2] = [Placement::App, Placement::Stack];

    /// Short lowercase label used in benchmark axes and JSON dumps.
    pub fn name(self) -> &'static str {
        match self {
            Placement::App => "app",
            Placement::Stack => "stack",
        }
    }
}

/// One packet of a flow as both backends see it: a timestamp relative to
/// the flow start, a direction, and a wire size in bytes. The `traces`
/// crate's `TracePacket` converts losslessly to and from this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowPkt {
    pub ts: Nanos,
    pub dir: Direction,
    pub size: u32,
}

/// A defended flow: the shaped packet sequence plus the padding and
/// latency accounting the overhead metrics need.
#[derive(Debug, Clone)]
pub struct DefendedFlow {
    /// The shaped packet sequence, normalized (time-sorted, first packet
    /// at t = 0).
    pub pkts: Vec<FlowPkt>,
    /// Dummy packets injected by the padding schedule.
    pub dummy_pkts: usize,
    /// Dummy bytes injected by the padding schedule.
    pub dummy_bytes: u64,
    /// When the last *real* byte was delivered (for latency overhead).
    pub real_done: Nanos,
}

/// One packet emitted by a [`PadderCore`] when the flow closes.
#[derive(Debug, Clone, Copy)]
pub struct Emit {
    pub pkt: FlowPkt,
    /// True for injected dummies, false for re-emitted real packets.
    pub dummy: bool,
}

/// Everything a [`PadderCore`] reports at flow close.
#[derive(Debug, Clone, Default)]
pub struct CloseOut {
    /// Packets to merge into the flow (re-emitted reals for owned
    /// directions, plus dummies).
    pub emits: Vec<Emit>,
    /// When the last real byte was delivered, if the core re-times real
    /// data; `None` means "the policy stream's duration" (pure padding
    /// never moves real packets).
    pub real_done: Option<Nanos>,
}

/// A defense's padding/re-timing schedule, fed the flow's packets in
/// arrival order. Cores typically buffer what they need in
/// [`on_data`](Self::on_data) and produce their schedule in
/// [`on_close`](Self::on_close), once the flow's shape is known.
pub trait PadderCore {
    /// Directions whose real packets this core re-emits wholesale (via
    /// [`CloseOut::emits`]); the backend drops the original packets of
    /// these directions and keeps everything else as-is. Empty for pure
    /// padding defenses.
    fn owned_dirs(&self) -> &'static [Direction] {
        &[]
    }

    /// Observe one packet of the post-policy stream.
    fn on_data(&mut self, _pkt: FlowPkt, _rng: &mut SimRng) {}

    /// The flow is complete: produce the padding schedule.
    fn on_close(&mut self, rng: &mut SimRng) -> CloseOut;
}

/// Read-only view of a trace bank for defenses that shape one flow to
/// look like another (Surakav). Lives here (rather than depending on the
/// `traces` crate) so the core stays trace-format-agnostic.
pub trait ReferenceBank: Sync {
    /// Number of candidate reference flows.
    fn len(&self) -> usize;
    /// True when the bank holds no candidates.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Class label of candidate `i` (defenses avoid mimicking the
    /// flow's own class).
    fn label(&self, i: usize) -> usize;
    /// Inbound packet times of candidate `i`.
    fn in_times(&self, i: usize) -> Vec<Nanos>;
}

/// Per-flow context handed to [`Defense::build`].
#[derive(Clone, Copy, Default)]
pub struct DefenseCtx<'a> {
    /// Class label of the flow being defended (0 when unknown).
    pub label: usize,
    /// Reference bank for mimicry defenses, when available.
    pub bank: Option<&'a dyn ReferenceBank>,
}

/// What a [`Defense`] decides for one flow: the policy rules both
/// backends interpret, plus the optional padding schedule.
pub struct FlowDefense {
    /// Size/delay/TSO rules (plus first-N and slow-start scoping).
    pub policy: ObfuscationPolicy,
    /// Dummy-packet schedule, if the defense pads.
    pub padding: Option<Box<dyn PadderCore>>,
    /// Restrict the policy's size/delay passes to one direction
    /// (`None` = both). The §3 countermeasures act server-side only.
    pub apply_dir: Option<Direction>,
    /// Link rate (Mb/s) used to space split halves by the first half's
    /// serialization time; 0 keeps halves at the same timestamp.
    pub split_link_mbps: u64,
}

impl FlowDefense {
    /// A defense that changes nothing.
    pub fn passthrough(name: &str) -> Self {
        FlowDefense {
            policy: ObfuscationPolicy::passthrough(name),
            padding: None,
            apply_dir: None,
            split_link_mbps: 0,
        }
    }

    /// Policy rules only, applied to both directions.
    pub fn from_policy(policy: ObfuscationPolicy) -> Self {
        FlowDefense {
            policy,
            padding: None,
            apply_dir: None,
            split_link_mbps: 0,
        }
    }
}

/// A website-fingerprinting defense as a pure decision spec. Implemented
/// once per defense; enforced by either backend.
pub trait Defense: Send + Sync {
    /// Stable identifier (used in registry bindings and benchmark axes).
    fn name(&self) -> &str;

    /// Decide this flow's defense. May draw from `rng` (reference
    /// picks, budgets); both backends call it exactly once per flow
    /// with the same RNG stream, so placement never changes the draws.
    fn build(&self, ctx: &DefenseCtx, rng: &mut SimRng) -> FlowDefense;
}

/// A bare policy is the degenerate defense: no padding schedule, rules
/// applied to both directions.
impl Defense for ObfuscationPolicy {
    fn name(&self) -> &str {
        &self.name
    }

    fn build(&self, _ctx: &DefenseCtx, _rng: &mut SimRng) -> FlowDefense {
        FlowDefense::from_policy(self.clone())
    }
}

/// Normalize a packet sequence exactly as `Trace::normalize` does:
/// stable time sort, then rebase so the first packet sits at t = 0.
pub fn normalize_flow(pkts: &mut [FlowPkt]) {
    pkts.sort_by_key(|p| p.ts);
    if let Some(first) = pkts.first() {
        let t0 = first.ts;
        if !t0.is_zero() {
            for p in pkts.iter_mut() {
                p.ts -= t0;
            }
        }
    }
}

/// Duration of a time-sorted packet sequence (`Trace::duration`).
pub fn flow_duration(pkts: &[FlowPkt]) -> Nanos {
    match (pkts.first(), pkts.last()) {
        (Some(a), Some(b)) => b.ts - a.ts,
        _ => Nanos::ZERO,
    }
}

/// The §3 scoping rule shared by both backends: a policy pass touches
/// packet `index` iff it is within the first-N window and (when the
/// defense is direction-scoped) travels in the scoped direction.
fn affects(first_n: u64, apply_dir: Option<Direction>, index: usize, dir: Direction) -> bool {
    (first_n == 0 || (index as u64) < first_n) && apply_dir.is_none_or(|d| d == dir)
}

/// Validate the built policy; an inconsistent one degrades the flow to
/// pass-through rules (counted) rather than shaping wrongly.
pub(crate) fn checked_policy(fd: &FlowDefense) -> (bool, bool) {
    if fd.policy.validate().is_err() {
        netsim::tm_counter!("stob.registry.degraded").inc();
        return (false, false);
    }
    let size_active = !matches!(fd.policy.size, SizeSpec::Unchanged);
    let delay_active = !matches!(fd.policy.delay, DelaySpec::Unchanged);
    (size_active, delay_active)
}

// ---------------------------------------------------------------------
// App-layer backend
// ---------------------------------------------------------------------

/// Minimum piece size the generic re-chunking passes will emit; splits
/// below this stop conveying size information and only inflate packet
/// counts.
const MIN_PIECE: u32 = 64;

/// Conventional Ethernet wire MTU the generic chunkers aim at.
const MTU_WIRE: u32 = 1514;

/// Serialization gap between consecutive pieces of one split packet.
pub(crate) fn piece_gap(split_link_mbps: u64, piece: u32) -> Nanos {
    if split_link_mbps > 0 {
        Nanos::for_bytes_at_rate(u64::from(piece), split_link_mbps * 1_000_000)
    } else {
        Nanos::ZERO
    }
}

/// The size pass of the app-layer interpreter. `SplitAbove` is the exact
/// §3 emulation (equal halves, optional serialization gap); the other
/// specs re-chunk affected packets toward the spec's target size —  a
/// best-effort trace-level reading of rules that are exact in-stack.
fn size_pass(input: &[FlowPkt], fd: &FlowDefense, rng: &mut SimRng) -> Vec<FlowPkt> {
    let p = &fd.policy;
    let mut out = Vec::with_capacity(input.len() + 8);
    let mut inc_idx: u32 = 0;
    for (i, pkt) in input.iter().enumerate() {
        if !affects(p.first_n_pkts, fd.apply_dir, i, pkt.dir) {
            out.push(*pkt);
            continue;
        }
        match &p.size {
            SizeSpec::Unchanged => out.push(*pkt),
            SizeSpec::SplitAbove { threshold } => {
                if pkt.size > *threshold {
                    netsim::tm_counter!("defense.app.split_pkts").inc();
                    let a = pkt.size / 2 + pkt.size % 2;
                    let b = pkt.size / 2;
                    out.push(FlowPkt { size: a, ..*pkt });
                    out.push(FlowPkt {
                        ts: pkt.ts + piece_gap(fd.split_link_mbps, a),
                        dir: pkt.dir,
                        size: b,
                    });
                } else {
                    out.push(*pkt);
                }
            }
            spec => {
                // Generic greedy re-chunking toward the spec's target.
                let mut remaining = pkt.size;
                let mut ts = pkt.ts;
                let mut first = true;
                while remaining > 0 {
                    let target = match spec {
                        SizeSpec::Fixed { ip_size } => *ip_size,
                        SizeSpec::IncrementalReduce { step, steps } => {
                            // Mirror the in-stack walk: MTU, MTU-step,
                            // ..., MTU-steps*step, then reset.
                            let reduction = inc_idx * step;
                            inc_idx += 1;
                            if inc_idx > *steps {
                                inc_idx = 0;
                            }
                            MTU_WIRE.saturating_sub(reduction)
                        }
                        SizeSpec::FromHistogram(h) => {
                            h.sample(rng.next_f64(), rng.next_f64()).max(1.0) as u32
                        }
                        _ => unreachable!("handled above"),
                    };
                    let take = remaining.min(target.max(MIN_PIECE));
                    if !first {
                        netsim::tm_counter!("defense.app.resized_pkts").inc();
                    }
                    out.push(FlowPkt {
                        ts,
                        dir: pkt.dir,
                        size: take,
                    });
                    remaining -= take;
                    if remaining > 0 {
                        ts += piece_gap(fd.split_link_mbps, take);
                    }
                    first = false;
                }
            }
        }
    }
    out
}

/// The delay pass of the app-layer interpreter: the §3 "stretch
/// inter-arrival times" loop. Each affected packet's inter-arrival time
/// (measured against the *pre-shift* schedule) is stretched by a draw
/// from the policy's delay spec, and the stretch accumulates.
fn delay_pass(stream: &mut [FlowPkt], fd: &FlowDefense, rng: &mut SimRng) {
    let p = &fd.policy;
    let mut shift = Nanos::ZERO;
    let mut prev_orig = Nanos::ZERO;
    for (i, pkt) in stream.iter_mut().enumerate() {
        let orig_ts = pkt.ts;
        let iat = orig_ts.saturating_sub(prev_orig);
        if i > 0 && affects(p.first_n_pkts, fd.apply_dir, i, pkt.dir) {
            netsim::tm_counter!("defense.app.delayed_pkts").inc();
            shift += sample_delay(&p.delay, iat, rng);
        }
        pkt.ts = orig_ts + shift;
        prev_orig = orig_ts;
    }
}

/// Run the padding schedule (if any) over the post-policy stream and
/// assemble the final flow. Shared verbatim by both backends — padding
/// is application-layer work at either placement (§4.2).
fn run_padding(
    padding: Option<Box<dyn PadderCore>>,
    stream: Vec<FlowPkt>,
    rng: &mut SimRng,
    pad_counter: &'static str,
) -> DefendedFlow {
    let default_real_done = flow_duration(&stream);
    let Some(mut core) = padding else {
        return DefendedFlow {
            pkts: stream,
            dummy_pkts: 0,
            dummy_bytes: 0,
            real_done: default_real_done,
        };
    };
    let owned = core.owned_dirs();
    for pkt in &stream {
        core.on_data(*pkt, rng);
    }
    let close = core.on_close(rng);
    let mut pkts: Vec<FlowPkt> = stream
        .iter()
        .filter(|p| !owned.contains(&p.dir))
        .copied()
        .collect();
    let mut dummy_pkts = 0usize;
    let mut dummy_bytes = 0u64;
    for e in &close.emits {
        if e.dummy {
            dummy_pkts += 1;
            dummy_bytes += u64::from(e.pkt.size);
        }
        pkts.push(e.pkt);
    }
    normalize_flow(&mut pkts);
    netsim::telemetry::counter(pad_counter).add(dummy_pkts as u64);
    DefendedFlow {
        pkts,
        dummy_pkts,
        dummy_bytes,
        real_done: close.real_done.unwrap_or(default_real_done),
    }
}

/// **App-layer backend**: interpret a defense directly over a recorded
/// packet sequence — the trace emulation the `defenses` crate performs,
/// now driven by the placement-agnostic spec. For the §3 countermeasures
/// this reproduces `defenses::emulate::{split,delay}` byte-for-byte.
pub fn emulate_flow(
    defense: &dyn Defense,
    input: &[FlowPkt],
    ctx: &DefenseCtx,
    rng: &mut SimRng,
) -> DefendedFlow {
    netsim::tm_counter!("defense.app.flows").inc();
    let fd = defense.build(ctx, rng);
    let (size_active, delay_active) = checked_policy(&fd);
    // The size pass produces a fresh stream; copy the input only when it
    // is skipped. The delay pass re-times in place.
    let mut stream: Vec<FlowPkt> = if size_active {
        let mut s = size_pass(input, &fd, rng);
        normalize_flow(&mut s);
        s
    } else {
        input.to_vec()
    };
    if delay_active {
        delay_pass(&mut stream, &fd, rng);
        normalize_flow(&mut stream);
    }
    run_padding(fd.padding, stream, rng, "defense.app.pad_pkts")
}

// ---------------------------------------------------------------------
// Stack backend
// ---------------------------------------------------------------------

/// Stack parameters for the replay enforcement backend.
#[derive(Debug, Clone, Copy)]
pub struct StackParams {
    /// Seed feeding the live strategy RNGs (as in `build_shaper`).
    pub seed: u64,
    /// Flow salt decorrelating flows that share one policy.
    pub flow_salt: u64,
    /// Wire MTU: the largest packet the replay pipeline will emit.
    pub mtu_wire: u32,
    /// MSS used to recover a per-packet pacing rate from recorded
    /// inter-arrival times (`DelayJitter` keys its nominal gap on
    /// `2 * mss` serialized at the pacing rate).
    pub mss: u32,
}

impl Default for StackParams {
    fn default() -> Self {
        StackParams {
            seed: 0,
            flow_salt: 0,
            mtu_wire: 1514,
            mss: 1448,
        }
    }
}

impl StackParams {
    /// Params with an explicit seed and the conventional Ethernet sizes.
    pub fn with_seed(seed: u64) -> Self {
        StackParams {
            seed,
            ..StackParams::default()
        }
    }
}

/// Shape context for one replayed packet. Replay assumes steady state
/// (`in_slow_start = false`): a recorded trace carries no live CCA
/// phase, so slow-start-respecting policies shape the whole flow.
pub(crate) fn replay_ctx(
    params: &StackParams,
    pkts_sent: u64,
    now: Nanos,
    rate: Option<u64>,
) -> ShapeCtx {
    ShapeCtx {
        flow: FlowId(1),
        now,
        cwnd: u64::MAX,
        pacing_rate_bps: rate,
        in_slow_start: false,
        bytes_sent: 0,
        pkts_sent,
        segs_sent: 0,
        mtu_ip: params.mtu_wire,
        mss: params.mss,
    }
}

/// The synthetic pacing rate under which one recorded inter-arrival
/// time serializes exactly `2 * mss` bytes — the inverse of
/// `DelayJitter`'s nominal-gap rule, so the in-stack jitter stretches
/// recorded gaps by the same fractions the app-layer pass draws.
pub(crate) fn rate_for_iat(mss: u32, iat: Nanos) -> u64 {
    if iat.is_zero() {
        // Zero gap: infinite rate. `u64::MAX - 1` keeps DelayJitter on
        // its `for_bytes_at_rate` path (nominal rounds to zero) while
        // still consuming its draw, mirroring the app pass exactly.
        return u64::MAX - 1;
    }
    let x = u64::from(mss).max(1) * 2 * 8 * 1_000_000_000;
    (x / iat.0).max(1)
}

/// **Stack backend**: lower the defense's policy into a live shaper
/// (strategy → §4.2 safety cap → guards, via
/// [`crate::sockopt::assemble_policy_shaper`]) and replay the recorded
/// flow through an [`EgressPipeline`]: the size stage re-fragments
/// affected packets through the pipeline's packet-size decision, the
/// delay stage gates each departure through the pacing clock and the
/// shaper's extra delay, and the padding schedule runs exactly as in
/// the app backend.
pub fn enforce_flow(
    defense: &dyn Defense,
    input: &[FlowPkt],
    ctx: &DefenseCtx,
    rng: &mut SimRng,
    params: &StackParams,
) -> DefendedFlow {
    netsim::tm_counter!("defense.stack.flows").inc();
    let fd = defense.build(ctx, rng);
    let (size_active, delay_active) = checked_policy(&fd);
    let policy = if size_active || delay_active {
        fd.policy.clone()
    } else {
        // Degraded or inert: enforce pass-through rules.
        ObfuscationPolicy::passthrough(&fd.policy.name)
    };
    let (shaper, _audit) =
        crate::sockopt::assemble_policy_shaper(&policy, params.seed, params.flow_salt);
    let mut pipe = EgressPipeline::new(EgressLabels::REPLAY);
    pipe.set_shaper(shaper);

    // Size stage: re-fragment each affected packet through the
    // pipeline's packet-size decision until its bytes are spent. The
    // first-N guard sees the recorded packet index; direction scoping
    // is applied here (guards are direction-blind).
    let mut stream: Vec<FlowPkt>;
    if size_active {
        stream = Vec::with_capacity(input.len() + 8);
        for (i, pkt) in input.iter().enumerate() {
            if fd.apply_dir.is_some_and(|d| d != pkt.dir) {
                stream.push(*pkt);
                continue;
            }
            let sctx = replay_ctx(params, i as u64, pkt.ts, None);
            let mut remaining = pkt.size;
            let mut ts = pkt.ts;
            let mut piece = 0u32;
            while remaining > 0 {
                let proposed = remaining.min(params.mtu_wire);
                let got = pipe.packet_ip_size(&sctx, piece, proposed, 1, proposed);
                stream.push(FlowPkt {
                    ts,
                    dir: pkt.dir,
                    size: got,
                });
                remaining -= got;
                if remaining > 0 {
                    ts += piece_gap(fd.split_link_mbps, got);
                }
                piece += 1;
            }
        }
        normalize_flow(&mut stream);
    } else {
        stream = input.to_vec();
    }

    // Delay stage: replay each packet through the pacing gate. The
    // recorded inter-arrival time is converted into the synthetic
    // pacing rate under which DelayJitter's nominal gap equals it, so
    // the in-stack draw stretches the recorded gap — the §3 semantics,
    // now enforced by the stack's own pacing clock and safety clamp.
    let mut shaped: Vec<FlowPkt>;
    if delay_active {
        shaped = Vec::with_capacity(stream.len());
        let mut shift = Nanos::ZERO;
        let mut prev_orig = Nanos::ZERO;
        for (e, pkt) in stream.iter().enumerate() {
            let iat = pkt.ts.saturating_sub(prev_orig);
            let intended = pkt.ts + shift;
            if e > 0 && fd.apply_dir.is_none_or(|d| d == pkt.dir) {
                let rate = rate_for_iat(params.mss, iat);
                let sctx = replay_ctx(params, e as u64, intended, Some(rate));
                let eligible = pipe.pace_replay(&sctx, intended);
                shift += eligible.saturating_sub(intended);
                shaped.push(FlowPkt {
                    ts: eligible,
                    ..*pkt
                });
            } else {
                shaped.push(FlowPkt {
                    ts: intended,
                    ..*pkt
                });
            }
            prev_orig = pkt.ts;
        }
        normalize_flow(&mut shaped);
    } else {
        shaped = stream;
    }

    run_padding(fd.padding, shaped, rng, "defense.stack.pad_pkts")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::TsoSpec;

    fn mk(ts_us: u64, dir: Direction, size: u32) -> FlowPkt {
        FlowPkt {
            ts: Nanos::from_micros(ts_us),
            dir,
            size,
        }
    }

    fn sample_flow() -> Vec<FlowPkt> {
        vec![
            mk(0, Direction::Out, 200),
            mk(1_000, Direction::In, 1514),
            mk(2_500, Direction::In, 900),
            mk(4_000, Direction::Out, 100),
            mk(9_000, Direction::In, 1400),
        ]
    }

    /// A direction-scoped §3 policy defense, as the `defenses` crate
    /// expresses the split/delay countermeasures.
    struct S3 {
        policy: ObfuscationPolicy,
        dir: Option<Direction>,
    }

    impl Defense for S3 {
        fn name(&self) -> &str {
            &self.policy.name
        }
        fn build(&self, _ctx: &DefenseCtx, _rng: &mut SimRng) -> FlowDefense {
            FlowDefense {
                policy: self.policy.clone(),
                padding: None,
                apply_dir: self.dir,
                split_link_mbps: 0,
            }
        }
    }

    fn split_policy(threshold: u32, first_n: u64) -> ObfuscationPolicy {
        ObfuscationPolicy {
            name: "split".into(),
            size: SizeSpec::SplitAbove { threshold },
            delay: DelaySpec::Unchanged,
            tso: TsoSpec::Unchanged,
            first_n_pkts: first_n,
            respect_slow_start: false,
        }
    }

    fn delay_policy(lo: Nanos, hi: Nanos, first_n: u64) -> ObfuscationPolicy {
        ObfuscationPolicy {
            name: "delay".into(),
            size: SizeSpec::Unchanged,
            delay: DelaySpec::UniformAbsolute { lo, hi },
            tso: TsoSpec::Unchanged,
            first_n_pkts: first_n,
            respect_slow_start: false,
        }
    }

    #[test]
    fn passthrough_defense_is_identity_at_both_placements() {
        let input = sample_flow();
        let d = ObfuscationPolicy::passthrough("none");
        let mut rng = SimRng::new(5);
        let out = emulate_flow(&d, &input, &DefenseCtx::default(), &mut rng);
        assert_eq!(out.pkts, input);
        assert_eq!(out.dummy_pkts, 0);
        assert_eq!(out.real_done, flow_duration(&input));

        let mut rng = SimRng::new(5);
        let out = enforce_flow(
            &d,
            &input,
            &DefenseCtx::default(),
            &mut rng,
            &StackParams::with_seed(5),
        );
        assert_eq!(out.pkts, input);
        assert_eq!(out.dummy_pkts, 0);
    }

    #[test]
    fn app_split_halves_scoped_direction_only() {
        let input = sample_flow();
        let d = S3 {
            policy: split_policy(1200, 0),
            dir: Some(Direction::In),
        };
        let mut rng = SimRng::new(1);
        let out = emulate_flow(&d, &input, &DefenseCtx::default(), &mut rng);
        // The 1514 and 1400 inbound packets split; outbound untouched.
        let sizes: Vec<u32> = out.pkts.iter().map(|p| p.size).collect();
        assert_eq!(sizes, vec![200, 757, 757, 900, 100, 700, 700]);
        assert!(out.pkts.windows(2).all(|w| w[0].ts <= w[1].ts));
    }

    #[test]
    fn app_delay_shift_accumulates_deterministically() {
        let input = sample_flow();
        let fixed = Nanos::from_micros(100);
        let d = S3 {
            policy: delay_policy(fixed, fixed, 0),
            dir: None,
        };
        let mut rng = SimRng::new(1);
        let out = emulate_flow(&d, &input, &DefenseCtx::default(), &mut rng);
        // Packet 0 is never delayed; packet i (i >= 1) shifts by i * 100us.
        for (i, (got, orig)) in out.pkts.iter().zip(&input).enumerate() {
            let want = orig.ts + fixed * (i as u64);
            assert_eq!(got.ts, want, "packet {i}");
            assert_eq!(got.size, orig.size);
        }
    }

    #[test]
    fn first_n_scopes_both_backends_identically() {
        let input = sample_flow();
        let d = S3 {
            policy: split_policy(1200, 2),
            dir: None,
        };
        let mut rng = SimRng::new(3);
        let app = emulate_flow(&d, &input, &DefenseCtx::default(), &mut rng);
        // Only packet index 1 (the 1514) is within the first-2 window.
        let sizes: Vec<u32> = app.pkts.iter().map(|p| p.size).collect();
        assert_eq!(sizes, vec![200, 757, 757, 900, 100, 1400]);

        let mut rng = SimRng::new(3);
        let stack = enforce_flow(
            &d,
            &input,
            &DefenseCtx::default(),
            &mut rng,
            &StackParams::with_seed(3),
        );
        assert_eq!(app.pkts, stack.pkts);
    }

    #[test]
    fn stack_split_matches_app_split_exactly() {
        let input = sample_flow();
        let d = S3 {
            policy: split_policy(1200, 0),
            dir: Some(Direction::In),
        };
        let mut rng = SimRng::new(7);
        let app = emulate_flow(&d, &input, &DefenseCtx::default(), &mut rng);
        let mut rng = SimRng::new(7);
        let stack = enforce_flow(
            &d,
            &input,
            &DefenseCtx::default(),
            &mut rng,
            &StackParams::with_seed(7),
        );
        assert_eq!(app.pkts, stack.pkts);
    }

    #[test]
    fn stack_absolute_delay_matches_app_exactly() {
        // UniformAbsolute draws are nominal-independent, so the stack
        // backend (DelayJitter seeded seed ^ 0) replays the app pass's
        // RNG stream bit-for-bit.
        let input = sample_flow();
        let d = S3 {
            policy: delay_policy(Nanos::from_micros(10), Nanos::from_micros(500), 0),
            dir: Some(Direction::In),
        };
        let seed = 0xD1CE;
        let mut rng = SimRng::new(seed);
        let app = emulate_flow(&d, &input, &DefenseCtx::default(), &mut rng);
        let mut rng = SimRng::new(seed);
        let stack = enforce_flow(
            &d,
            &input,
            &DefenseCtx::default(),
            &mut rng,
            &StackParams::with_seed(seed),
        );
        assert_eq!(app.pkts, stack.pkts);
        // And the delays actually moved something.
        assert_ne!(app.pkts, input);
    }

    #[test]
    fn invalid_policy_degrades_to_passthrough_and_counts() {
        let input = sample_flow();
        let d = S3 {
            policy: split_policy(0, 0), // threshold 0 fails validate()
            dir: None,
        };
        let before = netsim::tm_counter!("stob.registry.degraded").get();
        let mut rng = SimRng::new(9);
        let app = emulate_flow(&d, &input, &DefenseCtx::default(), &mut rng);
        let mut rng = SimRng::new(9);
        let stack = enforce_flow(
            &d,
            &input,
            &DefenseCtx::default(),
            &mut rng,
            &StackParams::with_seed(9),
        );
        assert_eq!(app.pkts, input);
        assert_eq!(stack.pkts, input);
        assert_eq!(
            netsim::tm_counter!("stob.registry.degraded").get(),
            before + 2
        );
    }

    /// Injects one dummy per observed inbound packet, half a window late.
    struct EchoPadder {
        scheduled: Vec<Nanos>,
    }

    impl PadderCore for EchoPadder {
        fn on_data(&mut self, pkt: FlowPkt, rng: &mut SimRng) {
            if pkt.dir == Direction::In {
                let jitter = Nanos::from_micros(rng.range_u64(1, 50));
                self.scheduled.push(pkt.ts + jitter);
            }
        }
        fn on_close(&mut self, _rng: &mut SimRng) -> CloseOut {
            CloseOut {
                emits: self
                    .scheduled
                    .iter()
                    .map(|&ts| Emit {
                        pkt: FlowPkt {
                            ts,
                            dir: Direction::In,
                            size: 1514,
                        },
                        dummy: true,
                    })
                    .collect(),
                real_done: None,
            }
        }
    }

    struct PadOnly;

    impl Defense for PadOnly {
        fn name(&self) -> &str {
            "pad-only"
        }
        fn build(&self, _ctx: &DefenseCtx, _rng: &mut SimRng) -> FlowDefense {
            FlowDefense {
                padding: Some(Box::new(EchoPadder {
                    scheduled: Vec::new(),
                })),
                ..FlowDefense::passthrough("pad-only")
            }
        }
    }

    #[test]
    fn pure_padding_defense_is_placement_invariant() {
        let input = sample_flow();
        let mut rng = SimRng::new(42);
        let app = emulate_flow(&PadOnly, &input, &DefenseCtx::default(), &mut rng);
        let mut rng = SimRng::new(42);
        let stack = enforce_flow(
            &PadOnly,
            &input,
            &DefenseCtx::default(),
            &mut rng,
            &StackParams::with_seed(42),
        );
        assert_eq!(app.pkts, stack.pkts);
        assert_eq!(app.dummy_pkts, 3);
        assert_eq!(app.dummy_bytes, 3 * 1514);
        assert_eq!(stack.dummy_pkts, 3);
        // Real packets all survive alongside the dummies.
        assert_eq!(app.pkts.len(), input.len() + 3);
        assert_eq!(app.real_done, flow_duration(&input));
    }

    #[test]
    fn owned_dirs_replace_the_original_stream() {
        /// Re-times every inbound packet onto a fixed grid.
        struct GridCore {
            count: usize,
        }
        impl PadderCore for GridCore {
            fn owned_dirs(&self) -> &'static [Direction] {
                &[Direction::In]
            }
            fn on_data(&mut self, pkt: FlowPkt, _rng: &mut SimRng) {
                if pkt.dir == Direction::In {
                    self.count += 1;
                }
            }
            fn on_close(&mut self, _rng: &mut SimRng) -> CloseOut {
                let grid = Nanos::from_millis(10);
                CloseOut {
                    emits: (0..self.count.max(1) + 1)
                        .map(|i| Emit {
                            pkt: FlowPkt {
                                ts: grid * (i as u64),
                                dir: Direction::In,
                                size: 1514,
                            },
                            dummy: i >= self.count,
                        })
                        .collect(),
                    real_done: Some(grid * (self.count.max(1) as u64 - 1)),
                }
            }
        }
        struct Grid;
        impl Defense for Grid {
            fn name(&self) -> &str {
                "grid"
            }
            fn build(&self, _ctx: &DefenseCtx, _rng: &mut SimRng) -> FlowDefense {
                FlowDefense {
                    padding: Some(Box::new(GridCore { count: 0 })),
                    ..FlowDefense::passthrough("grid")
                }
            }
        }
        let input = sample_flow();
        let mut rng = SimRng::new(1);
        let out = emulate_flow(&Grid, &input, &DefenseCtx::default(), &mut rng);
        // 2 outbound originals + 3 re-emitted + 1 dummy inbound.
        assert_eq!(out.pkts.len(), 6);
        let inbound: Vec<&FlowPkt> = out.pkts.iter().filter(|p| p.dir == Direction::In).collect();
        assert_eq!(inbound.len(), 4);
        assert!(inbound
            .iter()
            .all(|p| p.ts.0 % Nanos::from_millis(10).0 == 0 && p.size == 1514));
        assert_eq!(out.dummy_pkts, 1);
        assert_eq!(out.real_done, Nanos::from_millis(20));
    }

    #[test]
    fn normalize_flow_matches_trace_normalize_semantics() {
        let mut pkts = vec![
            mk(5_000, Direction::In, 10),
            mk(2_000, Direction::Out, 20),
            mk(9_000, Direction::In, 30),
        ];
        normalize_flow(&mut pkts);
        assert_eq!(pkts[0].ts, Nanos::ZERO);
        assert_eq!(pkts[1].ts, Nanos::from_micros(3_000));
        assert_eq!(pkts[2].ts, Nanos::from_micros(7_000));
        assert_eq!(flow_duration(&pkts), Nanos::from_micros(7_000));
        let mut empty: Vec<FlowPkt> = Vec::new();
        normalize_flow(&mut empty);
        assert_eq!(flow_duration(&empty), Nanos::ZERO);
    }
}
