//! Policy fitting: build obfuscation policies from observed traffic —
//! the Traffic-Morphing idea (Wright et al., Table 1's "Morphing" row)
//! expressed as Stob policies.
//!
//! Given samples of a *target* site's packet sizes and inter-departure
//! gaps, fit the §4.1 histogram representations so a protected flow's
//! packets are resized/re-timed toward the target distribution. Because
//! Stob can only shrink packets and add delay (the safety envelope),
//! morphing is one-sided: a flow can imitate a target with smaller
//! packets and looser timing, never the reverse — an honest statement of
//! what in-stack morphing can do.

use crate::policy::{DelaySpec, ObfuscationPolicy, SizeSpec, TsoSpec};
use netsim::Histogram;

/// Fit a packet-size histogram policy from target IP packet sizes.
pub fn fit_size_policy(name: &str, target_ip_sizes: &[u32], bins: usize) -> ObfuscationPolicy {
    assert!(!target_ip_sizes.is_empty(), "no size samples");
    let lo = *target_ip_sizes.iter().min().expect("nonempty") as f64;
    let hi = (*target_ip_sizes.iter().max().expect("nonempty") as f64) + 1.0;
    let mut h = Histogram::new(lo.min(hi - 1.0), hi, bins.max(1));
    for &s in target_ip_sizes {
        h.push(s as f64);
    }
    ObfuscationPolicy {
        name: name.to_string(),
        size: SizeSpec::FromHistogram(h),
        delay: DelaySpec::Unchanged,
        tso: TsoSpec::Unchanged,
        first_n_pkts: 0,
        respect_slow_start: false,
    }
}

/// Fit a departure-gap histogram policy from target inter-departure
/// gaps (microseconds).
pub fn fit_delay_policy(name: &str, target_gaps_us: &[f64], bins: usize) -> ObfuscationPolicy {
    assert!(!target_gaps_us.is_empty(), "no gap samples");
    let hi = target_gaps_us.iter().cloned().fold(1.0, f64::max) + 1.0;
    let mut h = Histogram::new(0.0, hi, bins.max(1));
    for &g in target_gaps_us {
        h.push(g.max(0.0));
    }
    ObfuscationPolicy {
        name: name.to_string(),
        size: SizeSpec::Unchanged,
        delay: DelaySpec::FromHistogramMicros(h),
        tso: TsoSpec::Unchanged,
        first_n_pkts: 0,
        respect_slow_start: false,
    }
}

/// Fit both channels at once (Morphing-lite).
pub fn fit_morphing_policy(
    name: &str,
    target_ip_sizes: &[u32],
    target_gaps_us: &[f64],
    bins: usize,
) -> ObfuscationPolicy {
    let size = fit_size_policy(name, target_ip_sizes, bins).size;
    let delay = fit_delay_policy(name, target_gaps_us, bins).delay;
    ObfuscationPolicy {
        name: name.to_string(),
        size,
        delay,
        tso: TsoSpec::Unchanged,
        first_n_pkts: 0,
        respect_slow_start: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::build_shaper;
    use netsim::{FlowId, Nanos};
    use stack::ShapeCtx;

    fn ctx() -> ShapeCtx {
        ShapeCtx {
            flow: FlowId(1),
            now: Nanos(0),
            cwnd: 100_000,
            pacing_rate_bps: Some(1_000_000_000),
            in_slow_start: false,
            bytes_sent: 0,
            pkts_sent: 0,
            segs_sent: 0,
            mtu_ip: 1500,
            mss: 1448,
        }
    }

    #[test]
    fn fitted_size_policy_samples_near_the_target_distribution() {
        // Target: a site that sends mostly ~700-byte packets.
        let target: Vec<u32> = (0..500).map(|i| 650 + (i % 100)).collect();
        let policy = fit_size_policy("morph", &target, 20);
        let mut shaper = build_shaper(&policy, 7, 1);
        let c = ctx();
        let sampled: Vec<u32> = (0..500)
            .map(|_| shaper.packet_ip_size(&c, 0, 1500))
            .collect();
        let mean = sampled.iter().map(|&s| s as f64).sum::<f64>() / sampled.len() as f64;
        assert!(
            (640.0..770.0).contains(&mean),
            "sampled mean {mean} should sit in the target band"
        );
        assert!(sampled.iter().all(|&s| s <= 1500));
    }

    #[test]
    fn fitted_size_policy_cannot_grow_packets() {
        // Target has jumbo sizes; the shaper must clamp to proposed.
        let target: Vec<u32> = vec![8000; 100];
        let policy = fit_size_policy("jumbo", &target, 10);
        let mut shaper = build_shaper(&policy, 7, 1);
        let c = ctx();
        for _ in 0..100 {
            assert!(shaper.packet_ip_size(&c, 0, 1500) <= 1500);
        }
    }

    #[test]
    fn fitted_delay_policy_samples_in_target_range() {
        let gaps: Vec<f64> = (0..300).map(|i| 100.0 + (i % 50) as f64).collect();
        let policy = fit_delay_policy("slowmorph", &gaps, 15);
        let mut shaper = build_shaper(&policy, 9, 2);
        let c = ctx();
        for _ in 0..200 {
            let d = shaper.extra_delay(&c);
            assert!(
                d <= Nanos::from_micros(160),
                "delay {d} beyond target range"
            );
        }
    }

    #[test]
    fn morphing_policy_combines_both_channels() {
        let sizes: Vec<u32> = vec![600; 50];
        let gaps: Vec<f64> = vec![250.0; 50];
        let p = fit_morphing_policy("full", &sizes, &gaps, 10);
        assert!(matches!(p.size, SizeSpec::FromHistogram(_)));
        assert!(matches!(p.delay, DelaySpec::FromHistogramMicros(_)));
        let mut shaper = build_shaper(&p, 3, 4);
        let c = ctx();
        let s = shaper.packet_ip_size(&c, 0, 1500);
        assert!((590..=615).contains(&s), "size {s}");
        let d = shaper.extra_delay(&c);
        assert!(d > Nanos::ZERO && d < Nanos::from_micros(300), "{d}");
    }

    #[test]
    #[should_panic(expected = "no size samples")]
    fn empty_target_rejected() {
        let _ = fit_size_policy("x", &[], 10);
    }
}
