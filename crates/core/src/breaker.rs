//! A circuit breaker for the policy table: stop hammering a policy key
//! that keeps failing.
//!
//! [`attach_policy_checked`](crate::sockopt::attach_policy_checked)
//! already degrades a single attachment to pass-through when the
//! resolved policy fails validation. But when a *published policy* is
//! broken, every new connection to that destination re-resolves it,
//! re-validates it, and re-degrades — the host burns a resolution and a
//! validation per flow on a policy that cannot work until someone
//! republishes it. The breaker sits in front of the checked attach path
//! and, after a run of consecutive failures on one [`PolicyKey`], sheds
//! subsequent attachments outright (counted pass-through, no resolve or
//! validate) for a cooldown, then lets a single half-open trial probe
//! whether the key has been fixed.
//!
//! Everything is deterministic and count-based — trips, cooldowns, and
//! trials are functions of the attempt sequence alone, never of wall
//! time — so breaker behaviour is bit-identical across `STOB_THREADS`
//! settings when each worker owns its own registry (the loader's model).

use crate::registry::PolicyKey;
use std::collections::BTreeMap;

/// Tuning knobs for [`CircuitBreaker`]. The defaults trip after 4
/// consecutive failures and shed 8 attempts before the first half-open
/// trial; each failed trial doubles the cooldown up to 64 attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures on one key before the circuit opens.
    pub threshold: u32,
    /// Attempts shed while open before the first half-open trial.
    pub cooldown: u32,
    /// Upper bound on the doubled cooldown after failed trials.
    pub max_cooldown: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            threshold: 4,
            cooldown: 8,
            max_cooldown: 64,
        }
    }
}

/// Per-key circuit state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Circuit {
    /// Normal operation; counts the current run of failures.
    Closed { consecutive_failures: u32 },
    /// Shedding attempts; `shed_remaining` counts down to the half-open
    /// trial, `cooldown` remembers the length to double on re-trip.
    Open { shed_remaining: u32, cooldown: u32 },
    /// One probe attempt is in flight; its outcome decides the state.
    HalfOpen { cooldown: u32 },
}

/// What the breaker says about one attachment attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Proceed normally.
    Allow,
    /// Proceed, but this is the half-open probe: its outcome closes or
    /// re-opens the circuit.
    Trial,
    /// The circuit is open: skip the attach entirely (pass-through).
    Shed,
}

/// Lifetime totals, for reports and the chaos gate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BreakerStats {
    pub trips: u64,
    pub shed: u64,
    pub trials: u64,
    pub closes: u64,
}

/// Deterministic, count-based circuit breaker keyed by resolved
/// [`PolicyKey`]. See the module docs for the state machine.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    circuits: BTreeMap<PolicyKey, Circuit>,
    stats: BreakerStats,
}

impl CircuitBreaker {
    pub fn new(cfg: BreakerConfig) -> Self {
        CircuitBreaker {
            cfg,
            circuits: BTreeMap::new(),
            stats: BreakerStats::default(),
        }
    }

    /// Ask whether an attachment attempt on `key` may proceed. Shed
    /// attempts count down the open cooldown; the attempt that exhausts
    /// it becomes the half-open trial.
    pub fn admit(&mut self, key: PolicyKey) -> Admission {
        let c = self.circuits.entry(key).or_insert(Circuit::Closed {
            consecutive_failures: 0,
        });
        match *c {
            Circuit::Closed { .. } => Admission::Allow,
            Circuit::Open {
                shed_remaining,
                cooldown,
            } => {
                if shed_remaining > 1 {
                    *c = Circuit::Open {
                        shed_remaining: shed_remaining - 1,
                        cooldown,
                    };
                    self.stats.shed += 1;
                    netsim::tm_counter!("stob.breaker.shed").inc();
                    Admission::Shed
                } else {
                    *c = Circuit::HalfOpen { cooldown };
                    self.stats.trials += 1;
                    netsim::tm_counter!("stob.breaker.trials").inc();
                    Admission::Trial
                }
            }
            Circuit::HalfOpen { .. } => {
                // A trial is already probing; hold everyone else off.
                self.stats.shed += 1;
                netsim::tm_counter!("stob.breaker.shed").inc();
                Admission::Shed
            }
        }
    }

    /// Report that an admitted attempt succeeded (attached cleanly).
    pub fn record_success(&mut self, key: PolicyKey) {
        let Some(c) = self.circuits.get_mut(&key) else {
            return;
        };
        if matches!(*c, Circuit::HalfOpen { .. }) {
            self.stats.closes += 1;
            netsim::tm_counter!("stob.breaker.closes").inc();
        }
        *c = Circuit::Closed {
            consecutive_failures: 0,
        };
    }

    /// Report that an admitted attempt failed (policy invalid, defense
    /// degraded). Trips the circuit at the configured threshold; a
    /// failed half-open trial re-opens with a doubled cooldown.
    pub fn record_failure(&mut self, key: PolicyKey) {
        let c = self.circuits.entry(key).or_insert(Circuit::Closed {
            consecutive_failures: 0,
        });
        match *c {
            Circuit::Closed {
                consecutive_failures,
            } => {
                let n = consecutive_failures + 1;
                if n >= self.cfg.threshold {
                    *c = Circuit::Open {
                        shed_remaining: self.cfg.cooldown,
                        cooldown: self.cfg.cooldown,
                    };
                    self.stats.trips += 1;
                    netsim::tm_counter!("stob.breaker.trips").inc();
                } else {
                    *c = Circuit::Closed {
                        consecutive_failures: n,
                    };
                }
            }
            Circuit::HalfOpen { cooldown } => {
                let doubled = (cooldown * 2).min(self.cfg.max_cooldown);
                *c = Circuit::Open {
                    shed_remaining: doubled,
                    cooldown: doubled,
                };
                self.stats.trips += 1;
                netsim::tm_counter!("stob.breaker.trips").inc();
            }
            // A failure report against an open circuit (racing callers
            // sharing one registry): leave the countdown alone.
            Circuit::Open { .. } => {}
        }
    }

    /// Whether `key`'s circuit is currently open (shedding).
    pub fn is_open(&self, key: PolicyKey) -> bool {
        matches!(self.circuits.get(&key), Some(Circuit::Open { .. }))
    }

    pub fn stats(&self) -> BreakerStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: PolicyKey = PolicyKey::Destination(7);

    #[test]
    fn closed_circuit_admits_everything() {
        let mut b = CircuitBreaker::new(BreakerConfig::default());
        for _ in 0..100 {
            assert_eq!(b.admit(KEY), Admission::Allow);
            b.record_success(KEY);
        }
        assert_eq!(b.stats(), BreakerStats::default());
    }

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let mut b = CircuitBreaker::new(BreakerConfig::default());
        for _ in 0..3 {
            assert_eq!(b.admit(KEY), Admission::Allow);
            b.record_failure(KEY);
            assert!(!b.is_open(KEY));
        }
        assert_eq!(b.admit(KEY), Admission::Allow);
        b.record_failure(KEY); // 4th consecutive: trips
        assert!(b.is_open(KEY));
        assert_eq!(b.stats().trips, 1);
    }

    #[test]
    fn a_success_resets_the_failure_run() {
        let mut b = CircuitBreaker::new(BreakerConfig::default());
        for _ in 0..3 {
            b.admit(KEY);
            b.record_failure(KEY);
        }
        b.admit(KEY);
        b.record_success(KEY); // run broken
        for _ in 0..3 {
            b.admit(KEY);
            b.record_failure(KEY);
        }
        assert!(!b.is_open(KEY), "run restarted after success");
    }

    #[test]
    fn open_circuit_sheds_then_offers_one_trial() {
        let cfg = BreakerConfig {
            threshold: 2,
            cooldown: 3,
            max_cooldown: 8,
        };
        let mut b = CircuitBreaker::new(cfg);
        for _ in 0..2 {
            b.admit(KEY);
            b.record_failure(KEY);
        }
        // Cooldown of 3: two shed attempts, then the trial.
        assert_eq!(b.admit(KEY), Admission::Shed);
        assert_eq!(b.admit(KEY), Admission::Shed);
        assert_eq!(b.admit(KEY), Admission::Trial);
        // Concurrent attempts during the trial are shed too.
        assert_eq!(b.admit(KEY), Admission::Shed);
        b.record_success(KEY);
        assert_eq!(b.admit(KEY), Admission::Allow);
        let s = b.stats();
        assert_eq!((s.trips, s.shed, s.trials, s.closes), (1, 3, 1, 1));
    }

    #[test]
    fn failed_trial_doubles_the_cooldown_up_to_the_cap() {
        let cfg = BreakerConfig {
            threshold: 1,
            cooldown: 2,
            max_cooldown: 4,
        };
        let mut b = CircuitBreaker::new(cfg);
        b.admit(KEY);
        b.record_failure(KEY); // trips; cooldown 2
        assert_eq!(b.admit(KEY), Admission::Shed);
        assert_eq!(b.admit(KEY), Admission::Trial);
        b.record_failure(KEY); // cooldown doubles to 4
        for _ in 0..3 {
            assert_eq!(b.admit(KEY), Admission::Shed);
        }
        assert_eq!(b.admit(KEY), Admission::Trial);
        b.record_failure(KEY); // would double to 8, capped at 4
        for _ in 0..3 {
            assert_eq!(b.admit(KEY), Admission::Shed);
        }
        assert_eq!(b.admit(KEY), Admission::Trial);
    }

    #[test]
    fn keys_are_independent_circuits() {
        let cfg = BreakerConfig {
            threshold: 1,
            ..BreakerConfig::default()
        };
        let mut b = CircuitBreaker::new(cfg);
        b.admit(KEY);
        b.record_failure(KEY);
        assert!(b.is_open(KEY));
        assert_eq!(b.admit(PolicyKey::Destination(8)), Admission::Allow);
        assert_eq!(b.admit(PolicyKey::Default), Admission::Allow);
    }
}
