//! The `setsockopt`-style control surface (§5.3).
//!
//! "The host stack already adjusts packet transmission behavior based on
//! the application-informed policies through setsockopt, including
//! TCP_NODELAY ... and TCP_CORK" — attaching an obfuscation policy to a
//! connection is the same kind of cross-layer hint, not a layering
//! violation. [`attach_policy`] is that one call: resolve the policy from
//! the shared registry, build the live strategy, wrap it in the safety
//! cap and the configured guards, and return the shaper plus an audit
//! handle.

use crate::defense::{DefenseCtx, Placement};
use crate::guard::{CcaPhaseGuard, FirstNGuard};
use crate::policy::ObfuscationPolicy;
use crate::registry::PolicyRegistry;
use crate::safety::{SafetyAudit, SafetyCap};
use crate::strategies::build_shaper;
use netsim::{Nanos, SimRng};
use stack::{ShapeCtx, Shaper};
use std::sync::Arc;

/// A fully assembled per-connection shaper: policy strategy inside a
/// safety cap inside optional guards.
pub struct AttachedShaper {
    inner: Box<dyn Shaper>,
    pub policy_name: String,
    pub audit: Arc<SafetyAudit>,
}

impl Shaper for AttachedShaper {
    fn tso_segment_pkts(&mut self, ctx: &ShapeCtx, proposed: u32) -> u32 {
        self.inner.tso_segment_pkts(ctx, proposed)
    }
    fn packet_ip_size(&mut self, ctx: &ShapeCtx, pkt_index: u32, proposed: u32) -> u32 {
        self.inner.packet_ip_size(ctx, pkt_index, proposed)
    }
    fn extra_delay(&mut self, ctx: &ShapeCtx) -> Nanos {
        self.inner.extra_delay(ctx)
    }
    fn on_ack(&mut self, ctx: &ShapeCtx) {
        self.inner.on_ack(ctx);
    }
}

/// Assemble the full enforcement stack for one policy: the live strategy
/// from [`build_shaper`], inside the §4.2 [`SafetyCap`], inside the
/// guards the policy requests. Shared by [`attach_policy`] (live
/// connections) and the stack-placement defense backend
/// ([`crate::defense::enforce_flow`]).
pub fn assemble_policy_shaper(
    policy: &ObfuscationPolicy,
    seed: u64,
    flow_salt: u64,
) -> (Box<dyn Shaper>, Arc<SafetyAudit>) {
    let strategy = build_shaper(policy, seed, flow_salt);
    let cap = SafetyCap::new(strategy);
    let audit = cap.audit_handle();
    // Guard order: position guard innermost (counts data packets), CCA
    // phase guard outermost (a policy that must respect slow start is
    // silent there regardless of position).
    let guarded: Box<dyn Shaper> = match (policy.respect_slow_start, policy.first_n_pkts) {
        (true, 0) => Box::new(CcaPhaseGuard::new(cap)),
        (true, n) => Box::new(CcaPhaseGuard::new(FirstNGuard::new(cap, n))),
        (false, 0) => Box::new(cap),
        (false, n) => Box::new(FirstNGuard::new(cap, n)),
    };
    (guarded, audit)
}

/// Resolve and assemble the shaper for `(flow, destination)` from the
/// registry. Returns `None` when no policy applies.
pub fn attach_policy(
    registry: &PolicyRegistry,
    flow: u32,
    destination: u32,
    seed: u64,
) -> Option<AttachedShaper> {
    let policy = registry.resolve(flow, destination)?;
    let (guarded, audit) = assemble_policy_shaper(&policy, seed, flow as u64);
    Some(AttachedShaper {
        inner: guarded,
        policy_name: policy.name.clone(),
        audit,
    })
}

/// Outcome of [`attach_policy_checked`]: either a live shaper, or an
/// explicit account of why the connection runs unshaped.
pub enum AttachResolution {
    /// The policy resolved, validated, and was assembled.
    Attached(AttachedShaper),
    /// No policy applies to this flow: pass-through by configuration.
    NoPolicy,
    /// A policy resolved but failed [`ObfuscationPolicy::validate`]:
    /// the stack degrades to pass-through rather than shaping with an
    /// inconsistent policy (or panicking in the datapath).
    ///
    /// [`ObfuscationPolicy::validate`]: crate::policy::ObfuscationPolicy::validate
    Degraded { policy_name: String, reason: String },
    /// The registry's circuit breaker is open for the resolved key
    /// (see [`crate::breaker`]): repeated failures tripped it, and this
    /// attempt was shed to pass-through without resolving or validating
    /// the policy again.
    Shed { key: crate::registry::PolicyKey },
}

impl AttachResolution {
    /// The shaper, if one was attached (degradation folds to `None`,
    /// i.e. pass-through — exactly what an unshaped connection uses).
    pub fn into_shaper(self) -> Option<AttachedShaper> {
        match self {
            AttachResolution::Attached(s) => Some(s),
            _ => None,
        }
    }
}

/// Like [`attach_policy`], but an invalid policy degrades gracefully:
/// the registry's degradation counter is bumped and the connection is
/// reported as [`AttachResolution::Degraded`] instead of driving a
/// shaper with inconsistent parameters. This is the §4.2-spirited
/// failure mode: the stack must never let obfuscation break delivery.
///
/// When the registry carries a circuit breaker
/// ([`PolicyRegistry::set_breaker`]), this is the guarded path: a run of
/// consecutive degradations on one resolved key opens its circuit and
/// later attempts come back as [`AttachResolution::Shed`] without
/// re-validating the broken policy.
pub fn attach_policy_checked(
    registry: &PolicyRegistry,
    flow: u32,
    destination: u32,
    seed: u64,
) -> AttachResolution {
    let Some((key, policy)) = registry.resolve_with_key(flow, destination) else {
        return AttachResolution::NoPolicy;
    };
    if registry.breaker_admit(key) == Some(crate::breaker::Admission::Shed) {
        return AttachResolution::Shed { key };
    }
    if let Err(reason) = policy.validate() {
        registry.note_degraded();
        registry.breaker_record(key, false);
        return AttachResolution::Degraded {
            policy_name: policy.name.clone(),
            reason,
        };
    }
    registry.breaker_record(key, true);
    let (guarded, audit) = assemble_policy_shaper(&policy, seed, flow as u64);
    AttachResolution::Attached(AttachedShaper {
        inner: guarded,
        policy_name: policy.name.clone(),
        audit,
    })
}

/// Outcome of [`attach_defense`]: what the *stack* should do for a flow
/// whose defense binding may live at either placement.
pub enum DefenseAttachment {
    /// A stack-placement defense resolved; install this shaper.
    Attached(AttachedShaper),
    /// The defense is bound at the application layer: the stack stays
    /// pass-through and emulation (`crate::defense::emulate_flow`) is
    /// responsible for the flow's shape.
    AppLayer { defense_name: String },
    /// No defense (or policy) is bound to this flow.
    Unbound,
    /// A defense resolved but its built policy failed validation; the
    /// stack degrades to pass-through (counted in the registry).
    Degraded {
        defense_name: String,
        reason: String,
    },
    /// The registry's circuit breaker is open for the resolved key:
    /// repeated build/validation failures tripped it, and this attempt
    /// was shed to pass-through without rebuilding the defense.
    Shed {
        /// The resolved key whose circuit is open.
        key: crate::registry::PolicyKey,
    },
}

/// Resolve a [`crate::defense::Defense`] binding for `(flow,
/// destination)` and, when it is placed in the stack, lower its built
/// [`crate::defense::FlowDefense`] into an attached shaper. `rng` feeds
/// the defense's per-flow `build` decisions (reference picks, budgets);
/// `seed` feeds the live strategy RNGs exactly as in [`attach_policy`].
///
/// Padding schedules carried by the defense are *not* enforced here:
/// §4.2 scopes the stack's authority to sizing and departure timing of
/// real data; dummy-packet injection stays an application concern at
/// either placement.
pub fn attach_defense(
    registry: &PolicyRegistry,
    flow: u32,
    destination: u32,
    seed: u64,
    rng: &mut SimRng,
) -> DefenseAttachment {
    let Some((key, binding)) = registry.resolve_defense_with_key(flow, destination) else {
        return DefenseAttachment::Unbound;
    };
    if registry.breaker_admit(key) == Some(crate::breaker::Admission::Shed) {
        return DefenseAttachment::Shed { key };
    }
    let name = binding.defense.name().to_string();
    if binding.placement == Placement::App {
        registry.breaker_record(key, true);
        return DefenseAttachment::AppLayer { defense_name: name };
    }
    let fd = binding.defense.build(&DefenseCtx::default(), rng);
    if let Err(reason) = fd.policy.validate() {
        registry.note_degraded();
        registry.breaker_record(key, false);
        return DefenseAttachment::Degraded {
            defense_name: name,
            reason,
        };
    }
    registry.breaker_record(key, true);
    let (guarded, audit) = assemble_policy_shaper(&fd.policy, seed, flow as u64);
    DefenseAttachment::Attached(AttachedShaper {
        inner: guarded,
        policy_name: fd.policy.name.clone(),
        audit,
    })
}

/// Publish a machine defense from its JSON wire form: the full
/// defenses-as-data path an operator exercises — parse, decode, validate
/// via [`PolicyRegistry::bind_machine`], bind under `key` at `placement`.
/// No recompile, hot-swappable like any policy. A spec that fails to
/// parse, decode, or validate is rejected with the registry's
/// degradation counter bumped; it never reaches the datapath. Returns
/// the bound machine's name.
pub fn publish_machine_json(
    registry: &PolicyRegistry,
    key: crate::registry::PolicyKey,
    json_text: &str,
    placement: Placement,
) -> Result<String, String> {
    let parsed = netsim::json::Json::parse(json_text).map_err(|e| {
        registry.note_degraded();
        format!("machine JSON parse error at {}: {}", e.offset, e.message)
    })?;
    let spec = crate::machine::MachineSpec::from_json(&parsed).map_err(|e| {
        registry.note_degraded();
        format!("machine spec decode error: {}", e.message)
    })?;
    registry.bind_machine(key, spec, placement)
}

/// Publish a multipath splitting policy from its JSON wire form: parse,
/// decode, validate via [`PolicyRegistry::bind_splitter`], bind under
/// `key`. The splitter is resolved at multipath flow setup the same way
/// policies are (flow, destination, default precedence) and handed to
/// the `Multiplex` transport. Rejections bump the degradation counter
/// and never reach the datapath. Returns the bound spec's stable name.
pub fn publish_splitter_json(
    registry: &PolicyRegistry,
    key: crate::registry::PolicyKey,
    json_text: &str,
) -> Result<String, String> {
    let parsed = netsim::json::Json::parse(json_text).map_err(|e| {
        registry.note_degraded();
        format!("splitter JSON parse error at {}: {}", e.offset, e.message)
    })?;
    let spec = crate::splitter::splitter_from_json(&parsed).map_err(|e| {
        registry.note_degraded();
        format!("splitter decode error: {}", e.message)
    })?;
    let name = spec.name().to_string();
    registry.bind_splitter(key, spec)?;
    Ok(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ObfuscationPolicy;
    use crate::registry::PolicyKey;
    use netsim::FlowId;

    fn ctx(in_ss: bool, pkts_sent: u64) -> ShapeCtx {
        ShapeCtx {
            flow: FlowId(1),
            now: Nanos(0),
            cwnd: 14480,
            pacing_rate_bps: Some(1_000_000_000),
            in_slow_start: in_ss,
            bytes_sent: 0,
            pkts_sent,
            segs_sent: 0,
            mtu_ip: 1500,
            mss: 1448,
        }
    }

    #[test]
    fn attach_resolves_and_shapes() {
        let reg = PolicyRegistry::new();
        reg.publish(
            PolicyKey::Destination(5),
            ObfuscationPolicy::split_and_delay("dest5"),
        );
        let mut s = attach_policy(&reg, 1, 5, 42).expect("policy resolves");
        assert_eq!(s.policy_name, "dest5");
        assert_eq!(s.packet_ip_size(&ctx(false, 0), 0, 1500), 750);
        assert!(s.extra_delay(&ctx(false, 0)) > Nanos::ZERO);
    }

    #[test]
    fn attach_returns_none_without_policy() {
        let reg = PolicyRegistry::new();
        assert!(attach_policy(&reg, 1, 5, 42).is_none());
    }

    #[test]
    fn slow_start_respecting_policy_is_silent_in_startup() {
        let reg = PolicyRegistry::new();
        let mut p = ObfuscationPolicy::split_and_delay("careful");
        p.respect_slow_start = true;
        reg.publish(PolicyKey::Default, p);
        let mut s = attach_policy(&reg, 1, 1, 42).expect("resolves");
        assert_eq!(s.packet_ip_size(&ctx(true, 0), 0, 1500), 1500);
        assert_eq!(s.extra_delay(&ctx(true, 0)), Nanos::ZERO);
        assert_eq!(s.packet_ip_size(&ctx(false, 0), 0, 1500), 750);
    }

    #[test]
    fn first_n_policy_stops_after_n() {
        let reg = PolicyRegistry::new();
        let mut p = ObfuscationPolicy::split_and_delay("front");
        p.first_n_pkts = 30;
        reg.publish(PolicyKey::Default, p);
        let mut s = attach_policy(&reg, 1, 1, 42).expect("resolves");
        assert_eq!(s.packet_ip_size(&ctx(false, 29), 0, 1500), 750);
        assert_eq!(s.packet_ip_size(&ctx(false, 30), 0, 1500), 1500);
    }

    #[test]
    fn checked_attach_degrades_on_an_invalid_policy() {
        use crate::policy::DelaySpec;
        let reg = PolicyRegistry::new();
        let mut bad = ObfuscationPolicy::split_and_delay("bad");
        bad.delay = DelaySpec::UniformFraction {
            lo_frac: 0.30,
            hi_frac: 0.10, // inverted: fails validation
        };
        reg.publish(PolicyKey::Default, bad);
        match attach_policy_checked(&reg, 1, 1, 42) {
            AttachResolution::Degraded {
                policy_name,
                reason,
            } => {
                assert_eq!(policy_name, "bad");
                assert!(!reason.is_empty());
            }
            _ => panic!("invalid policy must degrade"),
        }
        assert_eq!(reg.degraded_count(), 1);
        // Degradation folds to pass-through.
        assert!(attach_policy_checked(&reg, 1, 1, 42)
            .into_shaper()
            .is_none());
        assert_eq!(reg.degraded_count(), 2);
    }

    #[test]
    fn breaker_sheds_attachments_on_a_repeatedly_failing_key() {
        use crate::breaker::BreakerConfig;
        use crate::policy::DelaySpec;
        let reg = PolicyRegistry::new();
        reg.set_breaker(BreakerConfig {
            threshold: 3,
            cooldown: 4,
            max_cooldown: 16,
        });
        let mut bad = ObfuscationPolicy::split_and_delay("bad");
        bad.delay = DelaySpec::UniformFraction {
            lo_frac: 0.30,
            hi_frac: 0.10, // inverted: fails validation
        };
        reg.publish(PolicyKey::Destination(5), bad);
        // First three flows degrade normally and trip the circuit.
        for flow in 0..3 {
            assert!(matches!(
                attach_policy_checked(&reg, flow, 5, 42),
                AttachResolution::Degraded { .. }
            ));
        }
        assert_eq!(reg.degraded_count(), 3);
        // Cooldown of 4: three shed flows, then the half-open trial —
        // which degrades again (nothing was republished) and re-opens
        // the circuit with a doubled cooldown.
        for flow in 3..6 {
            match attach_policy_checked(&reg, flow, 5, 42) {
                AttachResolution::Shed { key } => assert_eq!(key, PolicyKey::Destination(5)),
                _ => panic!("open circuit must shed"),
            }
        }
        assert!(matches!(
            attach_policy_checked(&reg, 6, 5, 42),
            AttachResolution::Degraded { .. }
        ));
        // Shed flows never touched validation: degradations counted
        // only the admitted attempts.
        assert_eq!(reg.degraded_count(), 4);
        let s = reg.breaker_stats().expect("breaker installed");
        assert_eq!((s.trips, s.shed, s.trials), (2, 3, 1));
        // Republishing a fixed policy heals the key at the next trial.
        reg.publish(
            PolicyKey::Destination(5),
            ObfuscationPolicy::split_and_delay("fixed"),
        );
        let mut last = AttachResolution::NoPolicy;
        for flow in 7..30 {
            last = attach_policy_checked(&reg, flow, 5, 42);
            if matches!(last, AttachResolution::Attached(_)) {
                break;
            }
        }
        match last {
            AttachResolution::Attached(s) => assert_eq!(s.policy_name, "fixed"),
            _ => panic!("trial with the fixed policy must close the circuit"),
        }
        assert_eq!(reg.breaker_stats().unwrap().closes, 1);
        // Closed circuit: everything attaches again.
        assert!(matches!(
            attach_policy_checked(&reg, 40, 5, 42),
            AttachResolution::Attached(_)
        ));
        // Other keys were never affected.
        reg.publish(
            PolicyKey::Destination(9),
            ObfuscationPolicy::split_and_delay("ok"),
        );
        assert!(matches!(
            attach_policy_checked(&reg, 41, 9, 42),
            AttachResolution::Attached(_)
        ));
    }

    #[test]
    fn checked_attach_passes_valid_policies_through() {
        let reg = PolicyRegistry::new();
        assert!(matches!(
            attach_policy_checked(&reg, 1, 5, 42),
            AttachResolution::NoPolicy
        ));
        reg.publish(
            PolicyKey::Destination(5),
            ObfuscationPolicy::split_and_delay("dest5"),
        );
        let mut s = attach_policy_checked(&reg, 1, 5, 42)
            .into_shaper()
            .expect("valid policy attaches");
        assert_eq!(s.policy_name, "dest5");
        assert_eq!(s.packet_ip_size(&ctx(false, 0), 0, 1500), 750);
        assert_eq!(reg.degraded_count(), 0);
    }

    #[test]
    fn attach_defense_installs_stack_placement_bindings() {
        let reg = PolicyRegistry::new();
        reg.bind_defense(
            PolicyKey::Destination(5),
            Arc::new(ObfuscationPolicy::split_and_delay("s3")),
            Placement::Stack,
        );
        let mut rng = SimRng::new(9);
        match attach_defense(&reg, 1, 5, 42, &mut rng) {
            DefenseAttachment::Attached(mut s) => {
                assert_eq!(s.policy_name, "s3");
                assert_eq!(s.packet_ip_size(&ctx(false, 0), 0, 1500), 750);
            }
            _ => panic!("stack binding must attach a shaper"),
        }
    }

    #[test]
    fn attach_defense_defers_app_placement_to_emulation() {
        let reg = PolicyRegistry::new();
        reg.bind_defense(
            PolicyKey::Default,
            Arc::new(ObfuscationPolicy::split_and_delay("s3")),
            Placement::App,
        );
        let mut rng = SimRng::new(9);
        match attach_defense(&reg, 1, 1, 42, &mut rng) {
            DefenseAttachment::AppLayer { defense_name } => assert_eq!(defense_name, "s3"),
            _ => panic!("app binding must leave the stack pass-through"),
        }
    }

    #[test]
    fn attach_defense_reports_unbound_flows() {
        let reg = PolicyRegistry::new();
        let mut rng = SimRng::new(9);
        assert!(matches!(
            attach_defense(&reg, 1, 5, 42, &mut rng),
            DefenseAttachment::Unbound
        ));
    }

    #[test]
    fn attach_defense_degrades_on_invalid_built_policy() {
        use crate::policy::DelaySpec;
        let reg = PolicyRegistry::new();
        let mut bad = ObfuscationPolicy::split_and_delay("bad");
        bad.delay = DelaySpec::UniformFraction {
            lo_frac: 0.30,
            hi_frac: 0.10, // inverted: fails validation
        };
        reg.bind_defense(PolicyKey::Default, Arc::new(bad), Placement::Stack);
        let mut rng = SimRng::new(9);
        match attach_defense(&reg, 1, 1, 42, &mut rng) {
            DefenseAttachment::Degraded {
                defense_name,
                reason,
            } => {
                assert_eq!(defense_name, "bad");
                assert!(!reason.is_empty());
            }
            _ => panic!("invalid built policy must degrade"),
        }
        assert_eq!(reg.degraded_count(), 1);
    }

    #[test]
    fn audit_survives_attachment() {
        let reg = PolicyRegistry::new();
        reg.publish(PolicyKey::Default, ObfuscationPolicy::split_and_delay("a"));
        let mut s = attach_policy(&reg, 1, 1, 42).expect("resolves");
        let audit = Arc::clone(&s.audit);
        let _ = s.packet_ip_size(&ctx(false, 0), 0, 1500);
        assert!(audit.decisions.load(std::sync::atomic::Ordering::Relaxed) > 0);
        assert_eq!(audit.total_clamped(), 0, "benign policy never clamps");
    }
}
