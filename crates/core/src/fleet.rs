//! Fleet-scale defended-flow engine: many concurrent flows, sharded
//! event queues, one shared control plane.
//!
//! Everything else in the repo simulates one host pair per visit; the
//! paper's deployment argument (§5) is about *providers* — a network
//! stack shaping tens of thousands of concurrent flows behind one
//! policy control plane. This module is that regime's engine:
//!
//! * **Sharded simulation.** Flows are partitioned into a fixed number
//!   of shards (independent of thread count). Each shard owns a
//!   wheel-backed [`EventQueue`] interleaving all its flows' departure
//!   timers, an [`Arena`] of in-flight emission descriptors
//!   (generation-checked handles stored inside the timer events), and a
//!   [`VecPool`] recycling the buffers of padding defenses that re-emit
//!   whole directions. Shards run under [`netsim::par`]; per the
//!   determinism contract each flow forks its RNG from the root seed
//!   and its stable global index, so results are bit-identical at any
//!   `STOB_THREADS` *and* any shard count.
//! * **One shared [`PolicyRegistry`].** Every flow resolves its defense
//!   through the registry (flow → destination → default precedence)
//!   concurrently from all shards, exactly like a provider fleet
//!   hitting one control plane.
//! * **Per-flow egress pipelines.** Each resolved defense is lowered
//!   through [`assemble_policy_shaper`] into a live shaper driving an
//!   [`EgressPipeline`] ([`EgressLabels::FLEET`]): the size stage
//!   re-fragments packets via `packet_ip_size`, the delay stage gates
//!   departures through `pace_replay` with shift accumulation —
//!   the same §3 semantics `enforce_flow` applies to recorded traces,
//!   here applied to generated flows in streaming fashion (no full
//!   per-flow schedule is ever materialized, which is what keeps 100k+
//!   resident flows cheap).
//!
//! Workload: flows are synthetic page-load-like packet sequences drawn
//! lazily from the flow's own RNG (gap, direction, size per packet),
//! staggered over a start window so a large population is resident at
//! once. Checksums fold each emission order-independently, so the
//! aggregate check value is invariant to shard layout; the per-shard
//! [`Auditor`] checks pop monotonicity and that no emission departs
//! before its intended time.
//!
//! Observability: `netsim.fleet.*` counters (flows, egress packets and
//! bytes, dummies, events) — see OBSERVABILITY.md. The `fleet` bench
//! bin drives this engine at 10k–1M flows and commits its throughput
//! trajectory to `BENCH_8.json`.

use crate::defense::{
    checked_policy, piece_gap, rate_for_iat, replay_ctx, CloseOut, DefenseCtx, FlowPkt, PadderCore,
    StackParams,
};
use crate::registry::PolicyRegistry;
use crate::sockopt::assemble_policy_shaper;
use netsim::{
    par, Arena, ArenaHandle, AuditReport, Auditor, Direction, EventQueue, FlowId, Nanos, SimRng,
    VecPool,
};
use stack::egress::{EgressLabels, EgressPipeline};
use stack::FlowTable;

/// Fixed shard count the engine defaults to. Chosen comfortably above
/// any realistic `STOB_THREADS` so thread count only changes which
/// worker drives a shard, never how flows are grouped. A perf-only
/// knob: results are invariant to it (see module docs).
pub const DEFAULT_SHARDS: u64 = 64;

/// Fleet run parameters.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Root seed; flow `f` forks its RNG as `root.fork(f + 1)`.
    pub seed: u64,
    /// Total flows to drive.
    pub flows: u64,
    /// Shard count (perf knob; results are invariant). 0 = default.
    pub shards: u64,
    /// Destination diversity: flow `f` targets destination `f % sites`,
    /// the key its registry resolution uses.
    pub sites: u32,
    /// Packets per flow, drawn uniformly from this inclusive range.
    pub pkts_per_flow: (u64, u64),
    /// Inter-packet gap bounds (ns), drawn uniformly per packet.
    pub gap_ns: (u64, u64),
    /// Flow start times are staggered uniformly over this window.
    pub window: Nanos,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            seed: 1,
            flows: 10_000,
            shards: DEFAULT_SHARDS,
            sites: 64,
            pkts_per_flow: (30, 60),
            gap_ns: (50_000, 1_000_000),
            window: Nanos::from_millis(5),
        }
    }
}

/// Aggregate result of a fleet run. Every field is a deterministic
/// function of `(config, registry contents)` — invariant to thread
/// count and shard count — except nothing: all of it is.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Flows completed.
    pub flows: u64,
    /// Wire packets emitted (real pieces + dummies).
    pub egress_pkts: u64,
    /// Wire bytes emitted.
    pub egress_bytes: u64,
    /// Dummy packets injected by padding defenses.
    pub dummy_pkts: u64,
    /// Dummy bytes injected.
    pub dummy_bytes: u64,
    /// Peak simultaneously-resident flows (interval sweep over every
    /// flow's `[start, end]`).
    pub peak_resident: u64,
    /// Simulated end time (latest flow end).
    pub sim_end: Nanos,
    /// Order-independent fold of every emission on every flow.
    pub checksum: u64,
    /// Events popped across all shard queues.
    pub events: u64,
    /// Peak in-flight emission descriptors in any one shard's arena.
    pub arena_high_water: u64,
    /// Merged invariant report (monotone pops, no early departures).
    pub audit: AuditReport,
}

impl FleetReport {
    /// True when the run finished with no invariant violations.
    pub fn clean(&self) -> bool {
        self.audit.violations.is_empty()
    }
}

/// One flow's completion record (engine-internal; summarised into
/// [`FleetReport`]).
struct FlowDone {
    start: Nanos,
    end: Nanos,
    pkts: u64,
    bytes: u64,
    dummy_pkts: u64,
    dummy_bytes: u64,
    checksum: u64,
}

/// Per-shard event: either a flow's start deadline or the departure
/// timer of its next original packet, whose descriptor lives in the
/// shard arena behind a generation-checked handle.
enum Step {
    Start { local: u32 },
    Emit { local: u32, h: ArenaHandle },
}

/// In-flight emission descriptor: the next original packet (flow-relative
/// timestamp) and its index in the flow's original sequence.
struct Pending {
    pkt: FlowPkt,
    orig_idx: u64,
}

/// Live state of one resident flow. Created at the flow's start event,
/// dropped at close — so a shard's memory tracks its *resident* flow
/// count, not its total assignment.
struct FlowState {
    f: u64,
    rng: SimRng,
    start: Nanos,
    /// Original packets still to draw after the pending one.
    remaining: u64,
    size_active: bool,
    delay_active: bool,
    apply_dir: Option<Direction>,
    split_link_mbps: u64,
    pipe: EgressPipeline,
    core: Option<Box<dyn PadderCore>>,
    owned: &'static [Direction],
    /// Pooled emission buffer, only for owned-direction (re-emitting)
    /// padding cores; pure-padding and policy-only flows fold inline.
    buffer: Option<Vec<FlowPkt>>,
    shift: Nanos,
    emit_idx: u64,
    prev_orig_ts: Nanos,
    pkts: u64,
    bytes: u64,
    checksum: u64,
    end_rel: Nanos,
}

/// Order-independent per-emission fold (an FNV-style mix summed with
/// wrapping adds, so shard layout and merge order cannot change it).
fn mix_emission(ts: Nanos, dir: Direction, size: u32) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in [ts.as_nanos(), dir as u64 + 1, u64::from(size)] {
        h ^= v;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

struct ShardOut {
    done: Vec<FlowDone>,
    audit: AuditReport,
    events: u64,
    arena_high_water: u64,
}

/// Drive `cfg.flows` defended flows through `registry` and return the
/// aggregate report. See the module docs for the execution model.
pub fn run_fleet(cfg: &FleetConfig, registry: &PolicyRegistry) -> FleetReport {
    let shards = if cfg.shards == 0 {
        DEFAULT_SHARDS
    } else {
        cfg.shards
    }
    .min(cfg.flows.max(1));
    let root = SimRng::new(cfg.seed);
    let per = cfg.flows.div_ceil(shards);
    let shard_ids: Vec<u64> = (0..shards).collect();
    let mut sp = netsim::telemetry::span("fleet.run");
    let outs = par::par_map(&shard_ids, |_, &s| {
        let lo = (s * per).min(cfg.flows);
        let hi = ((s + 1) * per).min(cfg.flows);
        run_shard(cfg, registry, &root, lo, hi)
    });

    // Merge. Sums and the checksum are order-independent; the interval
    // sweep for peak residency is global, so shard layout cannot skew it.
    let mut report = FleetReport {
        flows: 0,
        egress_pkts: 0,
        egress_bytes: 0,
        dummy_pkts: 0,
        dummy_bytes: 0,
        peak_resident: 0,
        sim_end: Nanos::ZERO,
        checksum: 0,
        events: 0,
        arena_high_water: 0,
        audit: AuditReport {
            checks: 0,
            violations: Vec::new(),
        },
    };
    let mut intervals: Vec<(u64, u64)> = Vec::with_capacity(cfg.flows as usize);
    for out in outs {
        report.events += out.events;
        report.arena_high_water = report.arena_high_water.max(out.arena_high_water);
        report.audit.checks += out.audit.checks;
        report.audit.violations.extend(out.audit.violations);
        for d in &out.done {
            report.flows += 1;
            report.egress_pkts += d.pkts;
            report.egress_bytes += d.bytes;
            report.dummy_pkts += d.dummy_pkts;
            report.dummy_bytes += d.dummy_bytes;
            report.checksum = report.checksum.wrapping_add(d.checksum);
            report.sim_end = report.sim_end.max(d.end);
            intervals.push((d.start.as_nanos(), d.end.as_nanos()));
        }
    }
    report.peak_resident = peak_resident(&mut intervals);
    netsim::tm_gauge!("netsim.fleet.peak_resident").set_max(report.peak_resident);
    netsim::tm_gauge!("netsim.fleet.arena_high_water").set_max(report.arena_high_water);
    sp.sim_window(Nanos::ZERO, report.sim_end);
    report
}

/// Peak of the residency step function: sweep `(start, end)` intervals,
/// counting an interval as resident on `[start, end]` (ends processed
/// before coincident starts).
fn peak_resident(intervals: &mut [(u64, u64)]) -> u64 {
    let mut events: Vec<(u64, i64)> = Vec::with_capacity(intervals.len() * 2);
    for &mut (s, e) in intervals.iter_mut() {
        events.push((s, 1));
        // End marker strictly after `e` so a flow is resident through
        // its final emission instant.
        events.push((e + 1, -1));
    }
    events.sort_unstable();
    let mut cur = 0i64;
    let mut peak = 0i64;
    for (_, d) in events {
        cur += d;
        peak = peak.max(cur);
    }
    peak.max(0) as u64
}

fn run_shard(
    cfg: &FleetConfig,
    registry: &PolicyRegistry,
    root: &SimRng,
    lo: u64,
    hi: u64,
) -> ShardOut {
    let n = (hi - lo) as usize;
    let mut q: EventQueue<Step> = EventQueue::new();
    let mut arena: Arena<Pending> = Arena::with_capacity(n.min(4096));
    let mut pool: VecPool<FlowPkt> = VecPool::new();
    let mut flows: FlowTable<FlowState> = FlowTable::with_capacity(n);
    let mut auditor = Auditor::new();
    auditor.set_enabled(true);
    let mut done: Vec<FlowDone> = Vec::with_capacity(n);
    let mut events = 0u64;

    // Seed every assigned flow's start deadline. Only the start draw is
    // consumed here; the flow's full RNG stream is re-forked at the
    // start event (same fork, same order — identical stream).
    for f in lo..hi {
        let mut rng = root.fork(f + 1);
        let start = Nanos(rng.range_u64(0, cfg.window.as_nanos().max(1)));
        q.schedule_at(
            start,
            Step::Start {
                local: (f - lo) as u32,
            },
        );
    }

    while let Some((t, step)) = q.pop() {
        events += 1;
        auditor.check_monotonic(t);
        netsim::tm_counter!("netsim.fleet.events").inc();
        match step {
            Step::Start { local } => {
                let f = lo + u64::from(local);
                let mut st = start_flow(cfg, registry, root, f, &mut pool);
                let pkt = draw_packet(&mut st.rng, Nanos::ZERO, cfg, true);
                let h = arena.alloc(Pending { pkt, orig_idx: 0 });
                // First original packet departs at flow start.
                q.schedule_at(st.start, Step::Emit { local, h });
                flows.insert(FlowId(local), st);
            }
            Step::Emit { local, h } => {
                let p = arena
                    .take(h)
                    .expect("emission descriptor vanished (stale handle)");
                let fid = FlowId(local);
                let st = flows.get_mut(&fid).expect("flow state for pending emit");
                emit_packet(st, &p, &mut auditor);
                if st.remaining > 0 {
                    st.remaining -= 1;
                    let next = draw_packet(&mut st.rng, p.pkt.ts, cfg, false);
                    let intended = st.start + next.ts + st.shift;
                    let h = arena.alloc(Pending {
                        pkt: next,
                        orig_idx: p.orig_idx + 1,
                    });
                    q.schedule_at(intended, Step::Emit { local, h });
                } else {
                    let st = flows.remove(&fid).expect("flow state at close");
                    done.push(close_flow(st, &mut pool));
                }
            }
        }
    }

    debug_assert!(flows.is_empty(), "flows left resident after queue drain");
    debug_assert!(arena.is_empty(), "descriptors leaked in the arena");
    ShardOut {
        done,
        audit: auditor.report(),
        events,
        arena_high_water: arena.high_water() as u64,
    }
}

/// Draw the next original packet of a flow: inter-packet gap, direction
/// (30 % outbound — request-like), and size.
fn draw_packet(rng: &mut SimRng, prev_ts: Nanos, cfg: &FleetConfig, first: bool) -> FlowPkt {
    let gap = if first {
        0
    } else {
        rng.range_u64(cfg.gap_ns.0, cfg.gap_ns.1.max(cfg.gap_ns.0))
    };
    let dir = if rng.next_below(100) < 30 {
        Direction::Out
    } else {
        Direction::In
    };
    let size = rng.range_u64(80, 1460) as u32;
    FlowPkt {
        ts: prev_ts + Nanos(gap),
        dir,
        size,
    }
}

/// Resolve the flow's defense through the shared registry and set up its
/// live state: shaper-backed pipeline, padding core, pooled buffer.
fn start_flow(
    cfg: &FleetConfig,
    registry: &PolicyRegistry,
    root: &SimRng,
    f: u64,
    pool: &mut VecPool<FlowPkt>,
) -> FlowState {
    netsim::tm_counter!("netsim.fleet.flows").inc();
    let mut rng = root.fork(f + 1);
    let start = Nanos(rng.range_u64(0, cfg.window.as_nanos().max(1)));
    let dest = (f % u64::from(cfg.sites.max(1))) as u32;
    // One shared control plane, hit concurrently from every shard.
    let binding = registry.resolve_defense(f as u32, dest);
    let params = StackParams {
        seed: cfg.seed,
        flow_salt: f,
        ..StackParams::default()
    };
    let mut pipe = EgressPipeline::new(EgressLabels::FLEET);
    let (mut size_active, mut delay_active) = (false, false);
    let mut apply_dir = None;
    let mut split_link_mbps = 0;
    let mut core = None;
    if let Some(b) = binding {
        let fd = b.defense.build(&DefenseCtx::default(), &mut rng);
        let (sa, da) = checked_policy(&fd);
        size_active = sa;
        delay_active = da;
        apply_dir = fd.apply_dir;
        split_link_mbps = fd.split_link_mbps;
        core = fd.padding;
        if sa || da {
            let (shaper, _audit) =
                assemble_policy_shaper(&fd.policy, params.seed, params.flow_salt);
            pipe.set_shaper(shaper);
        }
    }
    let owned = core.as_ref().map(|c| c.owned_dirs()).unwrap_or(&[]);
    let buffer = if owned.is_empty() {
        None
    } else {
        Some(pool.take())
    };
    let npkts = rng.range_u64(cfg.pkts_per_flow.0.max(1), cfg.pkts_per_flow.1.max(1));
    FlowState {
        f,
        rng,
        start,
        remaining: npkts.saturating_sub(1),
        size_active,
        delay_active,
        apply_dir,
        split_link_mbps,
        pipe,
        core,
        owned,
        buffer,
        shift: Nanos::ZERO,
        emit_idx: 0,
        prev_orig_ts: Nanos::ZERO,
        pkts: 0,
        bytes: 0,
        checksum: 0,
        end_rel: Nanos::ZERO,
    }
}

/// Shape and emit one original packet: the size stage re-fragments it
/// through the pipeline's packet-size decision, the delay stage gates
/// each piece through the pacing clock with shift accumulation — the
/// `enforce_flow` semantics, applied streaming.
fn emit_packet(st: &mut FlowState, p: &Pending, auditor: &mut Auditor) {
    let params = StackParams {
        seed: 0, // not consulted by the shape context
        flow_salt: st.f,
        ..StackParams::default()
    };
    let affected = st.apply_dir.is_none_or(|d| d == p.pkt.dir);
    // Size stage.
    let single: [FlowPkt; 1] = [p.pkt];
    let mut many: Vec<FlowPkt> = Vec::new();
    let pieces: &[FlowPkt] = if st.size_active && affected {
        let sctx = replay_ctx(&params, p.orig_idx, p.pkt.ts, None);
        let mut remaining = p.pkt.size;
        let mut ts = p.pkt.ts;
        let mut piece = 0u32;
        while remaining > 0 {
            let proposed = remaining.min(params.mtu_wire);
            let got = st.pipe.packet_ip_size(&sctx, piece, proposed, 1, proposed);
            many.push(FlowPkt {
                ts,
                dir: p.pkt.dir,
                size: got,
            });
            remaining -= got;
            if remaining > 0 {
                ts += piece_gap(st.split_link_mbps, got);
            }
            piece += 1;
        }
        &many
    } else {
        &single
    };
    // Delay stage + accounting, per piece.
    for piece in pieces {
        let iat = piece.ts.saturating_sub(st.prev_orig_ts);
        let intended = piece.ts + st.shift;
        let out_ts = if st.delay_active && st.emit_idx > 0 && affected {
            let rate = rate_for_iat(params.mss, iat);
            let sctx = replay_ctx(&params, st.emit_idx, intended, Some(rate));
            let eligible = st.pipe.pace_replay(&sctx, intended);
            st.shift += eligible.saturating_sub(intended);
            eligible
        } else {
            intended
        };
        // No emission may depart before its intended time.
        auditor.check_release(out_ts, intended, st.f);
        st.prev_orig_ts = piece.ts;
        st.emit_idx += 1;
        let shaped = FlowPkt {
            ts: out_ts,
            dir: piece.dir,
            size: piece.size,
        };
        if let Some(c) = &mut st.core {
            c.on_data(shaped, &mut st.rng);
        }
        match &mut st.buffer {
            // Owned-direction cores re-emit whole directions at close;
            // hold the stream in the pooled buffer until then.
            Some(buf) => buf.push(shaped),
            None => fold_emission(st, &shaped),
        }
    }
}

/// Account one final emission into the flow's running totals.
fn fold_emission(st: &mut FlowState, pkt: &FlowPkt) {
    st.pkts += 1;
    st.bytes += u64::from(pkt.size);
    st.checksum = st
        .checksum
        .wrapping_add(mix_emission(pkt.ts, pkt.dir, pkt.size));
    st.end_rel = st.end_rel.max(pkt.ts);
    netsim::tm_counter!("netsim.fleet.egress_pkts").inc();
    netsim::tm_counter!("netsim.fleet.egress_bytes").add(u64::from(pkt.size));
}

/// Close the flow: run the padding core's schedule, merge owned-direction
/// re-emissions, return the pooled buffer, and summarise.
fn close_flow(mut st: FlowState, pool: &mut VecPool<FlowPkt>) -> FlowDone {
    let mut dummy_pkts = 0u64;
    let mut dummy_bytes = 0u64;
    if let Some(mut core) = st.core.take() {
        let CloseOut { emits, .. } = core.on_close(&mut st.rng);
        for e in &emits {
            if e.dummy {
                dummy_pkts += 1;
                dummy_bytes += u64::from(e.pkt.size);
                netsim::tm_counter!("netsim.fleet.dummy_pkts").inc();
            }
            fold_emission(&mut st, &e.pkt);
        }
    }
    if let Some(buf) = st.buffer.take() {
        // Real packets of owned directions were replaced by the core's
        // re-emissions above; keep the rest.
        for pkt in &buf {
            if !st.owned.contains(&pkt.dir) {
                fold_emission(&mut st, pkt);
            }
        }
        pool.put(buf);
    }
    FlowDone {
        start: st.start,
        end: st.start + st.end_rel,
        pkts: st.pkts,
        bytes: st.bytes,
        dummy_pkts,
        dummy_bytes,
        checksum: st.checksum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ObfuscationPolicy;
    use crate::registry::PolicyKey;
    use std::sync::Arc;

    fn small_cfg() -> FleetConfig {
        FleetConfig {
            seed: 0xF1EE7,
            flows: 800,
            shards: 16,
            sites: 8,
            pkts_per_flow: (5, 12),
            gap_ns: (10_000, 200_000),
            window: Nanos::from_millis(1),
        }
    }

    fn registry_with_default() -> PolicyRegistry {
        let reg = PolicyRegistry::new();
        let mut p = ObfuscationPolicy::passthrough("fleet-test");
        p.delay = crate::policy::DelaySpec::UniformFraction {
            lo_frac: 0.05,
            hi_frac: 0.20,
        };
        reg.publish(PolicyKey::Default, p);
        reg
    }

    fn checks(r: &FleetReport) -> (u64, u64, u64, u64, u64, u64) {
        (
            r.flows,
            r.egress_pkts,
            r.egress_bytes,
            r.checksum,
            r.peak_resident,
            r.audit.checks,
        )
    }

    #[test]
    fn report_is_invariant_to_threads_and_shards() {
        let reg = registry_with_default();
        let base_cfg = small_cfg();
        par::set_threads(1);
        let reference = run_fleet(&base_cfg, &reg);
        assert!(reference.clean(), "{:?}", reference.audit.violations);
        assert_eq!(reference.flows, base_cfg.flows);
        assert!(reference.egress_pkts > 0);
        for threads in [2usize, 4, 8] {
            par::set_threads(threads);
            let r = run_fleet(&base_cfg, &reg);
            assert_eq!(checks(&r), checks(&reference), "threads={threads}");
        }
        par::set_threads(1);
        for shards in [1u64, 3, 64, 800] {
            let cfg = FleetConfig {
                shards,
                ..small_cfg()
            };
            let r = run_fleet(&cfg, &reg);
            assert_eq!(checks(&r), checks(&reference), "shards={shards}");
        }
        par::set_threads(0);
    }

    #[test]
    fn unbound_registry_is_passthrough() {
        let reg = PolicyRegistry::new();
        let cfg = small_cfg();
        let r = run_fleet(&cfg, &reg);
        assert!(r.clean());
        assert_eq!(r.flows, cfg.flows);
        assert_eq!(r.dummy_pkts, 0);
        // Passthrough: one emission per original packet, bounds implied
        // by the per-flow packet range.
        assert!(r.egress_pkts >= cfg.flows * cfg.pkts_per_flow.0);
        assert!(r.egress_pkts <= cfg.flows * cfg.pkts_per_flow.1);
    }

    #[test]
    fn overlapping_window_yields_full_residency() {
        // Zero-width start window: every flow starts at t = 0 and stays
        // resident past it, so the peak equals the population.
        let reg = PolicyRegistry::new();
        let cfg = FleetConfig {
            flows: 200,
            window: Nanos(1),
            ..small_cfg()
        };
        let r = run_fleet(&cfg, &reg);
        assert_eq!(r.peak_resident, 200);
        assert!(r.arena_high_water > 0);
    }

    /// An owned-direction core: drops the originals of `In` and re-emits
    /// them shifted, plus one dummy — exercising the pooled buffer path.
    struct Reemit {
        held: Vec<FlowPkt>,
    }
    impl PadderCore for Reemit {
        fn owned_dirs(&self) -> &'static [Direction] {
            &[Direction::In]
        }
        fn on_data(&mut self, pkt: FlowPkt, _rng: &mut SimRng) {
            if pkt.dir == Direction::In {
                self.held.push(pkt);
            }
        }
        fn on_close(&mut self, _rng: &mut SimRng) -> CloseOut {
            let mut emits: Vec<crate::defense::Emit> = self
                .held
                .drain(..)
                .map(|p| crate::defense::Emit {
                    pkt: FlowPkt {
                        ts: p.ts + Nanos(500),
                        ..p
                    },
                    dummy: false,
                })
                .collect();
            emits.push(crate::defense::Emit {
                pkt: FlowPkt {
                    ts: Nanos(42),
                    dir: Direction::In,
                    size: 1514,
                },
                dummy: true,
            });
            CloseOut {
                emits,
                real_done: None,
            }
        }
    }

    struct ReemitDefense;
    impl crate::defense::Defense for ReemitDefense {
        fn name(&self) -> &str {
            "reemit-test"
        }
        fn build(&self, _ctx: &DefenseCtx, _rng: &mut SimRng) -> crate::defense::FlowDefense {
            crate::defense::FlowDefense {
                padding: Some(Box::new(Reemit { held: Vec::new() })),
                ..crate::defense::FlowDefense::passthrough("reemit-test")
            }
        }
    }

    #[test]
    fn owned_direction_core_buffers_and_merges() {
        let reg = PolicyRegistry::new();
        reg.bind_defense(
            PolicyKey::Default,
            Arc::new(ReemitDefense),
            crate::defense::Placement::Stack,
        );
        let cfg = FleetConfig {
            flows: 120,
            shards: 8,
            ..small_cfg()
        };
        par::set_threads(1);
        let one = run_fleet(&cfg, &reg);
        par::set_threads(4);
        let four = run_fleet(&cfg, &reg);
        par::set_threads(0);
        assert!(one.clean(), "{:?}", one.audit.violations);
        assert_eq!(one.dummy_pkts, cfg.flows, "one dummy per flow");
        assert_eq!(one.dummy_bytes, cfg.flows * 1514);
        assert_eq!(checks(&one), checks(&four));
        assert_eq!(one.dummy_pkts, four.dummy_pkts);
    }

    #[test]
    fn empty_fleet_is_a_clean_noop() {
        let reg = PolicyRegistry::new();
        let cfg = FleetConfig {
            flows: 0,
            ..small_cfg()
        };
        let r = run_fleet(&cfg, &reg);
        assert!(r.clean());
        assert_eq!(r.flows, 0);
        assert_eq!(r.egress_pkts, 0);
        assert_eq!(r.peak_resident, 0);
    }

    #[test]
    fn peak_resident_sweep_counts_overlap() {
        let mut iv = vec![(0u64, 10), (5, 15), (11, 20), (30, 31)];
        assert_eq!(peak_resident(&mut iv), 2);
        let mut nested = vec![(0u64, 100), (10, 20), (12, 14)];
        assert_eq!(peak_resident(&mut nested), 3);
        // A flow ending exactly where another starts overlaps it (ends
        // are inclusive).
        let mut touching = vec![(0u64, 10), (10, 20)];
        assert_eq!(peak_resident(&mut touching), 2);
        let mut none: Vec<(u64, u64)> = Vec::new();
        assert_eq!(peak_resident(&mut none), 0);
    }
}
